package janus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"janus/internal/analyzer"
	"janus/internal/artcache"
	"janus/internal/dbm"
	"janus/internal/obj"
	"janus/internal/rules"
	"janus/internal/vm"
)

// Durable cache tier. Every pipeline stage here is a deterministic
// function of its binary (plus schedule and configuration), so its
// result can be stored on disk keyed by content and replayed across
// processes: a warm `janus-bench` run recomputes nothing yet must stay
// byte-identical to a cold one. The in-memory singleflight memos in
// memo.go remain the first tier; the artcache is consulted on a memory
// miss, and a computed result is published for the next process.
//
// Artifact kinds are version-tagged (the same convention as the
// BENCH_engine.json schema tag): any change to a payload layout or to
// the semantics feeding it must bump the kind, which orphans old
// entries — they simply stop matching and age out via LRU.
const (
	kindNative  = "native-v1"
	kindProfile = "profile-v1"
	kindDBM     = "dbm-v1"
)

// binaryKey is the content identity of (executable, library set): the
// fingerprint of every mapped image, in load order.
func binaryKey(exe *obj.Executable, libs []*obj.Library) string {
	var sb strings.Builder
	sb.WriteString(exe.Fingerprint())
	for _, l := range libs {
		sb.WriteByte('+')
		sb.WriteString(l.Fingerprint())
	}
	return sb.String()
}

// scheduleKey hashes a rewrite schedule's serialised form. ok=false
// (unserialisable schedule) means the caller must bypass the cache —
// a shared sentinel key would alias distinct schedules.
func scheduleKey(sched *rules.Schedule) (string, bool) {
	if sched == nil {
		return "none", true
	}
	img, err := sched.Save()
	if err != nil {
		return "", false
	}
	sum := sha256.Sum256(img)
	return hex.EncodeToString(sum[:]), true
}

// dbmConfigKey folds every Config field that can influence a Result —
// including the engine-selection knobs, which leave virtual cycles
// untouched but are attributed in Stats (HostParRegions,
// StealRegions) — into a canonical string. Inject and Profile are
// absent because injected and profiling runs never reach the cache.
func dbmConfigKey(c dbm.Config) string {
	return fmt.Sprintf("threads=%d parallel=%t hostpar=%t steal=%t miniter=%d maxsteps=%d cost=%+v",
		c.Threads, c.Parallel, c.HostParallel, c.WorkStealing, c.MinIterPerThread, c.MaxSteps, c.Cost)
}

// runDBMCached executes exe under the DBM, consulting the durable
// cache when one is configured. Fault-injected runs bypass the cache
// unconditionally: their recovery counters must come from a real
// execution, and a plan's effect is not part of the key. Profiling
// runs go through the dedicated profile artifact instead.
func runDBMCached(c *artcache.Cache, exe *obj.Executable, sched *rules.Schedule, dcfg dbm.Config, libs ...*obj.Library) (*dbm.Result, error) {
	run := func() (*dbm.Result, error) {
		ex, err := dbm.New(exe, sched, dcfg, libs...)
		if err != nil {
			return nil, err
		}
		return ex.Run()
	}
	if c == nil || dcfg.Inject != nil || dcfg.Profile {
		return run()
	}
	sk, ok := scheduleKey(sched)
	if !ok {
		return run()
	}
	k := artcache.Key{Kind: kindDBM, Binary: binaryKey(exe, libs), Input: sk, Config: dbmConfigKey(dcfg)}
	if data, hit := c.Get(k); hit {
		if res, err := dbm.DecodeResult(data); err == nil {
			return res, nil
		}
		// Verified entry with an undecodable payload: a schema skew the
		// kind tag failed to capture. Recompute and overwrite.
	}
	res, err := run()
	if err != nil {
		return nil, err
	}
	if data, err := dbm.EncodeResult(res); err == nil {
		_ = c.Put(k, data) // cache write failure must never fail the run
	}
	return res, nil
}

// profilePayload is the disk form of a ProfileResult: the four
// deterministic profile maps. The Executor is process-local state
// (raw coverage tables, dependence sets) and is nil on a cache load;
// nothing downstream of the memo reads it.
type profilePayload struct {
	Coverage     map[int]float64
	ExclCoverage map[int]float64
	AvgIters     map[int]float64
	Dependences  map[int]bool
}

func encodeProfile(pr *ProfileResult) ([]byte, error) {
	return json.Marshal(profilePayload{
		Coverage:     pr.Coverage,
		ExclCoverage: pr.ExclCoverage,
		AvgIters:     pr.AvgIters,
		Dependences:  pr.Dependences,
	})
}

func decodeProfile(data []byte) (*ProfileResult, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p profilePayload
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("janus: decode cached profile: %w", err)
	}
	return &ProfileResult{
		Coverage:     p.Coverage,
		ExclCoverage: p.ExclCoverage,
		AvgIters:     p.AvgIters,
		Dependences:  p.Dependences,
	}, nil
}

// ResetMemos drops every completed entry from the in-memory memo
// tables. Tests use it to force the next run through the durable
// tier; in-flight computations are unaffected.
func ResetMemos() {
	nativeFlight.Reset()
	analyzeFlight.Reset()
	profileFlight.Reset()
}

// RunNativeBaselineCached is RunNativeBaseline backed by a durable
// artifact cache (nil c degrades to the in-memory memo alone).
func RunNativeBaselineCached(c *artcache.Cache, exe *obj.Executable, libs ...*obj.Library) (*vm.Result, error) {
	return runNativeMemo(c, exe, libs...)
}

// RunBareDBMCached is RunBareDBM backed by a durable artifact cache
// (nil c recomputes every time, matching RunBareDBM).
func RunBareDBMCached(c *artcache.Cache, exe *obj.Executable, libs ...*obj.Library) (*dbm.Result, error) {
	return runDBMCached(c, exe, nil, dbm.Config{Threads: 1, Cost: dbm.DefaultCost(), MaxSteps: vm.DefaultMaxSteps}, libs...)
}

// RunProfilingCached is RunProfiling behind both memo tiers. On a
// durable-cache hit the returned ProfileResult carries the four
// profile maps but a nil Executor; callers needing the raw profiler
// state must use RunProfiling directly.
func RunProfilingCached(c *artcache.Cache, exe *obj.Executable, prog *analyzer.Program, libs ...*obj.Library) (*ProfileResult, error) {
	return runProfilingMemo(c, exe, prog, libs...)
}
