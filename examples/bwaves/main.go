// bwaves: the paper's speculation showcase. The hot loop calls the
// shared library's pow() through the PLT, code the static analyser
// never sees; Janus parallelises it anyway by wrapping each call in a
// software transaction (figure 5). This example shows the three
// figure-7 configurations side by side and the transaction statistics.
//
//	go run ./examples/bwaves
package main

import (
	"fmt"
	"log"

	"janus"
	"janus/internal/workloads"
)

func main() {
	exe, libs, err := workloads.Build("410.bwaves", workloads.Ref, workloads.O3)
	if err != nil {
		log.Fatal(err)
	}
	trainExe, _, err := workloads.Build("410.bwaves", workloads.Train, workloads.O3)
	if err != nil {
		log.Fatal(err)
	}
	run := func(label string, cfg janus.Config) *janus.Report {
		cfg.Threads = 8
		cfg.TrainExe = trainExe
		cfg.Verify = true
		rep, err := janus.Parallelise(exe, cfg, libs...)
		if err != nil {
			log.Fatal(label, ": ", err)
		}
		fmt.Printf("%-28s %6.2fx  (%d loops, %d checks, %d tx commits, %d aborts)\n",
			label, rep.Speedup(), rep.Selected, rep.Stats.ChecksRun,
			rep.Stats.TxCommits, rep.Stats.TxAborts)
		return rep
	}
	fmt.Println("410.bwaves under the figure-7 configurations, 8 threads:")
	run("statically-driven", janus.Config{})
	run("+ profile", janus.Config{UseProfile: true})
	full := run("+ checks & speculation", janus.Config{UseProfile: true, UseChecks: true})

	if ex := full.Stats; ex.TxStarted > 0 {
		fmt.Printf("\nspeculation: %d transactions, %d reads / %d writes buffered\n",
			ex.TxStarted, ex.SpecReads, ex.SpecWrites)
		fmt.Println("the pow() call writes no shared memory, so no transaction aborts —")
		fmt.Println("exactly the behaviour the paper reports for bwaves' library call.")
	}
}
