// aliasing: demonstrates the runtime array-base check (figure 4 and
// §II-E1). The same copy loop runs twice: once with provably disjoint
// runtime pointers (the MEM_BOUNDS_CHECK passes and the loop runs in
// parallel) and once with overlapping pointers (the check fails, the
// code cache is flushed, and the loop re-runs sequentially — still
// producing the correct result).
//
//	go run ./examples/aliasing
package main

import (
	"fmt"
	"log"

	"janus"
	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
)

const n = 4096

// build constructs: dst = ptrs[1], src = ptrs[0]; dst[i] = src[i] + 1.
// With overlap=true the two pointers alias at distance one.
func build(overlap bool) *obj.Executable {
	b := asm.NewBuilder(fmt.Sprintf("aliasing-%v", overlap))
	b.Data("buf", 8*2*n)
	b.Data("ptrs", 16)
	f := b.Func("main")
	f.MoviData(guest.R2, "buf", 0)
	f.StData("ptrs", 0, guest.R2)
	off := int64(8 * n)
	if overlap {
		off = 8
	}
	f.MoviData(guest.R2, "buf", off)
	f.StData("ptrs", 8, guest.R2)
	f.LdData(guest.R8, "ptrs", 0)
	f.LdData(guest.R9, "ptrs", 8)
	loop, done := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.OpI(guest.ADDI, guest.R3, 1)
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.LdData(guest.R4, "buf", 8*(2*n-1))
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R4)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return exe.Strip()
}

func main() {
	// Profiling always runs on the *disjoint* build: this is the
	// paper's exact scenario — training inputs show no aliasing, so the
	// loop is classified dynamic-DOALL, and only the runtime
	// MEM_BOUNDS_CHECK stands between a bad ref input and a wrong
	// answer. The two builds differ only in one pointer initialiser, so
	// their binary layouts (and loop IDs) are identical.
	trainExe := build(false)
	for _, overlap := range []bool{false, true} {
		exe := build(overlap)
		rep, err := janus.Parallelise(exe, janus.Config{
			Threads:   8,
			UseChecks: true,
			TrainExe:  trainExe,
			Verify:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := rep.Stats
		verdict := "check passed -> parallelised"
		if st.ChecksFailed > 0 {
			verdict = "check failed -> code cache flushed, sequential fallback"
		}
		fmt.Printf("overlap=%-5v  checks=%d failed=%d regions=%d flushes=%d  %s\n",
			overlap, st.ChecksRun, st.ChecksFailed, st.ParRegions, st.CacheFlushes, verdict)
		fmt.Printf("              output %d, verified against native, %.2fx\n",
			rep.DBM.Output[0], rep.Speedup())
	}
}
