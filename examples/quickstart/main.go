// Quickstart: build a tiny guest binary with the assembler, let Janus
// parallelise it automatically, and compare against native execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"janus"
	"janus/internal/asm"
	"janus/internal/guest"
)

func main() {
	// A small program: dst[i] = src[i]^2 + src[i] over 10k elements,
	// followed by a sequential checksum it prints.
	b := asm.NewBuilder("quickstart")
	const n = 10000
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i % 911)
	}
	b.DataI64("src", src)
	b.Data("dst", n*8)

	f := b.Func("main")
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, "src", 0)
	f.MoviData(guest.R9, "dst", 0)
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.Mov(guest.R4, guest.R3)
	f.Op(guest.IMUL, guest.R4, guest.R3)
	f.Op(guest.ADD, guest.R4, guest.R3)
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R4)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)

	// Sequential checksum + print.
	sum, sumDone := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Movi(guest.R2, 0)
	f.Bind(sum)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, sumDone)
	f.Ld(guest.R3, guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8})
	f.Op(guest.ADD, guest.R2, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, sum)
	f.Bind(sumDone)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Halt()

	exe, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Janus works on stripped binaries.
	exe = exe.Strip()

	rep, err := janus.Parallelise(exe, janus.Config{Threads: 8, UseChecks: true, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output (checksum): %d\n", rep.DBM.Output[0])
	fmt.Printf("native cycles:  %d\n", rep.Native.Cycles)
	fmt.Printf("janus cycles:   %d (8 threads)\n", rep.DBM.Cycles)
	fmt.Printf("speedup:        %.2fx\n", rep.Speedup())
	fmt.Printf("loops selected: %d\n", rep.Selected)
	fmt.Println("verified: parallel run matches native output and memory")
}
