// lbm: parallelise the stream-kernel benchmark that spends ~98% of its
// time in DOALL loops (the paper's best-scaling workload together with
// libquantum), and show how performance scales with thread count.
//
//	go run ./examples/lbm
package main

import (
	"fmt"
	"log"

	"janus"
	"janus/internal/workloads"
)

func main() {
	exe, libs, err := workloads.Build("470.lbm", workloads.Ref, workloads.O3)
	if err != nil {
		log.Fatal(err)
	}
	trainExe, _, err := workloads.Build("470.lbm", workloads.Train, workloads.O3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("470.lbm thread scaling (full Janus: profile + checks)")
	fmt.Printf("%8s %12s %9s\n", "threads", "cycles", "speedup")
	for _, n := range []int{1, 2, 4, 8} {
		rep, err := janus.Parallelise(exe, janus.Config{
			Threads:    n,
			UseProfile: true,
			UseChecks:  true,
			TrainExe:   trainExe,
			Verify:     true,
		}, libs...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %8.2fx\n", n, rep.DBM.Cycles, rep.Speedup())
	}
}
