package janus

import (
	"testing"

	"janus/internal/workloads"
)

func TestParalleliseAllNineBenchmarks(t *testing.T) {
	for _, name := range workloads.ParallelisableNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			exe, libs, err := workloads.Build(name, workloads.Train, workloads.O3)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Parallelise(exe, Config{
				Threads:    8,
				UseProfile: true,
				UseChecks:  true,
				Verify:     true,
			}, libs...)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Speedup() <= 0 {
				t.Fatal("no speedup computed")
			}
			t.Logf("%s: %.2fx, %d loops selected, %d regions, %d checks run",
				name, rep.Speedup(), rep.Selected, rep.Stats.ParRegions, rep.Stats.ChecksRun)
		})
	}
}

func TestConfigProgression(t *testing.T) {
	// The four figure-7 configurations must all verify, and adding
	// profile+checks must not lose performance on a check-needing
	// benchmark.
	exe, libs, err := workloads.Build("410.bwaves", workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Parallelise(exe, Config{Threads: 8, Verify: true}, libs...)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Parallelise(exe, Config{Threads: 8, UseProfile: true, UseChecks: true, Verify: true}, libs...)
	if err != nil {
		t.Fatal(err)
	}
	if full.Speedup() < static.Speedup() {
		t.Fatalf("checks should help bwaves: static=%.2f full=%.2f", static.Speedup(), full.Speedup())
	}
	if full.Stats.ChecksRun == 0 {
		t.Fatal("bwaves full config must run bounds checks")
	}
	if full.Stats.TxStarted == 0 {
		t.Fatal("bwaves hot loop must speculate on the pow call")
	}
}

func TestBareDBMOverheadBounded(t *testing.T) {
	exe, libs, err := workloads.Build("433.milc", workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	native, err := RunNativeBaseline(exe, libs...)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := RunBareDBM(exe, libs...)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bare.Cycles) / float64(native.Cycles)
	if ratio < 1.0 {
		t.Fatalf("bare DBM cannot be faster than native: %.3f", ratio)
	}
	if ratio > 2.0 {
		t.Fatalf("bare DBM overhead out of range: %.3f", ratio)
	}
}
