package janus

import (
	"janus/internal/analyzer"
	"janus/internal/artcache"
	"janus/internal/obj"
	"janus/internal/singleflight"
	"janus/internal/vm"
)

// Native execution and the profiling stage are deterministic functions
// of the binary: the evaluation harness re-runs the same baseline many
// times (figure 9 alone replays one binary at eight thread counts, each
// replay needing the identical native result and train profile), and
// with the experiment scheduler several benchmark rows run these
// baselines concurrently. Each memo therefore has singleflight
// semantics (internal/singleflight): the first caller runs, concurrent
// callers for the same key block on that one run and share its result
// instead of duplicating the work. Entries key on the *obj.Executable
// pointer (plus the library set) — the workload build cache returns a
// stable executable per (name, input, opt), so a pointer can never
// alias two different programs — and each table is bounded so
// long-lived processes cannot grow it without limit.
//
// Beneath the in-memory tier sits the optional durable tier
// (internal/artcache, wired through Config.Cache): on a memory miss
// the flight function first consults the on-disk store, keyed by
// content fingerprint rather than pointer, and publishes what it
// computes. The analysis memo is the exception — an analyzer.Program
// is a live CFG/SSA object graph with no serialised form, so it stays
// memory → compute only; re-analysis is cheap relative to execution.

// memoLimit bounds each memo table (the harness working set is far
// smaller); eviction keeps in-flight entries, so the run-exactly-once
// guarantee survives it.
const memoLimit = 64

// libsKey folds a library pointer set into a comparable key.
type libsKey [4]*obj.Library

func libsKeyOf(libs []*obj.Library) (libsKey, bool) {
	var k libsKey
	if len(libs) > len(k) {
		return k, false
	}
	copy(k[:], libs)
	return k, true
}

type runKey struct {
	exe  *obj.Executable
	libs libsKey
}

var nativeFlight = singleflight.Flight[runKey, *vm.Result]{Limit: memoLimit}

// runNativeMemo returns the (deterministic) native execution result for
// exe, running it at most once per (executable, libraries) even under
// concurrent callers, and consulting the durable cache c (nil = none)
// on a memory miss.
func runNativeMemo(c *artcache.Cache, exe *obj.Executable, libs ...*obj.Library) (*vm.Result, error) {
	compute := func() (*vm.Result, error) {
		if c == nil {
			return vm.RunNative(exe, libs...)
		}
		k := artcache.Key{Kind: kindNative, Binary: binaryKey(exe, libs)}
		if data, hit := c.Get(k); hit {
			if res, err := vm.DecodeResult(data); err == nil {
				return res, nil
			}
		}
		res, err := vm.RunNative(exe, libs...)
		if err != nil {
			return nil, err
		}
		if data, err := vm.EncodeResult(res); err == nil {
			_ = c.Put(k, data)
		}
		return res, nil
	}
	lk, ok := libsKeyOf(libs)
	if !ok {
		return compute()
	}
	return nativeFlight.Do(runKey{exe: exe, libs: lk}, compute)
}

var analyzeFlight = singleflight.Flight[*obj.Executable, *analyzer.Program]{Limit: memoLimit}

// runAnalyzeMemo returns the static analysis of exe, running it at
// most once per executable. The shared Program is read-only in the
// profiling path (GenProfileSchedule builds a fresh schedule; the
// Apply* mutators are only ever called on per-run analyses). Analysis
// results never reach the durable tier: a Program is an in-memory
// object graph with no serialised form.
func runAnalyzeMemo(exe *obj.Executable) (*analyzer.Program, error) {
	return analyzeFlight.Do(exe, func() (*analyzer.Program, error) {
		return analyzer.Analyze(exe)
	})
}

// profileKey identifies one profiling run: the binary, the analysis it
// was instrumented from (a different analysis of the same binary must
// not reuse the profile), and the library set.
type profileKey struct {
	exe  *obj.Executable
	prog *analyzer.Program
	libs libsKey
}

var profileFlight = singleflight.Flight[profileKey, *ProfileResult]{Limit: memoLimit}

// runProfilingMemo returns the training-stage profile for exe under
// prog, running it at most once per (executable, analysis, libraries)
// even under concurrent callers, and consulting the durable cache c
// (nil = none) on a memory miss. The durable key omits prog: every
// Program reaching this memo is a fresh deterministic analysis of exe
// (the Apply* mutations happen downstream on ref analyses), so the
// binary fingerprint subsumes it.
func runProfilingMemo(c *artcache.Cache, exe *obj.Executable, prog *analyzer.Program, libs ...*obj.Library) (*ProfileResult, error) {
	compute := func() (*ProfileResult, error) {
		if c == nil {
			return RunProfiling(exe, prog, libs...)
		}
		k := artcache.Key{Kind: kindProfile, Binary: binaryKey(exe, libs)}
		if data, hit := c.Get(k); hit {
			if pr, err := decodeProfile(data); err == nil {
				return pr, nil
			}
		}
		pr, err := RunProfiling(exe, prog, libs...)
		if err != nil {
			return nil, err
		}
		if data, err := encodeProfile(pr); err == nil {
			_ = c.Put(k, data)
		}
		return pr, nil
	}
	lk, ok := libsKeyOf(libs)
	if !ok {
		return compute()
	}
	return profileFlight.Do(profileKey{exe: exe, prog: prog, libs: lk}, compute)
}
