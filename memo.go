package janus

import (
	"janus/internal/analyzer"
	"janus/internal/obj"
	"janus/internal/singleflight"
	"janus/internal/vm"
)

// Native execution and the profiling stage are deterministic functions
// of the binary: the evaluation harness re-runs the same baseline many
// times (figure 9 alone replays one binary at eight thread counts, each
// replay needing the identical native result and train profile), and
// with the experiment scheduler several benchmark rows run these
// baselines concurrently. Each memo therefore has singleflight
// semantics (internal/singleflight): the first caller runs, concurrent
// callers for the same key block on that one run and share its result
// instead of duplicating the work. Entries key on the *obj.Executable
// pointer (plus the library set) — the workload build cache returns a
// stable executable per (name, input, opt), so a pointer can never
// alias two different programs — and each table is bounded so
// long-lived processes cannot grow it without limit.

// memoLimit bounds each memo table (the harness working set is far
// smaller); eviction keeps in-flight entries, so the run-exactly-once
// guarantee survives it.
const memoLimit = 64

// libsKey folds a library pointer set into a comparable key.
type libsKey [4]*obj.Library

func libsKeyOf(libs []*obj.Library) (libsKey, bool) {
	var k libsKey
	if len(libs) > len(k) {
		return k, false
	}
	copy(k[:], libs)
	return k, true
}

type runKey struct {
	exe  *obj.Executable
	libs libsKey
}

var nativeFlight = singleflight.Flight[runKey, *vm.Result]{Limit: memoLimit}

// runNativeMemo returns the (deterministic) native execution result for
// exe, running it at most once per (executable, libraries) even under
// concurrent callers.
func runNativeMemo(exe *obj.Executable, libs ...*obj.Library) (*vm.Result, error) {
	lk, ok := libsKeyOf(libs)
	if !ok {
		return vm.RunNative(exe, libs...)
	}
	return nativeFlight.Do(runKey{exe: exe, libs: lk}, func() (*vm.Result, error) {
		return vm.RunNative(exe, libs...)
	})
}

var analyzeFlight = singleflight.Flight[*obj.Executable, *analyzer.Program]{Limit: memoLimit}

// runAnalyzeMemo returns the static analysis of exe, running it at
// most once per executable. The shared Program is read-only in the
// profiling path (GenProfileSchedule builds a fresh schedule; the
// Apply* mutators are only ever called on per-run analyses).
func runAnalyzeMemo(exe *obj.Executable) (*analyzer.Program, error) {
	return analyzeFlight.Do(exe, func() (*analyzer.Program, error) {
		return analyzer.Analyze(exe)
	})
}

// profileKey identifies one profiling run: the binary, the analysis it
// was instrumented from (a different analysis of the same binary must
// not reuse the profile), and the library set.
type profileKey struct {
	exe  *obj.Executable
	prog *analyzer.Program
	libs libsKey
}

var profileFlight = singleflight.Flight[profileKey, *ProfileResult]{Limit: memoLimit}

// runProfilingMemo returns the training-stage profile for exe under
// prog, running it at most once per (executable, analysis, libraries)
// even under concurrent callers.
func runProfilingMemo(exe *obj.Executable, prog *analyzer.Program, libs ...*obj.Library) (*ProfileResult, error) {
	lk, ok := libsKeyOf(libs)
	if !ok {
		return RunProfiling(exe, prog, libs...)
	}
	return profileFlight.Do(profileKey{exe: exe, prog: prog, libs: lk}, func() (*ProfileResult, error) {
		return RunProfiling(exe, prog, libs...)
	})
}
