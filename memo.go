package janus

import (
	"sync"

	"janus/internal/analyzer"
	"janus/internal/obj"
	"janus/internal/vm"
)

// Native execution and the profiling stage are deterministic functions
// of the binary: the evaluation harness re-runs the same baseline many
// times (figure 9 alone replays one binary at eight thread counts, each
// replay needing the identical native result and train profile), so
// both are memoised per executable. Entries key on the *obj.Executable
// pointer — the workload builders return a fresh executable per build,
// so a pointer can never alias two different programs — and the cache
// is bounded so long-lived processes cannot grow it without limit.

// memoLimit bounds each memo table; when full the table is dropped
// wholesale (the harness working set is far smaller).
const memoLimit = 64

var memoMu sync.Mutex

type nativeEntry struct {
	libs []*obj.Library
	res  *vm.Result
}

var nativeMemo = map[*obj.Executable]nativeEntry{}

func sameLibs(a, b []*obj.Library) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runNativeMemo returns the (deterministic) native execution result for
// exe, running it at most once per executable.
func runNativeMemo(exe *obj.Executable, libs ...*obj.Library) (*vm.Result, error) {
	memoMu.Lock()
	if e, ok := nativeMemo[exe]; ok && sameLibs(e.libs, libs) {
		memoMu.Unlock()
		return e.res, nil
	}
	memoMu.Unlock()
	res, err := vm.RunNative(exe, libs...)
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	if len(nativeMemo) >= memoLimit {
		nativeMemo = map[*obj.Executable]nativeEntry{}
	}
	nativeMemo[exe] = nativeEntry{libs: libs, res: res}
	memoMu.Unlock()
	return res, nil
}

var analyzeMemo = map[*obj.Executable]*analyzer.Program{}

// runAnalyzeMemo returns the static analysis of exe, running it at
// most once per executable. The shared Program is read-only in the
// profiling path (GenProfileSchedule builds a fresh schedule; the
// Apply* mutators are only ever called on per-run analyses).
func runAnalyzeMemo(exe *obj.Executable) (*analyzer.Program, error) {
	memoMu.Lock()
	if prog, ok := analyzeMemo[exe]; ok {
		memoMu.Unlock()
		return prog, nil
	}
	memoMu.Unlock()
	prog, err := analyzer.Analyze(exe)
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	if len(analyzeMemo) >= memoLimit {
		analyzeMemo = map[*obj.Executable]*analyzer.Program{}
	}
	analyzeMemo[exe] = prog
	memoMu.Unlock()
	return prog, nil
}

// profileKey identifies one profiling run: the binary and the analysis
// it was instrumented from (a different analysis of the same binary
// must not reuse the profile).
type profileKey struct {
	exe  *obj.Executable
	prog *analyzer.Program
}

type profileEntry struct {
	libs []*obj.Library
	res  *ProfileResult
}

var profileMemo = map[profileKey]profileEntry{}

// runProfilingMemo returns the training-stage profile for exe under
// prog, running it at most once per (executable, analysis) pair.
func runProfilingMemo(exe *obj.Executable, prog *analyzer.Program, libs ...*obj.Library) (*ProfileResult, error) {
	k := profileKey{exe: exe, prog: prog}
	memoMu.Lock()
	if e, ok := profileMemo[k]; ok && sameLibs(e.libs, libs) {
		memoMu.Unlock()
		return e.res, nil
	}
	memoMu.Unlock()
	pr, err := RunProfiling(exe, prog, libs...)
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	if len(profileMemo) >= memoLimit {
		profileMemo = map[profileKey]profileEntry{}
	}
	profileMemo[k] = profileEntry{libs: libs, res: pr}
	memoMu.Unlock()
	return pr, nil
}
