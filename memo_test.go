package janus

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"janus/internal/artcache"
	"janus/internal/obj"
	"janus/internal/singleflight"
	"janus/internal/vm"
	"janus/internal/workloads"
)

// corruptAll flips one payload byte in every artifact under dir.
func corruptAll(t *testing.T, dir string) {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".art" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)-1] ^= 0xFF
		n++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no artifacts found to corrupt")
	}
}

// TestLibsKeyOf pins the overflow contract of the memo key: up to four
// libraries fold into a comparable key, more must report !ok so the
// callers fall back to an uncached run instead of aliasing keys.
func TestLibsKeyOf(t *testing.T) {
	mk := func(n int) []*obj.Library {
		libs := make([]*obj.Library, n)
		for i := range libs {
			libs[i] = &obj.Library{Name: "l"}
		}
		return libs
	}
	for n := 0; n <= 5; n++ {
		k, ok := libsKeyOf(mk(n))
		if wantOK := n <= 4; ok != wantOK {
			t.Fatalf("libsKeyOf(%d libs) ok = %v, want %v", n, ok, wantOK)
		}
		if !ok {
			continue
		}
		// The key must carry exactly the first n pointers, zero-padded.
		for i := 0; i < len(k); i++ {
			if (i < n) != (k[i] != nil) {
				t.Fatalf("libsKeyOf(%d libs) slot %d = %v", n, i, k[i])
			}
		}
	}
	// Distinct library sets of equal length must produce distinct keys.
	a, _ := libsKeyOf(mk(2))
	b, _ := libsKeyOf(mk(2))
	if a == b {
		t.Fatal("two distinct pointer sets folded to the same key")
	}
}

// TestNativeMemoOverflowBypassesCache proves the >4-libraries fallback
// really is uncached: two calls with five libraries execute natively
// twice (distinct result pointers), while the same program with one
// library is memoised (same pointer).
func TestNativeMemoOverflowBypassesCache(t *testing.T) {
	exe, libs, err := workloads.Build("410.bwaves", workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	if len(libs) != 1 {
		t.Fatalf("expected one math library, got %d", len(libs))
	}
	r1, err := runNativeMemo(nil, exe, libs...)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runNativeMemo(nil, exe, libs...)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("<=4 libs: second run was not served from the memo")
	}

	// Pad to five: four extra unused (never-called) libraries mapped at
	// distinct bases. The VM only needs them resolvable, not called.
	many := append([]*obj.Library{}, libs...)
	base := uint64(0x7f10_0000_0000)
	for i := 0; i < 4; i++ {
		many = append(many, &obj.Library{Name: "pad", Base: base, Code: make([]byte, 24)})
		base += 0x1_0000_0000
	}
	o1, err := runNativeMemo(nil, exe, many...)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := runNativeMemo(nil, exe, many...)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 {
		t.Fatal(">4 libs: runs shared a result pointer, expected the uncached path")
	}
	if o1.Cycles != r1.Cycles || o1.DataHash != r1.DataHash {
		t.Fatalf("unused pad libraries changed the result: %+v vs %+v", o1, r1)
	}
}

// TestMemoEvictionKeepsInFlight fills the native flight to memoLimit
// while one computation is blocked in flight, forces eviction past the
// limit, and verifies the in-flight entry still deduplicates joiners
// (the run-exactly-once guarantee survives eviction pressure).
func TestMemoEvictionKeepsInFlight(t *testing.T) {
	// A private flight with the production limit: the package-level
	// tables are shared with other tests, so pressure is applied to an
	// identically-configured instance.
	f := singleflight.Flight[runKey, *vm.Result]{Limit: memoLimit}
	dummy := func(i int) runKey { return runKey{exe: &obj.Executable{Entry: uint64(i)}} }

	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	inflight := dummy(-1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Do(inflight, func() (*vm.Result, error) {
			runs.Add(1)
			close(started)
			<-release
			return &vm.Result{Exit: 7}, nil
		})
	}()
	<-started

	// Flood past the limit: every completed entry becomes evictable,
	// and eviction triggers each time the table is full.
	for i := 0; i < 3*memoLimit; i++ {
		if _, err := f.Do(dummy(i), func() (*vm.Result, error) { return &vm.Result{}, nil }); err != nil {
			t.Fatal(err)
		}
	}

	// The blocked computation must still be joinable, not restarted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := f.Do(inflight, func() (*vm.Result, error) {
			runs.Add(1)
			return &vm.Result{Exit: -1}, nil
		})
		if err != nil || res.Exit != 7 {
			t.Errorf("joiner got %+v, %v; want the in-flight result", res, err)
		}
	}()
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("in-flight computation ran %d times under eviction pressure, want 1", got)
	}
}

// TestNativeMemoHealsCorruptDiskEntry corrupts the cached native
// baseline on disk and checks the next (memory-reset) lookup detects
// it, recomputes the identical result, and rewrites the entry.
func TestNativeMemoHealsCorruptDiskEntry(t *testing.T) {
	cache, err := artcache.Open(t.TempDir(), artcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exe, libs, err := workloads.Build("462.libquantum", workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	ResetMemos() // other tests may have memoised this executable in memory
	r1, err := runNativeMemo(cache, exe, libs...)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats(); got.Misses != 1 {
		t.Fatalf("cold run: %s, want exactly one miss", got)
	}

	corruptAll(t, cache.Dir())
	ResetMemos() // fall through the memory tier

	r2, err := runNativeMemo(cache, exe, libs...)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.BadEntries == 0 {
		t.Fatalf("corruption was not detected: %s", st)
	}
	if r2.Cycles != r1.Cycles || r2.DataHash != r1.DataHash || r2.MemHash != r1.MemHash {
		t.Fatalf("recomputed result differs: %+v vs %+v", r2, r1)
	}

	// The rewrite healed the store: a third lookup hits.
	ResetMemos()
	before := cache.Stats().Hits
	if _, err := runNativeMemo(cache, exe, libs...); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits <= before {
		t.Fatal("store did not heal: third lookup was not a hit")
	}
}
