// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per artefact), plus ablation benchmarks for
// the design decisions ARCHITECTURE.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the headline metric of its figure as custom
// units (speedups, fractions) so `go test -bench` output doubles as the
// numeric results table.
package janus_test

import (
	"math"
	"testing"

	"janus"

	"janus/internal/dbm"
	"janus/internal/harness"
	"janus/internal/workloads"
)

func BenchmarkFigure6_LoopCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure6(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		var doall float64
		for _, r := range rows {
			doall += r.Dynamic.StaticDOALL + r.Dynamic.DynDOALL
		}
		b.ReportMetric(doall/float64(len(rows)), "mean-doall-fraction")
	}
}

func BenchmarkFigure7_Speedup8T(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure7(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		var g []float64
		for _, r := range rows {
			g = append(g, r.Janus)
		}
		b.ReportMetric(geomeanOf(g), "geomean-speedup")
	}
}

func BenchmarkFigure8_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure8(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		var seq float64
		for _, r := range rows {
			seq += r.N.Sequential
		}
		b.ReportMetric(seq/float64(len(rows)), "mean-seq-fraction-8t")
	}
}

func BenchmarkFigure9_ThreadScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure9(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		// Report lbm's 8-thread point, the paper's best scaler.
		for _, r := range rows {
			if r.Bench == "470.lbm" {
				b.ReportMetric(r.Speedups[7], "lbm-8t-speedup")
			}
		}
	}
}

func BenchmarkFigure10_ScheduleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure10(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		var fr []float64
		for _, r := range rows {
			fr = append(fr, r.Fraction)
		}
		b.ReportMetric(100*geomeanOf(fr), "schedule-size-%")
	}
}

func BenchmarkFigure11_CompilerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure11(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		var jg, gc []float64
		for _, r := range rows {
			jg = append(jg, r.JanusGcc)
			gc = append(gc, r.GccAuto)
		}
		b.ReportMetric(geomeanOf(jg), "janus-on-gcc")
		b.ReportMetric(geomeanOf(gc), "gcc-auto")
	}
}

func BenchmarkFigure12_OptLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure12(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		var o3, avx []float64
		for _, r := range rows {
			o3 = append(o3, r.O3)
			avx = append(avx, r.AVX)
		}
		b.ReportMetric(geomeanOf(o3), "o3-geomean")
		b.ReportMetric(geomeanOf(avx), "avx-geomean")
	}
}

func BenchmarkTableI_BoundsChecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableI(harness.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		var avg float64
		for _, r := range rows {
			avg += r.AvgRanges
		}
		b.ReportMetric(avg/float64(len(rows)), "mean-ranges-per-check")
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks for ARCHITECTURE.md's design decisions.
// ---------------------------------------------------------------------

// BenchmarkAblation_NoProfile measures the cost of skipping the
// training stage (static selection only) on a small-loop benchmark.
func BenchmarkAblation_NoProfile(b *testing.B) {
	exe, libs, err := workloads.Build("437.leslie3d", workloads.Ref, workloads.O3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		static, err := janus.Parallelise(exe, janus.Config{Threads: 8}, libs...)
		if err != nil {
			b.Fatal(err)
		}
		prof, err := janus.Parallelise(exe, janus.Config{Threads: 8, UseProfile: true}, libs...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(static.Speedup(), "static-only")
		b.ReportMetric(prof.Speedup(), "with-profile")
	}
}

// BenchmarkAblation_NoChecks measures what runtime checks buy on a
// pointer-heavy benchmark (bwaves needs them for its hot loops).
func BenchmarkAblation_NoChecks(b *testing.B) {
	exe, libs, err := workloads.Build("410.bwaves", workloads.Ref, workloads.O3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		off, err := janus.Parallelise(exe, janus.Config{Threads: 8, UseProfile: true}, libs...)
		if err != nil {
			b.Fatal(err)
		}
		on, err := janus.Parallelise(exe, janus.Config{Threads: 8, UseProfile: true, UseChecks: true}, libs...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(off.Speedup(), "no-checks")
		b.ReportMetric(on.Speedup(), "with-checks")
	}
}

// BenchmarkAblation_TranslationCost sweeps the DBM translation cost to
// show the sensitivity of the bare-overhead result (paper: DynamoRIO's
// efficiency is a prerequisite).
func BenchmarkAblation_TranslationCost(b *testing.B) {
	exe, libs, err := workloads.Build("464.h264ref", workloads.Ref, workloads.O3)
	if err != nil {
		b.Fatal(err)
	}
	native, err := janus.RunNativeBaseline(exe, libs...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, cost := range []int64{0, 60, 240} {
			cm := dbm.DefaultCost()
			cm.TransPerInst = cost
			ex, err := dbm.New(exe, nil, dbm.Config{Threads: 1, Cost: cm}, libs...)
			if err != nil {
				b.Fatal(err)
			}
			res, err := ex.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(native.Cycles)/float64(res.Cycles),
				map[int64]string{0: "free-translation", 60: "default", 240: "4x-translation"}[cost])
		}
	}
}

// BenchmarkPipeline_EndToEnd measures wall-clock cost of the whole
// Janus pipeline on one benchmark (host performance, not guest cycles).
func BenchmarkPipeline_EndToEnd(b *testing.B) {
	exe, libs, err := workloads.Build("462.libquantum", workloads.Train, workloads.O3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := janus.Parallelise(exe, janus.Config{Threads: 8, UseProfile: true, UseChecks: true}, libs...); err != nil {
			b.Fatal(err)
		}
	}
}

func geomeanOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}
