package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"janus/internal/enginebench"
	"janus/internal/harness"
)

// engineBench is one micro-benchmark entry of the BENCH_engine.json
// snapshot.
type engineBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// engineSnapshot is the perf snapshot future PRs must beat: execution
// fast-path micro-benchmarks plus the wall-clock of one harness figure.
type engineSnapshot struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []engineBench `json:"benchmarks"`
	// Figure7Seconds is the wall-clock of regenerating figure 7 (the
	// end-to-end harness number the micro-benchmarks exist to serve).
	Figure7Seconds float64 `json:"figure7_seconds"`
}

// engineBenchmarks runs the shared micro-benchmark specs from
// internal/enginebench — the exact bodies behind the repository's
// Benchmark* wrappers — so the snapshot can be regenerated from the
// installed binary alone and stays comparable with `go test -bench`.
func engineBenchmarks() ([]engineBench, error) {
	specs := enginebench.Specs()
	out := make([]engineBench, 0, len(specs))
	for _, sp := range specs {
		r := testing.Benchmark(sp.Fn)
		out = append(out, engineBench{
			Name:        sp.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out, nil
}

// writeEngineSnapshot runs the engine micro-benchmarks plus one harness
// figure and writes the JSON snapshot to path. The figure-7 timing runs
// with Jobs=1 so the wall-clock stays comparable across snapshots
// regardless of the host's core count.
func writeEngineSnapshot(path string, opts harness.Options) error {
	benches, err := engineBenchmarks()
	if err != nil {
		return err
	}
	opts.Jobs = 1
	start := time.Now()
	if _, err := harness.Figure7(opts); err != nil {
		return err
	}
	fig7 := time.Since(start).Seconds()

	snap := engineSnapshot{
		Schema:         "janus-bench-engine/v1",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Benchmarks:     benches,
		Figure7Seconds: fig7,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
