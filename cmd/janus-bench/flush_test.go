package main

// Failure-path stderr contract: the -cache-dir counter line and the
// -campaign stats line are part of janus-bench's observable surface
// and must be emitted even when a run dies partway, so operators can
// see what the failed run actually did. These tests drive the real
// binary, since the flush logic lives in main.
//
// The campaign failure is manufactured with -campaign-plant: a planted
// mis-classification guarantees a divergence, so the run exits nonzero
// on a deterministic path that still accumulated stats.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBench compiles the real binary once per test binary run.
var benchBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "janus-bench-test")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	benchBin = filepath.Join(dir, "janus-bench")
	out, err := exec.Command("go", "build", "-o", benchBin, ".").CombinedOutput()
	if err != nil {
		panic("building janus-bench: " + err.Error() + "\n" + string(out))
	}
	os.Exit(m.Run())
}

// runBench runs the binary and returns stdout, stderr and the exit code.
func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(benchBin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return stdout.String(), stderr.String(), code
}

// TestCacheCounterLineOnFailedRun: a run that fails partway (here the
// engine-snapshot write, after the cache-backed benchmarks ran) must
// still print the artcache counter line to stderr.
func TestCacheCounterLineOnFailedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the real binary; skipped in -short")
	}
	cacheDir := t.TempDir()
	badPath := filepath.Join(t.TempDir(), "no", "such", "dir", "engine.json")
	_, stderr, code := runBench(t,
		"-cache-dir", cacheDir,
		"-engine-json", badPath,
	)
	if code == 0 {
		t.Fatalf("writing %s should have failed", badPath)
	}
	if !strings.Contains(stderr, "janus-bench: artcache:") {
		t.Fatalf("failed run swallowed the cache counter line; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "engine.json") {
		t.Fatalf("stderr lacks the underlying error:\n%s", stderr)
	}
}

// TestCampaignStatsLineOnFailedRun: a campaign that exits nonzero (a
// planted divergence) still prints its stats line to stdout and the
// cache counter line to stderr.
func TestCampaignStatsLineOnFailedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the real binary; skipped in -short")
	}
	stdout, stderr, code := runBench(t,
		"-campaign", t.TempDir(),
		"-campaign-plant",
		"-campaign-secs", "60", // stop-on-divergence ends it far sooner
		"-cache-dir", t.TempDir(),
	)
	if code == 0 {
		t.Fatalf("planted campaign must exit nonzero; stdout:\n%s\nstderr:\n%s", stdout, stderr)
	}
	if !strings.Contains(stdout, "campaign: iters=") {
		t.Fatalf("failing campaign swallowed its stats line; stdout:\n%s", stdout)
	}
	if !strings.Contains(stdout, "divergences=") || strings.Contains(stdout, "divergences=0") {
		t.Fatalf("planted campaign reported no divergences; stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "janus-bench: artcache:") {
		t.Fatalf("failing campaign swallowed the cache counter line; stderr:\n%s", stderr)
	}
}
