// Command janus-bench regenerates the paper's evaluation tables and
// figures over the synthetic workload suite:
//
//	janus-bench                          all experiments
//	janus-bench -fig 7                   one figure (6..12)
//	janus-bench -table 1                 one table (1 or 2)
//	janus-bench -jobs 4                  run up to 4 benchmark rows
//	                                     concurrently (output is
//	                                     byte-identical at any value)
//	janus-bench -host-parallel=false     force the single-goroutine region
//	                                     engine (outputs are byte-identical)
//	janus-bench -steal=false             force static equal chunking instead
//	                                     of the work-stealing partitioner
//	                                     (outputs are byte-identical)
//	janus-bench -engine-json BENCH_engine.json
//	                                     execution-engine perf snapshot
//	janus-bench -inject scan-defeat      arm deterministic fault injection
//	                                     in speculative regions; recovery
//	                                     re-executes them round-robin, so
//	                                     stdout stays byte-identical and a
//	                                     recovery summary goes to stderr.
//	                                     Spec: point[@every][#seed], point
//	                                     one of scan-defeat, worker-panic,
//	                                     stall, budget
//	janus-bench -gen-corpus 50           screen 50 generated kernels with
//	                                     the differential oracle and
//	                                     graduate interesting ones into
//	                                     the benchmark corpus for this
//	                                     run (figures gain gen/* rows;
//	                                     default output is unchanged when
//	                                     the flag is absent)
//	janus-bench -campaign CORPUSDIR      run a resumable shape-vector fuzz
//	                                     campaign: breed shapes from the
//	                                     persisted corpus, keep the ones
//	                                     that cover new coverage cells, and
//	                                     graduate divergence-finding shapes
//	                                     into regression fixtures. Safe to
//	                                     kill -9 and re-run: the corpus
//	                                     directory is published atomically
//	                                     and the campaign resumes where it
//	                                     stopped. Prints a stats line and
//	                                     exits nonzero on divergence; the
//	                                     default figure/table output is not
//	                                     produced in this mode.
//	janus-bench -campaign-secs 30        campaign time budget in seconds
//	                                     (default 30; used with -campaign)
//	janus-bench -campaign-seed 1         campaign decision-stream seed; a
//	                                     corpus dir remembers its seed and
//	                                     refuses to resume under another
//	janus-bench -cache-dir .janus-cache  store builds, native baselines,
//	                                     profiles and DBM results in a
//	                                     durable on-disk artifact cache;
//	                                     a warm re-run replays them and
//	                                     prints hit/miss counters to
//	                                     stderr. Output is byte-identical
//	                                     with the cache off, cold or warm.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"janus/internal/artcache"
	"janus/internal/faultinject"
	"janus/internal/genkern"
	"janus/internal/harness"
)

func main() {
	def := harness.DefaultOptions()
	fig := flag.Int("fig", 0, "regenerate one figure (6..12); 0 = all")
	table := flag.Int("table", 0, "regenerate one table (1 or 2); 0 = all")
	threads := flag.Int("threads", def.Threads, "guest thread count")
	jobs := flag.Int("jobs", def.Jobs, "how many benchmark rows run concurrently across the suite (figure/table outputs are byte-identical at any value)")
	hostParallel := flag.Bool("host-parallel", !def.SingleGoroutine, "run eligible parallel regions on host goroutines; false forces the single-goroutine round-robin engine (figure/table outputs are bit-identical either way)")
	steal := flag.Bool("steal", !def.StaticPartition, "balance host-parallel regions with the work-stealing partitioner; false forces static equal chunking (figure/table outputs are bit-identical either way)")
	engineJSON := flag.String("engine-json", "", "run the execution-engine micro-benchmarks and write a JSON perf snapshot to this path")
	inject := flag.String("inject", "", "arm deterministic fault injection in speculative regions, spec point[@every][#seed] with point one of scan-defeat, worker-panic, stall, budget (recovery keeps stdout byte-identical; summary on stderr)")
	genCorpus := flag.Int("gen-corpus", 0, "screen N seeded generated kernels against the differential oracle and graduate interesting ones into this run's benchmark corpus (0 = off; the default suite and its golden output are unchanged)")
	campaign := flag.String("campaign", "", "run a resumable shape-vector fuzz campaign persisting its corpus in this directory (skips figure/table rendering; exits nonzero on divergence)")
	campaignSecs := flag.Int("campaign-secs", 30, "campaign time budget in seconds (with -campaign)")
	campaignSeed := flag.Uint64("campaign-seed", 1, "campaign decision-stream seed (with -campaign); a corpus dir refuses to resume under a different seed")
	campaignPlant := flag.Bool("campaign-plant", false, "plant a deliberate mis-classification in every campaign oracle run (fuzzer self-test: the campaign must catch it, graduate a regression, and exit nonzero at the first divergence)")
	cacheDir := flag.String("cache-dir", "", "durable artifact cache directory (empty = off); figure/table outputs are byte-identical with the cache off, cold or warm, and the directory is safe to share between processes")
	flag.Parse()

	opts := harness.Options{
		Threads:         *threads,
		Jobs:            *jobs,
		SingleGoroutine: !*hostParallel,
		StaticPartition: !*steal,
		Recovery:        &harness.RecoveryLog{},
		CacheDir:        *cacheDir,
	}
	// Open the store here too: OpenShared dedups per directory, so this
	// handle observes the same counters the harness increments.
	var cache *artcache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = artcache.OpenShared(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "janus-bench:", err)
			os.Exit(1)
		}
	}
	// The stderr counter lines are part of the tool's contract even when
	// a run dies partway: a failed run with a cache attached still
	// reports its hit/miss counters, and a campaign that errors mid-run
	// still prints the stats it accumulated. flushCache runs on every
	// exit path below; fail is exitOn with the counters flushed first.
	flushCache := func() {
		if cache != nil {
			fmt.Fprintln(os.Stderr, "janus-bench: artcache:", cache.Stats())
		}
	}
	fail := func(err error) {
		flushCache()
		fmt.Fprintln(os.Stderr, "janus-bench:", err)
		os.Exit(1)
	}
	if *inject != "" {
		plan, err := faultinject.ParsePlan(*inject)
		if err != nil {
			fail(err)
		}
		opts.Inject = plan
	}

	if *engineJSON != "" {
		if err := writeEngineSnapshot(*engineJSON, opts); err != nil {
			fail(err)
		}
		flushCache()
		return
	}

	if *campaign != "" {
		// Campaign mode replaces figure/table rendering entirely: the
		// default suite, its registry and the golden output are untouched.
		stats, err := genkern.RunCampaign(genkern.CampaignConfig{
			Dir:      *campaign,
			Seed:     *campaignSeed,
			Duration: time.Duration(*campaignSecs) * time.Second,
			Threads:  opts.Threads,
			Plant:    *campaignPlant,
			// A planted campaign exists to prove the loop catches bugs;
			// the first graduated divergence is the proof, so stop there.
			StopOnDivergence: *campaignPlant,
			Log:              os.Stderr,
		})
		if stats != nil {
			// RunCampaign returns the stats it accumulated alongside a
			// mid-run error; the line is emitted either way.
			fmt.Println(stats)
		}
		if err != nil {
			fail(err)
		}
		if len(stats.Divergences) > 0 {
			for _, d := range stats.Divergences {
				fmt.Fprintln(os.Stderr, "janus-bench:", d.Err)
			}
			flushCache()
			os.Exit(1)
		}
		flushCache()
		return
	}

	if *genCorpus > 0 {
		// Graduation happens before rendering so the figures below
		// include the gen/* rows; a lattice violation (soundness bug)
		// aborts with the failing seed's repro command.
		entries, err := genkern.Graduate(*genCorpus, opts.Threads)
		if err != nil {
			fail(err)
		}
		fmt.Print(genkern.RenderCorpus(entries, *genCorpus))
		fmt.Println()
	}

	out, err := harness.RenderAll(opts, *fig, *table)
	// Partial results: failed experiments are marked inline, healthy
	// ones render normally; print before exiting nonzero.
	fmt.Print(out)
	if opts.Inject != nil || opts.Recovery.ParRecoveries.Load() > 0 {
		fmt.Fprintln(os.Stderr, "janus-bench:", opts.Recovery.Summary())
	}
	flushCache()
	if err != nil {
		fmt.Fprintln(os.Stderr, "janus-bench:", err)
		os.Exit(1)
	}
}
