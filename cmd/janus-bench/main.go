// Command janus-bench regenerates the paper's evaluation tables and
// figures over the synthetic workload suite:
//
//	janus-bench                          all experiments
//	janus-bench -fig 7                   one figure (6..12)
//	janus-bench -table 1                 one table (1 or 2)
//	janus-bench -host-parallel=false     force the single-goroutine region
//	                                     engine (outputs are byte-identical)
//	janus-bench -engine-json BENCH_engine.json
//	                                     execution-engine perf snapshot
package main

import (
	"flag"
	"fmt"
	"os"

	"janus/internal/harness"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (6..12); 0 = all")
	table := flag.Int("table", 0, "regenerate one table (1 or 2); 0 = all")
	threads := flag.Int("threads", harness.DefaultThreads, "thread count")
	hostParallel := flag.Bool("host-parallel", true, "run eligible parallel regions on host goroutines; false forces the single-goroutine round-robin engine (figure/table outputs are bit-identical either way)")
	engineJSON := flag.String("engine-json", "", "run the execution-engine micro-benchmarks and write a JSON perf snapshot to this path")
	flag.Parse()

	harness.SetHostParallel(*hostParallel)

	if *engineJSON != "" {
		exitOn(writeEngineSnapshot(*engineJSON))
		return
	}

	runAll := *fig == 0 && *table == 0
	run := func(n int) bool { return runAll || *fig == n }
	runT := func(n int) bool { return runAll || *table == n }

	if run(6) {
		rows, err := harness.Figure6()
		exitOn(err)
		fmt.Println(harness.RenderFigure6(rows))
	}
	if run(7) {
		rows, err := harness.Figure7(*threads)
		exitOn(err)
		fmt.Println(harness.RenderFigure7(rows))
	}
	if run(8) {
		rows, err := harness.Figure8(*threads)
		exitOn(err)
		fmt.Println(harness.RenderFigure8(rows))
	}
	if run(9) {
		rows, err := harness.Figure9(*threads)
		exitOn(err)
		fmt.Println(harness.RenderFigure9(rows))
	}
	if run(10) {
		rows, err := harness.Figure10()
		exitOn(err)
		fmt.Println(harness.RenderFigure10(rows))
	}
	if run(11) {
		rows, err := harness.Figure11(*threads)
		exitOn(err)
		fmt.Println(harness.RenderFigure11(rows))
	}
	if run(12) {
		rows, err := harness.Figure12(*threads)
		exitOn(err)
		fmt.Println(harness.RenderFigure12(rows))
	}
	if runT(1) {
		rows, err := harness.TableI()
		exitOn(err)
		fmt.Println(harness.RenderTableI(rows))
	}
	if runT(2) {
		fmt.Println(harness.TableII())
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "janus-bench:", err)
		os.Exit(1)
	}
}
