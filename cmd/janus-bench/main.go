// Command janus-bench regenerates the paper's evaluation tables and
// figures over the synthetic workload suite:
//
//	janus-bench                          all experiments
//	janus-bench -fig 7                   one figure (6..12)
//	janus-bench -table 1                 one table (1 or 2)
//	janus-bench -jobs 4                  run up to 4 benchmark rows
//	                                     concurrently (output is
//	                                     byte-identical at any value)
//	janus-bench -host-parallel=false     force the single-goroutine region
//	                                     engine (outputs are byte-identical)
//	janus-bench -steal=false             force static equal chunking instead
//	                                     of the work-stealing partitioner
//	                                     (outputs are byte-identical)
//	janus-bench -engine-json BENCH_engine.json
//	                                     execution-engine perf snapshot
package main

import (
	"flag"
	"fmt"
	"os"

	"janus/internal/harness"
)

func main() {
	def := harness.DefaultOptions()
	fig := flag.Int("fig", 0, "regenerate one figure (6..12); 0 = all")
	table := flag.Int("table", 0, "regenerate one table (1 or 2); 0 = all")
	threads := flag.Int("threads", def.Threads, "guest thread count")
	jobs := flag.Int("jobs", def.Jobs, "how many benchmark rows run concurrently across the suite (figure/table outputs are byte-identical at any value)")
	hostParallel := flag.Bool("host-parallel", !def.SingleGoroutine, "run eligible parallel regions on host goroutines; false forces the single-goroutine round-robin engine (figure/table outputs are bit-identical either way)")
	steal := flag.Bool("steal", !def.StaticPartition, "balance host-parallel regions with the work-stealing partitioner; false forces static equal chunking (figure/table outputs are bit-identical either way)")
	engineJSON := flag.String("engine-json", "", "run the execution-engine micro-benchmarks and write a JSON perf snapshot to this path")
	flag.Parse()

	opts := harness.Options{
		Threads:         *threads,
		Jobs:            *jobs,
		SingleGoroutine: !*hostParallel,
		StaticPartition: !*steal,
	}

	if *engineJSON != "" {
		exitOn(writeEngineSnapshot(*engineJSON, opts))
		return
	}

	out, err := harness.RenderAll(opts, *fig, *table)
	exitOn(err)
	fmt.Print(out)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "janus-bench:", err)
		os.Exit(1)
	}
}
