// Command janus drives the Janus pipeline from the command line over
// the built-in workload suite:
//
//	janus analyze  -bench 470.lbm            static analysis report
//	janus profile  -bench 470.lbm            statically-driven profiling
//	janus schedule -bench 470.lbm -o x.jrs   emit the rewrite schedule
//	janus run      -bench 470.lbm -threads 8 parallelise and execute
//	janus disasm   -bench 470.lbm            disassemble the binary
//
// With a janusd daemon running, the bench subcommand renders the
// evaluation suite remotely as a thin client:
//
//	janus bench -server http://127.0.0.1:7117           full suite
//	janus bench -server ... -fig 7 -deadline 30s        one figure, bounded
//
// Shed (429) and draining (503) answers are retried with seeded
// jittered exponential backoff; the rendered bytes land on stdout
// exactly as a local janus-bench run would print them.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"janus"
	"janus/internal/analyzer"
	"janus/internal/artcache"
	"janus/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "bench" {
		benchClient(os.Args[2:])
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	bench := fs.String("bench", "470.lbm", "workload name (see 'janus list')")
	threads := fs.Int("threads", 8, "parallel thread count")
	input := fs.String("input", "ref", "input set: train or ref")
	opt := fs.String("opt", "O3", "optimisation level: O2, O3, O3avx")
	out := fs.String("o", "", "output file for 'schedule'")
	noProfile := fs.Bool("no-profile", false, "disable profile-guided selection")
	noChecks := fs.Bool("no-checks", false, "disable runtime checks and speculation")
	cacheDir := fs.String("cache-dir", "", "durable artifact cache directory (empty = off); results are identical with the cache off, cold or warm")
	_ = fs.Parse(os.Args[2:])

	if cmd == "list" {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}

	in := workloads.Ref
	if *input == "train" {
		in = workloads.Train
	}
	level := workloads.O3
	switch *opt {
	case "O2":
		level = workloads.O2
	case "O3avx":
		level = workloads.O3AVX
	}
	var cache *artcache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = artcache.OpenShared(*cacheDir)
		if err != nil {
			fatal(err)
		}
	}
	exe, libs, err := workloads.BuildCached(cache, *bench, in, level)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "analyze":
		prog, err := analyzer.Analyze(exe)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d functions, %d loops\n", exe.Name, len(prog.CFG.Funcs), len(prog.Loops))
		counts := prog.ClassCounts()
		var classes []analyzer.Class
		for c := range counts {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		for _, c := range classes {
			fmt.Printf("  %-16s %d\n", c, counts[c])
		}
		for _, li := range prog.Loops {
			fmt.Printf("loop %2d @%#x depth=%d class=%-14s %s\n",
				li.ID, li.Loop.Header.Addr, li.Loop.Depth, li.Class, li.Sym)
		}

	case "profile":
		prog, err := analyzer.Analyze(exe)
		if err != nil {
			fatal(err)
		}
		pr, err := janus.RunProfilingCached(cache, exe, prog, libs...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %-10s %-10s %-10s %s\n", "loop", "coverage", "avg-iter", "dep", "class")
		ids := make([]int, 0, len(pr.Coverage))
		for id := range pr.Coverage {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			li := prog.LoopByID(id)
			dep := "-"
			if d, ok := pr.Dependences[id]; ok {
				dep = fmt.Sprintf("%v", d)
			}
			fmt.Printf("%-6d %9.2f%% %10.1f %-10s %s\n", id, 100*pr.Coverage[id], pr.AvgIters[id], dep, li.Class)
		}

	case "schedule":
		rep, err := janus.Parallelise(exe, janus.Config{
			Threads:    *threads,
			UseProfile: !*noProfile,
			UseChecks:  !*noChecks,
			Cache:      cache,
		}, libs...)
		if err != nil {
			fatal(err)
		}
		img, err := rep.Schedule.Save()
		if err != nil {
			fatal(err)
		}
		if *out != "" {
			if err := os.WriteFile(*out, img, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d bytes (%d rules) to %s\n", len(img), len(rep.Schedule.Rules), *out)
		} else {
			for _, r := range rep.Schedule.Rules {
				fmt.Println(r)
			}
			fmt.Printf("# %d rules, %d bytes serialised (%.1f%% of binary)\n",
				len(rep.Schedule.Rules), len(img), 100*float64(len(img))/float64(exe.Size()))
		}

	case "run":
		rep, err := janus.Parallelise(exe, janus.Config{
			Threads:    *threads,
			UseProfile: !*noProfile,
			UseChecks:  !*noChecks,
			Verify:     true,
			Cache:      cache,
		}, libs...)
		if err != nil {
			fatal(err)
		}
		st := rep.Stats
		fmt.Printf("%s: speedup %.2fx over native (%d threads)\n", exe.Name, rep.Speedup(), *threads)
		fmt.Printf("  native cycles      %12d\n", rep.Native.Cycles)
		fmt.Printf("  janus cycles       %12d\n", rep.DBM.Cycles)
		fmt.Printf("  loops selected     %12d\n", rep.Selected)
		fmt.Printf("  parallel regions   %12d (host-parallel %d, fallbacks %d)\n", st.ParRegions, st.HostParRegions, st.SeqFallbacks)
		fmt.Printf("  checks run/failed  %9d/%d\n", st.ChecksRun, st.ChecksFailed)
		fmt.Printf("  tx start/commit/abort %6d/%d/%d\n", st.TxStarted, st.TxCommits, st.TxAborts)
		fmt.Printf("  blocks translated  %12d (%d insts)\n", st.TransBlocks, st.TransInsts)
		fmt.Println("  verification       OK (outputs and memory match native)")

	case "disasm":
		insts, err := exe.Decode()
		if err != nil {
			fatal(err)
		}
		for i, in := range insts {
			addr := exe.CodeBase + uint64(i)*24
			fmt.Printf("%#x\t%s\n", addr, in)
		}

	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: janus <analyze|profile|schedule|run|disasm|list|bench> [flags]`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "janus:", err)
	os.Exit(1)
}
