package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"janus/internal/janusd"
)

// benchClient is the janusd thin-client mode: `janus bench -server URL`
// submits one render request to a running daemon and prints the bytes
// a local janus-bench run would have printed. Load-shed (429) and
// draining (503) refusals are retried with seeded jittered exponential
// backoff; terminal failures (deadline, panic, render error) exit
// nonzero with the server's typed error on stderr.
func benchClient(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:7117", "janusd base URL")
	fig := fs.Int("fig", 0, "regenerate one figure (6..12); 0 = all")
	table := fs.Int("table", 0, "regenerate one table (1 or 2); 0 = all")
	threads := fs.Int("threads", 0, "guest thread count (0 = daemon default)")
	jobs := fs.Int("jobs", 0, "concurrent benchmark rows (0 = daemon default)")
	inject := fs.String("inject", "", "region fault plan point[@every][#seed] applied inside the remote render")
	cacheDir := fs.String("cache-dir", "", "artifact cache dir override on the daemon host (empty = daemon default)")
	deadline := fs.Duration("deadline", 0, "per-request deadline enforced by the daemon (0 = daemon default)")
	retries := fs.Int("retries", 8, "max retries for shed/draining responses")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "base retry delay (doubles per attempt)")
	backoffMax := fs.Duration("backoff-max", 2*time.Second, "retry delay cap, including server Retry-After hints")
	seed := fs.Uint64("seed", 1, "jitter stream seed; distinct seeds desynchronise competing clients")
	timeout := fs.Duration("timeout", 0, "overall client budget including retries (0 = none)")
	_ = fs.Parse(args)

	c := &janusd.Client{
		Base: *server,
		Backoff: janusd.Backoff{
			Base:    *backoff,
			Max:     *backoffMax,
			Retries: *retries,
			Seed:    *seed,
		},
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := c.Render(ctx, janusd.Request{
		Fig:        *fig,
		Table:      *table,
		Threads:    *threads,
		Jobs:       *jobs,
		Inject:     *inject,
		CacheDir:   *cacheDir,
		DeadlineMS: deadline.Milliseconds(),
	})
	if err != nil {
		fatal(err)
	}
	if res.Failed() {
		// Partial output still lands on stdout (failed experiments carry
		// inline markers), matching local janus-bench behaviour.
		fmt.Print(res.Output)
		fmt.Fprintf(os.Stderr, "janus: %s (%s): %s\n", res.ID, res.ErrKind, res.Err)
		os.Exit(1)
	}
	fmt.Print(res.Output)
	if res.Recoveries > 0 || res.Demoted > 0 {
		fmt.Fprintf(os.Stderr, "janus: %s: %d recoveries, %d demoted\n", res.ID, res.Recoveries, res.Demoted)
	}
}
