package main

// End-to-end lifecycle tests against the real daemon binary: the test
// binary re-execs itself into run() (helper-process idiom), so SIGTERM
// drain and SIGHUP hot restart are exercised with real processes, real
// signals and a real inherited listener fd.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"janus/internal/harness"
	"janus/internal/janusd"
)

// TestHelperDaemon is not a test: re-exec'd by the lifecycle tests
// below, it becomes the daemon process.
func TestHelperDaemon(t *testing.T) {
	if os.Getenv("JANUSD_HELPER") != "1" {
		t.Skip("helper process for the daemon lifecycle tests")
	}
	os.Exit(run(strings.Fields(os.Getenv("JANUSD_ARGS"))))
}

// startDaemon launches the helper daemon with args, logging to logPath
// (a file, not a pipe: a hot-restarted grandchild inherits the fd and
// must never die on SIGPIPE after the parent exits).
func startDaemon(t *testing.T, logPath, args string) *exec.Cmd {
	t.Helper()
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDaemon$", "-test.v")
	cmd.Stdout = logf
	cmd.Stderr = logf
	cmd.Env = append(os.Environ(), "JANUSD_HELPER=1", "JANUSD_ARGS="+args)
	if err := cmd.Start(); err != nil {
		logf.Close()
		t.Fatal(err)
	}
	logf.Close() // the child holds its own copy
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return cmd
}

// waitLog polls logPath until re matches, returning the submatches.
func waitLog(t *testing.T, logPath string, re *regexp.Regexp) []string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(logPath)
		if err == nil {
			if m := re.FindStringSubmatch(string(b)); m != nil {
				return m
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	b, _ := os.ReadFile(logPath)
	t.Fatalf("log never matched %v; contents:\n%s", re, b)
	return nil
}

var readyRe = regexp.MustCompile(`janusd: pid (\d+) listening on ([0-9.:]+)`)
var resumedRe = regexp.MustCompile(`janusd: pid (\d+) resumed listener \(hot restart\) on ([0-9.:]+)`)

func tab2Expected(t *testing.T) string {
	t.Helper()
	out, err := harness.RenderAll(harness.DefaultOptions(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// submitJob posts one async job and returns its ID.
func submitJob(t *testing.T, base string) string {
	t.Helper()
	res, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"table":2}`))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", res.StatusCode, payload)
	}
	var acc janusd.Response
	if err := json.Unmarshal(payload, &acc); err != nil || acc.ID == "" {
		t.Fatalf("submit response %s: %v", payload, err)
	}
	return acc.ID
}

// waitRunning polls the job until the daemon reports it running.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			payload, _ := io.ReadAll(res.Body)
			res.Body.Close()
			var r janusd.Response
			if json.Unmarshal(payload, &r) == nil && r.State != janusd.StateQueued {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never left the queue", id)
}

// fetchResult blocks on the result endpoint.
func fetchResult(base, id string) (*janusd.Response, error) {
	res, err := (&http.Client{Timeout: time.Minute}).Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	payload, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	var r janusd.Response
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// TestSIGTERMGracefulDrain: a daemon with a request in flight, sent
// SIGTERM, completes and delivers the request, refuses new work, and
// exits 0.
func TestSIGTERMGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes; skipped in -short")
	}
	logPath := t.TempDir() + "/daemon.log"
	cmd := startDaemon(t, logPath,
		"-addr 127.0.0.1:0 -workers 1 -queue 4 -drain 30s -inject slow-worker@1 -stall 500ms -quiet")
	m := waitLog(t, logPath, readyRe)
	base := "http://" + m[2]

	id := submitJob(t, base)
	waitRunning(t, base, id)
	resc := make(chan *janusd.Response, 1)
	errc := make(chan error, 1)
	go func() {
		r, err := fetchResult(base, id)
		if err != nil {
			errc <- err
			return
		}
		resc <- r
	}()
	// Give the blocking result exchange a moment to be in flight.
	time.Sleep(50 * time.Millisecond)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		t.Fatalf("in-flight result dropped during drain: %v", err)
	case r := <-resc:
		if r.State != janusd.StateDone || r.Output != tab2Expected(t) {
			t.Fatalf("drained job: state %s err %s", r.State, r.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("result never arrived")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit 0 after SIGTERM drain: %v", err)
	}
	waitLog(t, logPath, regexp.MustCompile(`exiting after drain`))
}

// TestSIGHUPHotRestart: SIGHUP with a request in flight hands the
// listener to a replacement process; the in-flight request completes
// on the old process, the old process exits 0, and the same address
// keeps serving from the new pid.
func TestSIGHUPHotRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes; skipped in -short")
	}
	logPath := t.TempDir() + "/daemon.log"
	cmd := startDaemon(t, logPath,
		"-addr 127.0.0.1:0 -workers 1 -queue 4 -drain 30s -inject slow-worker@1 -stall 700ms -quiet")
	m := waitLog(t, logPath, readyRe)
	oldPID, _ := strconv.Atoi(m[1])
	base := "http://" + m[2]

	id := submitJob(t, base)
	waitRunning(t, base, id)
	resc := make(chan *janusd.Response, 1)
	errc := make(chan error, 1)
	go func() {
		r, err := fetchResult(base, id)
		if err != nil {
			errc <- err
			return
		}
		resc <- r
	}()
	time.Sleep(50 * time.Millisecond)

	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}

	// The in-flight request must complete through the handoff.
	select {
	case err := <-errc:
		t.Fatalf("in-flight result dropped during hot restart: %v", err)
	case r := <-resc:
		if r.State != janusd.StateDone || r.Output != tab2Expected(t) {
			t.Fatalf("job across hot restart: state %s err %s", r.State, r.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("result never arrived")
	}
	// The old process drains and exits 0.
	if err := cmd.Wait(); err != nil {
		t.Fatalf("old daemon did not exit 0: %v", err)
	}
	// The replacement inherited the exact listener.
	m = waitLog(t, logPath, resumedRe)
	newPID, _ := strconv.Atoi(m[1])
	if newPID == oldPID {
		t.Fatalf("hot restart reused pid %d", oldPID)
	}
	if m[2] != strings.TrimPrefix(base, "http://") {
		t.Fatalf("replacement listens on %s, want %s", m[2], base)
	}
	defer func() {
		_ = syscall.Kill(newPID, syscall.SIGTERM)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) && syscall.Kill(newPID, 0) == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Same address, new pid, still byte-identical. Retry while the old
	// process finishes closing its copy of the listener.
	c := &janusd.Client{Base: base, Backoff: janusd.Backoff{
		Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Retries: 100, Seed: 3,
	}}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := c.Stats(t.Context())
		if err == nil && st.PID == newPID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("statusz never reported the new pid %d (last err %v)", newPID, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, err := c.Render(t.Context(), janusd.Request{Table: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != tab2Expected(t) {
		t.Fatal("render after hot restart not byte-identical")
	}
}
