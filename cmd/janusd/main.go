// Command janusd runs the Janus pipeline as a long-lived service: the
// whole build → profile → analyze → parallelise → simulate suite is
// served over HTTP/JSON and Go net/rpc on one listener, with a bounded
// worker pool, per-request deadlines, load shedding, graceful drain on
// SIGTERM, and zero-downtime hot restart on SIGHUP.
//
// Usage:
//
//	janusd [flags]
//
//	-addr string      listen address (default "127.0.0.1:7117")
//	-workers int      max concurrently running jobs (default GOMAXPROCS)
//	-queue int        queued jobs beyond workers before shedding (default 16)
//	-cache-dir dir    durable artifact cache shared by all requests
//	-deadline dur     default per-request deadline (0 = none)
//	-drain dur        graceful drain budget on SIGTERM/SIGHUP (default 60s)
//	-inject spec      service fault plan: point[@every][#seed] over
//	                  handler-panic | queue-stall | slow-worker
//	-stall dur        how long injected stalls last (default 100ms)
//	-quiet            suppress the lifecycle log
//
// Signals: SIGTERM/SIGINT drain in-flight jobs under -drain, then exit
// 0. SIGHUP spawns a replacement process that inherits the listener fd
// (no dropped connections), then drains and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"janus/internal/faultinject"
	"janus/internal/janusd"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main minus os.Exit, so the end-to-end signal tests can drive
// the real daemon lifecycle from a re-exec'd test binary.
func run(args []string) int {
	fs := flag.NewFlagSet("janusd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7117", "listen address")
	workers := fs.Int("workers", 0, "max concurrently running jobs (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 16, "queued jobs beyond workers before shedding")
	cacheDir := fs.String("cache-dir", "", "durable artifact cache directory")
	deadline := fs.Duration("deadline", 0, "default per-request deadline (0 = none)")
	drain := fs.Duration("drain", 60*time.Second, "graceful drain budget")
	inject := fs.String("inject", "", "service fault plan: point[@every][#seed]")
	stall := fs.Duration("stall", 100*time.Millisecond, "injected stall duration")
	quiet := fs.Bool("quiet", false, "suppress the lifecycle log")
	_ = fs.Parse(args)

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = nil
	}

	cfg := janusd.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheDir:        *cacheDir,
		DefaultDeadline: *deadline,
		DrainTimeout:    *drain,
		StallDelay:      *stall,
		Log:             logger,
	}
	if *inject != "" {
		plan, err := faultinject.ParsePlan(*inject)
		if err != nil {
			fmt.Fprintln(os.Stderr, "janusd:", err)
			return 2
		}
		cfg.Inject = plan
	}

	ln, inherited, err := janusd.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "janusd:", err)
		return 1
	}
	srv := janusd.New(cfg)

	// The ready line goes to stdout so scripts can scrape the bound
	// address (important with -addr :0) and the serving pid.
	how := "listening"
	if inherited {
		how = "resumed listener (hot restart)"
	}
	fmt.Printf("janusd: pid %d %s on %s\n", os.Getpid(), how, ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "janusd:", err)
				return 1
			}
			return 0
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				pid, err := janusd.HotRestart(ln)
				if err != nil {
					// The daemon stays up: a failed hot restart must never
					// take down the serving process.
					fmt.Fprintln(os.Stderr, "janusd: hot restart failed:", err)
					continue
				}
				fmt.Printf("janusd: pid %d handing off to pid %d\n", os.Getpid(), pid)
			}
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			if err := srv.Drain(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "janusd: drain:", err)
			}
			cancel()
			fmt.Printf("janusd: pid %d exiting after drain\n", os.Getpid())
			return 0
		}
	}
}
