package harness

// Cold/warm/off equivalence for the durable artifact cache: the suite
// rendered with the cache disabled, with an empty cache (cold), and
// against the populated cache (warm) must be byte-identical to the
// committed golden fixture, and the warm render must actually replay
// from disk (nonzero hit counter) rather than quietly recomputing.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"janus"
	"janus/internal/artcache"
	"janus/internal/workloads"
)

// resetMemoryTiers drops every in-process memo so the next render must
// go through the durable tier (or recompute). Without this, the warm
// render would be served entirely from pointer-keyed memory memos and
// the disk cache would never be exercised in-process.
func resetMemoryTiers() {
	janus.ResetMemos()
	workloads.ResetBuildCache()
}

func TestGoldenColdWarmOff(t *testing.T) {
	if testing.Short() {
		t.Skip("three full-suite renders; run without -short")
	}
	want := readGolden(t)
	dir := t.TempDir()
	cache, err := artcache.OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	withCache := func() Options {
		o := DefaultOptions()
		o.CacheDir = dir
		return o
	}

	resetMemoryTiers()
	diffGolden(t, "cache off", renderSuite(t, DefaultOptions()), want)

	resetMemoryTiers()
	diffGolden(t, "cold cache", renderSuite(t, withCache()), want)
	cold := cache.Stats()
	if cold.Misses == 0 {
		t.Fatalf("cold render recorded no misses (%s): the cache was not consulted", cold)
	}

	resetMemoryTiers()
	diffGolden(t, "warm cache", renderSuite(t, withCache()), want)
	warm := cache.Stats()
	if warm.Hits <= cold.Hits {
		t.Fatalf("warm render recorded no new hits: cold %s, warm %s", cold, warm)
	}
	if warm.Misses != cold.Misses {
		t.Errorf("warm render missed %d times beyond the cold run: some artifact key is unstable across runs (cold %s, warm %s)",
			warm.Misses-cold.Misses, cold, warm)
	}
	if warm.BadEntries != 0 {
		t.Errorf("store reported corrupt entries on a healthy run: %s", warm)
	}
}

// TestCacheCorruptionHealsAcrossRender corrupts every on-disk artifact
// after a populated render and checks the next render detects the
// damage, recomputes, and still matches the golden fixture exactly.
func TestCacheCorruptionHealsAcrossRender(t *testing.T) {
	if testing.Short() {
		t.Skip("two full figure renders; run without -short")
	}
	want := readGolden(t)
	dir := t.TempDir()
	cache, err := artcache.OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.CacheDir = dir

	// One figure is enough to populate every artifact kind.
	resetMemoryTiers()
	rows, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	first := RenderFigure7(rows)

	// Flip a byte in every artifact.
	n := 0
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".art" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0xFF
		n++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no artifacts were written by the first render")
	}

	resetMemoryTiers()
	rows, err = Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	second := RenderFigure7(rows)
	if second != first {
		t.Errorf("render after corruption differs from the pre-corruption render")
	}
	if !strings.Contains(want, first) {
		t.Errorf("figure 7 render not found inside the golden fixture")
	}
	st := cache.Stats()
	if st.BadEntries == 0 {
		t.Fatalf("no corrupt entries were detected: %s", st)
	}
}
