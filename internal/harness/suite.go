package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
)

// Experiment is one schedulable evaluation artefact: a figure or table
// the suite can regenerate and render.
type Experiment struct {
	// Name is the artefact selector ("fig6".."fig12", "tab1", "tab2").
	Name   string
	render func(o Options, s *scheduler) (string, error)
}

// experiments lists the whole suite in print order.
func experiments() []Experiment {
	return []Experiment{
		{"fig6", func(o Options, s *scheduler) (string, error) {
			rows, err := figure6(o, s)
			if err != nil {
				return "", err
			}
			return RenderFigure6(rows), nil
		}},
		{"fig7", func(o Options, s *scheduler) (string, error) {
			rows, err := figure7(o, s)
			if err != nil {
				return "", err
			}
			return RenderFigure7(rows), nil
		}},
		{"fig8", func(o Options, s *scheduler) (string, error) {
			rows, err := figure8(o, s)
			if err != nil {
				return "", err
			}
			return RenderFigure8(rows), nil
		}},
		{"fig9", func(o Options, s *scheduler) (string, error) {
			rows, err := figure9(o, s)
			if err != nil {
				return "", err
			}
			return RenderFigure9(rows), nil
		}},
		{"fig10", func(o Options, s *scheduler) (string, error) {
			rows, err := figure10(o, s)
			if err != nil {
				return "", err
			}
			return RenderFigure10(rows), nil
		}},
		{"fig11", func(o Options, s *scheduler) (string, error) {
			rows, err := figure11(o, s)
			if err != nil {
				return "", err
			}
			return RenderFigure11(rows), nil
		}},
		{"fig12", func(o Options, s *scheduler) (string, error) {
			rows, err := figure12(o, s)
			if err != nil {
				return "", err
			}
			return RenderFigure12(rows), nil
		}},
		{"tab1", func(o Options, s *scheduler) (string, error) {
			rows, err := tableI(o, s)
			if err != nil {
				return "", err
			}
			return RenderTableI(rows), nil
		}},
		{"tab2", func(o Options, s *scheduler) (string, error) {
			return TableII(), nil
		}},
	}
}

// RenderAll regenerates the selected experiments — fig/table of 0
// select everything, otherwise a single figure (6..12) or table (1..2)
// — and returns the concatenated text output exactly as janus-bench
// prints it. All experiments run concurrently, their benchmark rows
// scheduled on one worker pool bounded by Options.Jobs, and the
// results are folded back in the fixed suite order: the returned bytes
// are identical at any Jobs value, any GOMAXPROCS, and under every
// engine selection.
//
// Failure is partial: an experiment that errors (or panics — the
// scheduler and RenderAll both recover) is replaced in the output by a
// one-line failure marker while every other experiment renders
// normally, and the joined errors are returned alongside the partial
// output. When every experiment succeeds the output is byte-identical
// to what the all-or-nothing path produced.
func RenderAll(o Options, fig, table int) (string, error) {
	return RenderAllContext(context.Background(), o, fig, table)
}

// RenderAllContext is RenderAll under a context: when ctx is cancelled
// or its deadline passes, benchmark rows that have not started are
// abandoned with ErrCanceled (rows already executing finish), so a
// service can bound how long a render request may run. Progress events
// flow to Options.OnProgress when set.
func RenderAllContext(ctx context.Context, o Options, fig, table int) (string, error) {
	o = o.normalized()
	runAll := fig == 0 && table == 0
	var selected []Experiment
	for _, e := range experiments() {
		if runAll || e.Name == fmt.Sprintf("fig%d", fig) || e.Name == fmt.Sprintf("tab%d", table) {
			selected = append(selected, e)
		}
	}

	s := newScheduler(ctx, o.Jobs, o.OnProgress)
	outs := make([]string, len(selected))
	errs := make([]error, len(selected))
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			// Rows recover their own panics (scheduler.forEach); this
			// catches panics in the experiment glue itself.
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("experiment panicked: %v\n%s", p, debug.Stack())
					s.emit(ProgressEvent{Experiment: e.Name, State: "failed", Err: fmt.Sprint(p)})
				}
			}()
			s.emit(ProgressEvent{Experiment: e.Name, State: "start"})
			outs[i], errs[i] = e.render(o, s)
			if errs[i] != nil {
				s.emit(ProgressEvent{Experiment: e.Name, State: "failed", Err: errs[i].Error()})
			} else {
				s.emit(ProgressEvent{Experiment: e.Name, State: "done"})
			}
		}(i, e)
	}
	wg.Wait()
	var b strings.Builder
	var failures []error
	for i, out := range outs {
		if errs[i] != nil {
			failures = append(failures, fmt.Errorf("%s: %w", selected[i].Name, errs[i]))
			fmt.Fprintf(&b, "[%s failed: %v]\n\n", selected[i].Name, errs[i])
			continue
		}
		// Matches fmt.Println of each rendered block.
		b.WriteString(out)
		b.WriteString("\n")
	}
	if len(failures) > 0 {
		return b.String(), errors.Join(failures...)
	}
	return b.String(), nil
}
