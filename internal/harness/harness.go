// Package harness regenerates every table and figure of the paper's
// evaluation section over the synthetic workload suite. Each experiment
// returns structured rows and can render itself as a text table; the
// janus-bench command and the repository-level benchmarks drive it.
//
// Experiments and their benchmark rows are schedulable units run on a
// bounded worker pool (see scheduler.go and RenderAll). Every figure
// is computed from deterministic virtual cycles and folded back in a
// fixed order, so the rendered output is byte-identical whatever the
// Options engine selection (host-parallel or round-robin regions,
// work-stealing or static partitioning), the Jobs bound, and the host
// GOMAXPROCS; determinism_test.go and golden_test.go pin all of it.
package harness

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"

	"janus"
	"janus/internal/analyzer"
	"janus/internal/artcache"
	"janus/internal/compilers"
	"janus/internal/dbm"
	"janus/internal/faultinject"
	"janus/internal/obj"
	"janus/internal/workloads"
)

// DefaultThreads matches the paper's eight-core evaluation machine.
const DefaultThreads = 8

// Options is one harness run's configuration. Experiments receive it
// per call — nothing is process-global — so concurrent experiments
// with different options cannot leak engine selection into each other.
// The engine switches follow janus.Config's convention: the zero value
// selects the default engines (host-parallel regions, work-stealing
// partitioner), so a hand-built Options never silently downgrades to
// the slow paths.
type Options struct {
	// Threads is the guest thread count experiments measure at
	// (figures 8/9 additionally sweep below it).
	Threads int
	// Jobs bounds how many benchmark rows run concurrently across the
	// whole suite (janus-bench's -jobs flag; 1 = fully sequential).
	// Rendered output is byte-identical at any value.
	Jobs int
	// SingleGoroutine forces the single-goroutine round-robin region
	// engine instead of running eligible regions on host goroutines
	// (janus-bench -host-parallel=false).
	SingleGoroutine bool
	// StaticPartition forces static equal chunking inside
	// host-parallel regions instead of the work-stealing partitioner
	// (janus-bench -steal=false).
	StaticPartition bool
	// Inject arms deterministic fault injection inside speculative
	// regions (janus-bench -inject). Injected faults recover onto the
	// round-robin engine, so rendered output stays byte-identical; the
	// Recovery log below proves the recovery path actually ran.
	Inject *faultinject.Plan
	// Recovery, when non-nil, accumulates recovery counters across
	// every Janus run the suite performs.
	Recovery *RecoveryLog
	// OnProgress, when non-nil, receives progress events while a render
	// runs: one "start"/"done"/"failed" event per experiment and one
	// "row" tick per completed benchmark row. Events are delivered from
	// concurrent worker goroutines, so the callback must be safe for
	// concurrent use; janusd streams them to service clients. Progress
	// observation never changes rendered bytes.
	OnProgress func(ProgressEvent)
	// CacheDir, when non-empty, enables the durable artifact cache
	// (janus-bench -cache-dir): workload builds, native baselines,
	// training profiles and DBM results are stored on disk there and
	// replayed on subsequent runs. Rendered output is byte-identical
	// with the cache off, cold, or warm; only wall-clock changes. The
	// directory is safe to share between concurrent processes.
	CacheDir string

	// cache is the opened durable store (resolved from CacheDir by
	// normalized; OpenShared dedups per directory so every experiment
	// and the owning command observe one counter set). cacheErr holds
	// the open failure, surfaced at each public entry point.
	cache    *artcache.Cache
	cacheErr error
}

// RecoveryLog aggregates speculation-recovery counters across the
// concurrent Janus runs of a suite render (janus-bench surfaces it on
// stderr so silent demotions are visible without perturbing the golden
// stdout).
type RecoveryLog struct {
	ParRecoveries atomic.Int64
	DemotedLoops  atomic.Int64
}

// Fold accumulates one run's counters.
func (l *RecoveryLog) Fold(st dbm.Stats) {
	l.ParRecoveries.Add(st.ParRecoveries)
	l.DemotedLoops.Add(st.DemotedLoops)
}

// Summary renders the accumulated counters.
func (l *RecoveryLog) Summary() string {
	return fmt.Sprintf("speculation recovery: %d region recoveries, %d loops demoted",
		l.ParRecoveries.Load(), l.DemotedLoops.Load())
}

// DefaultOptions is the janus-bench default configuration.
func DefaultOptions() Options {
	return Options{
		Threads: DefaultThreads,
		Jobs:    runtime.GOMAXPROCS(0),
	}
}

// normalized fills unset fields with their defaults and opens the
// durable cache when CacheDir is set.
func (o Options) normalized() Options {
	if o.Threads <= 0 {
		o.Threads = DefaultThreads
	}
	if o.Jobs <= 0 {
		o.Jobs = 1
	}
	if o.CacheDir != "" && o.cache == nil && o.cacheErr == nil {
		o.cache, o.cacheErr = artcache.OpenShared(o.CacheDir)
	}
	return o
}

// engineConfig applies the run's engine selection and fault-injection
// plan to one Janus configuration.
func (o Options) engineConfig(c janus.Config) janus.Config {
	c.SingleGoroutine = o.SingleGoroutine
	c.StaticPartition = o.StaticPartition
	c.Inject = o.Inject
	c.Cache = o.cache
	if o.Recovery != nil {
		c.OnStats = o.Recovery.Fold
	}
	return c
}

// compilerEngine is the same selection for the modelled compilers.
func (o Options) compilerEngine() compilers.Engine {
	return compilers.Engine{HostParallel: !o.SingleGoroutine, WorkStealing: !o.StaticPartition}
}

// buildRef builds the ref-input O3 binary for a benchmark, through the
// durable cache when one is configured.
func (o Options) buildRef(name string) (*obj.Executable, []*obj.Library, error) {
	return workloads.BuildCached(o.cache, name, workloads.Ref, workloads.O3)
}

// buildTrain builds the train-input O3 binary.
func (o Options) buildTrain(name string) (*obj.Executable, []*obj.Library, error) {
	return workloads.BuildCached(o.cache, name, workloads.Train, workloads.O3)
}

// geomean of strictly positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// ---------------------------------------------------------------------
// Figure 6: loop classification, static fraction and execution-time
// fraction per category, for all 25 benchmarks.
// ---------------------------------------------------------------------

// ClassFractions holds per-category fractions summing to at most 1.
type ClassFractions struct {
	StaticDOALL float64
	DynDOALL    float64
	StaticDep   float64
	DynDep      float64
	Incompat    float64
}

// Fig6Row is one benchmark's figure-6 entry.
type Fig6Row struct {
	Bench string
	// Static is the fraction of *loops* in each category.
	Static ClassFractions
	// Dynamic is the fraction of *execution time* in each category.
	Dynamic ClassFractions
}

// Figure6 classifies every loop of every benchmark and profiles
// execution-time fractions with training inputs.
func Figure6(o Options) ([]Fig6Row, error) {
	return Figure6Context(context.Background(), o)
}

// Figure6Context is Figure6 under a context: cancellation or an
// expired deadline abandons pending rows with ErrCanceled instead of
// running the experiment to completion.
func Figure6Context(ctx context.Context, o Options) ([]Fig6Row, error) {
	o = o.normalized()
	if o.cacheErr != nil {
		return nil, o.cacheErr
	}
	return figure6(o, newScheduler(ctx, o.Jobs, o.OnProgress))
}

func figure6(o Options, s *scheduler) ([]Fig6Row, error) {
	names := workloads.Names()
	rows := make([]Fig6Row, len(names))
	err := s.forEach(len(names), func(i int) error {
		row, err := figure6Row(names[i], o)
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func figure6Row(name string, o Options) (*Fig6Row, error) {
	exe, libs, err := o.buildTrain(name)
	if err != nil {
		return nil, err
	}
	prog, err := analyzer.Analyze(exe)
	if err != nil {
		return nil, err
	}
	pr, err := janus.RunProfilingCached(o.cache, exe, prog, libs...)
	if err != nil {
		return nil, err
	}
	prog.ApplyExclCoverage(pr.ExclCoverage)
	prog.ApplyDependences(pr.Dependences)

	row := Fig6Row{Bench: name}
	n := float64(len(prog.Loops))
	for _, li := range prog.Loops {
		sf := 1.0 / n
		df := li.ExclCoverage
		switch li.Class {
		case analyzer.ClassStaticDOALL:
			row.Static.StaticDOALL += sf
			row.Dynamic.StaticDOALL += df
		case analyzer.ClassDynDOALL:
			row.Static.DynDOALL += sf
			row.Dynamic.DynDOALL += df
		case analyzer.ClassStaticDep:
			row.Static.StaticDep += sf
			row.Dynamic.StaticDep += df
		case analyzer.ClassDynDep:
			row.Static.DynDep += sf
			row.Dynamic.DynDep += df
		default:
			row.Static.Incompat += sf
			row.Dynamic.Incompat += df
		}
	}
	return &row, nil
}

// RenderFigure6 formats the rows as the two stacked-bar tables.
func RenderFigure6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: loop categories (%% of loops | %% of execution time)\n")
	fmt.Fprintf(&b, "%-16s %28s | %28s\n", "benchmark", "static A/C/B/D/inc", "dynamic A/C/B/D/inc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %5.0f%%%5.0f%%%5.0f%%%5.0f%%%5.0f%% | %5.0f%%%5.0f%%%5.0f%%%5.0f%%%5.0f%%\n",
			r.Bench,
			100*r.Static.StaticDOALL, 100*r.Static.DynDOALL, 100*r.Static.StaticDep, 100*r.Static.DynDep, 100*r.Static.Incompat,
			100*r.Dynamic.StaticDOALL, 100*r.Dynamic.DynDOALL, 100*r.Dynamic.StaticDep, 100*r.Dynamic.DynDep, 100*r.Dynamic.Incompat)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 7: whole-program speedup at 8 threads under four
// configurations.
// ---------------------------------------------------------------------

// Fig7Row is one benchmark's four bars.
type Fig7Row struct {
	Bench     string
	DBMOnly   float64 // DynamoRIO-only overhead run
	Static    float64 // statically-driven parallelisation
	Profile   float64 // + profile-guided selection
	Janus     float64 // + runtime checks and speculation (full system)
	PaperRef  float64 // paper's Janus bar for comparison
	LoopsPar  int
	ChecksRun int64
}

// Figure7 measures the four configurations on the nine parallelisable
// benchmarks.
func Figure7(o Options) ([]Fig7Row, error) {
	return Figure7Context(context.Background(), o)
}

// Figure7Context is Figure7 under a context (see Figure6Context).
func Figure7Context(ctx context.Context, o Options) ([]Fig7Row, error) {
	o = o.normalized()
	if o.cacheErr != nil {
		return nil, o.cacheErr
	}
	return figure7(o, newScheduler(ctx, o.Jobs, o.OnProgress))
}

func figure7(o Options, s *scheduler) ([]Fig7Row, error) {
	names := workloads.ParallelisableNames()
	rows := make([]Fig7Row, len(names))
	err := s.forEach(len(names), func(i int) error {
		row, err := figure7Row(names[i], o)
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func figure7Row(name string, o Options) (*Fig7Row, error) {
	exe, libs, err := o.buildRef(name)
	if err != nil {
		return nil, err
	}
	trainExe, _, err := o.buildTrain(name)
	if err != nil {
		return nil, err
	}
	native, err := janus.RunNativeBaselineCached(o.cache, exe, libs...)
	if err != nil {
		return nil, err
	}
	bare, err := janus.RunBareDBMCached(o.cache, exe, libs...)
	if err != nil {
		return nil, err
	}
	run := func(cfg janus.Config) (*janus.Report, error) {
		cfg.Threads = o.Threads
		cfg.Verify = true
		cfg.TrainExe = trainExe
		return janus.Parallelise(exe, o.engineConfig(cfg), libs...)
	}
	static, err := run(janus.Config{})
	if err != nil {
		return nil, err
	}
	prof, err := run(janus.Config{UseProfile: true})
	if err != nil {
		return nil, err
	}
	full, err := run(janus.Config{UseProfile: true, UseChecks: true})
	if err != nil {
		return nil, err
	}
	bm, _ := workloads.ByName(name)
	return &Fig7Row{
		Bench:     name,
		DBMOnly:   float64(native.Cycles) / float64(bare.Cycles),
		Static:    static.Speedup(),
		Profile:   prof.Speedup(),
		Janus:     full.Speedup(),
		PaperRef:  bm.PaperSpeedup8T,
		LoopsPar:  full.Selected,
		ChecksRun: full.Stats.ChecksRun,
	}, nil
}

// RenderFigure7 formats the rows plus the geomean line.
func RenderFigure7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: speedup vs native, %d threads\n", DefaultThreads)
	fmt.Fprintf(&b, "%-16s %8s %8s %8s %8s   %s\n", "benchmark", "DBM", "static", "+prof", "Janus", "paper")
	var d, s, p, j []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8.2f %8.2f %8.2f %8.2f   %.2f\n", r.Bench, r.DBMOnly, r.Static, r.Profile, r.Janus, r.PaperRef)
		d = append(d, r.DBMOnly)
		s = append(s, r.Static)
		p = append(p, r.Profile)
		j = append(j, r.Janus)
	}
	fmt.Fprintf(&b, "%-16s %8.2f %8.2f %8.2f %8.2f   2.10\n", "geomean", geomean(d), geomean(s), geomean(p), geomean(j))
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 8: execution-time breakdown for 1 and 8 threads.
// ---------------------------------------------------------------------

// Breakdown is the figure-8 decomposition, as fractions of the
// one-thread Janus total for the same benchmark.
type Breakdown struct {
	Sequential  float64
	Parallel    float64
	InitFinish  float64
	Translation float64
	Checks      float64
	// Total is the run's cycles relative to the 1-thread run.
	Total float64
}

// Fig8Row pairs the 1-thread and N-thread breakdowns.
type Fig8Row struct {
	Bench   string
	One     Breakdown
	N       Breakdown
	Threads int
}

// Figure8 measures breakdowns for 1 and Options.Threads threads.
func Figure8(o Options) ([]Fig8Row, error) {
	return Figure8Context(context.Background(), o)
}

// Figure8Context is Figure8 under a context (see Figure6Context).
func Figure8Context(ctx context.Context, o Options) ([]Fig8Row, error) {
	o = o.normalized()
	if o.cacheErr != nil {
		return nil, o.cacheErr
	}
	return figure8(o, newScheduler(ctx, o.Jobs, o.OnProgress))
}

func figure8(o Options, s *scheduler) ([]Fig8Row, error) {
	names := workloads.ParallelisableNames()
	rows := make([]Fig8Row, len(names))
	err := s.forEach(len(names), func(i int) error {
		name := names[i]
		exe, libs, err := o.buildRef(name)
		if err != nil {
			return err
		}
		trainExe, _, err := o.buildTrain(name)
		if err != nil {
			return err
		}
		run := func(n int) (*janus.Report, error) {
			return janus.Parallelise(exe, o.engineConfig(janus.Config{
				Threads: n, UseProfile: true, UseChecks: true, Verify: false, TrainExe: trainExe,
			}), libs...)
		}
		one, err := run(1)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		nt, err := run(o.Threads)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		base := float64(one.DBM.Cycles)
		rows[i] = Fig8Row{
			Bench:   name,
			One:     breakdownOf(one.DBM, base),
			N:       breakdownOf(nt.DBM, base),
			Threads: o.Threads,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func breakdownOf(res *dbm.Result, base float64) Breakdown {
	st := res.Stats
	total := float64(res.Cycles)
	seq := total - float64(st.ParCycles+st.InitFinishCycles+st.CheckCycles+st.TransCycles)
	if seq < 0 {
		seq = 0
	}
	return Breakdown{
		Sequential:  seq / base,
		Parallel:    float64(st.ParCycles) / base,
		InitFinish:  float64(st.InitFinishCycles) / base,
		Translation: float64(st.TransCycles) / base,
		Checks:      float64(st.CheckCycles) / base,
		Total:       total / base,
	}
}

// RenderFigure8 formats the breakdown table.
func RenderFigure8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: execution-time breakdown (fraction of 1-thread total)\n")
	fmt.Fprintf(&b, "%-16s %7s %6s %6s %6s %6s %6s\n", "benchmark", "threads", "seq", "par", "init", "trans", "check")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %7d %6.2f %6.2f %6.2f %6.2f %6.2f\n", r.Bench, 1,
			r.One.Sequential, r.One.Parallel, r.One.InitFinish, r.One.Translation, r.One.Checks)
		fmt.Fprintf(&b, "%-16s %7d %6.2f %6.2f %6.2f %6.2f %6.2f\n", "", r.Threads,
			r.N.Sequential, r.N.Parallel, r.N.InitFinish, r.N.Translation, r.N.Checks)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 9: speedup for 1..8 threads.
// ---------------------------------------------------------------------

// Fig9Row is one benchmark's thread-scaling series.
type Fig9Row struct {
	Bench    string
	Speedups []float64 // index 0 = 1 thread
}

// Figure9 sweeps thread counts 1..Options.Threads.
func Figure9(o Options) ([]Fig9Row, error) {
	return Figure9Context(context.Background(), o)
}

// Figure9Context is Figure9 under a context (see Figure6Context).
func Figure9Context(ctx context.Context, o Options) ([]Fig9Row, error) {
	o = o.normalized()
	if o.cacheErr != nil {
		return nil, o.cacheErr
	}
	return figure9(o, newScheduler(ctx, o.Jobs, o.OnProgress))
}

func figure9(o Options, s *scheduler) ([]Fig9Row, error) {
	names := workloads.ParallelisableNames()
	rows := make([]Fig9Row, len(names))
	err := s.forEach(len(names), func(i int) error {
		name := names[i]
		exe, libs, err := o.buildRef(name)
		if err != nil {
			return err
		}
		trainExe, _, err := o.buildTrain(name)
		if err != nil {
			return err
		}
		row := Fig9Row{Bench: name}
		for n := 1; n <= o.Threads; n++ {
			rep, err := janus.Parallelise(exe, o.engineConfig(janus.Config{
				Threads: n, UseProfile: true, UseChecks: true, Verify: false, TrainExe: trainExe,
			}), libs...)
			if err != nil {
				return fmt.Errorf("%s@%d: %w", name, n, err)
			}
			row.Speedups = append(row.Speedups, rep.Speedup())
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure9 formats the scaling table.
func RenderFigure9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: speedup vs thread count\n%-16s", "benchmark")
	if len(rows) > 0 {
		for n := 1; n <= len(rows[0].Speedups); n++ {
			fmt.Fprintf(&b, "%7d", n)
		}
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s", r.Bench)
		for _, s := range r.Speedups {
			fmt.Fprintf(&b, "%7.2f", s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 10: rewrite-schedule size as a fraction of binary size.
// ---------------------------------------------------------------------

// Fig10Row is one benchmark's schedule-size overhead.
type Fig10Row struct {
	Bench        string
	ScheduleSize int
	BinarySize   int
	Fraction     float64
}

// Figure10 generates the full-Janus schedule for each benchmark and
// compares its serialised size with the binary image size.
func Figure10(o Options) ([]Fig10Row, error) {
	return Figure10Context(context.Background(), o)
}

// Figure10Context is Figure10 under a context (see Figure6Context).
func Figure10Context(ctx context.Context, o Options) ([]Fig10Row, error) {
	o = o.normalized()
	if o.cacheErr != nil {
		return nil, o.cacheErr
	}
	return figure10(o, newScheduler(ctx, o.Jobs, o.OnProgress))
}

func figure10(o Options, s *scheduler) ([]Fig10Row, error) {
	names := workloads.ParallelisableNames()
	rows := make([]Fig10Row, len(names))
	err := s.forEach(len(names), func(i int) error {
		name := names[i]
		exe, libs, err := o.buildRef(name)
		if err != nil {
			return err
		}
		trainExe, _, err := o.buildTrain(name)
		if err != nil {
			return err
		}
		rep, err := janus.Parallelise(exe, o.engineConfig(janus.Config{
			Threads: o.Threads, UseProfile: true, UseChecks: true, Verify: false, TrainExe: trainExe,
		}), libs...)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		size := rep.Schedule.Size()
		// Normalise against the code section: the paper's SPEC binaries
		// read their reference inputs from files, whereas our synthetic
		// binaries embed them in .data, which would deflate the ratio
		// meaninglessly.
		codeSize := len(exe.Code)
		rows[i] = Fig10Row{
			Bench:        name,
			ScheduleSize: size,
			BinarySize:   codeSize,
			Fraction:     float64(size) / float64(codeSize),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure10 formats the size table with the geomean.
func RenderFigure10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: rewrite-schedule size overhead\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %8s\n", "benchmark", "schedule", "binary", "percent")
	var fr []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10d %10d %7.1f%%\n", r.Bench, r.ScheduleSize, r.BinarySize, 100*r.Fraction)
		fr = append(fr, r.Fraction)
	}
	fmt.Fprintf(&b, "%-16s %10s %10s %7.1f%%   (paper: 3.7%%)\n", "geomean", "", "", 100*geomean(fr))
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 11: Janus vs compiler auto-parallelisation (gcc and icc).
// ---------------------------------------------------------------------

// Fig11Row compares Janus against the modelled compilers.
type Fig11Row struct {
	Bench    string
	GccAuto  float64 // gcc-like source parallelisation
	JanusGcc float64 // Janus on the gcc-like binary (O3)
	IccAuto  float64 // icc-like source parallelisation (on O3AVX build)
	JanusIcc float64 // Janus on the icc-like binary (O3AVX)
}

// Figure11 runs both compilers and Janus on both binary flavours.
func Figure11(o Options) ([]Fig11Row, error) {
	return Figure11Context(context.Background(), o)
}

// Figure11Context is Figure11 under a context (see Figure6Context).
func Figure11Context(ctx context.Context, o Options) ([]Fig11Row, error) {
	o = o.normalized()
	if o.cacheErr != nil {
		return nil, o.cacheErr
	}
	return figure11(o, newScheduler(ctx, o.Jobs, o.OnProgress))
}

func figure11(o Options, s *scheduler) ([]Fig11Row, error) {
	names := workloads.ParallelisableNames()
	rows := make([]Fig11Row, len(names))
	err := s.forEach(len(names), func(i int) error {
		name := names[i]
		gccExe, libs, err := workloads.BuildCached(o.cache, name, workloads.Ref, workloads.O3)
		if err != nil {
			return err
		}
		iccExe, _, err := workloads.BuildCached(o.cache, name, workloads.Ref, workloads.O3AVX)
		if err != nil {
			return err
		}
		gccTrain, _, err := workloads.BuildCached(o.cache, name, workloads.Train, workloads.O3)
		if err != nil {
			return err
		}
		iccTrain, _, err := workloads.BuildCached(o.cache, name, workloads.Train, workloads.O3AVX)
		if err != nil {
			return err
		}
		gccAuto, err := compilers.Parallelise(compilers.GCC, gccExe, o.Threads, o.compilerEngine(), libs...)
		if err != nil {
			return fmt.Errorf("%s gcc: %w", name, err)
		}
		iccAuto, err := compilers.Parallelise(compilers.ICC, iccExe, o.Threads, o.compilerEngine(), libs...)
		if err != nil {
			return fmt.Errorf("%s icc: %w", name, err)
		}
		jg, err := janus.Parallelise(gccExe, o.engineConfig(janus.Config{
			Threads: o.Threads, UseProfile: true, UseChecks: true, Verify: false, TrainExe: gccTrain,
		}), libs...)
		if err != nil {
			return fmt.Errorf("%s janus/gcc: %w", name, err)
		}
		ji, err := janus.Parallelise(iccExe, o.engineConfig(janus.Config{
			Threads: o.Threads, UseProfile: true, UseChecks: true, Verify: false, TrainExe: iccTrain,
		}), libs...)
		if err != nil {
			return fmt.Errorf("%s janus/icc: %w", name, err)
		}
		rows[i] = Fig11Row{
			Bench:    name,
			GccAuto:  gccAuto.Speedup,
			JanusGcc: jg.Speedup(),
			IccAuto:  iccAuto.Speedup,
			JanusIcc: ji.Speedup(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure11 formats the comparison.
func RenderFigure11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: Janus vs compiler auto-parallelisation\n")
	fmt.Fprintf(&b, "%-16s %9s %10s %9s %10s\n", "benchmark", "gcc-auto", "Janus@gcc", "icc-auto", "Janus@icc")
	var g, jg, ic, ji []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %9.2f %10.2f %9.2f %10.2f\n", r.Bench, r.GccAuto, r.JanusGcc, r.IccAuto, r.JanusIcc)
		g, jg, ic, ji = append(g, r.GccAuto), append(jg, r.JanusGcc), append(ic, r.IccAuto), append(ji, r.JanusIcc)
	}
	fmt.Fprintf(&b, "%-16s %9.2f %10.2f %9.2f %10.2f   (paper: 1.1 / 2.2 / 1.8 / 1.7)\n",
		"geomean", geomean(g), geomean(jg), geomean(ic), geomean(ji))
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 12: impact of compiler optimisation level on Janus.
// ---------------------------------------------------------------------

// Fig12Row is one benchmark's speedups on O2/O3/O3-AVX binaries.
type Fig12Row struct {
	Bench string
	O2    float64
	O3    float64
	AVX   float64
}

// Figure12 runs Janus on all three optimisation-level builds.
func Figure12(o Options) ([]Fig12Row, error) {
	return Figure12Context(context.Background(), o)
}

// Figure12Context is Figure12 under a context (see Figure6Context).
func Figure12Context(ctx context.Context, o Options) ([]Fig12Row, error) {
	o = o.normalized()
	if o.cacheErr != nil {
		return nil, o.cacheErr
	}
	return figure12(o, newScheduler(ctx, o.Jobs, o.OnProgress))
}

func figure12(o Options, s *scheduler) ([]Fig12Row, error) {
	names := workloads.ParallelisableNames()
	rows := make([]Fig12Row, len(names))
	err := s.forEach(len(names), func(i int) error {
		name := names[i]
		row := Fig12Row{Bench: name}
		for _, opt := range []workloads.OptLevel{workloads.O2, workloads.O3, workloads.O3AVX} {
			exe, libs, err := workloads.BuildCached(o.cache, name, workloads.Ref, opt)
			if err != nil {
				return err
			}
			trainExe, _, err := workloads.BuildCached(o.cache, name, workloads.Train, opt)
			if err != nil {
				return err
			}
			rep, err := janus.Parallelise(exe, o.engineConfig(janus.Config{
				Threads: o.Threads, UseProfile: true, UseChecks: true, Verify: false, TrainExe: trainExe,
			}), libs...)
			if err != nil {
				return fmt.Errorf("%s@%s: %w", name, opt, err)
			}
			switch opt {
			case workloads.O2:
				row.O2 = rep.Speedup()
			case workloads.O3:
				row.O3 = rep.Speedup()
			default:
				row.AVX = rep.Speedup()
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure12 formats the optimisation-level table.
func RenderFigure12(rows []Fig12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: Janus speedup by binary optimisation level\n")
	fmt.Fprintf(&b, "%-16s %7s %7s %7s\n", "benchmark", "O2", "O3", "O3avx")
	var o2, o3, av []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %7.2f %7.2f %7.2f\n", r.Bench, r.O2, r.O3, r.AVX)
		o2, o3, av = append(o2, r.O2), append(o3, r.O3), append(av, r.AVX)
	}
	fmt.Fprintf(&b, "%-16s %7.2f %7.2f %7.2f\n", "geomean", geomean(o2), geomean(o3), geomean(av))
	return b.String()
}

// ---------------------------------------------------------------------
// Table I: array-bounds checks per loop requiring them.
// ---------------------------------------------------------------------

// Tab1Row is one benchmark's average check count.
type Tab1Row struct {
	Bench string
	// AvgRanges is the mean number of symbolic ranges per
	// MEM_BOUNDS_CHECK rule (the paper's per-loop check count).
	AvgRanges float64
	Loops     int
	PaperRef  float64
}

// TableI inspects the generated schedules.
func TableI(o Options) ([]Tab1Row, error) {
	return TableIContext(context.Background(), o)
}

// TableIContext is TableI under a context (see Figure6Context).
func TableIContext(ctx context.Context, o Options) ([]Tab1Row, error) {
	o = o.normalized()
	if o.cacheErr != nil {
		return nil, o.cacheErr
	}
	return tableI(o, newScheduler(ctx, o.Jobs, o.OnProgress))
}

func tableI(o Options, s *scheduler) ([]Tab1Row, error) {
	names := workloads.ParallelisableNames()
	slots := make([]*Tab1Row, len(names))
	err := s.forEach(len(names), func(i int) error {
		name := names[i]
		exe, libs, err := o.buildRef(name)
		if err != nil {
			return err
		}
		trainExe, _, err := o.buildTrain(name)
		if err != nil {
			return err
		}
		rep, err := janus.Parallelise(exe, o.engineConfig(janus.Config{
			Threads: o.Threads, UseProfile: true, UseChecks: true, Verify: false, TrainExe: trainExe,
		}), libs...)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		loops := 0
		ranges := 0
		for _, r := range rep.Schedule.Rules {
			if d, ok := r.Data.(interface{ NumChecks() int }); ok {
				loops++
				ranges += d.NumChecks()
			}
		}
		if loops == 0 {
			return nil // benchmarks without checks are absent from Table I
		}
		bm, _ := workloads.ByName(name)
		slots[i] = &Tab1Row{
			Bench:     name,
			AvgRanges: float64(ranges) / float64(loops),
			Loops:     loops,
			PaperRef:  bm.PaperChecks,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Tab1Row
	for _, r := range slots {
		if r != nil {
			rows = append(rows, *r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Bench < rows[j].Bench })
	return rows, nil
}

// RenderTableI formats the check-count table.
func RenderTableI(rows []Tab1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: array-bounds checks per loop requiring them\n")
	fmt.Fprintf(&b, "%-16s %8s %8s %8s\n", "benchmark", "ranges", "loops", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8.1f %8d %8.1f\n", r.Bench, r.AvgRanges, r.Loops, r.PaperRef)
	}
	return b.String()
}

// TableII renders the qualitative tool-comparison table (static data
// from the paper's related-work summary).
func TableII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: binary parallelisation tools\n")
	fmt.Fprintf(&b, "%-22s %-18s %-6s %-5s %-7s %-8s %-16s\n",
		"tool", "platform", "open", "auto", "checks", "shlibs", "parallelism")
	fmt.Fprintf(&b, "%-22s %-18s %-6s %-5s %-7s %-8s %-16s\n",
		"Yardimci & Franz", "PowerPC", "no", "no*", "no", "no", "static DOALL")
	fmt.Fprintf(&b, "%-22s %-18s %-6s %-5s %-7s %-8s %-16s\n",
		"SecondWrite", "x86-64", "no", "no*", "yes", "no", "affine loops")
	fmt.Fprintf(&b, "%-22s %-18s %-6s %-5s %-7s %-8s %-16s\n",
		"Pradelle et al", "x86-64", "no", "no*", "no", "no", "affine src2src")
	fmt.Fprintf(&b, "%-22s %-18s %-6s %-5s %-7s %-8s %-16s\n",
		"Janus", "x86-64, AArch64", "yes", "yes", "yes", "yes", "dynamic DOALL")
	fmt.Fprintf(&b, "(* manual profiling or tuning required)\n")
	return b.String()
}
