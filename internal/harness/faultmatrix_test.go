package harness

// Fault-injection matrix: every injection point, under both
// speculative engines, at GOMAXPROCS 1 and N, must leave the full
// janus-bench output byte-identical to the committed golden fixture —
// recovery re-executes every failed region round-robin, and nothing
// about a recovered run may leak into a figure. Each cell also asserts
// the recovery path actually ran (an injection plan that never fires
// would pass the golden comparison vacuously).

import (
	"fmt"
	"runtime"
	"testing"

	"janus/internal/faultinject"
)

func TestFaultInjectionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("16 full-suite renders; run without -short")
	}
	want := readGolden(t)
	procsN := max(runtime.NumCPU(), 4)
	for _, spec := range []string{"scan-defeat", "worker-panic", "stall", "budget"} {
		for _, engine := range []struct {
			name   string
			static bool
		}{{"steal", false}, {"static", true}} {
			for _, procs := range []int{1, procsN} {
				name := fmt.Sprintf("%s/%s/gomaxprocs=%d", spec, engine.name, procs)
				t.Run(name, func(t *testing.T) {
					plan, err := faultinject.ParsePlan(spec)
					if err != nil {
						t.Fatal(err)
					}
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)

					o := DefaultOptions()
					o.StaticPartition = engine.static
					o.Inject = plan
					o.Recovery = &RecoveryLog{}
					diffGolden(t, name, renderSuite(t, o), want)
					if o.Recovery.ParRecoveries.Load() == 0 {
						t.Errorf("injection %q never triggered a recovery", spec)
					}
					if o.Recovery.DemotedLoops.Load() == 0 {
						t.Errorf("recovery ran but demoted no loop")
					}
				})
			}
		}
	}
}
