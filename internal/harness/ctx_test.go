package harness

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRenderAllContextPreCanceled: a context cancelled before the
// render starts must abandon every row with the typed cancel error —
// no experiment work runs at all.
func TestRenderAllContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	out, err := RenderAllContext(ctx, DefaultOptions(), 0, 0)
	if err == nil {
		t.Fatal("cancelled render returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not match harness.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
	if !strings.Contains(out, "failed:") {
		t.Fatalf("partial output lacks failure markers:\n%s", out)
	}
	// tab2 is static data and needs no rows, so it renders even under a
	// dead context — partial output is the contract.
	if !strings.Contains(out, "Table II") {
		t.Fatalf("static tab2 should render under a dead context:\n%s", out)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled render still took %v", elapsed)
	}
}

// TestFigureContextDeadline: a deadline expiring mid-run aborts
// pending rows with ErrCanceled wrapping context.DeadlineExceeded.
func TestFigureContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	o := DefaultOptions()
	o.Jobs = 1
	if _, err := Figure6Context(ctx, o); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
}

// TestCancelMidRender cancels while rows are in flight: the render
// returns promptly with the typed error instead of running the suite
// to completion, and rows already executing finish cleanly.
func TestCancelMidRender(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := DefaultOptions()
	var once sync.Once
	o.OnProgress = func(ev ProgressEvent) {
		if ev.State == "row" {
			once.Do(cancel) // first completed row pulls the plug
		}
	}
	_, err := RenderAllContext(ctx, o, 0, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-render cancel: want ErrCanceled, got %v", err)
	}
}

// TestProgressEvents pins the progress-hook contract on a cheap
// render: experiment start/done events arrive for the selected
// experiment and observing them does not change the rendered bytes.
func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []ProgressEvent
	o := DefaultOptions()
	o.OnProgress = func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	withHook, err := RenderAll(o, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RenderAll(DefaultOptions(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if withHook != plain {
		t.Fatal("progress observation changed rendered bytes")
	}
	mu.Lock()
	defer mu.Unlock()
	var sawStart, sawDone bool
	for _, ev := range events {
		if ev.Experiment == "tab2" && ev.State == "start" {
			sawStart = true
		}
		if ev.Experiment == "tab2" && ev.State == "done" {
			sawDone = true
		}
	}
	if !sawStart || !sawDone {
		t.Fatalf("missing tab2 start/done events: %+v", events)
	}
}
