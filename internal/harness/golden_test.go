package harness

// Golden-output regression test: testdata/janus-bench.golden is the
// canonical full `janus-bench` text output (every figure and table, in
// print order). A fresh render must match it byte for byte — under the
// default configuration and under every axis the determinism contract
// pins: -jobs 1 vs N, work-stealing vs static partitioning,
// host-parallel vs round-robin regions, GOMAXPROCS 1 vs N. Any
// scheduler, partitioner or engine change that perturbs a single
// figure byte fails here loudly.
//
// Regenerate the fixture after an intentional output change with:
//
//	go test ./internal/harness -run TestGoldenOutput -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/janus-bench.golden from a fresh render")

const goldenPath = "testdata/janus-bench.golden"

// renderSuite regenerates the full suite under o.
func renderSuite(t *testing.T, o Options) string {
	t.Helper()
	out, err := RenderAll(o, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// diffGolden reports the first line where got departs from want.
func diffGolden(t *testing.T, label, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	line := 0
	for line < len(gl) && line < len(wl) && gl[line] == wl[line] {
		line++
	}
	g, w := "<eof>", "<eof>"
	if line < len(gl) {
		g = gl[line]
	}
	if line < len(wl) {
		w = wl[line]
	}
	t.Errorf("%s: output departs from %s at line %d:\n got: %q\nwant: %q\n(%d vs %d bytes; run with -update after an intentional change)",
		label, goldenPath, line+1, g, w, len(got), len(want))
}

func readGolden(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.FromSlash(goldenPath))
	if err != nil {
		t.Fatalf("missing golden fixture (generate with -update): %v", err)
	}
	return string(data)
}

func TestGoldenOutput(t *testing.T) {
	got := renderSuite(t, DefaultOptions())
	if *update {
		if err := os.WriteFile(filepath.FromSlash(goldenPath), []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	diffGolden(t, "default options", got, readGolden(t))
}

// TestGoldenAcrossConfigurations renders the suite under every
// determinism axis and compares each render against the committed
// fixture byte for byte.
func TestGoldenAcrossConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite renders across six configurations; run without -short")
	}
	want := readGolden(t)
	jobsN := max(runtime.NumCPU(), 4)
	cases := []struct {
		name       string
		opts       func() Options
		gomaxprocs int
	}{
		{"jobs=1", func() Options { o := DefaultOptions(); o.Jobs = 1; return o }, 0},
		{fmt.Sprintf("jobs=%d", jobsN), func() Options { o := DefaultOptions(); o.Jobs = jobsN; return o }, 0},
		{"static-partition", func() Options { o := DefaultOptions(); o.StaticPartition = true; return o }, 0},
		{"round-robin", func() Options { o := DefaultOptions(); o.SingleGoroutine = true; return o }, 0},
		{"gomaxprocs=1", DefaultOptions, 1},
		{fmt.Sprintf("gomaxprocs=%d", jobsN), DefaultOptions, jobsN},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.gomaxprocs > 0 {
				prev := runtime.GOMAXPROCS(tc.gomaxprocs)
				defer runtime.GOMAXPROCS(prev)
			}
			diffGolden(t, tc.name, renderSuite(t, tc.opts()), want)
		})
	}
}
