package harness

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// The experiment scheduler: every figure/table experiment, and every
// benchmark row inside an experiment, is a schedulable unit. Rows from
// all experiments share one bounded worker pool, and every result is
// written into an index-addressed slot, so completion order never
// affects rendered output — the suite is byte-identical at any Jobs
// value and any GOMAXPROCS. The shared state the units touch is
// concurrency-clean by construction: engine selection is per-run
// configuration (Options), workload builds are cached per (name,
// input, opt), and the baseline memos in package janus have
// singleflight semantics, so concurrent rows share one native run and
// one train profile per binary instead of duplicating them.
//
// Failure is contained per experiment: the first erroring (or
// panicking) row abandons that experiment's remaining rows, but
// sibling experiments sharing the pool keep running, so RenderAll can
// report every healthy figure alongside the failed one.

// scheduler bounds row-level concurrency across the whole suite.
type scheduler struct {
	slots chan struct{}
}

// newScheduler returns a scheduler running at most jobs rows at once.
func newScheduler(jobs int) *scheduler {
	if jobs < 1 {
		jobs = 1
	}
	return &scheduler{slots: make(chan struct{}, jobs)}
}

// forEach runs f(0..n-1) on the bounded pool and returns the
// lowest-index error. Each call acquires one slot; experiments fan
// their rows out through this, so nested units never hold a slot while
// waiting on children. A panicking row is recovered into an error
// carrying its stack, so one broken experiment can never take down a
// long-lived process embedding the harness.
func (s *scheduler) forEach(n int, f func(i int) error) error {
	errs := make([]error, n)
	// failed is scoped to this call: it abandons this experiment's
	// not-yet-started rows once one fails (their work would be wasted),
	// never sibling experiments'. Which rows ran before noticing the
	// flag can depend on host scheduling; whether the experiment fails
	// never does.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.slots <- struct{}{}
			defer func() { <-s.slots }()
			if failed.Load() {
				return
			}
			defer func() {
				if p := recover(); p != nil {
					failed.Store(true)
					errs[i] = fmt.Errorf("row %d panicked: %v\n%s", i, p, debug.Stack())
				}
			}()
			if err := f(i); err != nil {
				failed.Store(true)
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
