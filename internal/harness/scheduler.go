package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// The experiment scheduler: every figure/table experiment, and every
// benchmark row inside an experiment, is a schedulable unit. Rows from
// all experiments share one bounded worker pool, and every result is
// written into an index-addressed slot, so completion order never
// affects rendered output — the suite is byte-identical at any Jobs
// value and any GOMAXPROCS. The shared state the units touch is
// concurrency-clean by construction: engine selection is per-run
// configuration (Options), workload builds are cached per (name,
// input, opt), and the baseline memos in package janus have
// singleflight semantics, so concurrent rows share one native run and
// one train profile per binary instead of duplicating them.
//
// Failure is contained per experiment: the first erroring (or
// panicking) row abandons that experiment's remaining rows, but
// sibling experiments sharing the pool keep running, so RenderAll can
// report every healthy figure alongside the failed one.
//
// The scheduler also carries the run's context: when it is cancelled
// or its deadline passes, rows that have not started are abandoned
// with ErrCanceled instead of running the experiment to completion.
// Rows already executing run to their natural end — the simulated
// engines are not interruptible mid-row, and a finished row is the
// cheapest consistent state to stop in.

// ErrCanceled reports a run abandoned because its context was
// cancelled or its deadline passed before every row ran. It wraps the
// context's own error, so errors.Is matches both ErrCanceled and
// context.Canceled / context.DeadlineExceeded.
var ErrCanceled = errors.New("harness: run canceled")

// canceledErr ties ErrCanceled to the context's cause.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
}

// ProgressEvent is one tick of a running suite render, delivered to
// Options.OnProgress. Experiment-level events carry the artefact name
// and a State of "start", "done" or "failed"; row-level ticks have
// State "row" with an empty Experiment. Rows is the cumulative count
// of benchmark rows completed across the whole run at emission time.
type ProgressEvent struct {
	Experiment string
	State      string
	Rows       int
	Err        string
}

// scheduler bounds row-level concurrency across the whole suite.
type scheduler struct {
	ctx        context.Context
	slots      chan struct{}
	rows       atomic.Int64
	onProgress func(ProgressEvent)
}

// newScheduler returns a scheduler running at most jobs rows at once
// under ctx. onProgress may be nil; when set it is called from
// concurrent worker goroutines and must be safe for concurrent use.
func newScheduler(ctx context.Context, jobs int, onProgress func(ProgressEvent)) *scheduler {
	if ctx == nil {
		ctx = context.Background()
	}
	if jobs < 1 {
		jobs = 1
	}
	return &scheduler{ctx: ctx, slots: make(chan struct{}, jobs), onProgress: onProgress}
}

// emit delivers a progress event, filling in the cumulative row count.
func (s *scheduler) emit(ev ProgressEvent) {
	if s.onProgress == nil {
		return
	}
	ev.Rows = int(s.rows.Load())
	s.onProgress(ev)
}

// forEach runs f(0..n-1) on the bounded pool and returns the
// lowest-index error. Each call acquires one slot; experiments fan
// their rows out through this, so nested units never hold a slot while
// waiting on children. A panicking row is recovered into an error
// carrying its stack, so one broken experiment can never take down a
// long-lived process embedding the harness. A cancelled context
// abandons every not-yet-started row with ErrCanceled.
func (s *scheduler) forEach(n int, f func(i int) error) error {
	errs := make([]error, n)
	// failed is scoped to this call: it abandons this experiment's
	// not-yet-started rows once one fails (their work would be wasted),
	// never sibling experiments'. Which rows ran before noticing the
	// flag can depend on host scheduling; whether the experiment fails
	// never does.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.slots <- struct{}{}
			defer func() { <-s.slots }()
			if s.ctx.Err() != nil {
				// Cancellation outranks sibling failures: the caller sees
				// the typed cancel error for every abandoned row.
				errs[i] = canceledErr(s.ctx)
				return
			}
			if failed.Load() {
				return
			}
			defer func() {
				if p := recover(); p != nil {
					failed.Store(true)
					errs[i] = fmt.Errorf("row %d panicked: %v\n%s", i, p, debug.Stack())
				}
			}()
			if err := f(i); err != nil {
				failed.Store(true)
				errs[i] = err
				return
			}
			s.rows.Add(1)
			s.emit(ProgressEvent{State: "row"})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
