package harness

// The load-bearing invariant of the concurrent harness: every figure
// is computed from virtual cycles and folded back in a fixed order, so
// the rendered janus-bench output must be byte-identical whatever the
// host concurrency — GOMAXPROCS=1 vs all cores, row scheduling at any
// -jobs bound, host-parallel vs single-goroutine round-robin regions,
// and work-stealing vs static partitioning. golden_test.go pins the
// whole suite against the committed fixture; these tests pin one
// figure across the engine axes for a fast, focused signal.

import (
	"runtime"
	"testing"
)

// renderFigure7 regenerates figure 7 and renders it to text. The
// byte-comparison pairs below are skipped under -short (each renders
// the figure twice); the -race CI job runs -short and still exercises
// the concurrent machinery through TestGoldenOutput and the dbm engine
// tests.
func renderFigure7(t *testing.T, o Options) string {
	t.Helper()
	if testing.Short() {
		t.Skip("renders figure 7 twice; run without -short")
	}
	rows, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	return RenderFigure7(rows)
}

func TestFigure7ByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	one := renderFigure7(t, DefaultOptions())
	runtime.GOMAXPROCS(max(runtime.NumCPU(), 4))
	many := renderFigure7(t, DefaultOptions())
	if one != many {
		t.Errorf("figure 7 output differs across GOMAXPROCS:\n--- GOMAXPROCS=1 ---\n%s\n--- GOMAXPROCS=n ---\n%s", one, many)
	}
}

func TestFigure7ByteIdenticalAcrossEngines(t *testing.T) {
	hp := DefaultOptions()
	rr := DefaultOptions()
	rr.SingleGoroutine = true
	if got, want := renderFigure7(t, rr), renderFigure7(t, hp); got != want {
		t.Errorf("figure 7 output differs between engines:\n--- host-parallel ---\n%s\n--- round-robin ---\n%s", want, got)
	}
}

func TestFigure7ByteIdenticalAcrossPartitioners(t *testing.T) {
	steal := DefaultOptions()
	static := DefaultOptions()
	static.StaticPartition = true
	if got, want := renderFigure7(t, static), renderFigure7(t, steal); got != want {
		t.Errorf("figure 7 output differs between partitioners:\n--- stealing ---\n%s\n--- static ---\n%s", want, got)
	}
}

func TestFigure7ByteIdenticalAcrossJobs(t *testing.T) {
	seq := DefaultOptions()
	seq.Jobs = 1
	par := DefaultOptions()
	par.Jobs = max(runtime.NumCPU(), 4)
	if got, want := renderFigure7(t, par), renderFigure7(t, seq); got != want {
		t.Errorf("figure 7 output differs across -jobs:\n--- jobs=1 ---\n%s\n--- jobs=n ---\n%s", want, got)
	}
}
