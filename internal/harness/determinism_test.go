package harness

// The load-bearing invariant of the host-parallel engine: every figure
// is computed from virtual cycles, so the rendered janus-bench output
// must be byte-identical whatever the host concurrency — GOMAXPROCS=1
// vs all cores, host-parallel vs single-goroutine round-robin.

import (
	"runtime"
	"testing"
)

// renderFigure7 regenerates figure 7 and renders it to text.
func renderFigure7(t *testing.T, threads int) string {
	t.Helper()
	rows, err := Figure7(threads)
	if err != nil {
		t.Fatal(err)
	}
	return RenderFigure7(rows)
}

func TestFigure7ByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	one := renderFigure7(t, DefaultThreads)
	runtime.GOMAXPROCS(max(runtime.NumCPU(), 4))
	many := renderFigure7(t, DefaultThreads)
	if one != many {
		t.Errorf("figure 7 output differs across GOMAXPROCS:\n--- GOMAXPROCS=1 ---\n%s\n--- GOMAXPROCS=n ---\n%s", one, many)
	}
}

func TestFigure7ByteIdenticalAcrossEngines(t *testing.T) {
	defer SetHostParallel(true)

	SetHostParallel(true)
	hp := renderFigure7(t, DefaultThreads)
	SetHostParallel(false)
	rr := renderFigure7(t, DefaultThreads)
	if hp != rr {
		t.Errorf("figure 7 output differs between engines:\n--- host-parallel ---\n%s\n--- round-robin ---\n%s", hp, rr)
	}
}
