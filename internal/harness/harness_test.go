package harness

import (
	"strings"
	"testing"
)

// seqOptions is the shape tests' configuration: default engines, a
// modest concurrent row budget (the shapes are Jobs-independent; the
// golden tests pin byte-identity across Jobs values explicitly).
func seqOptions() Options {
	o := DefaultOptions()
	o.Jobs = 2
	return o
}

func TestFigure6ShapeHolds(t *testing.T) {
	rows, err := Figure6(seqOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 {
		t.Fatalf("figure 6 covers %d benchmarks, want 25", len(rows))
	}
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Bench] = r
		// Fractions are sane.
		for _, f := range []float64{r.Static.StaticDOALL, r.Static.DynDOALL, r.Static.StaticDep, r.Static.DynDep, r.Static.Incompat} {
			if f < 0 || f > 1 {
				t.Errorf("%s: static fraction out of range: %v", r.Bench, f)
			}
		}
		sum := r.Static.StaticDOALL + r.Static.DynDOALL + r.Static.StaticDep + r.Static.DynDep + r.Static.Incompat
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: static fractions sum to %v", r.Bench, sum)
		}
	}
	// Paper shape: lbm spends almost all time in DOALL loops;
	// xalancbmk spends almost none.
	lbm := byName["470.lbm"]
	if doall := lbm.Dynamic.StaticDOALL + lbm.Dynamic.DynDOALL; doall < 0.80 {
		t.Errorf("lbm DOALL execution fraction %.2f, want > 0.80 (paper: 98%%)", doall)
	}
	xal := byName["483.xalancbmk"]
	if doall := xal.Dynamic.StaticDOALL + xal.Dynamic.DynDOALL; doall > 0.20 {
		t.Errorf("xalancbmk DOALL execution fraction %.2f, want small (paper: 1%%)", doall)
	}
	// hmmer is dominated by its DP recurrence (static dep).
	hm := byName["456.hmmer"]
	if hm.Dynamic.StaticDep < 0.3 {
		t.Errorf("hmmer static-dep fraction %.2f, want significant", hm.Dynamic.StaticDep)
	}
	out := RenderFigure6(rows)
	if !strings.Contains(out, "470.lbm") {
		t.Error("render missing benchmarks")
	}
}

func TestFigure7ShapeHolds(t *testing.T) {
	rows, err := Figure7(seqOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("figure 7 rows: %d", len(rows))
	}
	byName := map[string]Fig7Row{}
	var dbmOnly []float64
	for _, r := range rows {
		byName[r.Bench] = r
		dbmOnly = append(dbmOnly, r.DBMOnly)
		// Bare DBM never speeds things up in this model.
		if r.DBMOnly > 1.05 {
			t.Errorf("%s: bare DBM speedup %.2f > 1", r.Bench, r.DBMOnly)
		}
		// The full system must never be slower than the
		// profile-guided configuration by more than noise: checks only
		// add coverage.
		if r.Janus < r.Profile*0.98 {
			t.Errorf("%s: checks lost performance: %.2f < %.2f", r.Bench, r.Janus, r.Profile)
		}
	}
	// Average bare-DBM overhead is single-digit percent (paper: ~6%).
	if g := geomean(dbmOnly); g < 0.85 || g > 1.0 {
		t.Errorf("bare DBM geomean %.3f, want ~0.94", g)
	}
	// Headliners and stragglers.
	if byName["462.libquantum"].Janus < 4 {
		t.Errorf("libquantum only %.2fx (paper: 6.0)", byName["462.libquantum"].Janus)
	}
	if byName["470.lbm"].Janus < 4 {
		t.Errorf("lbm only %.2fx (paper: 5.8)", byName["470.lbm"].Janus)
	}
	if byName["464.h264ref"].Janus > 1.0 {
		t.Errorf("h264ref should stay a slowdown, got %.2fx", byName["464.h264ref"].Janus)
	}
	// Profile selection must rescue what static selection loses on the
	// small-loop benchmarks (paper: leslie3d/GemsFDTD lose performance
	// under static-only).
	for _, name := range []string{"437.leslie3d", "459.GemsFDTD", "433.milc"} {
		r := byName[name]
		if r.Profile < r.Static {
			t.Errorf("%s: profile (%.2f) should not be below static (%.2f)", name, r.Profile, r.Static)
		}
	}
	// Checks unlock bwaves and GemsFDTD (paper §III-B).
	if r := byName["410.bwaves"]; r.Janus <= r.Profile {
		t.Errorf("bwaves: checks should raise speedup: %.2f <= %.2f", r.Janus, r.Profile)
	}
	if r := byName["459.GemsFDTD"]; r.Janus <= r.Profile {
		t.Errorf("GemsFDTD: checks should raise speedup: %.2f <= %.2f", r.Janus, r.Profile)
	}
	_ = RenderFigure7(rows)
}

func TestFigure9Monotonicity(t *testing.T) {
	rows, err := Figure9(seqOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Bench] = r
		if len(r.Speedups) != 8 {
			t.Fatalf("%s: %d thread points", r.Bench, len(r.Speedups))
		}
	}
	// libquantum and lbm scale well to 4 threads (paper: 3.9x/3.7x).
	for _, name := range []string{"462.libquantum", "470.lbm"} {
		s := byName[name].Speedups
		if s[3] < 2.5 {
			t.Errorf("%s at 4 threads: %.2f, want near-linear", name, s[3])
		}
		if s[7] < s[3] {
			t.Errorf("%s: 8 threads (%.2f) below 4 threads (%.2f)", name, s[7], s[3])
		}
	}
	_ = RenderFigure9(rows)
}

func TestFigure10SmallSchedules(t *testing.T) {
	rows, err := Figure10(seqOptions())
	if err != nil {
		t.Fatal(err)
	}
	var fr []float64
	for _, r := range rows {
		if r.ScheduleSize <= 0 {
			t.Errorf("%s: empty schedule", r.Bench)
		}
		if r.Fraction > 0.25 {
			t.Errorf("%s: schedule %0.1f%% of binary, too large", r.Bench, 100*r.Fraction)
		}
		fr = append(fr, r.Fraction)
	}
	if g := geomean(fr); g > 0.12 {
		t.Errorf("schedule size geomean %.1f%%, paper reports 3.7%%", 100*g)
	}
	_ = RenderFigure10(rows)
}

func TestFigure11CompilerComparison(t *testing.T) {
	rows, err := Figure11(seqOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig11Row{}
	var g, jg []float64
	for _, r := range rows {
		byName[r.Bench] = r
		g = append(g, r.GccAuto)
		jg = append(jg, r.JanusGcc)
	}
	// Paper: on the benchmarks where Janus is best, neither compiler
	// reaches its performance (library calls and runtime checks).
	if r := byName["410.bwaves"]; r.GccAuto >= r.JanusGcc {
		t.Errorf("bwaves: gcc (%.2f) should trail Janus (%.2f): gcc cannot speculate on pow", r.GccAuto, r.JanusGcc)
	}
	// Janus on gcc binaries beats gcc auto-parallelisation on average
	// (paper: 2.2x vs 1.1x).
	if geomean(jg) <= geomean(g) {
		t.Errorf("Janus (%.2f) should beat gcc auto-par (%.2f) on geomean", geomean(jg), geomean(g))
	}
	_ = RenderFigure11(rows)
}

func TestFigure12OptLevels(t *testing.T) {
	rows, err := Figure12(seqOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig12Row{}
	var o3s, avxs []float64
	for _, r := range rows {
		byName[r.Bench] = r
		o3s = append(o3s, r.O3)
		avxs = append(avxs, r.AVX)
	}
	// Paper: O2 vs O3 negligible; AVX generally limits Janus.
	if geomean(avxs) > geomean(o3s)*1.1 {
		t.Errorf("AVX (%.2f) should not beat O3 (%.2f) on geomean", geomean(avxs), geomean(o3s))
	}
	_ = RenderFigure12(rows)
}

func TestTableIShape(t *testing.T) {
	rows, err := TableI(seqOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Tab1Row{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	// The check-needing set includes bwaves, milc, cactusADM, GemsFDTD.
	for _, name := range []string{"410.bwaves", "433.milc", "436.cactusADM", "459.GemsFDTD"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("%s missing from Table I", name)
		}
	}
	// Ordering shape: bwaves has the fewest ranges per check; milc and
	// GemsFDTD the most.
	if bw, ok := byName["410.bwaves"]; ok {
		if milc, ok2 := byName["433.milc"]; ok2 && bw.AvgRanges >= milc.AvgRanges {
			t.Errorf("bwaves (%.1f) should have fewer ranges than milc (%.1f)", bw.AvgRanges, milc.AvgRanges)
		}
	}
	_ = RenderTableI(rows)
}

func TestTableIIRenders(t *testing.T) {
	out := TableII()
	for _, tool := range []string{"Janus", "SecondWrite", "Yardimci"} {
		if !strings.Contains(out, tool) {
			t.Errorf("Table II missing %s", tool)
		}
	}
}
