package sym

import (
	"fmt"
	"sort"

	"janus/internal/cfg"
	"janus/internal/guest"
	"janus/internal/ssa"
)

// Induction is a basic induction variable: a header phi whose value at
// canonical iteration i is Init + Step·i.
type Induction struct {
	Phi  *ssa.Value
	Reg  guest.Reg
	Init Expr
	Step int64
}

// Reduction is an accumulation carried around the back edge through
// associative updates (sum or product), mergeable across threads.
type Reduction struct {
	Phi *ssa.Value
	Reg guest.Reg
	// Op is the normalised merge operation: guest.ADD (covers ADD/SUB),
	// guest.FADD (covers FADD/FSUB) or guest.FMUL.
	Op guest.Op
}

// Access is a memory access in the loop with its canonical address
// polynomial. Addr.Iter is the stride per iteration.
type Access struct {
	Ref   ssa.InstRef
	Write bool
	Width int64
	Addr  Expr
}

// RoundMode says how a trip-count division rounds.
type RoundMode uint8

const (
	// RoundCeil divides rounding towards +inf.
	RoundCeil RoundMode = iota
	// RoundExact requires divisibility (equality-exit loops); program
	// semantics guarantee it, since otherwise the original loop would
	// not terminate.
	RoundExact
)

// Trip is a symbolic iteration count: max(0, Num/Den) with the given
// rounding, where Num is invariant and Den = |step| > 0.
type Trip struct {
	Num   Expr
	Den   int64
	Round RoundMode
}

// Count evaluates the trip count against the loop-entry register file.
func (t Trip) Count(regs func(guest.Reg) uint64) int64 {
	num := t.Num.Eval(regs, 0)
	if num <= 0 {
		return 0
	}
	switch t.Round {
	case RoundExact:
		return num / t.Den
	default:
		return (num + t.Den - 1) / t.Den
	}
}

// IsStatic reports whether the count is a compile-time constant, and the
// constant.
func (t Trip) IsStatic() (int64, bool) {
	if !t.Num.IsConst() {
		return 0, false
	}
	n := t.Num.Const
	if n <= 0 {
		return 0, true
	}
	if t.Round == RoundExact {
		return n / t.Den, true
	}
	return (n + t.Den - 1) / t.Den, true
}

// Analysis is the symbolic summary of one loop.
type Analysis struct {
	Loop *cfg.Loop
	S    *ssa.SSA

	// Preheader is the unique out-of-loop predecessor of the header
	// (nil when the header has several outside predecessors).
	Preheader *cfg.Block
	// EntryVals maps each register to the SSA value it holds when the
	// loop is entered from outside.
	EntryVals map[guest.Reg]*ssa.Value

	Inductions []Induction
	Reductions []Reduction
	Accesses   []Access

	// MainIV is the induction variable that controls the analysed exit.
	MainIV *Induction
	// Trip is the symbolic iteration count (nil if unsolvable).
	Trip *Trip
	// ExitBlock is the block whose condition defines Trip.
	ExitBlock *cfg.Block
	// BoundOperand describes how the exit compare consumes the bound:
	// a register (BoundReg) or an immediate (BoundImm in the compare).
	BoundIsImm bool
	BoundReg   guest.Reg
	// CmpAddr is the address of the exit compare instruction.
	CmpAddr uint64
	// LeaveOp is the normalised leave-loop comparison: the loop exits
	// when `iv LeaveOp bound` holds (inversion for fall-through exits
	// and operand swaps already applied).
	LeaveOp guest.Op

	// CarriedRegs are header phis that are neither induction nor
	// reduction: genuine cross-iteration register dependencies.
	CarriedRegs []guest.Reg
	// LiveOutRegs are registers defined in the loop and live into the
	// exit targets (their final values must be reconstructed).
	LiveOutRegs []guest.Reg

	// Irregular is set when the loop's control could not be understood
	// (no recognisable induction, unanalysable exit, indirect flow).
	Irregular bool
	Reason    string

	exprCache map[*ssa.Value]Expr
	visiting  map[*ssa.Value]bool
	indByPhi  map[*ssa.Value]*Induction
	redByPhi  map[*ssa.Value]bool
}

// Analyze builds the symbolic summary of loop under s.
func Analyze(loop *cfg.Loop, s *ssa.SSA) *Analysis {
	a := &Analysis{
		Loop:      loop,
		S:         s,
		EntryVals: map[guest.Reg]*ssa.Value{},
		exprCache: map[*ssa.Value]Expr{},
		visiting:  map[*ssa.Value]bool{},
		indByPhi:  map[*ssa.Value]*Induction{},
		redByPhi:  map[*ssa.Value]bool{},
	}
	a.findPreheader()
	a.findEntryVals()
	a.findInductionsAndReductions()
	a.collectAccesses()
	a.solveTrip()
	a.findCarriedAndLiveOut()
	if loop.HasIndirect {
		a.fail("indirect control flow in loop body")
	}
	return a
}

func (a *Analysis) fail(reason string) {
	if !a.Irregular {
		a.Irregular = true
		a.Reason = reason
	}
}

func (a *Analysis) findPreheader() {
	var outside []*cfg.Block
	for _, p := range a.Loop.Header.Preds {
		if !a.Loop.Body[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		a.Preheader = outside[0]
	}
}

// findEntryVals records, for each register, the SSA value flowing into
// the loop from outside: the phi argument from the preheader when the
// header has a phi for that register, otherwise the header entry value.
func (a *Analysis) findEntryVals() {
	header := a.Loop.Header
	entry := a.S.EntryState[header]
	for r := guest.Reg(0); r < guest.NumGPR; r++ {
		v := entry[r]
		if phi := a.S.PhiFor(header, r); phi != nil {
			if a.Preheader == nil {
				continue
			}
			for i, p := range header.Preds {
				if p == a.Preheader {
					v = phi.Args[i]
				}
			}
		}
		if v != nil {
			a.EntryVals[r] = v
		}
	}
}

// latchArg returns the value phi receives from inside the loop. Loops
// with several latches must agree; otherwise nil.
func (a *Analysis) latchArg(phi *ssa.Value) *ssa.Value {
	var got *ssa.Value
	for i, p := range a.Loop.Header.Preds {
		if a.Loop.Body[p] {
			arg := phi.Args[i]
			if got != nil && got != arg {
				return nil
			}
			got = arg
		}
	}
	return got
}

// initArg returns the value phi receives from outside the loop.
func (a *Analysis) initArg(phi *ssa.Value) *ssa.Value {
	var got *ssa.Value
	for i, p := range a.Loop.Header.Preds {
		if !a.Loop.Body[p] {
			arg := phi.Args[i]
			if got != nil && got != arg {
				return nil
			}
			got = arg
		}
	}
	return got
}

func (a *Analysis) findInductionsAndReductions() {
	for _, phi := range a.S.Phis[a.Loop.Header] {
		if phi.IsFlags {
			continue
		}
		latch := a.latchArg(phi)
		initV := a.initArg(phi)
		if latch == nil || initV == nil {
			continue
		}
		if step, ok := a.stepOf(latch, phi, 0); ok && step != 0 {
			init := a.exprOfOutside(initV)
			ind := Induction{Phi: phi, Reg: phi.Reg, Init: init, Step: step}
			a.Inductions = append(a.Inductions, ind)
			a.indByPhi[phi] = &a.Inductions[len(a.Inductions)-1]
			continue
		}
		if op, ok := a.reductionOf(latch, phi); ok {
			a.Reductions = append(a.Reductions, Reduction{Phi: phi, Reg: phi.Reg, Op: op})
			a.redByPhi[phi] = true
		}
	}
	// Fix dangling pointers after slice growth.
	a.indByPhi = map[*ssa.Value]*Induction{}
	for i := range a.Inductions {
		a.indByPhi[a.Inductions[i].Phi] = &a.Inductions[i]
	}
}

// stepOf reports whether value v equals phi + k for a constant k,
// following copies and additive updates. depth bounds the walk.
func (a *Analysis) stepOf(v, phi *ssa.Value, depth int) (int64, bool) {
	if depth > 32 || v == nil {
		return 0, false
	}
	if v == phi {
		return 0, true
	}
	if v.Kind != ssa.InstDef || !a.Loop.Body[v.Block] {
		return 0, false
	}
	ref := ssa.InstRef{Block: v.Block, Idx: v.InstIdx}
	in := v.Inst
	use := func(r guest.Reg) *ssa.Value { return a.S.UseOf(ref, r) }
	switch in.Op {
	case guest.MOV:
		return a.stepOf(use(in.Rs), phi, depth+1)
	case guest.ADDI:
		k, ok := a.stepOf(use(in.Rd), phi, depth+1)
		return k + in.Imm, ok
	case guest.SUBI:
		k, ok := a.stepOf(use(in.Rd), phi, depth+1)
		return k - in.Imm, ok
	case guest.INC:
		k, ok := a.stepOf(use(in.Rd), phi, depth+1)
		return k + 1, ok
	case guest.DEC:
		k, ok := a.stepOf(use(in.Rd), phi, depth+1)
		return k - 1, ok
	case guest.ADD:
		if e := a.ExprOf(use(in.Rs)); e.IsConst() {
			k, ok := a.stepOf(use(in.Rd), phi, depth+1)
			return k + e.Const, ok
		}
		if e := a.ExprOf(use(in.Rd)); e.IsConst() {
			k, ok := a.stepOf(use(in.Rs), phi, depth+1)
			return k + e.Const, ok
		}
	case guest.SUB:
		if e := a.ExprOf(use(in.Rs)); e.IsConst() {
			k, ok := a.stepOf(use(in.Rd), phi, depth+1)
			return k - e.Const, ok
		}
	case guest.LEA:
		if in.M.Index == guest.RegNone && in.M.Base != guest.RegNone {
			k, ok := a.stepOf(use(in.M.Base), phi, depth+1)
			return k + in.M.Disp, ok
		}
	}
	return 0, false
}

// reductionOf recognises latch values of the form acc = acc ⊕ x.
func (a *Analysis) reductionOf(v, phi *ssa.Value) (guest.Op, bool) {
	if v == nil || v.Kind != ssa.InstDef || !a.Loop.Body[v.Block] {
		return 0, false
	}
	ref := ssa.InstRef{Block: v.Block, Idx: v.InstIdx}
	in := v.Inst
	switch in.Op {
	case guest.MOV:
		return a.reductionOf(a.S.UseOf(ref, in.Rs), phi)
	case guest.ADD, guest.SUB:
		if a.reachesPhi(a.S.UseOf(ref, in.Rd), phi, 0) {
			return guest.ADD, true
		}
	case guest.FADD, guest.FSUB:
		if a.reachesPhi(a.S.UseOf(ref, in.Rd), phi, 0) {
			return guest.FADD, true
		}
	case guest.FMUL:
		if a.reachesPhi(a.S.UseOf(ref, in.Rd), phi, 0) {
			return guest.FMUL, true
		}
	}
	return 0, false
}

func (a *Analysis) reachesPhi(v, phi *ssa.Value, depth int) bool {
	if v == nil || depth > 32 {
		return false
	}
	if v == phi {
		return true
	}
	if v.Kind == ssa.InstDef && a.Loop.Body[v.Block] && v.Inst.Op == guest.MOV {
		ref := ssa.InstRef{Block: v.Block, Idx: v.InstIdx}
		return a.reachesPhi(a.S.UseOf(ref, v.Inst.Rs), phi, depth+1)
	}
	return false
}

// exprOfOutside canonicalises a value defined outside the loop in terms
// of loop-entry registers.
func (a *Analysis) exprOfOutside(v *ssa.Value) Expr {
	if v == nil {
		return UnknownExpr()
	}
	// Fold through the defining chain first so that constants stay
	// constants (a loop whose iterator starts at `movi r1, 0` has a
	// static initial value even though r1 is also the entry register).
	if v.Kind == ssa.InstDef {
		ref := ssa.InstRef{Block: v.Block, Idx: v.InstIdx}
		in := v.Inst
		var e Expr = UnknownExpr()
		switch in.Op {
		case guest.MOVI:
			e = ConstExpr(in.Imm)
		case guest.MOV:
			e = a.exprOfOutside(a.S.UseOf(ref, in.Rs))
		case guest.ADDI:
			e = a.exprOfOutside(a.S.UseOf(ref, in.Rd)).Add(ConstExpr(in.Imm))
		case guest.SUBI:
			e = a.exprOfOutside(a.S.UseOf(ref, in.Rd)).Sub(ConstExpr(in.Imm))
		case guest.SHLI:
			if in.Imm >= 0 && in.Imm < 63 {
				e = a.exprOfOutside(a.S.UseOf(ref, in.Rd)).Scale(1 << uint(in.Imm))
			}
		case guest.LEA:
			e = a.memExprAt(ref, in.M, a.exprOfOutside)
		}
		if !e.Unknown {
			return e
		}
	}
	// Otherwise the value is runtime-readable if it is what a register
	// holds at loop entry.
	if !v.IsFlags && v.Reg < guest.NumGPR && a.EntryVals[v.Reg] == v {
		return RegExpr(v.Reg)
	}
	return UnknownExpr()
}

// ExprOf canonicalises an SSA value as a polynomial over loop-entry
// registers and the canonical iteration index.
func (a *Analysis) ExprOf(v *ssa.Value) Expr {
	if v == nil {
		return UnknownExpr()
	}
	if e, ok := a.exprCache[v]; ok {
		return e
	}
	if a.visiting[v] {
		return UnknownExpr()
	}
	a.visiting[v] = true
	e := a.exprOf(v)
	delete(a.visiting, v)
	a.exprCache[v] = e
	return e
}

func (a *Analysis) exprOf(v *ssa.Value) Expr {
	// Header phi of this loop.
	if v.Kind == ssa.PhiDef && v.Block == a.Loop.Header {
		if ind := a.indByPhi[v]; ind != nil {
			return ind.Init.Add(IterExpr(ind.Step))
		}
		if a.redByPhi[v] {
			return UnknownExpr()
		}
		return a.phiArgsEqual(v)
	}
	// Defined outside the loop: invariant atom.
	if v.Kind == ssa.Param || (v.Block != nil && !a.Loop.Body[v.Block]) {
		return a.exprOfOutside(v)
	}
	if v.Kind == ssa.PhiDef {
		// Join inside the loop (or an inner-loop header): the paper's
		// duplicated-path elimination — accept when every predecessor
		// computes the same canonical expression.
		return a.phiArgsEqual(v)
	}
	ref := ssa.InstRef{Block: v.Block, Idx: v.InstIdx}
	in := v.Inst
	use := func(r guest.Reg) Expr { return a.ExprOf(a.S.UseOf(ref, r)) }
	switch in.Op {
	case guest.MOVI:
		return ConstExpr(in.Imm)
	case guest.MOV, guest.CMOVE, guest.CMOVNE:
		if in.Op != guest.MOV {
			// Conditional move: conservatively include both operands,
			// accepting only if they agree (per the paper's complex-
			// instruction simplification).
			d, s := use(in.Rd), use(in.Rs)
			if d.Equal(s) {
				return d
			}
			return UnknownExpr()
		}
		return use(in.Rs)
	case guest.ADD:
		return use(in.Rd).Add(use(in.Rs))
	case guest.SUB:
		return use(in.Rd).Sub(use(in.Rs))
	case guest.ADDI:
		return use(in.Rd).Add(ConstExpr(in.Imm))
	case guest.SUBI:
		return use(in.Rd).Sub(ConstExpr(in.Imm))
	case guest.INC:
		return use(in.Rd).Add(ConstExpr(1))
	case guest.DEC:
		return use(in.Rd).Sub(ConstExpr(1))
	case guest.NEG:
		return use(in.Rd).Scale(-1)
	case guest.IMUL:
		return use(in.Rd).Mul(use(in.Rs))
	case guest.IMULI:
		return use(in.Rd).Scale(in.Imm)
	case guest.SHLI:
		if in.Imm >= 0 && in.Imm < 63 {
			return use(in.Rd).Scale(1 << uint(in.Imm))
		}
	case guest.XOR:
		if in.Rd == in.Rs {
			return ConstExpr(0) // xor-self zeroing idiom
		}
	case guest.LEA:
		return a.memExprAt(ref, in.M, nil)
	}
	return UnknownExpr()
}

// phiArgsEqual returns the common expression of all phi arguments, or
// Unknown.
func (a *Analysis) phiArgsEqual(phi *ssa.Value) Expr {
	var common Expr
	first := true
	for _, arg := range phi.Args {
		if arg == nil {
			return UnknownExpr()
		}
		e := a.ExprOf(arg)
		if e.Unknown {
			return UnknownExpr()
		}
		if first {
			common, first = e, false
		} else if !common.Equal(e) {
			return UnknownExpr()
		}
	}
	if first {
		return UnknownExpr()
	}
	return common
}

// memExprAt canonicalises the address of a memory operand at ref.
// lookup overrides the expression source for operand registers (used
// when the operand sits outside the loop).
func (a *Analysis) memExprAt(ref ssa.InstRef, m guest.Mem, lookup func(*ssa.Value) Expr) Expr {
	if lookup == nil {
		lookup = a.ExprOf
	}
	e := ConstExpr(m.Disp)
	if m.Base != guest.RegNone {
		e = e.Add(lookup(a.S.UseOf(ref, m.Base)))
	}
	if m.Index != guest.RegNone {
		e = e.Add(lookup(a.S.UseOf(ref, m.Index)).Scale(int64(m.Scale)))
	}
	return e
}

// AddrExpr canonicalises the memory operand of the instruction at ref.
func (a *Analysis) AddrExpr(ref ssa.InstRef) Expr {
	return a.memExprAt(ref, ref.Inst().M, nil)
}

func (a *Analysis) collectAccesses() {
	for _, b := range a.Loop.Blocks() {
		for i, in := range b.Insts {
			if !in.Op.HasMem() {
				continue
			}
			ref := ssa.InstRef{Block: b, Idx: i}
			switch in.Op {
			case guest.LD, guest.VLD:
				a.Accesses = append(a.Accesses, Access{Ref: ref, Width: in.AccessWidth(), Addr: a.AddrExpr(ref)})
			case guest.ST, guest.STI, guest.VST:
				a.Accesses = append(a.Accesses, Access{Ref: ref, Write: true, Width: in.AccessWidth(), Addr: a.AddrExpr(ref)})
			}
		}
	}
}

// solveTrip analyses the loop exits and derives the symbolic trip count.
func (a *Analysis) solveTrip() {
	if len(a.Loop.Exits) == 0 {
		a.fail("no loop exits")
		return
	}
	// Prefer a single analysable exit; with several exits the trip is
	// only sound if the analysed one dominates the rest, so we demand a
	// unique exit for bound-based scheduling.
	for _, exit := range a.Loop.Exits {
		sol, ok := a.solveExit(exit)
		if ok {
			a.Trip = sol.trip
			a.MainIV = sol.iv
			a.ExitBlock = exit
			a.BoundIsImm = sol.boundIsImm
			a.BoundReg = sol.boundReg
			a.CmpAddr = sol.cmpAddr
			a.LeaveOp = sol.leaveOp
			break
		}
	}
	if a.MainIV == nil {
		a.fail("cannot identify loop iterator from any exit condition")
		return
	}
	if len(a.Loop.Exits) > 1 {
		// Trip reflects only the analysed exit; other exits may leave
		// earlier. Record the iterator but drop the bound.
		a.Trip = nil
	}
}

// exitSolution is the result of analysing one exit block.
type exitSolution struct {
	trip       *Trip
	iv         *Induction
	boundIsImm bool
	boundReg   guest.Reg
	cmpAddr    uint64
	leaveOp    guest.Op
}

// solveExit tries to derive the trip count from one exit block.
func (a *Analysis) solveExit(exit *cfg.Block) (exitSolution, bool) {
	var none exitSolution
	last := exit.Last()
	if !last.Op.IsCondBranch() {
		return none, false
	}
	// Find the flags-defining compare in this block.
	cmpIdx := -1
	for i := len(exit.Insts) - 1; i >= 0; i-- {
		if exit.Insts[i].Op.WritesFlags() {
			cmpIdx = i
			break
		}
	}
	if cmpIdx < 0 {
		return none, false
	}
	cmp := exit.Insts[cmpIdx]
	if cmp.Op != guest.CMP && cmp.Op != guest.CMPI {
		return none, false
	}
	ref := ssa.InstRef{Block: exit, Idx: cmpIdx}
	lhs := a.ExprOf(a.S.UseOf(ref, cmp.Rd))
	var rhs Expr
	boundIsImm := cmp.Op == guest.CMPI
	if boundIsImm {
		rhs = ConstExpr(cmp.Imm)
	} else {
		rhs = a.ExprOf(a.S.UseOf(ref, cmp.Rs))
	}

	// Determine the leave-loop condition.
	op := last.Op
	taken := a.blockAt(uint64(last.Imm))
	leavesOnTaken := taken == nil || !a.Loop.Body[taken]
	if !leavesOnTaken {
		op = guest.InvertCond(op)
	}

	// Identify the induction side.
	var ivExpr, bound Expr
	swapped := false
	switch {
	case lhs.Iter != 0 && rhs.IsInvariant():
		ivExpr, bound = lhs, rhs
	case rhs.Iter != 0 && lhs.IsInvariant():
		ivExpr, bound = rhs, lhs
		swapped = true
	default:
		return none, false
	}
	if swapped {
		// a OP b with sides swapped: flip the comparison.
		switch op {
		case guest.JL:
			op = guest.JG
		case guest.JLE:
			op = guest.JGE
		case guest.JG:
			op = guest.JL
		case guest.JGE:
			op = guest.JLE
		}
	}
	iv := a.inductionFor(ivExpr)
	if iv == nil {
		return none, false
	}
	s := ivExpr.Iter
	base := ivExpr.Invariant() // value at i = 0
	var trip *Trip
	switch {
	case op == guest.JGE && s > 0:
		trip = &Trip{Num: bound.Sub(base), Den: s, Round: RoundCeil}
	case op == guest.JG && s > 0:
		trip = &Trip{Num: bound.Sub(base).Add(ConstExpr(1)), Den: s, Round: RoundCeil}
	case op == guest.JLE && s < 0:
		trip = &Trip{Num: base.Sub(bound), Den: -s, Round: RoundCeil}
	case op == guest.JL && s < 0:
		trip = &Trip{Num: base.Sub(bound).Add(ConstExpr(1)), Den: -s, Round: RoundCeil}
	case op == guest.JE && s > 0:
		trip = &Trip{Num: bound.Sub(base), Den: s, Round: RoundExact}
	case op == guest.JE && s < 0:
		trip = &Trip{Num: base.Sub(bound), Den: -s, Round: RoundExact}
	default:
		return none, false
	}
	boundReg := guest.RegNone
	if !boundIsImm {
		boundReg = cmp.Rs
		if swapped {
			boundReg = cmp.Rd
		}
	}
	return exitSolution{
		trip:       trip,
		iv:         iv,
		boundIsImm: boundIsImm,
		boundReg:   boundReg,
		cmpAddr:    exit.InstAddr(cmpIdx),
		leaveOp:    op,
	}, true
}

// inductionFor matches an expression against the recognised induction
// variables: expr must be ind.Init + ind.Step·i (+ const offset is also
// fine — it is still controlled by the same iterator).
func (a *Analysis) inductionFor(e Expr) *Induction {
	for i := range a.Inductions {
		if a.Inductions[i].Step == e.Iter {
			return &a.Inductions[i]
		}
	}
	return nil
}

func (a *Analysis) blockAt(addr uint64) *cfg.Block {
	return a.Loop.Fn.BlockAt[addr]
}

// findCarriedAndLiveOut classifies the remaining header phis and the
// registers needing final-value reconstruction.
func (a *Analysis) findCarriedAndLiveOut() {
	for _, phi := range a.S.Phis[a.Loop.Header] {
		if phi.IsFlags || a.indByPhi[phi] != nil || a.redByPhi[phi] {
			continue
		}
		// Minimal SSA places phis for registers merely redefined in the
		// loop; only a phi whose value is read inside the body carries
		// a genuine dependence.
		if !a.phiUsedInLoop(phi) {
			continue
		}
		// A phi whose arguments all agree is a duplicated path, not a
		// dependence.
		if !a.phiArgsEqual(phi).Unknown {
			continue
		}
		a.CarriedRegs = append(a.CarriedRegs, phi.Reg)
	}
	defined := map[guest.Reg]bool{}
	for b := range a.Loop.Body {
		for _, in := range b.Insts {
			for _, d := range in.Defs() {
				if d.Kind == guest.LocReg && d.Reg < guest.NumGPR {
					defined[d.Reg] = true
				}
			}
		}
	}
	seen := map[guest.Reg]bool{}
	for _, t := range a.Loop.ExitTargets {
		// liveInto returns a set; emit its members in register order so
		// LiveOutRegs — and everything serialised from it, like the
		// LOOP_FINISH rules the artifact cache hashes — is identical
		// across runs.
		var regs []guest.Reg
		for r := range liveInto(a.S, t) {
			if defined[r] && !seen[r] {
				seen[r] = true
				regs = append(regs, r)
			}
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		a.LiveOutRegs = append(a.LiveOutRegs, regs...)
	}
}

// phiUsedInLoop reports whether the phi's value is read by an
// instruction inside the loop body. Argument-register "uses" by call
// instructions are ignored: the call only forwards them to the callee,
// and a callee reading an argument the caller never set is undefined
// behaviour under the calling convention, not a loop-carried value.
func (a *Analysis) phiUsedInLoop(phi *ssa.Value) bool {
	for b := range a.Loop.Body {
		for i := range b.Insts {
			ref := ssa.InstRef{Block: b, Idx: i}
			in := b.Insts[i]
			for r, v := range a.S.RegUse[ref] {
				if v != phi {
					continue
				}
				if in.Op.IsCall() && r >= guest.R1 && r <= guest.R5 {
					continue
				}
				return true
			}
		}
	}
	return false
}

// liveInto approximates the registers live at entry to block b: those
// read in b before being written, plus everything live out of b.
func liveInto(s *ssa.SSA, b *cfg.Block) map[guest.Reg]bool {
	out := map[guest.Reg]bool{}
	written := map[guest.Reg]bool{}
	for _, in := range b.Insts {
		for _, u := range in.Uses() {
			if u.Kind == guest.LocReg && !written[u.Reg] {
				out[u.Reg] = true
			}
		}
		for _, d := range in.Defs() {
			if d.Kind == guest.LocReg {
				written[d.Reg] = true
			}
		}
	}
	for r := range s.LiveOut[b] {
		if !written[r] {
			out[r] = true
		}
	}
	return out
}

// String summarises the analysis for diagnostics.
func (a *Analysis) String() string {
	status := "regular"
	if a.Irregular {
		status = "irregular: " + a.Reason
	}
	trip := "unknown"
	if a.Trip != nil {
		trip = fmt.Sprintf("ceil((%s)/%d)", a.Trip.Num, a.Trip.Den)
	}
	return fmt.Sprintf("loop@%#x %s, %d ivs, %d reds, %d accesses, trip=%s",
		a.Loop.Header.Addr, status, len(a.Inductions), len(a.Reductions), len(a.Accesses), trip)
}
