package sym

import (
	"testing"
	"testing/quick"

	"janus/internal/asm"
	"janus/internal/cfg"
	"janus/internal/guest"
	"janus/internal/ssa"
)

// analyzeFirstLoop assembles the program built by build, then returns
// the symbolic analysis of the first loop in main.
func analyzeFirstLoop(t *testing.T, build func(f *asm.FuncBuilder)) *Analysis {
	t.Helper()
	b := asm.NewBuilder("t")
	b.Data("arr", 8*1024)
	b.Data("dst", 8*1024)
	f := b.Func("main")
	build(f)
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	main := p.FuncByAddr[exe.Entry]
	if len(main.Loops) == 0 {
		t.Fatal("no loops found")
	}
	s := ssa.Build(main)
	return Analyze(main.Loops[0], s)
}

// emitSimpleLoop: for (i = 0; i < 100; i++) dst[i] = a[i] * 3
func emitSimpleLoop(f *asm.FuncBuilder) {
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, "arr", 0)
	f.MoviData(guest.R9, "dst", 0)
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, 100)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.OpI(guest.IMULI, guest.R3, 3)
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.Halt()
}

func TestInductionRecognition(t *testing.T) {
	a := analyzeFirstLoop(t, emitSimpleLoop)
	if a.Irregular {
		t.Fatalf("irregular: %s", a.Reason)
	}
	if len(a.Inductions) != 1 {
		t.Fatalf("inductions: %d", len(a.Inductions))
	}
	iv := a.Inductions[0]
	if iv.Reg != guest.R1 || iv.Step != 1 {
		t.Fatalf("iv = %+v", iv)
	}
	if !iv.Init.IsConst() || iv.Init.Const != 0 {
		t.Fatalf("init = %v", iv.Init)
	}
}

func TestTripCountStatic(t *testing.T) {
	a := analyzeFirstLoop(t, emitSimpleLoop)
	if a.Trip == nil {
		t.Fatal("no trip")
	}
	n, static := a.Trip.IsStatic()
	if !static || n != 100 {
		t.Fatalf("trip = %d static=%v", n, static)
	}
}

func TestAccessStrides(t *testing.T) {
	a := analyzeFirstLoop(t, emitSimpleLoop)
	if len(a.Accesses) != 2 {
		t.Fatalf("accesses: %d", len(a.Accesses))
	}
	var rd, wr *Access
	for i := range a.Accesses {
		if a.Accesses[i].Write {
			wr = &a.Accesses[i]
		} else {
			rd = &a.Accesses[i]
		}
	}
	if rd == nil || wr == nil {
		t.Fatal("missing read or write access")
	}
	if rd.Addr.Iter != 8 || wr.Addr.Iter != 8 {
		t.Fatalf("strides: rd=%d wr=%d", rd.Addr.Iter, wr.Addr.Iter)
	}
	// MoviData loads an absolute address, so the bases fold to the
	// constant data addresses and must differ by the two arrays' layout.
	if !rd.Addr.Invariant().IsConst() || !wr.Addr.Invariant().IsConst() {
		t.Fatalf("bases should be constant: rd=%v wr=%v", rd.Addr, wr.Addr)
	}
	if rd.Addr.Const == wr.Addr.Const {
		t.Fatal("distinct arrays folded to same base")
	}
}

func TestRuntimeBoundLoop(t *testing.T) {
	// Bound comes from a register (n in R7) loaded from memory, so the
	// trip count is only computable at run time.
	a := analyzeFirstLoop(t, func(f *asm.FuncBuilder) {
		loop, done := f.NewLabel(), f.NewLabel()
		f.LdData(guest.R7, "arr", 8) // opaque runtime value
		f.MoviData(guest.R8, "arr", 0)
		f.Movi(guest.R1, 0)
		f.Bind(loop)
		f.Cmp(guest.R1, guest.R7)
		f.J(guest.JGE, done)
		f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R1)
		f.OpI(guest.ADDI, guest.R1, 1)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Halt()
	})
	if a.Trip == nil {
		t.Fatal("trip unsolved")
	}
	if _, static := a.Trip.IsStatic(); static {
		t.Fatal("register bound must not be static")
	}
	if a.BoundIsImm || a.BoundReg != guest.R7 {
		t.Fatalf("bound operand: imm=%v reg=%v", a.BoundIsImm, a.BoundReg)
	}
	// Evaluating with r7 = 5000 yields 5000 iterations.
	n := a.Trip.Count(func(r guest.Reg) uint64 {
		if r == guest.R7 {
			return 5000
		}
		return 0
	})
	if n != 5000 {
		t.Fatalf("count = %d", n)
	}
}

func TestDownCountingLoop(t *testing.T) {
	// for (i = 64; i > 0; i--)
	a := analyzeFirstLoop(t, func(f *asm.FuncBuilder) {
		loop, done := f.NewLabel(), f.NewLabel()
		f.Movi(guest.R1, 64)
		f.MoviData(guest.R8, "arr", 0)
		f.Bind(loop)
		f.Cmpi(guest.R1, 0)
		f.J(guest.JLE, done)
		f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R1)
		f.OpI(guest.SUBI, guest.R1, 1)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Halt()
	})
	if a.Trip == nil {
		t.Fatalf("down-counting trip unsolved: %s", a.Reason)
	}
	n, static := a.Trip.IsStatic()
	if !static || n != 64 {
		t.Fatalf("trip = %d", n)
	}
	if a.MainIV.Step != -1 {
		t.Fatalf("step = %d", a.MainIV.Step)
	}
}

func TestStridedLoop(t *testing.T) {
	// for (i = 0; i < 100; i += 4) — JGE exit, ceil division.
	a := analyzeFirstLoop(t, func(f *asm.FuncBuilder) {
		loop, done := f.NewLabel(), f.NewLabel()
		f.Movi(guest.R1, 0)
		f.MoviData(guest.R8, "arr", 0)
		f.Bind(loop)
		f.Cmpi(guest.R1, 99)
		f.J(guest.JG, done)
		f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R1)
		f.OpI(guest.ADDI, guest.R1, 4)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Halt()
	})
	n, static := a.Trip.IsStatic()
	if !static || n != 25 {
		t.Fatalf("trip = %d, want 25", n)
	}
}

func TestReductionRecognition(t *testing.T) {
	// sum += a[i]
	a := analyzeFirstLoop(t, func(f *asm.FuncBuilder) {
		loop, done := f.NewLabel(), f.NewLabel()
		f.MoviData(guest.R8, "arr", 0)
		f.Movi(guest.R1, 0)
		f.Movi(guest.R2, 0) // sum
		f.Bind(loop)
		f.Cmpi(guest.R1, 100)
		f.J(guest.JGE, done)
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Op(guest.ADD, guest.R2, guest.R3)
		f.OpI(guest.ADDI, guest.R1, 1)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Movi(guest.R0, guest.SysWrite)
		f.Mov(guest.R1, guest.R2)
		f.Syscall()
		f.Halt()
	})
	if len(a.Reductions) != 1 {
		t.Fatalf("reductions: %d", len(a.Reductions))
	}
	red := a.Reductions[0]
	if red.Reg != guest.R2 || red.Op != guest.ADD {
		t.Fatalf("reduction = %+v", red)
	}
	// The reduction register must be reported live-out.
	found := false
	for _, r := range a.LiveOutRegs {
		if r == guest.R2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("r2 not live-out: %v", a.LiveOutRegs)
	}
}

func TestCarriedDependenceDetected(t *testing.T) {
	// x = a[i] + x_prev pattern that is NOT a plain accumulation:
	// here x is multiplied then stored, a genuine recurrence.
	a := analyzeFirstLoop(t, func(f *asm.FuncBuilder) {
		loop, done := f.NewLabel(), f.NewLabel()
		f.MoviData(guest.R8, "arr", 0)
		f.Movi(guest.R1, 0)
		f.Movi(guest.R2, 1)
		f.Bind(loop)
		f.Cmpi(guest.R1, 100)
		f.J(guest.JGE, done)
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Op(guest.IMUL, guest.R3, guest.R2) // uses carried r2
		f.Mov(guest.R2, guest.R3)            // carries new value
		f.OpI(guest.ADDI, guest.R2, 7)       // non-trivial chain
		f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R2)
		f.OpI(guest.ADDI, guest.R1, 1)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Halt()
	})
	if len(a.CarriedRegs) == 0 {
		t.Fatal("carried register dependence not detected")
	}
}

func TestUnknownAddressIsOpaque(t *testing.T) {
	// Pointer-chasing load: addr comes from memory, unanalysable.
	a := analyzeFirstLoop(t, func(f *asm.FuncBuilder) {
		loop, done := f.NewLabel(), f.NewLabel()
		f.MoviData(guest.R8, "arr", 0)
		f.Movi(guest.R1, 0)
		f.Bind(loop)
		f.Cmpi(guest.R1, 100)
		f.J(guest.JGE, done)
		f.Ld(guest.R4, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Ld(guest.R5, guest.Mem{Base: guest.R4, Index: guest.RegNone, Scale: 1}) // *p
		f.St(guest.Mem{Base: guest.R4, Index: guest.RegNone, Scale: 1}, guest.R5)
		f.OpI(guest.ADDI, guest.R1, 1)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Halt()
	})
	unknown := 0
	for _, acc := range a.Accesses {
		if acc.Addr.Unknown {
			unknown++
		}
	}
	if unknown != 2 {
		t.Fatalf("want 2 opaque accesses, got %d", unknown)
	}
}

func TestExprAlgebra(t *testing.T) {
	e := RegExpr(guest.R3).Scale(8).Add(ConstExpr(16)).Add(IterExpr(8))
	if e.Regs[guest.R3] != 8 || e.Const != 16 || e.Iter != 8 {
		t.Fatalf("expr = %+v", e)
	}
	if e.IsInvariant() || e.IsConst() {
		t.Fatal("iter-carrying expr misclassified")
	}
	inv := e.Invariant()
	if inv.Iter != 0 || !inv.IsInvariant() {
		t.Fatal("Invariant() broken")
	}
	d := e.Sub(e)
	if !d.IsConst() || d.Const != 0 {
		t.Fatalf("x - x = %v", d)
	}
	if !UnknownExpr().Add(ConstExpr(1)).Unknown {
		t.Fatal("unknown must absorb")
	}
	if !RegExpr(guest.R1).Mul(RegExpr(guest.R2)).Unknown {
		t.Fatal("non-linear product must be unknown")
	}
}

func TestExprEvalProperty(t *testing.T) {
	f := func(c int64, cr int8, iter int16, rv uint32) bool {
		e := ConstExpr(c).Add(RegExpr(guest.R4).Scale(int64(cr))).Add(IterExpr(3))
		got := e.Eval(func(r guest.Reg) uint64 {
			if r == guest.R4 {
				return uint64(rv)
			}
			return 0
		}, int64(iter))
		want := c + int64(cr)*int64(rv) + 3*int64(iter)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExprAddCommutesProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int32) bool {
		x := ConstExpr(int64(a1)).Add(RegExpr(guest.R2).Scale(int64(a2)))
		y := IterExpr(int64(b1)).Add(RegExpr(guest.R5).Scale(int64(b2)))
		return x.Add(y).Equal(y.Add(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripCountClampsToZero(t *testing.T) {
	tr := Trip{Num: ConstExpr(-5), Den: 1, Round: RoundCeil}
	if n := tr.Count(func(guest.Reg) uint64 { return 0 }); n != 0 {
		t.Fatalf("negative trip = %d", n)
	}
}
