// Package sym implements the symbolic layer of the static analyser:
// canonicalised linear expressions over loop-entry register values, the
// cyclic-phi induction-variable recogniser, loop-bound solving, and
// symbolic memory-address construction with range propagation. It is the
// machinery behind the paper's "canonicalised symbolic polynomial" and
// figure 4's MEM_BOUNDS_CHECK generation.
package sym

import (
	"fmt"
	"sort"
	"strings"

	"janus/internal/guest"
)

// Expr is a canonical linear polynomial
//
//	Const + Σ Regs[r]·entry(r) + Iter·i
//
// where entry(r) is the value register r holds when the loop is entered
// and i is the canonical iteration index (0-based). Expressions with
// Unknown set could not be canonicalised (opaque loads, non-linear
// arithmetic, values varying in an inner loop).
type Expr struct {
	Unknown bool
	Const   int64
	Regs    map[guest.Reg]int64
	Iter    int64
}

// UnknownExpr is the non-canonicalisable expression.
func UnknownExpr() Expr { return Expr{Unknown: true} }

// ConstExpr returns the constant polynomial c.
func ConstExpr(c int64) Expr { return Expr{Const: c} }

// RegExpr returns the polynomial naming loop-entry register r.
func RegExpr(r guest.Reg) Expr {
	return Expr{Regs: map[guest.Reg]int64{r: 1}}
}

// IterExpr returns coeff·i.
func IterExpr(coeff int64) Expr { return Expr{Iter: coeff} }

// IsConst reports whether e is a compile-time constant.
func (e Expr) IsConst() bool {
	return !e.Unknown && e.Iter == 0 && len(e.Regs) == 0
}

// IsInvariant reports whether e does not vary with the iteration index.
func (e Expr) IsInvariant() bool { return !e.Unknown && e.Iter == 0 }

// Invariant returns e with the iterator term removed: the loop-invariant
// "base" part of an address polynomial.
func (e Expr) Invariant() Expr {
	out := e
	out.Iter = 0
	out.Regs = cloneRegs(e.Regs)
	return out
}

func cloneRegs(m map[guest.Reg]int64) map[guest.Reg]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[guest.Reg]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	if e.Unknown || o.Unknown {
		return UnknownExpr()
	}
	out := Expr{Const: e.Const + o.Const, Iter: e.Iter + o.Iter, Regs: cloneRegs(e.Regs)}
	for r, c := range o.Regs {
		if out.Regs == nil {
			out.Regs = map[guest.Reg]int64{}
		}
		out.Regs[r] += c
		if out.Regs[r] == 0 {
			delete(out.Regs, r)
		}
	}
	return out
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Scale(-1)) }

// Scale returns k·e.
func (e Expr) Scale(k int64) Expr {
	if e.Unknown {
		return e
	}
	if k == 0 {
		return Expr{}
	}
	out := Expr{Const: e.Const * k, Iter: e.Iter * k}
	if len(e.Regs) > 0 {
		out.Regs = make(map[guest.Reg]int64, len(e.Regs))
		for r, c := range e.Regs {
			out.Regs[r] = c * k
		}
	}
	return out
}

// Mul returns e·o when at least one side is constant; otherwise the
// product is non-linear and Unknown.
func (e Expr) Mul(o Expr) Expr {
	switch {
	case e.Unknown || o.Unknown:
		return UnknownExpr()
	case e.IsConst():
		return o.Scale(e.Const)
	case o.IsConst():
		return e.Scale(o.Const)
	}
	return UnknownExpr()
}

// Equal reports structural equality of two canonical polynomials.
func (e Expr) Equal(o Expr) bool {
	if e.Unknown || o.Unknown {
		return false
	}
	if e.Const != o.Const || e.Iter != o.Iter || len(e.Regs) != len(o.Regs) {
		return false
	}
	for r, c := range e.Regs {
		if o.Regs[r] != c {
			return false
		}
	}
	return true
}

// Eval computes the polynomial's value given the loop-entry register
// file and an iteration index.
func (e Expr) Eval(regs func(guest.Reg) uint64, iter int64) int64 {
	v := e.Const + e.Iter*iter
	for r, c := range e.Regs {
		v += c * int64(regs(r))
	}
	return v
}

// String renders the polynomial in a stable order.
func (e Expr) String() string {
	if e.Unknown {
		return "⊥"
	}
	var parts []string
	regs := make([]guest.Reg, 0, len(e.Regs))
	for r := range e.Regs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	for _, r := range regs {
		c := e.Regs[r]
		switch c {
		case 1:
			parts = append(parts, r.String()+"_0")
		default:
			parts = append(parts, fmt.Sprintf("%d*%s_0", c, r))
		}
	}
	if e.Iter != 0 {
		if e.Iter == 1 {
			parts = append(parts, "i")
		} else {
			parts = append(parts, fmt.Sprintf("%d*i", e.Iter))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	return strings.Join(parts, "+")
}
