package jrt

import (
	"math"
	"testing"
	"testing/quick"

	"janus/internal/guest"
	"janus/internal/rules"
	"janus/internal/sym"
)

func TestPartitionChunkedCoversExactly(t *testing.T) {
	f := func(nRaw uint16, partsRaw uint8) bool {
		n := int64(nRaw)
		parts := int(partsRaw)%8 + 1
		chunks := PartitionChunked(n, parts)
		if len(chunks) != parts {
			return false
		}
		var total int64
		prev := int64(0)
		for _, c := range chunks {
			if c.Lo > c.Hi || c.Lo < prev {
				return false
			}
			total += c.Hi - c.Lo
			prev = c.Lo
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionChunkedBalance(t *testing.T) {
	chunks := PartitionChunked(100, 8)
	// ceil(100/8) = 13 per thread, last thread gets the remainder.
	if chunks[0].Hi-chunks[0].Lo != 13 {
		t.Fatalf("first chunk %+v", chunks[0])
	}
	if chunks[7].Hi != 100 {
		t.Fatalf("last chunk %+v", chunks[7])
	}
	empty := PartitionChunked(0, 4)
	for _, c := range empty {
		if c.Lo != c.Hi {
			t.Fatal("zero-trip loop must yield empty chunks")
		}
	}
}

// TestPartitionTable drives both partitioners over the edge cases that
// matter for the region engines: every returned partition must cover
// [0, n) exactly once in ascending order, owners must agree between
// the two partitioners, and repeated calls must be deterministic.
func TestPartitionTable(t *testing.T) {
	cases := []struct {
		name    string
		n       int64
		threads int
	}{
		{"zero-trip", 0, 8},
		{"fewer-iterations-than-threads", 3, 8},
		{"one-per-thread", 8, 8},
		{"uneven", 100, 8},
		{"single-thread", 100, 1},
		{"two-threads-odd", 101, 2},
		{"exact-multiple", 96, 8},
		{"one-iteration", 1, 8},
		{"large", 1 << 20, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			static := PartitionChunked(tc.n, tc.threads)
			if len(static) != tc.threads {
				t.Fatalf("PartitionChunked returned %d chunks for %d threads", len(static), tc.threads)
			}
			assertCovers(t, "static", tc.n, func(yield func(Chunk, int)) {
				for o, c := range static {
					yield(c, o)
				}
			})

			steal := PartitionStealing(tc.n, tc.threads, StealFactor)
			assertCovers(t, "stealing", tc.n, func(yield func(Chunk, int)) {
				for _, sc := range steal {
					yield(sc.Chunk, sc.Owner)
				}
			})
			// No stealing subchunk may be empty, and each owner's pieces
			// must reassemble exactly the owner's static chunk.
			ownerLo := map[int]int64{}
			ownerHi := map[int]int64{}
			for _, sc := range steal {
				if sc.Lo >= sc.Hi {
					t.Fatalf("empty stealing subchunk %+v", sc)
				}
				if sc.Hi-sc.Lo > (static[sc.Owner].Hi-static[sc.Owner].Lo+StealFactor-1)/StealFactor {
					t.Errorf("subchunk %+v larger than ceil(chunk/factor)", sc)
				}
				if _, seen := ownerLo[sc.Owner]; !seen || sc.Lo < ownerLo[sc.Owner] {
					ownerLo[sc.Owner] = sc.Lo
				}
				if sc.Hi > ownerHi[sc.Owner] {
					ownerHi[sc.Owner] = sc.Hi
				}
			}
			for o, c := range static {
				if c.Lo >= c.Hi {
					if _, ok := ownerLo[o]; ok {
						t.Errorf("owner %d has stealing pieces but an empty static chunk", o)
					}
					continue
				}
				if ownerLo[o] != c.Lo || ownerHi[o] != c.Hi {
					t.Errorf("owner %d pieces span [%d,%d), static chunk is [%d,%d)", o, ownerLo[o], ownerHi[o], c.Lo, c.Hi)
				}
			}
			// Deterministic: a second call returns the identical slice.
			again := PartitionStealing(tc.n, tc.threads, StealFactor)
			if len(again) != len(steal) {
				t.Fatalf("second call returned %d chunks, first %d", len(again), len(steal))
			}
			for i := range steal {
				if steal[i] != again[i] {
					t.Fatalf("chunk %d differs between calls: %+v vs %+v", i, steal[i], again[i])
				}
			}
		})
	}
}

// assertCovers checks that the yielded chunks tile [0, n) exactly, in
// ascending order, with owners ascending too.
func assertCovers(t *testing.T, label string, n int64, chunks func(yield func(Chunk, int))) {
	t.Helper()
	next := int64(0)
	lastOwner := -1
	chunks(func(c Chunk, owner int) {
		if c.Lo > c.Hi {
			t.Fatalf("%s: inverted chunk %+v", label, c)
		}
		if c.Lo == c.Hi {
			return // empty chunks occupy no iterations
		}
		if c.Lo != next {
			t.Fatalf("%s: chunk %+v does not start at next uncovered iteration %d", label, c, next)
		}
		if owner < lastOwner {
			t.Fatalf("%s: owner order regressed (%d after %d)", label, owner, lastOwner)
		}
		lastOwner = owner
		next = c.Hi
	})
	if next != n {
		t.Fatalf("%s: covered [0,%d), want [0,%d)", label, next, n)
	}
}

func TestPartitionStealingFactorOne(t *testing.T) {
	// factor 1 must degenerate to the static partition (minus empty
	// chunks).
	static := PartitionChunked(100, 8)
	steal := PartitionStealing(100, 8, 1)
	j := 0
	for o, c := range static {
		if c.Lo >= c.Hi {
			continue
		}
		if j >= len(steal) {
			t.Fatalf("piece %d missing: want owner %d chunk %+v", j, o, c)
		}
		if steal[j].Owner != o || steal[j].Chunk != c {
			t.Fatalf("piece %d: got %+v, want owner %d chunk %+v", j, steal[j], o, c)
		}
		j++
	}
	if j != len(steal) {
		t.Fatalf("%d extra stealing pieces", len(steal)-j)
	}
}

func TestRoundRobinChunksCoverAll(t *testing.T) {
	const n, size, parts = 103, 4, 3
	seen := map[int64]int{}
	for th := 0; th < parts; th++ {
		for _, c := range RoundRobinChunks(n, size, parts, th) {
			for i := c.Lo; i < c.Hi; i++ {
				seen[i]++
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("covered %d of %d", len(seen), n)
	}
	for i, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("iteration %d covered %d times", i, cnt)
		}
	}
}

func TestReductionIdentities(t *testing.T) {
	if ReductionIdentity(guest.ADD) != 0 {
		t.Error("int add identity")
	}
	if ReductionIdentity(guest.FADD) != 0 {
		t.Error("float add identity must be +0.0 bits")
	}
	if math.Float64frombits(ReductionIdentity(guest.FMUL)) != 1.0 {
		t.Error("float mul identity")
	}
}

func TestMergeReduction(t *testing.T) {
	if MergeReduction(guest.ADD, 5, 7) != 12 {
		t.Error("int add merge")
	}
	got := math.Float64frombits(MergeReduction(guest.FADD, math.Float64bits(1.5), math.Float64bits(2.25)))
	if got != 3.75 {
		t.Errorf("fadd merge = %v", got)
	}
	got = math.Float64frombits(MergeReduction(guest.FMUL, math.Float64bits(3), math.Float64bits(4)))
	if got != 12 {
		t.Errorf("fmul merge = %v", got)
	}
}

func TestMergeReductionAssociates(t *testing.T) {
	// Splitting a sum across threads and merging must equal the
	// sequential sum (exact for integers).
	f := func(vals []int16) bool {
		var seq uint64
		for _, v := range vals {
			seq += uint64(int64(v))
		}
		acc := ReductionIdentity(guest.ADD)
		mid := len(vals) / 2
		var p1, p2 uint64
		for _, v := range vals[:mid] {
			p1 += uint64(int64(v))
		}
		for _, v := range vals[mid:] {
			p2 += uint64(int64(v))
		}
		acc = MergeReduction(guest.ADD, acc, p1)
		acc = MergeReduction(guest.ADD, acc, p2)
		return acc == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrivateResourceLayoutsDisjoint(t *testing.T) {
	// Stacks and TLS blocks of distinct threads must never overlap.
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			if a > 0 && StackTopFor(a)-StackSpan < StackTopFor(b) && StackTopFor(b)-StackSpan < StackTopFor(a) && b > 0 {
				t.Fatalf("stacks of %d and %d overlap", a, b)
			}
			if TLSFor(a)+TLSSpan > TLSFor(b) && TLSFor(b)+TLSSpan > TLSFor(a) {
				t.Fatalf("TLS of %d and %d overlap", a, b)
			}
		}
	}
	if PrivAddr(1, 0) == PrivAddr(2, 0) {
		t.Fatal("private slots collide across threads")
	}
	if PrivAddr(1, 0) == PrivAddr(1, 1) {
		t.Fatal("private slots collide within a thread")
	}
}

func TestPatchedBound(t *testing.T) {
	entry := func(r guest.Reg) uint64 { return 0 }
	// Up-counting JGE loop: iv starts 0, step 1; thread bound hi=25
	// means leave when iv >= 25.
	d := rules.UpdateBoundData{ExitOp: guest.JGE, Step: 1, Init: sym.ConstExpr(0)}
	v, err := PatchedBound(d, entry, 25)
	if err != nil || v != 25 {
		t.Fatalf("JGE bound = %d, err %v", v, err)
	}
	// JG leaves when iv > bound: bound must be init+step*(hi-1).
	d.ExitOp = guest.JG
	v, err = PatchedBound(d, entry, 25)
	if err != nil || v != 24 {
		t.Fatalf("JG bound = %d", v)
	}
	// Down-counting JLE loop from 100 step -2, hi=10: leave when
	// iv <= 100-20 = 80.
	d = rules.UpdateBoundData{ExitOp: guest.JLE, Step: -2, Init: sym.ConstExpr(100)}
	v, err = PatchedBound(d, entry, 10)
	if err != nil || int64(v) != 80 {
		t.Fatalf("JLE bound = %d", int64(v))
	}
	// Unsupported op errors.
	d.ExitOp = guest.ADD
	if _, err := PatchedBound(d, entry, 1); err == nil {
		t.Fatal("expected error for bad leave-op")
	}
}

func TestPoolStates(t *testing.T) {
	p := NewPool(4, nil)
	if p.Size() != 4 {
		t.Fatal("pool size")
	}
	if p.Threads[0].State != StateIdle {
		t.Fatal("threads must start idle")
	}
	for _, s := range []State{StateIdle, StateScheduled, StateRunning, StateDone} {
		if s.String() == "" {
			t.Fatal("state has no name")
		}
	}
}
