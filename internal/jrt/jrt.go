// Package jrt is the Janus runtime: the thread pool, per-thread loop
// contexts and private resources (stack, TLS, private storage slots),
// iteration-space partitioning for the chunked, work-stealing and
// round-robin scheduling policies, and reduction identity/merge
// arithmetic.
//
// The paper's runtime keeps a pool of OS threads that wait for
// THREAD_SCHEDULE and return on THREAD_YIELD. Here threads are
// deterministic simulated contexts driven by the DBM executor — either
// stepped round-robin on one goroutine or, for loops whose bodies are
// provably free of cross-thread interaction, run concurrently on real
// host goroutines; the pool states and scheduling policies are
// modelled faithfully and results are reproducible under both engines
// (see ARCHITECTURE.md for the substitution rationale).
package jrt

import (
	"fmt"
	"math"

	"janus/internal/guest"
	"janus/internal/rules"
	"janus/internal/vm"
)

// Private resource layout: each thread t gets a stack and a TLS block
// at fixed, disjoint addresses well away from program data.
const (
	// WorkerStackBase is the top of thread 1's private stack; thread t
	// uses WorkerStackBase - (t-1)*StackSpan.
	WorkerStackBase = 0x7ffd_0000_0000
	// StackSpan separates consecutive worker stacks.
	StackSpan = 0x10_0000
	// TLSBase is thread 0's TLS block; thread t uses TLSBase + t*TLSSpan.
	TLSBase = 0x7fd0_0000_0000
	// TLSSpan is the size of one TLS block.
	TLSSpan = 0x1_0000
	// PrivSlotSize is the TLS bytes reserved per private-storage slot.
	PrivSlotSize = 64
	// PrivSlotOff is the offset of slot 0 within a TLS block.
	PrivSlotOff = 0x1000
)

// StackTopFor returns the private stack top for thread id (thread 0 is
// the main thread and keeps the program stack).
func StackTopFor(id int) uint64 {
	if id == 0 {
		return 0 // main keeps its own stack
	}
	return WorkerStackBase - uint64(id-1)*StackSpan
}

// TLSFor returns the TLS base for thread id.
func TLSFor(id int) uint64 { return TLSBase + uint64(id)*TLSSpan }

// PrivAddr returns the private-storage address of slot for thread id.
func PrivAddr(id int, slot int32) uint64 {
	return TLSFor(id) + PrivSlotOff + uint64(slot)*PrivSlotSize
}

// State is a pool thread's lifecycle state.
type State uint8

const (
	// StateIdle: waiting in the pool.
	StateIdle State = iota
	// StateScheduled: directed at a code address, not yet running.
	StateScheduled
	// StateRunning: executing loop iterations.
	StateRunning
	// StateDone: finished its chunk, waiting for LOOP_FINISH.
	StateDone
)

func (s State) String() string {
	return [...]string{"idle", "scheduled", "running", "done"}[s]
}

// Thread is one Janus thread: a VM context plus pool bookkeeping.
type Thread struct {
	ID    int
	Ctx   *vm.Context
	State State
	// Chunk is the thread's iteration range [Lo, Hi).
	Lo, Hi int64
	// Oldest marks the thread owning the earliest unfinished chunk
	// (the only thread allowed to commit transactions).
	Oldest bool

	// Owner is the guest thread owning the subchunk this context is
	// currently executing inside a work-stealing region (equal to ID
	// outside such regions). Translation costs are charged per owner so
	// folded counters match static chunking.
	Owner int

	// Steps counts instructions executed by this thread since the DBM
	// last folded it into its global step budget. Accumulated
	// thread-locally so host-parallel threads never contend on (or
	// race over) a shared counter; the executor drains it at
	// deterministic points.
	Steps int64
	// TransBlocks/TransInsts/TransCycles accumulate this thread's
	// translation work since the last fold, for the same reason.
	TransBlocks int64
	TransInsts  int64
	TransCycles int64
}

// Pool is the Janus thread pool.
type Pool struct {
	Threads []*Thread
}

// NewPool creates n threads (thread 0 wraps the main context).
func NewPool(n int, mainCtx *vm.Context) *Pool {
	p := &Pool{}
	for i := 0; i < n; i++ {
		t := &Thread{ID: i}
		if i == 0 {
			t.Ctx = mainCtx
		} else {
			t.Ctx = &vm.Context{ID: i}
		}
		p.Threads = append(p.Threads, t)
	}
	return p
}

// Size returns the thread count.
func (p *Pool) Size() int { return len(p.Threads) }

// Chunk is one contiguous iteration range assigned to a thread.
type Chunk struct{ Lo, Hi int64 }

// PartitionChunked splits [0, n) into parts contiguous chunks of size
// ceil(n/parts) (the paper's #iterations/#threads policy).
func PartitionChunked(n int64, parts int) []Chunk {
	out := make([]Chunk, parts)
	if n <= 0 || parts <= 0 {
		return out
	}
	size := (n + int64(parts) - 1) / int64(parts)
	for i := range out {
		lo := int64(i) * size
		hi := lo + size
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		out[i] = Chunk{Lo: lo, Hi: hi}
	}
	return out
}

// StealFactor is the target number of work-stealing subchunks per
// thread: PartitionStealing subdivides each static chunk into up to
// this many pieces, giving idle host workers pieces to steal without
// changing the guest-visible partition.
const StealFactor = 4

// StealChunk is one work-stealing unit: a contiguous subrange of one
// guest thread's static chunk. Owner is the thread whose
// PartitionChunked chunk contains the range; the executor folds every
// subchunk's virtual-cycle cost back into its owner, so simulated
// results are bit-identical to static chunking however the host
// schedules subchunks.
type StealChunk struct {
	Owner int
	Chunk
}

// PartitionStealing subdivides each PartitionChunked(n, parts) chunk
// into up to factor equal pieces, returned in deterministic ascending
// order (owner-major, then Lo). Empty pieces are omitted; the returned
// ranges cover [0, n) exactly, and the union of one owner's pieces is
// exactly that owner's PartitionChunked chunk.
func PartitionStealing(n int64, parts, factor int) []StealChunk {
	if factor < 1 {
		factor = 1
	}
	base := PartitionChunked(n, parts)
	out := make([]StealChunk, 0, len(base)*factor)
	for owner, c := range base {
		size := c.Hi - c.Lo
		if size <= 0 {
			continue
		}
		pieces := int64(factor)
		if size < pieces {
			pieces = size
		}
		step := (size + pieces - 1) / pieces
		for lo := c.Lo; lo < c.Hi; lo += step {
			hi := lo + step
			if hi > c.Hi {
				hi = c.Hi
			}
			out = append(out, StealChunk{Owner: owner, Chunk: Chunk{Lo: lo, Hi: hi}})
		}
	}
	return out
}

// RoundRobinChunks yields the k-th chunk of fixed size for a thread in
// round-robin order: thread t's j-th chunk covers
// [ (j*parts + t)*size, +size ).
func RoundRobinChunks(n, size int64, parts, thread int) []Chunk {
	var out []Chunk
	if size <= 0 {
		size = 1
	}
	for j := int64(0); ; j++ {
		lo := (j*int64(parts) + int64(thread)) * size
		if lo >= n {
			break
		}
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Chunk{Lo: lo, Hi: hi})
	}
	return out
}

// ReductionIdentity returns the register bit pattern that initialises a
// thread-private reduction accumulator.
func ReductionIdentity(op guest.Op) uint64 {
	switch op {
	case guest.FMUL:
		return math.Float64bits(1.0)
	default: // ADD, FADD: zero works for both integer and float
		return 0
	}
}

// MergeReduction folds a thread's partial value into the accumulator.
func MergeReduction(op guest.Op, acc, partial uint64) uint64 {
	switch op {
	case guest.ADD:
		return acc + partial
	case guest.FADD:
		return math.Float64bits(math.Float64frombits(acc) + math.Float64frombits(partial))
	case guest.FMUL:
		return math.Float64bits(math.Float64frombits(acc) * math.Float64frombits(partial))
	}
	return partial
}

// LoopCtx is the per-invocation state of a parallel loop shared by the
// DBM's handlers.
type LoopCtx struct {
	LoopID int32
	Init   rules.LoopInitData
	// Trip is the evaluated iteration count for this invocation.
	Trip int64
	// MainSP is the main thread's stack pointer at loop entry, for
	// MEM_MAIN_STACK redirection.
	MainSP uint64
	// EntryRegs snapshots the main thread's registers at loop entry so
	// symbolic expressions can be evaluated during the invocation.
	EntryRegs [guest.NumGPR + 1]uint64
	// ExitTargets are the addresses that terminate a thread's chunk.
	ExitTargets map[uint64]bool
	// ExitPrimary is the lowest exit target: the single-exit fast path
	// for chunk-completion checks, and the deterministic resume point.
	ExitPrimary uint64
	// BoundValue[t] is the patched compare bound for thread t.
	BoundValue []uint64
	// PrivSlots maps slot -> shared cell address + size for copy-back.
	PrivSlots map[int32]PrivSlot
}

// PrivSlot describes one privatised cell.
type PrivSlot struct {
	SharedAddr uint64
	Size       int64
}

// IsExit reports whether pc terminates a thread's chunk. The primary
// exit is the single-exit fast path; the map is consulted only for
// multi-exit loops. Both DBM region engines use this predicate, so the
// chunk-completion condition cannot diverge between them.
func (lc *LoopCtx) IsExit(pc uint64) bool {
	return pc == lc.ExitPrimary || (len(lc.ExitTargets) > 1 && lc.ExitTargets[pc])
}

// EntryReg reads a loop-entry register value.
func (lc *LoopCtx) EntryReg(r guest.Reg) uint64 {
	if r == guest.RegNone {
		return 0
	}
	return lc.EntryRegs[r]
}

// PatchedBound computes the compare-bound value that makes thread t
// leave after iteration hi-1, given the normalised leave-op semantics
// (see internal/sym.solveExit).
func PatchedBound(d rules.UpdateBoundData, entry func(guest.Reg) uint64, hi int64) (uint64, error) {
	init := d.Init.Eval(entry, 0)
	switch d.ExitOp {
	case guest.JGE, guest.JLE, guest.JE:
		return uint64(init + d.Step*hi), nil
	case guest.JG, guest.JL:
		return uint64(init + d.Step*(hi-1)), nil
	}
	return 0, fmt.Errorf("jrt: unsupported leave-op %s", d.ExitOp)
}
