package workloads

import (
	"fmt"
	"sort"
	"sync"

	"janus/internal/artcache"
	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
	"janus/internal/singleflight"
)

// Benchmark describes one synthetic SPEC-like workload: how to build it
// and the paper-reported reference values EXPERIMENTS.md compares
// against.
type Benchmark struct {
	Name string
	// Parallelisable marks the nine figure-7 benchmarks.
	Parallelisable bool
	// NeedsLib marks workloads importing the shared math library.
	NeedsLib bool
	// PaperSpeedup8T is the paper's figure-7 Janus bar (approximate,
	// read from the plot); 0 when the benchmark is not in figure 7.
	PaperSpeedup8T float64
	// PaperChecks is Table I's array-bounds checks per loop (0 = none
	// reported).
	PaperChecks float64
	// build emits the program. Sizes derive from input and opt.
	build func(k *kctx, in Input)
	// buildExt, when non-nil, supersedes build: the benchmark comes
	// from an external generator (the graduated generative corpus),
	// supplies its own libraries, and ignores OptLevel (generated
	// kernels are emitted at one optimisation shape).
	buildExt func(in Input) (*obj.Executable, []*obj.Library, error)
}

// scale maps the input set to a size multiplier.
func scale(in Input) int64 {
	if in == Train {
		return 2
	}
	return 10
}

// registry lists all 25 benchmarks (SPEC CPU2006 minus omnetpp, tonto,
// wrf, exactly as the paper evaluates). The kernel mixes follow the
// per-benchmark characterisation in the paper's figure 6 and §III.
var registry = []Benchmark{
	// ---- The nine parallelisable benchmarks (figure 7). ----
	{
		Name: "410.bwaves", Parallelisable: true, NeedsLib: true,
		PaperSpeedup8T: 2.8, PaperChecks: 1,
		build: func(k *kctx, in Input) {
			s := scale(in)
			// Hot DOALL loop with a pow() PLT call: speculation required.
			k.libCallLoop(520*s, "pow")
			// A checked two-array kernel (1 check per loop).
			k.doallRuntime(1600*s, 2)
			k.doallFloatStream(1600 * s)
			k.reduction(400 * s)
			k.carriedStencil(700 * s)
		},
	},
	{
		Name: "433.milc", Parallelisable: true,
		PaperSpeedup8T: 1.0, PaperChecks: 12,
		build: func(k *kctx, in Input) {
			s := scale(in)
			// Many short checked loops (12 bases) + much sequential code:
			// init/finish overhead dominates (paper: low speedup).
			for i := 0; i < 4; i++ {
				k.doallRuntime(420*s, 6)
			}
			k.smallLoops(60*s, 64)
			k.reduction(256 * s)
			k.carriedStencil(256 * s)
			k.pointerChase(128*s, false)
		},
	},
	{
		Name: "436.cactusADM", Parallelisable: true,
		PaperSpeedup8T: 1.6, PaperChecks: 3,
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.doallRuntime(2400*s, 3)
			k.doallFloatStream(1200 * s)
			k.smallLoops(24*s, 64)
			k.irregular(1 << 12)
		},
	},
	{
		Name: "437.leslie3d", Parallelisable: true,
		PaperSpeedup8T: 0.95,
		build: func(k *kctx, in Input) {
			s := scale(in)
			// Low-iteration-count candidates: parallelisation barely pays.
			k.smallLoops(120*s, 64)
			k.doallConst(560 * s)
			k.carriedStencil(320 * s)
			k.irregular(1 << 13)
			k.pointerChase(96*s, true)
		},
	},
	{
		Name: "459.GemsFDTD", Parallelisable: true,
		PaperSpeedup8T: 1.7, PaperChecks: 19.5,
		build: func(k *kctx, in Input) {
			s := scale(in)
			// Many-array field updates: large check counts, plus a cold
			// translation footprint.
			for i := 0; i < 3; i++ {
				k.doallRuntime(1200*s, 6)
			}
			k.coldCode(48, 160*s)
			k.doallFloatStream(640 * s)
			k.carriedStencil(900 * s)
		},
	},
	{
		Name: "462.libquantum", Parallelisable: true,
		PaperSpeedup8T: 6.0,
		build: func(k *kctx, in Input) {
			s := scale(in)
			// Gate application over the state vector: one giant static
			// DOALL loop is nearly the whole program (paper: 6.0x).
			k.doallConst(32000 * s)
			k.doallConst(32000 * s)
			k.reduction(800 * s)
		},
	},
	{
		Name: "464.h264ref", Parallelisable: true,
		PaperSpeedup8T: 0.76,
		build: func(k *kctx, in Input) {
			s := scale(in)
			// Translation-heavy: large cold-code footprint, modest DOALL.
			k.coldCode(96, 64*s)
			k.doallConst(800 * s)
			k.pointerChase(160*s, true)
			k.irregular(1 << 13)
			k.smallLoops(16*s, 48)
		},
	},
	{
		Name: "470.lbm", Parallelisable: true,
		PaperSpeedup8T: 5.8,
		build: func(k *kctx, in Input) {
			s := scale(in)
			// Stream-collide: 98% of execution in one DOALL nest.
			k.doallFloatStream(20000 * s)
			k.doallFloatStream(20000 * s)
			k.doallConst(4000 * s)
		},
	},
	{
		Name: "482.sphinx3", Parallelisable: true,
		PaperSpeedup8T: 1.3,
		build: func(k *kctx, in Input) {
			s := scale(in)
			// Moderate DOALL fraction, large sequential remainder.
			k.doallFloatStream(1600 * s)
			k.reduction(1600 * s)
			k.carriedStencil(1600 * s)
			k.pointerChase(800*s, false)
			k.smallLoops(48*s, 48)
		},
	},

	// ---- The sixteen figure-6-only benchmarks. ----
	{
		Name: "400.perlbench",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.pointerChase(400*s, true)
			k.irregular(1 << 12)
			k.coldCode(64, 32*s)
			k.doallConst(128 * s)
			k.ioLoop(8)
		},
	},
	{
		Name: "401.bzip2",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.carriedStencil(1200 * s)
			k.pointerChase(600*s, true)
			k.doallConst(300 * s)
			k.irregular(1 << 12)
		},
	},
	{
		Name: "403.gcc",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.coldCode(128, 24*s)
			k.pointerChase(320*s, true)
			k.irregular(1 << 11)
			k.doallConst(96 * s)
			k.ioLoop(4)
		},
	},
	{
		Name: "429.mcf",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.pointerChase(1000*s, true)
			k.carriedStencil(400 * s)
			k.doallConst(160 * s)
		},
	},
	{
		Name: "434.zeusmp",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.doallFloatStream(1000 * s)
			k.carriedStencil(800 * s)
			k.doallRuntime(320*s, 4)
			k.irregular(1 << 12)
		},
	},
	{
		Name: "435.gromacs",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.reduction(800 * s)
			k.pointerChase(500*s, false)
			k.carriedStencil(500 * s)
			k.smallLoops(32*s, 48)
		},
	},
	{
		Name: "444.namd",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.irregular(1 << 13)
			k.pointerChase(700*s, false)
			k.reduction(500 * s)
			k.coldCode(40, 40*s)
		},
	},
	{
		Name: "445.gobmk",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.coldCode(96, 24*s)
			k.pointerChase(320*s, true)
			k.irregular(1 << 11)
			k.doallConst(80 * s)
		},
	},
	{
		Name: "447.dealII",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.pointerChase(480*s, true)
			k.doallRuntime(240*s, 3)
			k.carriedStencil(320 * s)
			k.irregular(1 << 12)
		},
	},
	{
		Name: "450.soplex",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.pointerChase(560*s, true)
			k.carriedStencil(480 * s)
			k.doallConst(160 * s)
			k.smallLoops(24*s, 48)
		},
	},
	{
		Name: "453.povray",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.coldCode(72, 32*s)
			k.reduction(400 * s)
			k.pointerChase(320*s, true)
			k.irregular(1 << 11)
		},
	},
	{
		Name: "454.calculix",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.doallRuntime(400*s, 4)
			k.carriedStencil(480 * s)
			k.smallLoops(32*s, 48)
			k.irregular(1 << 12)
		},
	},
	{
		Name: "456.hmmer",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.carriedStencil(1600 * s) // dynamic-programming recurrence
			k.doallConst(320 * s)
			k.reduction(320 * s)
		},
	},
	{
		Name: "458.sjeng",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.coldCode(88, 28*s)
			k.pointerChase(400*s, true)
			k.irregular(1 << 11)
		},
	},
	{
		Name: "473.astar",
		build: func(k *kctx, in Input) {
			s := scale(in)
			k.pointerChase(800*s, true)
			k.carriedStencil(320 * s)
			k.doallConst(120 * s)
		},
	},
	{
		Name: "483.xalancbmk",
		build: func(k *kctx, in Input) {
			s := scale(in)
			// 1% DOALL coverage (paper): almost everything irregular.
			k.coldCode(112, 24*s)
			k.pointerChase(480*s, true)
			k.irregular(1 << 11)
			k.doallConst(48 * s)
		},
	},
}

// generated holds benchmarks registered at runtime (the graduated
// generative corpus, janus-bench -gen-corpus). It is empty unless a
// caller explicitly registers kernels, so the default suite — and the
// golden fixture pinning its byte-exact output — is unaffected by the
// generator's presence.
var (
	genMu     sync.Mutex
	generated []Benchmark
)

// RegisterGenerated appends a generated benchmark to the evaluation
// suite. The build callback must be deterministic; parallelisable
// marks kernels whose loops were actually selected (they join the
// figure-7 set). Names must be unique across the static registry and
// prior registrations; the "gen/" prefix keeps them visually distinct.
func RegisterGenerated(name string, parallelisable bool, build func(in Input) (*obj.Executable, []*obj.Library, error)) error {
	if name == "" || build == nil {
		return fmt.Errorf("workloads: RegisterGenerated: name and build are required")
	}
	genMu.Lock()
	defer genMu.Unlock()
	if _, ok := byNameLocked(name); ok {
		return fmt.Errorf("workloads: benchmark %q already registered", name)
	}
	generated = append(generated, Benchmark{
		Name:           name,
		Parallelisable: parallelisable,
		buildExt:       build,
	})
	return nil
}

// GeneratedNames returns the registered generative-corpus benchmarks
// in registration order.
func GeneratedNames() []string {
	genMu.Lock()
	defer genMu.Unlock()
	out := make([]string, len(generated))
	for i, b := range generated {
		out[i] = b.Name
	}
	return out
}

// Names returns all benchmark names in evaluation order: the static
// registry followed by any graduated generated kernels.
func Names() []string {
	genMu.Lock()
	defer genMu.Unlock()
	out := make([]string, 0, len(registry)+len(generated))
	for _, b := range registry {
		out = append(out, b.Name)
	}
	for _, b := range generated {
		out = append(out, b.Name)
	}
	return out
}

// ParallelisableNames returns the figure-7 benchmarks in order: the
// paper's nine plus any parallelisable graduated kernels.
func ParallelisableNames() []string {
	genMu.Lock()
	defer genMu.Unlock()
	var out []string
	for _, b := range registry {
		if b.Parallelisable {
			out = append(out, b.Name)
		}
	}
	for _, b := range generated {
		if b.Parallelisable {
			out = append(out, b.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ByName looks up a benchmark in the static registry or the generated
// corpus.
func ByName(name string) (Benchmark, bool) {
	genMu.Lock()
	defer genMu.Unlock()
	return byNameLocked(name)
}

func byNameLocked(name string) (Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range generated {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// buildKey identifies one deterministic build.
type buildKey struct {
	name string
	in   Input
	opt  OptLevel
}

// built pairs one build's outputs (the key space is bounded by the
// registry, so the cache is unbounded).
type built struct {
	exe  *obj.Executable
	libs []*obj.Library
}

var buildFlight singleflight.Flight[buildKey, built]

// Build assembles the named benchmark at the given input size and
// optimisation level, returning the executable and any libraries it
// links against. The executable is stripped, as the paper targets
// stripped binaries.
//
// Builds are deterministic, so results are cached per (name, input,
// opt) with singleflight semantics: concurrent experiments asking for
// the same binary share one build — and, because the returned
// *obj.Executable pointer is stable, they also share the downstream
// per-executable memos (native baseline, train profile). Executables
// and libraries are never mutated after construction, so sharing is
// safe under concurrency.
func Build(name string, in Input, opt OptLevel) (*obj.Executable, []*obj.Library, error) {
	return BuildCached(nil, name, in, opt)
}

// BuildSchema versions the on-disk build artifact. It must be bumped
// whenever kernel emission changes in any way — generator kernels,
// the cold-runtime padding, the assembler encoding — otherwise a warm
// cache replays stale binaries. The golden-output test catches a
// forgotten bump: a stale binary produces stale figures.
const BuildSchema = "workloads-build/v1"

// buildArtifactKind is the artifact namespace for built benchmark
// images in the durable cache.
const buildArtifactKind = "build-v1"

// BuildCached is Build backed by a durable artifact cache: on an
// in-memory miss the serialised executable is looked up on disk
// before being assembled, and published after. Generated-corpus
// benchmarks (buildExt) always assemble — their libraries are
// supplied by the generator and have no serialised form here. Nil c
// is exactly Build.
func BuildCached(c *artcache.Cache, name string, in Input, opt OptLevel) (*obj.Executable, []*obj.Library, error) {
	b, err := buildFlight.Do(buildKey{name: name, in: in, opt: opt}, func() (built, error) {
		exe, libs, err := buildDisk(c, name, in, opt)
		return built{exe: exe, libs: libs}, err
	})
	return b.exe, b.libs, err
}

// ResetBuildCache drops every completed entry from the in-memory
// build cache, forcing the next Build through the durable tier (or a
// fresh assembly). Tests use it to exercise cold/warm paths in one
// process.
func ResetBuildCache() {
	buildFlight.Reset()
}

// buildDisk wraps build with the durable tier.
func buildDisk(c *artcache.Cache, name string, in Input, opt OptLevel) (*obj.Executable, []*obj.Library, error) {
	bm, ok := ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	if c == nil || bm.buildExt != nil {
		return build(name, in, opt)
	}
	// The library set is not part of the payload: it is a pure function
	// of the registry entry (NeedsLib -> the shared math library), so it
	// is reconstructed on a hit.
	k := artcache.Key{
		Kind:   buildArtifactKind,
		Binary: name,
		Input:  fmt.Sprintf("%s", in),
		Config: fmt.Sprintf("opt=%s schema=%s", opt, BuildSchema),
	}
	libsOf := func() []*obj.Library {
		if bm.NeedsLib {
			return []*obj.Library{MathLib()}
		}
		return nil
	}
	if data, hit := c.Get(k); hit {
		if exe, err := obj.Load(data); err == nil {
			return exe, libsOf(), nil
		}
		// Verified bytes that no longer parse: schema skew; reassemble.
	}
	exe, libs, err := build(name, in, opt)
	if err != nil {
		return nil, nil, err
	}
	_ = c.Put(k, exe.Save())
	return exe, libs, nil
}

// build performs the uncached assembly of one benchmark binary.
func build(name string, in Input, opt OptLevel) (*obj.Executable, []*obj.Library, error) {
	bm, ok := ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	if bm.buildExt != nil {
		return bm.buildExt(in)
	}
	b := asm.NewBuilder(fmt.Sprintf("%s-%s-%s", name, in, opt))
	k := &kctx{b: b, f: b.Func("main"), opt: opt}
	bm.build(k, in)
	k.exit()
	// Real SPEC binaries statically link substantial runtime support
	// (libc, libm, language runtimes) that never runs under the
	// reference inputs; the rewrite-schedule size of figure 10 is
	// normalised against that full text section. Emit an equivalent
	// amount of cold support code (unreachable from main, so neither
	// the analyser nor the DBM ever touches it).
	emitColdRuntime(b, 36, 32)
	exe, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	exe = exe.Strip()
	var libs []*obj.Library
	if bm.NeedsLib {
		libs = append(libs, MathLib())
	}
	return exe, libs, nil
}

// emitColdRuntime appends nFuncs unreferenced support functions of
// instsPerFunc instructions each (the statically-linked runtime text of
// a real binary).
func emitColdRuntime(b *asm.Builder, nFuncs, instsPerFunc int) {
	for i := 0; i < nFuncs; i++ {
		f := b.Func(fmt.Sprintf("__rt_support_%d", i))
		for j := 0; j < instsPerFunc-1; j++ {
			switch j % 4 {
			case 0:
				f.OpI(guest.ADDI, guest.R0, int64(j))
			case 1:
				f.Op(guest.XOR, guest.R1, guest.R2)
			case 2:
				f.OpI(guest.SHLI, guest.R3, 1)
			default:
				f.Mov(guest.R4, guest.R5)
			}
		}
		f.Ret()
	}
}

// MustBuild is Build that panics on error (for examples and benches).
func MustBuild(name string, in Input, opt OptLevel) (*obj.Executable, []*obj.Library) {
	exe, libs, err := Build(name, in, opt)
	if err != nil {
		panic(err)
	}
	return exe, libs
}
