package workloads

import (
	"testing"

	"janus/internal/vm"
)

func TestAllBenchmarksBuildAndRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			exe, libs, err := Build(name, Train, O3)
			if err != nil {
				t.Fatal(err)
			}
			if !exe.Stripped {
				t.Error("benchmark binaries must be stripped")
			}
			res, err := vm.RunNative(exe, libs...)
			if err != nil {
				t.Fatal(err)
			}
			if res.Insts == 0 {
				t.Fatal("benchmark executed no instructions")
			}
		})
	}
}

func TestOptLevelsChangeBinary(t *testing.T) {
	o2, _, _ := Build("470.lbm", Train, O2)
	o3, _, _ := Build("470.lbm", Train, O3)
	avx, _, _ := Build("470.lbm", Train, O3AVX)
	if len(o2.Code) == len(o3.Code) && len(o3.Code) == len(avx.Code) {
		t.Fatal("optimisation levels produced identical code sizes")
	}
	// All three must produce equivalent stream results (deterministic
	// float arithmetic, same data).
	r2, err := vm.RunNative(o2)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := vm.RunNative(o3)
	if err != nil {
		t.Fatal(err)
	}
	ravx, err := vm.RunNative(avx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Exit != 0 || r3.Exit != 0 || ravx.Exit != 0 {
		t.Fatal("non-zero exits")
	}
}

func TestRefLargerThanTrain(t *testing.T) {
	tr, _, _ := Build("462.libquantum", Train, O3)
	ref, _, _ := Build("462.libquantum", Ref, O3)
	rt, err := vm.RunNative(tr)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := vm.RunNative(ref)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Insts <= rt.Insts {
		t.Fatalf("ref (%d insts) should exceed train (%d)", rr.Insts, rt.Insts)
	}
}

func TestRegistryMetadata(t *testing.T) {
	if len(Names()) != 25 {
		t.Fatalf("expected 25 benchmarks, got %d", len(Names()))
	}
	if len(ParallelisableNames()) != 9 {
		t.Fatalf("expected 9 parallelisable, got %d", len(ParallelisableNames()))
	}
	if _, ok := ByName("470.lbm"); !ok {
		t.Fatal("lbm missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("phantom benchmark")
	}
	if _, _, err := Build("nope", Ref, O3); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestMathLibExportsPow(t *testing.T) {
	lib := MathLib()
	if _, ok := lib.SymbolByName("pow"); !ok {
		t.Fatal("libm must export pow")
	}
	if _, ok := lib.SymbolByName("fsq"); !ok {
		t.Fatal("libm must export fsq")
	}
}
