// Package workloads builds the synthetic SPEC CPU2006-like benchmark
// binaries the evaluation runs on. Each benchmark is assembled from a
// library of loop kernels whose analysability classes mirror the loop
// mixes the paper reports per benchmark (figure 6): static DOALL
// kernels, runtime-pointer kernels needing bounds checks, loop-carried
// stencils, pointer-chasing loops whose behaviour only profiling can
// classify, irregular loops the analyser rejects, and hot loops with
// shared-library calls that demand speculation.
//
// Absolute performance does not (and cannot) match the paper's Xeon;
// the structural features that drive the paper's relative results —
// coverage fractions, check counts, iteration granularity, translation
// footprint — are reproduced per benchmark in bench.go.
package workloads

import (
	"fmt"

	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
)

// Input selects the profiling (train) or evaluation (ref) input size.
type Input int

const (
	// Train is the profiling input (paper: SPEC train set).
	Train Input = iota
	// Ref is the evaluation input (paper: SPEC reference set).
	Ref
)

func (in Input) String() string {
	if in == Train {
		return "train"
	}
	return "ref"
}

// OptLevel mirrors the compiler configurations of figure 12.
type OptLevel int

const (
	// O2: plain scalar loops.
	O2 OptLevel = iota
	// O3: inner loops unrolled by 2 (SSE-era generic vectorisation is
	// modelled as unrolling: wider work per iteration).
	O3
	// O3AVX: unrolled by 4 with packed vector instructions and an
	// alignment-peeling prologue that complicates alias analysis.
	O3AVX
)

func (o OptLevel) String() string {
	switch o {
	case O2:
		return "O2"
	case O3AVX:
		return "O3avx"
	}
	return "O3"
}

// kctx threads builder state through kernel emitters.
type kctx struct {
	b   *asm.Builder
	f   *asm.FuncBuilder
	opt OptLevel
	// seq disambiguates data symbol names.
	seq int
}

func (k *kctx) sym(prefix string) string {
	k.seq++
	return fmt.Sprintf("%s_%d", prefix, k.seq)
}

// dataI64 reserves a seeded integer array so kernels compute on
// non-trivial values (results feed the verification memory hash).
func (k *kctx) dataI64(name string, n int64) {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)*2654435761%1009 + 1
	}
	k.b.DataI64(name, vals)
}

// dataF64 reserves a seeded float array.
func (k *kctx) dataF64(name string, n int64) {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%977)*0.125 + 0.5
	}
	k.b.DataF64(name, vals)
}

// counting emits the standard loop skeleton
//
//	for (iv = 0; iv < n; iv += step) { body() }
//
// using iv as the induction register.
func (k *kctx) counting(iv guest.Reg, n, step int64, body func()) {
	f := k.f
	loop, done := f.NewLabel(), f.NewLabel()
	f.Movi(iv, 0)
	f.Bind(loop)
	f.Cmpi(iv, n)
	f.J(guest.JGE, done)
	body()
	f.OpI(guest.ADDI, iv, step)
	f.J(guest.JMP, loop)
	f.Bind(done)
}

// doallConst emits a static-DOALL kernel over two fresh constant-base
// arrays: dst[i] = src[i]*3 + 7. Returns the dst symbol. Unrolling per
// OptLevel widens the per-iteration work exactly as a compiler would.
func (k *kctx) doallConst(n int64) string {
	src, dst := k.sym("src"), k.sym("dst")
	k.dataI64(src, n)
	k.b.Data(dst, int(n*8))
	f := k.f
	f.MoviData(guest.R8, src, 0)
	f.MoviData(guest.R9, dst, 0)
	unroll := int64(1)
	if k.opt == O3 {
		unroll = 2
	}
	if k.opt == O3AVX {
		unroll = 4
	}
	k.counting(guest.R1, n, unroll, func() {
		for u := int64(0); u < unroll; u++ {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8 * u})
			f.OpI(guest.IMULI, guest.R3, 3)
			f.OpI(guest.ADDI, guest.R3, 7)
			f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8, Disp: 8 * u}, guest.R3)
		}
	})
	return dst
}

// doallFloatStream emits the lbm-like stream kernel: three constant-
// base arrays, c[i] = a[i]*w + b[i] in float arithmetic.
func (k *kctx) doallFloatStream(n int64) {
	a, bsym, c := k.sym("fa"), k.sym("fb"), k.sym("fc")
	k.dataF64(a, n)
	k.dataF64(bsym, n)
	k.b.Data(c, int(n*8))
	f := k.f
	f.MoviData(guest.R8, a, 0)
	f.MoviData(guest.R9, bsym, 0)
	f.MoviData(guest.R10, c, 0)
	f.MoviF(guest.R11, 0.75)
	if k.opt == O3AVX {
		// Packed vector body with a scalar peeling prologue (alignment
		// peel): the peel duplicates the loop and defeats the analyser's
		// uniform-stride grouping for the peeled copy.
		f.I(guest.NewInst(guest.VBCST, 2, guest.R11))
		k.counting(guest.R1, n&^3, 4, func() {
			f.I(guest.NewInstM(guest.VLD, 0, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}))
			f.I(guest.NewInstM(guest.VLD, 1, guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}))
			f.I(guest.NewInst(guest.VMUL, 0, 2))
			f.I(guest.NewInst(guest.VADD, 0, 1))
			f.I(guest.NewInstM(guest.VST, 0, guest.Mem{Base: guest.R10, Index: guest.R1, Scale: 8}))
		})
		// Scalar epilogue for the ragged tail.
		k.scalarStreamTail(n&^3, n)
		return
	}
	unroll := int64(1)
	if k.opt == O3 {
		unroll = 2
	}
	k.counting(guest.R1, n, unroll, func() {
		for u := int64(0); u < unroll; u++ {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8 * u})
			f.Ld(guest.R4, guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8, Disp: 8 * u})
			f.Op(guest.FMUL, guest.R3, guest.R11)
			f.Op(guest.FADD, guest.R3, guest.R4)
			f.St(guest.Mem{Base: guest.R10, Index: guest.R1, Scale: 8, Disp: 8 * u}, guest.R3)
		}
	})
}

func (k *kctx) scalarStreamTail(from, to int64) {
	f := k.f
	loop, done := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, from)
	f.Bind(loop)
	f.Cmpi(guest.R1, to)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.Ld(guest.R4, guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8})
	f.Op(guest.FMUL, guest.R3, guest.R11)
	f.Op(guest.FADD, guest.R3, guest.R4)
	f.St(guest.Mem{Base: guest.R10, Index: guest.R1, Scale: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
}

// doallRuntime emits a dynamic-DOALL kernel: nArrays array bases are
// loaded from a pointer table (opaque to static analysis), so the loop
// needs a MEM_BOUNDS_CHECK over nArrays ranges. dst[i] = sum of
// srcs[i]. This is the milc/GemsFDTD/cactusADM shape; nArrays controls
// the Table-I check count.
func (k *kctx) doallRuntime(n int64, nArrays int) {
	if nArrays < 2 {
		nArrays = 2
	}
	bufs := k.sym("bufs")
	ptrs := k.sym("ptrs")
	k.b.Data(bufs, int(n*8)*nArrays)
	k.b.Data(ptrs, 8*nArrays)
	f := k.f
	// Fill the pointer table (runtime values).
	for i := 0; i < nArrays; i++ {
		f.MoviData(guest.R2, bufs, int64(i)*n*8)
		f.StData(ptrs, int64(i)*8, guest.R2)
	}
	// Load bases into registers r8.. (last one is the destination).
	regs := []guest.Reg{guest.R8, guest.R9, guest.R10, guest.R11, guest.R12, guest.R13}
	use := nArrays
	if use > len(regs) {
		use = len(regs)
	}
	for i := 0; i < use; i++ {
		f.LdData(regs[i], ptrs, int64(i)*8)
	}
	k.counting(guest.R1, n, 1, func() {
		f.Movi(guest.R3, 1)
		for i := 0; i < use-1; i++ {
			f.Ld(guest.R4, guest.Mem{Base: regs[i], Index: guest.R1, Scale: 8})
			f.Op(guest.ADD, guest.R3, guest.R4)
		}
		f.St(guest.Mem{Base: regs[use-1], Index: guest.R1, Scale: 8}, guest.R3)
	})
}

// carriedStencil emits a type-B kernel: a[i] = a[i-1] + a[i], a genuine
// loop-carried flow dependence the analyser must prove.
func (k *kctx) carriedStencil(n int64) {
	a := k.sym("stencil")
	k.dataI64(a, n+1)
	f := k.f
	f.MoviData(guest.R8, a, 0)
	k.counting(guest.R1, n, 1, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})          // a[i]
		f.Ld(guest.R4, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8}) // a[i+1]
		f.Op(guest.ADD, guest.R4, guest.R3)
		f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8}, guest.R4)
	})
}

// pointerChase emits a loop whose addresses are data-dependent
// (indirection through an index array): statically unanalysable, so
// classification depends on dependence profiling. With permuted=false
// the index array is the identity, so no dependence manifests (type C
// but speculation-only: no check possible); with aliasing=true indices
// collide across iterations (type D).
func (k *kctx) pointerChase(n int64, aliasing bool) {
	idx := k.sym("idx")
	data := k.sym("chase")
	vals := make([]int64, n)
	for i := range vals {
		if aliasing && i%2 == 1 {
			vals[i] = int64(i - 1) // collide with previous iteration
		} else {
			vals[i] = int64(i)
		}
	}
	k.b.DataI64(idx, vals)
	k.b.Data(data, int(n*8))
	f := k.f
	f.MoviData(guest.R8, idx, 0)
	f.MoviData(guest.R9, data, 0)
	k.counting(guest.R1, n, 1, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}) // j = idx[i]
		f.Lea(guest.R4, guest.Mem{Base: guest.R9, Index: guest.R3, Scale: 8})
		f.Ld(guest.R5, guest.Mem{Base: guest.R4, Index: guest.RegNone, Scale: 1}) // data[j]
		f.OpI(guest.ADDI, guest.R5, 3)
		f.St(guest.Mem{Base: guest.R4, Index: guest.RegNone, Scale: 1}, guest.R5) // data[j] = ...
	})
}

// irregular emits a loop the analyser rejects: the induction variable
// advances geometrically (i *= 2), which has no linear closed form.
func (k *kctx) irregular(n int64) {
	a := k.sym("irr")
	k.b.Data(a, int((n+1)*8))
	f := k.f
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, a, 0)
	f.Movi(guest.R1, 1)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R1)
	f.OpI(guest.SHLI, guest.R1, 1) // i *= 2: not an affine induction
	f.J(guest.JMP, loop)
	f.Bind(done)
}

// ioLoop emits an incompatible loop performing IO each iteration.
func (k *kctx) ioLoop(n int64) {
	f := k.f
	k.counting(guest.R6, n, 1, func() {
		f.Movi(guest.R0, guest.SysWrite)
		f.Mov(guest.R1, guest.R6)
		f.Syscall()
	})
}

// reduction emits a float sum over a constant-base array, returning the
// result in R2 and writing it out.
func (k *kctx) reduction(n int64) {
	a := k.sym("red")
	k.dataF64(a, n)
	f := k.f
	f.MoviData(guest.R8, a, 0)
	f.Movi(guest.R2, 0)
	k.counting(guest.R1, n, 1, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Op(guest.FADD, guest.R2, guest.R3)
	})
	f.Movi(guest.R0, guest.SysWriteF)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
}

// libCallLoop emits the bwaves shape: a hot DOALL loop whose body calls
// the shared-library `pow` through the PLT. The static analyser cannot
// see the library, so speculation guards each call.
func (k *kctx) libCallLoop(n int64, fn string) {
	k.b.Import(fn)
	src, dst := k.sym("lsrc"), k.sym("ldst")
	k.dataF64(src, n)
	k.b.Data(dst, int(n*8))
	f := k.f
	f.MoviData(guest.R8, src, 0)
	f.MoviData(guest.R9, dst, 0)
	k.counting(guest.R6, n, 1, func() {
		f.Ld(guest.R1, guest.Mem{Base: guest.R8, Index: guest.R6, Scale: 8})
		f.MoviF(guest.R2, 1.5)
		f.Call(fn)
		f.St(guest.Mem{Base: guest.R9, Index: guest.R6, Scale: 8}, guest.R0)
	})
}

// smallLoops emits outer×inner nests where the inner loop has very few
// iterations: statically parallel but unprofitable (the leslie3d/milc
// failure mode — per-invocation overhead dwarfs the work).
func (k *kctx) smallLoops(outer, inner int64) {
	a := k.sym("small")
	k.dataI64(a, inner)
	f := k.f
	f.MoviData(guest.R8, a, 0)
	k.counting(guest.R6, outer, 1, func() {
		k.counting(guest.R1, inner, 1, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.OpI(guest.ADDI, guest.R3, 1)
			f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R3)
		})
	})
}

// coldCode emits nBlocks distinct rarely-executed basic blocks reached
// through a dispatch ladder: the h264ref shape where DBM translation
// overhead dominates because much code executes only a handful of
// times.
func (k *kctx) coldCode(nBlocks int, reps int64) {
	f := k.f
	a := k.sym("cold")
	k.b.Data(a, 8)
	k.counting(guest.R6, reps, 1, func() {
		// Dispatch on r6 % nBlocks through a compare ladder; each arm
		// is a distinct block.
		f.Mov(guest.R2, guest.R6)
		f.Movi(guest.R3, int64(nBlocks))
		f.Mov(guest.R4, guest.R2)
		f.Op(guest.IDIV, guest.R4, guest.R3)
		f.OpI(guest.IMULI, guest.R4, int64(nBlocks))
		f.Op(guest.SUB, guest.R2, guest.R4) // r2 = r6 % nBlocks
		done := f.NewLabel()
		for i := 0; i < nBlocks; i++ {
			next := f.NewLabel()
			f.Cmpi(guest.R2, int64(i))
			f.J(guest.JNE, next)
			f.OpI(guest.ADDI, guest.R5, int64(i+1))
			f.OpI(guest.XORI, guest.R5, int64(3*i+1))
			f.J(guest.JMP, done)
			f.Bind(next)
		}
		f.Bind(done)
	})
	f.StData(a, 0, guest.R5)
}

// checksum writes a checksum of the named array to the output stream so
// every kernel's results feed verification.
func (k *kctx) checksum(symName string, n int64) {
	f := k.f
	f.MoviData(guest.R8, symName, 0)
	f.Movi(guest.R2, 0)
	k.counting(guest.R1, n, 1, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Op(guest.ADD, guest.R2, guest.R3)
	})
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
}

// exit terminates the program.
func (k *kctx) exit() {
	f := k.f
	f.Movi(guest.R0, guest.SysExit)
	f.Movi(guest.R1, 0)
	f.Syscall()
}

// MathLib builds the shared libm-like library (pow, fsq) mapped at the
// default library base.
func MathLib() *obj.Library {
	lb := asm.NewBuilder("libm")
	// pow(x=r1, y=r2) ≈ exp-free synthetic pow: x*x*y + x (deterministic
	// stand-in with the same call/return and register behaviour; the
	// paper's observation is that the call reads heap rarely and writes
	// never).
	pw := lb.Func("pow")
	pw.Mov(guest.R0, guest.R1)
	// Polynomial-approximation body: ~45 instructions per call, matching
	// the paper's observation of 49 instructions inside bwaves' pow.
	for i := 0; i < 10; i++ {
		pw.Op(guest.FMUL, guest.R0, guest.R1)
		pw.Op(guest.FADD, guest.R0, guest.R2)
		pw.Op(guest.FMUL, guest.R0, guest.R2)
		pw.Op(guest.FADD, guest.R0, guest.R1)
	}
	pw.Ret()
	sq := lb.Func("fsq")
	sq.Mov(guest.R0, guest.R1)
	sq.Op(guest.FMUL, guest.R0, guest.R1)
	sq.Ret()
	lib, err := lb.BuildLibrary(obj.DefaultLibBase)
	if err != nil {
		panic("workloads: libm build: " + err.Error())
	}
	return lib
}
