package analyzer

import "janus/internal/cfg"

// SelectOptions configures loop selection, mapping onto the paper's
// figure-7 configurations.
type SelectOptions struct {
	// UseProfile filters statically parallel loops by coverage.
	UseProfile bool
	// MinCoverage is the profiled-coverage threshold below which a loop
	// is not worth parallelising (only with UseProfile).
	MinCoverage float64
	// UseChecks admits dynamic-DOALL (type C) loops guarded by runtime
	// bounds checks and speculation.
	UseChecks bool
	// MinAvgIter rejects loops whose profiled mean trip count is too
	// small to amortise per-invocation overheads (only with
	// UseProfile; 0 selects the default).
	MinAvgIter float64
}

// DefaultMinCoverage matches the paper's low-coverage filter intent.
const DefaultMinCoverage = 0.01

// DefaultMinAvgIter is the profitability floor on profiled mean
// iterations per invocation.
const DefaultMinAvgIter = 96

// SelectLoops marks the loops to parallelise and returns them. Within
// each loop nest only one loop is chosen: the outermost type-A loop,
// failing that the outermost type-C loop (paper §II-D). Selection
// prefers loops with statically known iteration counts and single
// exits; loops violating those are skipped because the runtime cannot
// schedule them safely.
func (p *Program) SelectLoops(opts SelectOptions) []*LoopInfo {
	for _, li := range p.Loops {
		li.Selected = false
	}
	var selected []*LoopInfo
	// Process loop nests: roots first; descend only when the parent was
	// not selected.
	var roots []*cfg.Loop
	for _, li := range p.Loops {
		if li.Loop.Parent == nil {
			roots = append(roots, li.Loop)
		}
	}
	var walk func(l *cfg.Loop) bool
	walk = func(l *cfg.Loop) bool {
		li := p.byLoop[l]
		if li != nil && p.selectable(li, opts) {
			li.Selected = true
			selected = append(selected, li)
			return true
		}
		any := false
		for _, c := range l.Children {
			if walk(c) {
				any = true
			}
		}
		return any
	}
	for _, r := range roots {
		walk(r)
	}
	return selected
}

// selectable applies the per-loop eligibility rules.
func (p *Program) selectable(li *LoopInfo, opts SelectOptions) bool {
	switch li.Class {
	case ClassStaticDOALL:
		// eligible
	case ClassDynDOALL:
		if !opts.UseChecks {
			return false
		}
		// A type-C loop is only safe if every ambiguity is closed: all
		// cross-base pairs have checks and every residual unanalysable
		// access or library call is covered by speculation. Loops whose
		// checks could not be constructed need dependence profiling to
		// have confirmed independence.
		if li.Dep.CheckFailed && !li.DepProfiled {
			return false
		}
		if li.DepProfiled && li.ObservedDep {
			return false
		}
		// Unanalysable plain accesses (not library code) can only be
		// speculated on; without dependence profiling the abort rate is
		// unknown, so require profiling to have cleared them.
		if len(li.Dep.Unanalyzable) > 0 && !li.DepProfiled {
			return false
		}
	default:
		return false
	}
	// Scheduling requirements: recognised trip count and single exit.
	if li.Sym.Trip == nil || li.Sym.Trip.Num.Unknown {
		return false
	}
	if len(li.Loop.Exits) != 1 {
		return false
	}
	// The loop must be entered through a unique preheader so LOOP_INIT
	// has a well-defined trigger point.
	if li.Sym.Preheader == nil {
		return false
	}
	if opts.UseProfile {
		if li.Coverage < opts.MinCoverage {
			return false
		}
		minAvg := opts.MinAvgIter
		if minAvg == 0 {
			minAvg = DefaultMinAvgIter
		}
		// A loop entered many times for a handful of iterations pays
		// LOOP_INIT/FINISH on every invocation: the paper's profile
		// stage exists exactly to reject these.
		if li.AvgIter > 0 && li.AvgIter < minAvg {
			return false
		}
	}
	return true
}
