package analyzer

import (
	"fmt"
	"sort"

	"janus/internal/guest"
	"janus/internal/rules"
	"janus/internal/sym"
)

// libCallSites returns the loop's PLT call sites in address order.
// Schedules must serialise to identical bytes across runs — the
// durable artifact cache keys DBM results by the schedule hash — so
// rule emission never iterates the LibCalls map directly.
func libCallSites(li *LoopInfo) []uint64 {
	sites := make([]uint64, 0, len(li.LibCalls))
	for site := range li.LibCalls {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites
}

// GenProfileSchedule emits the profiling rewrite schedule: loop
// coverage instrumentation for every feasible loop, plus memory-access
// and external-call instrumentation for ambiguous loops (paper §II-C:
// only the loops of interest, and only certain instructions within
// them, are instrumented).
func (p *Program) GenProfileSchedule() *rules.Schedule {
	s := &rules.Schedule{ExeName: p.Exe.Name, ExeSize: uint64(p.Exe.Size())}
	for _, li := range p.Loops {
		// Incompatible loops are never parallelisation candidates, but
		// they are still instrumented for coverage so the evaluation
		// can report how much execution time they account for (the
		// black bars of figure 6).
		l := li.Loop
		s.Append(rules.Rule{Addr: l.Header.Addr, ID: rules.PROF_LOOP_ITER, LoopID: int32(li.ID), Data: rules.ProfLoopData{}})
		for _, et := range l.ExitTargets {
			s.Append(rules.Rule{Addr: et.Addr, ID: rules.PROF_LOOP_FINISH, LoopID: int32(li.ID), Data: rules.ProfLoopData{}})
		}
		if li.Class == ClassDynDOALL || li.Class == ClassDynDep {
			// Dependence profiling: instrument the ambiguous accesses
			// and all writes (to catch conflicts against them).
			for _, acc := range li.Dep.Unanalyzable {
				s.Append(rules.Rule{Addr: acc.Ref.Addr(), ID: rules.PROF_MEM_ACCESS, LoopID: int32(li.ID), Data: rules.ProfMemData{}})
			}
			for _, g := range li.Dep.Groups {
				if len(g.Base.Regs) == 0 {
					continue // constant bases were fully analysed
				}
				for _, acc := range g.Accesses {
					s.Append(rules.Rule{Addr: acc.Ref.Addr(), ID: rules.PROF_MEM_ACCESS, LoopID: int32(li.ID), Data: rules.ProfMemData{}})
				}
			}
			for _, site := range libCallSites(li) {
				s.Append(rules.Rule{Addr: site, ID: rules.PROF_EXCALL_START, LoopID: int32(li.ID), Data: rules.ProfExcallData{Target: site}})
				s.Append(rules.Rule{Addr: site + guest.InstSize, ID: rules.PROF_EXCALL_FINISH, LoopID: int32(li.ID), Data: rules.ProfExcallData{Target: site}})
			}
		}
	}
	return s
}

// GenParallelSchedule emits the parallelisation rewrite schedule for
// the selected loops (figure 2(a)'s generation pass).
func (p *Program) GenParallelSchedule() (*rules.Schedule, error) {
	s := &rules.Schedule{ExeName: p.Exe.Name, ExeSize: uint64(p.Exe.Size())}
	for _, li := range p.Loops {
		if !li.Selected {
			continue
		}
		if err := p.genLoopRules(s, li); err != nil {
			return nil, fmt.Errorf("analyzer: loop %d: %w", li.ID, err)
		}
	}
	return s, nil
}

func (p *Program) genLoopRules(s *rules.Schedule, li *LoopInfo) error {
	l := li.Loop
	la := li.Sym
	id := int32(li.ID)
	if la.MainIV == nil || la.Trip == nil {
		return fmt.Errorf("selected loop lacks iterator or trip count")
	}

	// Induction and reduction specs shared by INIT and FINISH.
	var ivs []rules.InductionSpec
	for _, iv := range la.Inductions {
		if iv.Init.Unknown {
			return fmt.Errorf("induction %s has unknown initial value", iv.Reg)
		}
		ivs = append(ivs, rules.InductionSpec{Reg: iv.Reg, Init: iv.Init, Step: iv.Step})
	}
	var reds []rules.ReductionSpec
	for _, rd := range la.Reductions {
		reds = append(reds, rules.ReductionSpec{Reg: rd.Reg, Op: rd.Op})
	}
	trip := rules.TripSpec{Known: true, Num: la.Trip.Num, Den: la.Trip.Den, Round: la.Trip.Round}

	policy := rules.PolicyChunked
	var chunk int64
	if _, static := la.Trip.IsStatic(); !static {
		// The trip count is runtime-computable before the loop (a
		// register-held bound), so chunked scheduling still applies; a
		// genuinely undeterminable count would use round-robin.
		policy = rules.PolicyChunked
	}

	// THREAD_SCHEDULE + LOOP_INIT trigger at the loop header: the first
	// point where the loop's entry state (iterator initial value, bound
	// registers, array bases) is fully established. The DBM fires the
	// handler only when entering from outside the loop.
	initAddr := l.Header.Addr
	s.Append(rules.Rule{Addr: initAddr, ID: rules.THREAD_SCHEDULE, LoopID: id, Data: rules.ThreadData{Target: l.Header.Addr}})
	s.Append(rules.Rule{Addr: initAddr, ID: rules.LOOP_INIT, LoopID: id, Data: rules.LoopInitData{
		Inductions: ivs,
		Reductions: reds,
		Trip:       trip,
		Policy:     policy,
		ChunkSize:  chunk,
		LoopStart:  l.Header.Addr,
	}})

	// Bounds checks guard the same point.
	if li.NeedsChecks {
		s.Append(rules.Rule{Addr: initAddr, ID: rules.MEM_BOUNDS_CHECK, LoopID: id, Data: rules.BoundsCheckData{Ranges: li.Dep.Checks}})
	}

	// LOOP_UPDATE_BOUND at the exit compare.
	s.Append(rules.Rule{Addr: la.CmpAddr, ID: rules.LOOP_UPDATE_BOUND, LoopID: id, Data: rules.UpdateBoundData{
		CmpAddr:  la.CmpAddr,
		IsImm:    la.BoundIsImm,
		BoundReg: la.BoundReg,
		IVReg:    la.MainIV.Reg,
		Step:     la.MainIV.Step,
		Init:     la.MainIV.Init,
		ExitOp:   la.LeaveOp,
	}})

	// LOOP_FINISH + THREAD_YIELD at each exit target.
	finish := rules.LoopFinishData{Inductions: ivs, Reductions: reds, LiveOut: liveOutNonIV(la)}
	for _, et := range l.ExitTargets {
		s.Append(rules.Rule{Addr: et.Addr, ID: rules.LOOP_FINISH, LoopID: id, Data: finish})
		s.Append(rules.Rule{Addr: et.Addr, ID: rules.THREAD_YIELD, LoopID: id, Data: rules.ThreadData{}})
	}

	// Privatised scalar cells.
	for slot, pg := range li.Dep.Privatisable {
		for _, ref := range pg.Refs {
			s.Append(rules.Rule{Addr: ref.Addr(), ID: rules.MEM_PRIVATISE, LoopID: id, Data: rules.MemPrivatiseData{Slot: int32(slot), Size: pg.Size, SharedAddr: pg.Addr}})
		}
	}

	// Read-only stack accesses redirected to the main stack.
	for _, ref := range li.Dep.MainStackReads {
		s.Append(rules.Rule{Addr: ref.Addr(), ID: rules.MEM_MAIN_STACK, LoopID: id, Data: rules.MemMainStackData{}})
	}

	// Shared-library calls wrapped in software transactions.
	for _, site := range libCallSites(li) {
		s.Append(rules.Rule{Addr: site, ID: rules.TX_START, LoopID: id, Data: rules.TxData{CallTarget: site}})
		s.Append(rules.Rule{Addr: site + guest.InstSize, ID: rules.TX_FINISH, LoopID: id, Data: rules.TxData{}})
	}
	return nil
}

// liveOutNonIV lists live-out registers that are not induction or
// reduction registers (those are reconstructed analytically).
func liveOutNonIV(la *sym.Analysis) []guest.Reg {
	skip := map[guest.Reg]bool{}
	for _, iv := range la.Inductions {
		skip[iv.Reg] = true
	}
	for _, rd := range la.Reductions {
		skip[rd.Reg] = true
	}
	var out []guest.Reg
	for _, r := range la.LiveOutRegs {
		if !skip[r] {
			out = append(out, r)
		}
	}
	return out
}
