package analyzer

import "testing"

// TestApplyUnknownProfileIDs pins the unknown-loop-ID contract of the
// profile-application entry points: records naming IDs outside the
// program are counted in UnknownProfileIDs (never silently dropped),
// while valid records still apply.
func TestApplyUnknownProfileIDs(t *testing.T) {
	exe := buildMixed(t)
	p, err := Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) == 0 {
		t.Fatal("no loops analysed")
	}
	valid := p.Loops[0].ID
	const bogus = 9999
	if p.LoopByID(bogus) != nil {
		t.Fatalf("loop ID %d unexpectedly exists", bogus)
	}

	p.ApplyCoverage(map[int]float64{valid: 0.5, bogus: 0.25})
	p.ApplyExclCoverage(map[int]float64{valid: 0.4, bogus: 0.25})
	p.ApplyAvgIters(map[int]float64{valid: 128, bogus: 64})
	p.ApplyDependences(map[int]bool{valid: false, bogus: true})

	if p.UnknownProfileIDs != 4 {
		t.Errorf("UnknownProfileIDs = %d, want 4 (one per Apply call)", p.UnknownProfileIDs)
	}
	li := p.LoopByID(valid)
	if li.Coverage != 0.5 || li.ExclCoverage != 0.4 || li.AvgIter != 128 {
		t.Errorf("valid record not applied: cov=%v excl=%v avg=%v", li.Coverage, li.ExclCoverage, li.AvgIter)
	}
	if !li.DepProfiled || li.ObservedDep {
		t.Errorf("valid dependence record not applied: profiled=%v observed=%v", li.DepProfiled, li.ObservedDep)
	}

	// Negative IDs are equally unknown.
	p.ApplyCoverage(map[int]float64{-1: 0.1})
	if p.UnknownProfileIDs != 5 {
		t.Errorf("UnknownProfileIDs = %d after negative-ID record, want 5", p.UnknownProfileIDs)
	}
}
