// Package analyzer is the Janus static binary analyser: it disassembles
// an executable, recovers control flow, runs the SSA/symbolic/alias
// analyses over every loop, classifies loops into the paper's five
// categories, selects loops for parallelisation, and generates the
// profiling and parallelisation rewrite schedules that drive the DBM.
package analyzer

import (
	"fmt"
	"sort"

	"janus/internal/alias"
	"janus/internal/cfg"
	"janus/internal/guest"
	"janus/internal/obj"
	"janus/internal/ssa"
	"janus/internal/sym"
)

// Class is a loop category (paper §II-D).
type Class uint8

const (
	// ClassIncompatible loops were never candidates: IO, syscalls,
	// indirect flow, unrecognisable induction variables.
	ClassIncompatible Class = iota
	// ClassStaticDOALL (type A): no cross-iteration dependences except
	// induction/reduction, proven statically.
	ClassStaticDOALL
	// ClassStaticDep (type B): statically identified cross-iteration
	// dependences.
	ClassStaticDep
	// ClassDynDOALL (type C): statically ambiguous accesses but no
	// dependence observed under profiling (parallelisable with checks
	// or speculation).
	ClassDynDOALL
	// ClassDynDep (type D): ambiguous accesses with dependences
	// observed during profiling.
	ClassDynDep
)

func (c Class) String() string {
	switch c {
	case ClassStaticDOALL:
		return "static-DOALL"
	case ClassStaticDep:
		return "static-dep"
	case ClassDynDOALL:
		return "dynamic-DOALL"
	case ClassDynDep:
		return "dynamic-dep"
	}
	return "incompatible"
}

// LoopInfo is the analyser's complete record for one loop.
type LoopInfo struct {
	ID   int
	Loop *cfg.Loop
	Sym  *sym.Analysis
	Dep  *alias.Result

	Class   Class
	Reasons []string

	// Ambiguous is set when static analysis alone cannot decide DOALL
	// (the loop sits between type C and D until dependence profiling).
	Ambiguous bool
	// NeedsChecks: runtime bounds checks are required for safety.
	NeedsChecks bool
	// LibCalls are PLT call sites (addr -> import name) inside the
	// loop; they demand TX speculation.
	LibCalls map[uint64]string

	// Coverage is the profiled fraction of dynamic instructions spent
	// in the loop (filled by ApplyCoverage).
	Coverage float64
	// ExclCoverage attributes instructions only to the innermost loop.
	ExclCoverage float64
	// AvgIter is the profiled mean iterations per invocation; loops
	// with high invocation counts and few iterations are unprofitable.
	AvgIter float64
	// DepProfiled / ObservedDep record dependence-profiling outcomes.
	DepProfiled bool
	ObservedDep bool

	// Selected marks the loop chosen for parallelisation.
	Selected bool
}

func (li *LoopInfo) reason(format string, args ...any) {
	li.Reasons = append(li.Reasons, fmt.Sprintf(format, args...))
}

// Program is the analysed executable.
type Program struct {
	Exe   *obj.Executable
	CFG   *cfg.Program
	SSA   map[*cfg.Func]*ssa.SSA
	Loops []*LoopInfo
	// byLoop maps cfg loops to their info records.
	byLoop map[*cfg.Loop]*LoopInfo

	// UnknownProfileIDs counts profile records whose loop ID resolved
	// to no analysed loop when applied via ApplyCoverage/
	// ApplyExclCoverage/ApplyAvgIters/ApplyDependences. Profiles are
	// keyed by deterministic layout-derived IDs, so a nonzero count
	// means the train and ref builds skewed — silently dropping the
	// records would hide exactly that bug.
	UnknownProfileIDs int
}

// Analyze runs the full static analysis over exe.
func Analyze(exe *obj.Executable) (*Program, error) {
	cp, err := cfg.Build(exe)
	if err != nil {
		return nil, err
	}
	p := &Program{
		Exe:    exe,
		CFG:    cp,
		SSA:    make(map[*cfg.Func]*ssa.SSA),
		byLoop: make(map[*cfg.Loop]*LoopInfo),
	}
	for _, fn := range cp.Funcs {
		p.SSA[fn] = ssa.Build(fn)
	}
	id := 0
	for _, fn := range cp.Funcs {
		for _, l := range fn.Loops {
			l.ID = id
			li := &LoopInfo{ID: id, Loop: l, LibCalls: map[uint64]string{}}
			p.Loops = append(p.Loops, li)
			p.byLoop[l] = li
			id++
		}
	}
	for _, li := range p.Loops {
		p.analyzeLoop(li)
	}
	return p, nil
}

// LoopByID returns the loop record with the given id.
func (p *Program) LoopByID(id int) *LoopInfo {
	if id < 0 || id >= len(p.Loops) {
		return nil
	}
	return p.Loops[id]
}

// analyzeLoop runs sym+alias analysis and pre-profiling classification.
func (p *Program) analyzeLoop(li *LoopInfo) {
	l := li.Loop
	s := p.SSA[l.Fn]
	li.Sym = sym.Analyze(l, s)
	li.Dep = alias.Analyze(li.Sym)

	// Feasibility filter (paper §II-C): reject loops with IO,
	// syscalls, indirect flow, non-returning or impure subroutines, or
	// unrecognisable induction variables.
	if l.HasIndirect {
		li.Class = ClassIncompatible
		li.reason("indirect control flow")
		return
	}
	if p.loopHasSyscall(l) {
		li.Class = ClassIncompatible
		li.reason("performs IO or syscalls")
		return
	}
	for _, target := range l.CallTargets {
		if name, ok := p.CFG.PLTNames[target]; ok {
			li.LibCalls[p.callSiteFor(l, target)] = name
			continue
		}
		callee := p.CFG.FuncByAddr[target]
		if callee == nil {
			li.Class = ClassIncompatible
			li.reason("call to unknown address %#x", target)
			return
		}
		if !p.calleePure(callee) {
			li.Class = ClassIncompatible
			li.reason("call to impure subroutine %s", callee.Name)
			return
		}
	}
	if li.Sym.MainIV == nil {
		li.Class = ClassIncompatible
		li.reason("loop iterator not recognised: %s", li.Sym.Reason)
		return
	}

	// Dependence-based classification.
	if len(li.Sym.CarriedRegs) > 0 {
		li.Class = ClassStaticDep
		li.reason("cross-iteration register dependence via %v", li.Sym.CarriedRegs)
		return
	}
	if len(li.Dep.Deps) > 0 {
		li.Class = ClassStaticDep
		for _, d := range li.Dep.Deps {
			li.reason("memory dependence (%s) at %#x", d.Kind, d.A.Ref.Addr())
		}
		return
	}

	ambiguous := len(li.Dep.Unanalyzable) > 0 || len(li.LibCalls) > 0
	needsChecks := len(li.Dep.Checks) > 0
	if li.Dep.CheckFailed {
		// Cross-base ambiguity exists but no runtime check can close
		// it: only profiling + speculation could help; treat as
		// ambiguous without checks.
		ambiguous = true
	}
	switch {
	case !ambiguous && !needsChecks:
		li.Class = ClassStaticDOALL
	default:
		// Until dependence profiling runs, assume type C; profiling
		// may demote to type D.
		li.Class = ClassDynDOALL
		li.Ambiguous = ambiguous
		li.NeedsChecks = needsChecks
		if needsChecks {
			li.reason("requires %d-range bounds check", len(li.Dep.Checks))
		}
		if len(li.LibCalls) > 0 {
			li.reason("shared-library calls need speculation")
		}
		if len(li.Dep.Unanalyzable) > 0 {
			li.reason("%d statically unanalysable accesses", len(li.Dep.Unanalyzable))
		}
	}
}

// callSiteFor finds the address of the call instruction in l targeting
// the given address.
func (p *Program) callSiteFor(l *cfg.Loop, target uint64) uint64 {
	for b := range l.Body {
		for i, in := range b.Insts {
			if in.Op == guest.CALL && uint64(in.Imm) == target {
				return b.InstAddr(i)
			}
		}
	}
	return 0
}

func (p *Program) loopHasSyscall(l *cfg.Loop) bool {
	for b := range l.Body {
		for _, in := range b.Insts {
			if in.Op == guest.SYSCALL {
				return true
			}
		}
	}
	return false
}

// calleePure reports whether fn can be invoked from a parallel loop
// without further analysis: no heap/global stores, no syscalls, no
// nested calls, no indirect flow. Stack push/pop balance is fine (each
// thread has a private stack).
func (p *Program) calleePure(fn *cfg.Func) bool {
	if fn.HasIndirect || fn.HasSyscall {
		return false
	}
	if len(fn.Calls) > 0 {
		return false
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Insts {
			switch in.Op {
			case guest.ST, guest.STI, guest.VST:
				return false
			}
		}
	}
	return true
}

// ApplyCoverage installs profiled loop coverage fractions (loop ID ->
// fraction of dynamic instructions). Records naming loop IDs outside
// the program are counted in UnknownProfileIDs.
func (p *Program) ApplyCoverage(cov map[int]float64) {
	for id, f := range cov {
		li := p.LoopByID(id)
		if li == nil {
			p.UnknownProfileIDs++
			continue
		}
		li.Coverage = f
	}
}

// ApplyExclCoverage installs innermost-attributed coverage fractions.
// Unknown loop IDs are counted in UnknownProfileIDs.
func (p *Program) ApplyExclCoverage(cov map[int]float64) {
	for id, f := range cov {
		li := p.LoopByID(id)
		if li == nil {
			p.UnknownProfileIDs++
			continue
		}
		li.ExclCoverage = f
	}
}

// ApplyAvgIters installs profiled mean iterations per invocation.
// Unknown loop IDs are counted in UnknownProfileIDs.
func (p *Program) ApplyAvgIters(avg map[int]float64) {
	for id, a := range avg {
		li := p.LoopByID(id)
		if li == nil {
			p.UnknownProfileIDs++
			continue
		}
		li.AvgIter = a
	}
}

// ApplyDependences installs dependence-profiling outcomes: loops whose
// profiled runs exhibited a cross-iteration dependence become type D,
// the rest of the ambiguous set is confirmed type C. Unknown loop IDs
// are counted in UnknownProfileIDs.
func (p *Program) ApplyDependences(observed map[int]bool) {
	for id, dep := range observed {
		li := p.LoopByID(id)
		if li == nil {
			p.UnknownProfileIDs++
			continue
		}
		li.DepProfiled = true
		li.ObservedDep = dep
		if li.Class == ClassDynDOALL && dep {
			li.Class = ClassDynDep
			li.reason("dependence observed during profiling")
		}
	}
}

// ClassCounts returns the number of loops in each class.
func (p *Program) ClassCounts() map[Class]int {
	out := map[Class]int{}
	for _, li := range p.Loops {
		out[li.Class]++
	}
	return out
}

// SortedLoops returns loops ordered by descending coverage then ID.
func (p *Program) SortedLoops() []*LoopInfo {
	out := append([]*LoopInfo(nil), p.Loops...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		return out[i].ID < out[j].ID
	})
	return out
}
