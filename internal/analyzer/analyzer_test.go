package analyzer

import (
	"testing"

	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
	"janus/internal/rules"
)

// buildMixed assembles a program with one loop of every category:
// static DOALL, static dep, dynamic (checkable), and incompatible.
func buildMixed(t *testing.T) *obj.Executable {
	t.Helper()
	b := asm.NewBuilder("mixed")
	b.Data("a", 8*512)
	b.Data("b", 8*512)
	b.Data("ptrs", 16)
	f := b.Func("main")

	// 1. Static DOALL: b[i] = a[i].
	f.MoviData(guest.R8, "a", 0)
	f.MoviData(guest.R9, "b", 0)
	l1, d1 := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Bind(l1)
	f.Cmpi(guest.R1, 256)
	f.J(guest.JGE, d1)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, l1)
	f.Bind(d1)

	// 2. Static dep: a[i+1] = a[i].
	l2, d2 := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Bind(l2)
	f.Cmpi(guest.R1, 255)
	f.J(guest.JGE, d2)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, l2)
	f.Bind(d2)

	// 3. Dynamic (runtime pointers): needs a bounds check.
	f.MoviData(guest.R2, "a", 0)
	f.StData("ptrs", 0, guest.R2)
	f.MoviData(guest.R2, "b", 0)
	f.StData("ptrs", 8, guest.R2)
	f.LdData(guest.R10, "ptrs", 0)
	f.LdData(guest.R11, "ptrs", 8)
	l3, d3 := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Bind(l3)
	f.Cmpi(guest.R1, 256)
	f.J(guest.JGE, d3)
	f.Ld(guest.R3, guest.Mem{Base: guest.R10, Index: guest.R1, Scale: 8})
	f.St(guest.Mem{Base: guest.R11, Index: guest.R1, Scale: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, l3)
	f.Bind(d3)

	// 4. Incompatible: geometric induction.
	l4, d4 := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 1)
	f.Bind(l4)
	f.Cmpi(guest.R1, 512)
	f.J(guest.JGE, d4)
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R1)
	f.OpI(guest.SHLI, guest.R1, 1)
	f.J(guest.JMP, l4)
	f.Bind(d4)
	f.Halt()

	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return exe.Strip()
}

func TestClassification(t *testing.T) {
	p, err := Analyze(buildMixed(t))
	if err != nil {
		t.Fatal(err)
	}
	counts := p.ClassCounts()
	if counts[ClassStaticDOALL] != 1 {
		t.Errorf("static DOALL: %d", counts[ClassStaticDOALL])
	}
	if counts[ClassStaticDep] != 1 {
		t.Errorf("static dep: %d", counts[ClassStaticDep])
	}
	if counts[ClassDynDOALL] != 1 {
		t.Errorf("dynamic: %d", counts[ClassDynDOALL])
	}
	if counts[ClassIncompatible] != 1 {
		t.Errorf("incompatible: %d", counts[ClassIncompatible])
	}
}

func TestSelectionConfigurations(t *testing.T) {
	p, err := Analyze(buildMixed(t))
	if err != nil {
		t.Fatal(err)
	}
	// Without checks: only the static DOALL loop.
	sel := p.SelectLoops(SelectOptions{})
	if len(sel) != 1 || sel[0].Class != ClassStaticDOALL {
		t.Fatalf("static selection: %d loops", len(sel))
	}
	// With checks: also the checkable dynamic loop.
	sel = p.SelectLoops(SelectOptions{UseChecks: true})
	if len(sel) != 2 {
		t.Fatalf("checks selection: %d loops", len(sel))
	}
	// Profile filter drops low-coverage loops.
	for _, li := range p.Loops {
		li.Coverage = 0.001
		li.AvgIter = 256
	}
	sel = p.SelectLoops(SelectOptions{UseProfile: true, MinCoverage: 0.01, UseChecks: true})
	if len(sel) != 0 {
		t.Fatalf("coverage filter failed: %d", len(sel))
	}
	// Avg-iteration filter drops high-invocation loops.
	for _, li := range p.Loops {
		li.Coverage = 0.5
		li.AvgIter = 8
	}
	sel = p.SelectLoops(SelectOptions{UseProfile: true, MinCoverage: 0.01, UseChecks: true})
	if len(sel) != 0 {
		t.Fatalf("avg-iter filter failed: %d", len(sel))
	}
}

func TestDependenceProfilingDemotesToTypeD(t *testing.T) {
	p, err := Analyze(buildMixed(t))
	if err != nil {
		t.Fatal(err)
	}
	var dyn *LoopInfo
	for _, li := range p.Loops {
		if li.Class == ClassDynDOALL {
			dyn = li
		}
	}
	if dyn == nil {
		t.Fatal("no dynamic loop")
	}
	p.ApplyDependences(map[int]bool{dyn.ID: true})
	if dyn.Class != ClassDynDep {
		t.Fatalf("class after observed dep: %s", dyn.Class)
	}
	sel := p.SelectLoops(SelectOptions{UseChecks: true})
	for _, li := range sel {
		if li == dyn {
			t.Fatal("type-D loop must not be selected")
		}
	}
}

func TestScheduleGeneration(t *testing.T) {
	p, err := Analyze(buildMixed(t))
	if err != nil {
		t.Fatal(err)
	}
	p.SelectLoops(SelectOptions{UseChecks: true})
	sched, err := p.GenParallelSchedule()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[rules.ID]int{}
	for _, r := range sched.Rules {
		ids[r.ID]++
	}
	if ids[rules.LOOP_INIT] != 2 || ids[rules.LOOP_FINISH] != 2 {
		t.Errorf("loop init/finish counts: %v", ids)
	}
	if ids[rules.LOOP_UPDATE_BOUND] != 2 {
		t.Errorf("bound rules: %d", ids[rules.LOOP_UPDATE_BOUND])
	}
	if ids[rules.MEM_BOUNDS_CHECK] != 1 {
		t.Errorf("check rules: %d", ids[rules.MEM_BOUNDS_CHECK])
	}
	if ids[rules.THREAD_SCHEDULE] != 2 || ids[rules.THREAD_YIELD] != 2 {
		t.Errorf("thread rules: %v", ids)
	}
	// Round-trip through bytes.
	img, err := sched.Save()
	if err != nil {
		t.Fatal(err)
	}
	back, err := rules.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rules) != len(sched.Rules) {
		t.Fatal("schedule round trip lost rules")
	}
}

func TestProfileScheduleCoversAllLoops(t *testing.T) {
	p, err := Analyze(buildMixed(t))
	if err != nil {
		t.Fatal(err)
	}
	sched := p.GenProfileSchedule()
	iters := map[int32]bool{}
	for _, r := range sched.Rules {
		if r.ID == rules.PROF_LOOP_ITER {
			iters[r.LoopID] = true
		}
	}
	if len(iters) != len(p.Loops) {
		t.Fatalf("instrumented %d of %d loops", len(iters), len(p.Loops))
	}
	// The dynamic loop's accesses are instrumented for dependences.
	memRules := 0
	for _, r := range sched.Rules {
		if r.ID == rules.PROF_MEM_ACCESS {
			memRules++
		}
	}
	if memRules == 0 {
		t.Fatal("no dependence instrumentation")
	}
}

func TestIOLoopIncompatible(t *testing.T) {
	b := asm.NewBuilder("io")
	f := b.Func("main")
	l, d := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R6, 0)
	f.Bind(l)
	f.Cmpi(guest.R6, 10)
	f.J(guest.JGE, d)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R6)
	f.Syscall()
	f.OpI(guest.ADDI, guest.R6, 1)
	f.J(guest.JMP, l)
	f.Bind(d)
	f.Halt()
	exe, _ := b.Build()
	p, err := Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) != 1 || p.Loops[0].Class != ClassIncompatible {
		t.Fatalf("IO loop classified %s", p.Loops[0].Class)
	}
}

func TestPureCalleeAllowed(t *testing.T) {
	b := asm.NewBuilder("purecall")
	b.Data("a", 8*256)
	f := b.Func("main")
	l, d := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, "a", 0)
	f.Movi(guest.R6, 0)
	f.Bind(l)
	f.Cmpi(guest.R6, 256)
	f.J(guest.JGE, d)
	f.Mov(guest.R1, guest.R6)
	f.Call("triple") // pure: no stores, no syscalls
	f.St(guest.Mem{Base: guest.R8, Index: guest.R6, Scale: 8}, guest.R0)
	f.OpI(guest.ADDI, guest.R6, 1)
	f.J(guest.JMP, l)
	f.Bind(d)
	f.Halt()
	tr := b.Func("triple")
	tr.Mov(guest.R0, guest.R1)
	tr.OpI(guest.IMULI, guest.R0, 3)
	tr.Ret()
	exe, _ := b.Build()
	p, err := Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	main := p.Loops[0]
	if main.Class == ClassIncompatible {
		t.Fatalf("pure callee rejected: %v", main.Reasons)
	}
}

func TestImpureCalleeRejected(t *testing.T) {
	b := asm.NewBuilder("impure")
	b.Data("a", 8*256)
	b.Data("g", 8)
	f := b.Func("main")
	l, d := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R6, 0)
	f.Bind(l)
	f.Cmpi(guest.R6, 256)
	f.J(guest.JGE, d)
	f.Call("bump") // impure: writes a global
	f.OpI(guest.ADDI, guest.R6, 1)
	f.J(guest.JMP, l)
	f.Bind(d)
	f.Halt()
	g := b.Func("bump")
	g.LdData(guest.R0, "g", 0)
	g.OpI(guest.ADDI, guest.R0, 1)
	g.StData("g", 0, guest.R0)
	g.Ret()
	exe, _ := b.Build()
	p, err := Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	if p.Loops[0].Class != ClassIncompatible {
		t.Fatalf("impure callee accepted: %s", p.Loops[0].Class)
	}
}
