package vm

import (
	"bytes"
	"testing"
)

// TestCrossPageWord exercises Read64/Write64 straddling a page
// boundary: every split position must round-trip and agree with
// byte-at-a-time assembly.
func TestCrossPageWord(t *testing.T) {
	for off := uint64(0); off < 8; off++ {
		m := NewMemory()
		addr := uint64(2*pageSize) - 8 + off
		v := uint64(0x1122334455667788) + off
		m.Write64(addr, v)
		if got := m.Read64(addr); got != v {
			t.Fatalf("offset %d: Read64 = %#x, want %#x", off, got, v)
		}
		var byteWise uint64
		for i := uint64(0); i < 8; i++ {
			byteWise |= uint64(m.Load8(addr+i)) << (8 * i)
		}
		if byteWise != v {
			t.Fatalf("offset %d: byte assembly = %#x, want %#x", off, byteWise, v)
		}
	}
}

// TestReadWriteBytesCrossPage round-trips a buffer spanning several
// pages through the bulk-copy paths, with a hole over an unallocated
// page reading back as zeroes.
func TestReadWriteBytesCrossPage(t *testing.T) {
	m := NewMemory()
	src := make([]byte, 3*pageSize+123)
	for i := range src {
		src[i] = byte(i * 7)
	}
	base := uint64(0x10_0000 - 99) // unaligned start
	m.WriteBytes(base, src)
	if got := m.ReadBytes(base, len(src)); !bytes.Equal(got, src) {
		t.Fatal("ReadBytes != WriteBytes input")
	}
	// A never-touched span reads back zero-filled.
	if got := m.ReadBytes(0x9000_0000, 2*pageSize); !bytes.Equal(got, make([]byte, 2*pageSize)) {
		t.Fatal("unallocated span not zero")
	}
}

// TestMemoryCopy checks the page-span Copy used by the privatised-slot
// writeback, including copies from unallocated source pages.
func TestMemoryCopy(t *testing.T) {
	m := NewMemory()
	src := make([]byte, pageSize+500)
	for i := range src {
		src[i] = byte(i)
	}
	m.WriteBytes(0x4000-250, src)
	m.Copy(0x8_0000-13, 0x4000-250, len(src))
	if got := m.ReadBytes(0x8_0000-13, len(src)); !bytes.Equal(got, src) {
		t.Fatal("Copy mismatch")
	}
	// Copying from a hole zeroes the destination.
	m.WriteBytes(0x2_0000, []byte{1, 2, 3, 4})
	m.Copy(0x2_0000, 0x7777_0000, 4)
	if got := m.ReadBytes(0x2_0000, 4); !bytes.Equal(got, make([]byte, 4)) {
		t.Fatalf("Copy from hole = %v, want zeroes", got)
	}
}

// TestIncrementalHashEquivalence verifies that the dirty-page digest
// cache is equivalent to a full rehash: after any sequence of writes,
// Hash() of the mutated memory equals Hash() of a fresh memory holding
// the same contents.
func TestIncrementalHashEquivalence(t *testing.T) {
	m := NewMemory()
	addrs := []uint64{0x1000, 0x5008, 0x7ff8, 0x10_0000, 0x7ffc_0000_0120}
	for i, a := range addrs {
		m.Write64(a, uint64(i+1)*0x0101)
	}
	h1 := m.Hash()

	// Mutate one page after hashing: the cached digests for the other
	// pages must combine with the recomputed one correctly.
	m.Write64(0x5008, 0xdead)
	m.Write64(0x5010, 0xbeef)
	h2 := m.Hash()
	if h1 == h2 {
		t.Fatal("hash unchanged after write")
	}

	// Rebuild the same contents from scratch and compare.
	fresh := NewMemory()
	for i, a := range addrs {
		fresh.Write64(a, uint64(i+1)*0x0101)
	}
	fresh.Write64(0x5008, 0xdead)
	fresh.Write64(0x5010, 0xbeef)
	if fresh.Hash() != h2 {
		t.Fatal("incremental hash diverges from full rehash")
	}
	if fresh.HashBelow(0x6000) != m.HashBelow(0x6000) {
		t.Fatal("HashBelow diverges after incremental update")
	}

	// Writing a page back to all-zero must hash as if the page were
	// never resident.
	m2 := NewMemory()
	m2.Write64(0x1000, 5)
	empty := NewMemory().Hash()
	m2.Write64(0x1000, 0)
	if m2.Hash() != empty {
		t.Fatal("zeroed page still contributes to hash")
	}
}

// TestHashBelowConsistentWithHash checks both entry points share one
// construction: when every resident page is below the limit they agree.
func TestHashBelowConsistentWithHash(t *testing.T) {
	m := NewMemory()
	m.Write64(0x2000, 42)
	m.Write64(0x3000, 43)
	if m.Hash() != m.HashBelow(^uint64(0)) {
		t.Fatal("Hash != unbounded HashBelow")
	}
	if m.Hash() != m.HashBelow(0x4000) {
		t.Fatal("limit above all pages changed the digest")
	}
	if m.Hash() == m.HashBelow(0x3000) {
		t.Fatal("limit excluding a page did not change the digest")
	}
}

// TestTLBSharedAcrossContexts interleaves two contexts through one
// memory: a write by either context must be immediately visible to the
// other even though the translation cache retains recently used pages,
// and pages evicted from the TLB must remain reachable.
func TestTLBSharedAcrossContexts(t *testing.T) {
	m := NewMemory()
	c1 := &Context{ID: 0, Bus: m}
	c2 := &Context{ID: 1, Bus: m}

	// Touch three pages alternately so the two-entry TLB cycles through
	// fill, hit-swap and eviction.
	pages := []uint64{0x1000, 0x2000, 0x3000}
	for round := uint64(0); round < 8; round++ {
		for i, base := range pages {
			a := base + 8*round
			c1.Bus.Write64(a, round*100+uint64(i))
			if got := c2.Bus.Read64(a); got != round*100+uint64(i) {
				t.Fatalf("round %d page %d: c2 read %d", round, i, got)
			}
			c2.Bus.Write64(a, round*200+uint64(i))
			if got := c1.Bus.Read64(a); got != round*200+uint64(i) {
				t.Fatalf("round %d page %d: c1 read %d", round, i, got)
			}
		}
	}
	// Evicted pages are still intact via the slow path.
	for i, base := range pages {
		if got := m.Read64(base + 8*7); got != 7*200+uint64(i) {
			t.Fatalf("page %d lost value after eviction: %d", i, got)
		}
	}
}
