package vm

import (
	"runtime"
	"sync"
	"testing"

	"janus/internal/asm"
	"janus/internal/guest"
)

// TestMemViewSequentialEquivalence checks that views are pure access
// ports: interleaving reads/writes across several views of one memory
// gives the same contents and hash as the same operations through the
// memory's own methods.
func TestMemViewSequentialEquivalence(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	va := []*MemView{a.NewView(), a.NewView(), a.NewView()}
	for i := uint64(0); i < 3000; i++ {
		addr := 0x4000 + i*56 // crosses pages, occasionally unaligned spans
		va[i%3].Write64(addr, i*i+1)
		b.Write64(addr, i*i+1)
	}
	for i := uint64(0); i < 3000; i++ {
		addr := 0x4000 + i*56
		if got, want := va[(i+1)%3].Read64(addr), b.Read64(addr); got != want {
			t.Fatalf("addr %#x: view read %d, memory read %d", addr, got, want)
		}
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("hash mismatch: views %#x, direct %#x", a.Hash(), b.Hash())
	}
}

// TestMemViewConcurrency hammers one shared Memory from many goroutines,
// each with a private view, writing disjoint words and reading a shared
// read-only region — the access pattern Janus' bounds checks guarantee
// for parallelised loops. Run under -race this exercises the TLB, the
// last-leaf cache, concurrent page allocation (all goroutines fault the
// same fresh pages) and the atomic dirty bits.
func TestMemViewConcurrency(t *testing.T) {
	const (
		goroutines = 8
		words      = 4096
	)
	m := NewMemory()
	// Shared read-only region, written before the goroutines start.
	for i := uint64(0); i < words; i++ {
		m.Write64(0x10_0000+i*8, i+7)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			v := m.NewView()
			base := uint64(0x80_0000)
			for i := uint64(0); i < words; i++ {
				// Interleaved-by-thread addresses: every fresh page is
				// faulted by all goroutines at once.
				addr := base + (i*goroutines+g)*8
				v.Write64(addr, g<<32|i)
				if got := v.Read64(0x10_0000 + (i%words)*8); got != (i%words)+7 {
					t.Errorf("shared read at %d: got %d", i, got)
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	for g := uint64(0); g < goroutines; g++ {
		for i := uint64(0); i < words; i++ {
			addr := 0x80_0000 + (i*goroutines+g)*8
			if got := m.Read64(addr); got != g<<32|i {
				t.Fatalf("thread %d word %d: got %#x", g, i, got)
			}
		}
	}
	// The hash must equal a sequentially built twin's.
	twin := NewMemory()
	for i := uint64(0); i < words; i++ {
		twin.Write64(0x10_0000+i*8, i+7)
	}
	for g := uint64(0); g < goroutines; g++ {
		for i := uint64(0); i < words; i++ {
			twin.Write64(0x80_0000+(i*goroutines+g)*8, g<<32|i)
		}
	}
	if m.Hash() != twin.Hash() {
		t.Fatalf("hash after concurrent build %#x != sequential twin %#x", m.Hash(), twin.Hash())
	}
}

// TestFetchInstConcurrent checks that instruction fetch is pure: many
// goroutines fetching the same addresses must agree with a reference
// fetched up front.
func TestFetchInstConcurrent(t *testing.T) {
	b := asm.NewBuilder("fetch-race")
	f := b.Func("main")
	for i := 0; i < 64; i++ {
		f.Movi(guest.R1, int64(i))
	}
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(exe)
	if err != nil {
		t.Fatal(err)
	}
	n := len(m.Exe.Code) / guest.InstSize
	ref := make([]guest.Inst, n)
	for i := 0; i < n; i++ {
		ref[i], err = m.FetchInst(m.Exe.CodeBase + uint64(i)*guest.InstSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 2*runtime.NumCPU()+2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				in, err := m.FetchInst(m.Exe.CodeBase + uint64(i)*guest.InstSize)
				if err != nil {
					t.Error(err)
					return
				}
				if in != ref[i] {
					t.Errorf("inst %d differs across goroutines", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
