package vm

import (
	"math"
	"testing"
	"testing/quick"

	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
)

// buildSumProgram assembles: sum = 0; for i in 0..n-1 { sum += a[i] };
// write(sum); exit(0). Returns the executable.
func buildSumProgram(t *testing.T, n int64) *obj.Executable {
	t.Helper()
	b := asm.NewBuilder("sum")
	vals := make([]int64, n)
	var want int64
	for i := range vals {
		vals[i] = int64(i) * 3
		want += vals[i]
	}
	b.DataI64("a", vals)
	f := b.Func("main")
	loop := f.NewLabel()
	done := f.NewLabel()
	f.MoviData(guest.R8, "a", 0) // base
	f.Movi(guest.R1, 0)          // i
	f.Movi(guest.R2, 0)          // sum
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 0})
	f.Op(guest.ADD, guest.R2, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Movi(guest.R0, guest.SysExit)
	f.Movi(guest.R1, 0)
	f.Syscall()
	exe, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return exe
}

func TestRunNativeSumLoop(t *testing.T) {
	exe := buildSumProgram(t, 100)
	res, err := RunNative(exe)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := int64(0); i < 100; i++ {
		want += uint64(i * 3)
	}
	if len(res.Output) != 1 || res.Output[0] != want {
		t.Fatalf("output = %v, want [%d]", res.Output, want)
	}
	if res.Exit != 0 {
		t.Fatalf("exit = %d", res.Exit)
	}
	if res.Cycles <= 0 || res.Insts <= 0 {
		t.Fatalf("no virtual time recorded: %+v", res)
	}
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 0xdeadbeefcafe)
	if got := m.Read64(0x1000); got != 0xdeadbeefcafe {
		t.Fatalf("got %#x", got)
	}
	// Unwritten memory reads as zero.
	if got := m.Read64(0x999000); got != 0 {
		t.Fatalf("unwritten = %#x", got)
	}
	// Page-straddling access.
	m.Write64(0x1ffc, 0x1122334455667788)
	if got := m.Read64(0x1ffc); got != 0x1122334455667788 {
		t.Fatalf("straddle = %#x", got)
	}
}

func TestMemoryProperty(t *testing.T) {
	f := func(addr uint64, v uint64) bool {
		m := NewMemory()
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryHashInsensitiveToZeroPages(t *testing.T) {
	a := NewMemory()
	b := NewMemory()
	a.Write64(0x5000, 7)
	b.Write64(0x5000, 7)
	b.Write64(0x9000, 0) // touched but zero
	if a.Hash() != b.Hash() {
		t.Fatal("zero page changed hash")
	}
	b.Write64(0x9000, 1)
	if a.Hash() == b.Hash() {
		t.Fatal("distinct contents, same hash")
	}
}

func TestFloatOps(t *testing.T) {
	b := asm.NewBuilder("float")
	f := b.Func("main")
	f.MoviF(guest.R1, 2.0)
	f.MoviF(guest.R2, 3.0)
	f.Op(guest.FMUL, guest.R1, guest.R2) // 6.0
	f.Op(guest.FSQRT, guest.R3, guest.R1)
	f.Movi(guest.R0, guest.SysWriteF)
	f.Mov(guest.R1, guest.R3)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNative(exe)
	if err != nil {
		t.Fatal(err)
	}
	got := math.Float64frombits(res.Output[0])
	if math.Abs(got-math.Sqrt(6)) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestCallRet(t *testing.T) {
	b := asm.NewBuilder("callret")
	main := b.Func("main")
	main.Movi(guest.R1, 20)
	main.Call("double")
	main.Movi(guest.R9, guest.SysWrite) // write result in R0
	main.Mov(guest.R2, guest.R0)
	main.Mov(guest.R0, guest.R9)
	main.Mov(guest.R1, guest.R2)
	main.Syscall()
	main.Halt()
	dbl := b.Func("double")
	dbl.Mov(guest.R0, guest.R1)
	dbl.Op(guest.ADD, guest.R0, guest.R1)
	dbl.Ret()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNative(exe)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 40 {
		t.Fatalf("output %v", res.Output)
	}
}

func TestSharedLibraryCall(t *testing.T) {
	lb := asm.NewBuilder("libm")
	sq := lb.Func("square")
	sq.Mov(guest.R0, guest.R1)
	sq.Op(guest.FMUL, guest.R0, guest.R1)
	sq.Ret()
	lib, err := lb.BuildLibrary(obj.DefaultLibBase)
	if err != nil {
		t.Fatal(err)
	}

	b := asm.NewBuilder("uselib")
	b.Import("square")
	f := b.Func("main")
	f.MoviF(guest.R1, 5.0)
	f.Call("square")
	f.Mov(guest.R2, guest.R0)
	f.Movi(guest.R0, guest.SysWriteF)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(exe.Imports) != 1 {
		t.Fatalf("imports %v", exe.Imports)
	}
	res, err := RunNative(exe, lib)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(res.Output[0]); got != 25.0 {
		t.Fatalf("square(5) = %v", got)
	}
}

func TestUnresolvedImportFails(t *testing.T) {
	b := asm.NewBuilder("missing")
	b.Import("nothere")
	f := b.Func("main")
	f.Call("nothere")
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(exe); err == nil {
		t.Fatal("expected unresolved import error")
	}
}

func TestVectorOps(t *testing.T) {
	b := asm.NewBuilder("vec")
	vals := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	b.DataF64("v", vals)
	b.Data("out", 8*guest.VLEN)
	f := b.Func("main")
	f.MoviData(guest.R8, "v", 0)
	f.MoviData(guest.R9, "out", 0)
	f.I(guest.NewInstM(guest.VLD, 0, guest.Mem{Base: guest.R8, Index: guest.RegNone, Scale: 1}))
	f.I(guest.NewInstM(guest.VLD, 1, guest.Mem{Base: guest.R8, Index: guest.RegNone, Scale: 1, Disp: 32}))
	f.I(guest.NewInst(guest.VADD, 0, 1))
	f.I(guest.NewInstM(guest.VST, 0, guest.Mem{Base: guest.R9, Index: guest.RegNone, Scale: 1}))
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(exe)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewContext(0, obj.DefaultStackTop)
	if err := RunContext(m, c, 1000); err != nil {
		t.Fatal(err)
	}
	out := b.DataAddr("out")
	want := []float64{11, 22, 33, 44}
	for i, w := range want {
		got := math.Float64frombits(m.Mem.Read64(out + uint64(8*i)))
		if got != w {
			t.Errorf("lane %d = %v, want %v", i, got, w)
		}
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	b := asm.NewBuilder("div0")
	f := b.Func("main")
	f.Movi(guest.R1, 10)
	f.Movi(guest.R2, 0)
	f.Op(guest.IDIV, guest.R1, guest.R2)
	f.Halt()
	exe, _ := b.Build()
	if _, err := RunNative(exe); err == nil {
		t.Fatal("expected trap")
	}
}

func TestObjSaveLoadRoundTrip(t *testing.T) {
	exe := buildSumProgram(t, 10)
	img := exe.Save()
	back, err := obj.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != exe.Name || back.Entry != exe.Entry || len(back.Code) != len(exe.Code) {
		t.Fatalf("header mismatch: %+v vs %+v", back, exe)
	}
	res1, err := RunNative(exe)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunNative(back)
	if err != nil {
		t.Fatal(err)
	}
	if res1.MemHash != res2.MemHash || res1.Output[0] != res2.Output[0] {
		t.Fatal("reloaded executable behaves differently")
	}
}

func TestStrippedExecutableStillRuns(t *testing.T) {
	exe := buildSumProgram(t, 16)
	st := exe.Strip()
	if !st.Stripped || len(st.Symbols) != 0 {
		t.Fatal("strip did not remove symbols")
	}
	res, err := RunNative(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 {
		t.Fatal("stripped run broken")
	}
}

func TestObjLoadRejectsGarbage(t *testing.T) {
	if _, err := obj.Load([]byte("not an executable")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := obj.Load(nil); err == nil {
		t.Fatal("expected error on empty")
	}
}

func TestCmovSemantics(t *testing.T) {
	b := asm.NewBuilder("cmov")
	f := b.Func("main")
	f.Movi(guest.R1, 5)
	f.Movi(guest.R2, 9)
	f.Movi(guest.R3, 77)
	f.Cmp(guest.R1, guest.R1) // ZF=1
	f.Op(guest.CMOVE, guest.R2, guest.R3)
	f.Cmpi(guest.R1, 6) // ZF=0
	f.Op(guest.CMOVE, guest.R2, guest.R1)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Halt()
	exe, _ := b.Build()
	res, err := RunNative(exe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 77 {
		t.Fatalf("cmov result %d", res.Output[0])
	}
}

func TestStackPushPop(t *testing.T) {
	b := asm.NewBuilder("stack")
	f := b.Func("main")
	f.Movi(guest.R1, 111)
	f.Movi(guest.R2, 222)
	f.Push(guest.R1)
	f.Push(guest.R2)
	f.Pop(guest.R3) // 222
	f.Pop(guest.R4) // 111
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R3)
	f.Syscall()
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R4)
	f.Syscall()
	f.Halt()
	exe, _ := b.Build()
	res, err := RunNative(exe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 222 || res.Output[1] != 111 {
		t.Fatalf("stack order wrong: %v", res.Output)
	}
}

func TestStepBoundEnforced(t *testing.T) {
	b := asm.NewBuilder("spin")
	f := b.Func("main")
	l := f.NewLabel()
	f.Bind(l)
	f.J(guest.JMP, l)
	exe, _ := b.Build()
	m, _ := NewMachine(exe)
	c := m.NewContext(0, obj.DefaultStackTop)
	if err := RunContext(m, c, 100); err == nil {
		t.Fatal("expected step-bound error")
	}
}
