package vm

import (
	"sync"
	"testing"
)

// TestCheckpointRestoreExact verifies Restore returns memory to the
// byte-exact snapshot image: contents, hash, and pages allocated inside
// the region (which must hash as if never touched).
func TestCheckpointRestoreExact(t *testing.T) {
	m := NewMemory()
	for i := uint64(0); i < 64; i++ {
		m.Write64(0x1000+8*i, i*i+1)
	}
	m.Write64(0x4000_0000, 0xdeadbeef)
	before := m.Hash()
	beforeBytes := m.ReadBytes(0x1000, 64*8)

	c := m.Snapshot()
	// Overwrite existing pages, allocate a brand-new page, and do a
	// cross-page byte write.
	for i := uint64(0); i < 64; i++ {
		m.Write64(0x1000+8*i, ^uint64(0))
	}
	m.Write64(0x9000_0000, 7)          // fresh page inside the region
	m.Store8(0x4000_0000, 0xff)        // byte store on existing page
	m.Copy(0x2000, 0x1000, 128)        // Copy path
	m.WriteBytes(0x3000, []byte{1, 2}) // WriteBytes path
	if m.Hash() == before {
		t.Fatal("writes inside region did not change hash")
	}
	c.Restore()

	if got := m.Hash(); got != before {
		t.Fatalf("hash after restore = %#x, want %#x", got, before)
	}
	if got := m.ReadBytes(0x1000, 64*8); string(got) != string(beforeBytes) {
		t.Fatal("page contents differ after restore")
	}
	if got := m.Read64(0x9000_0000); got != 0 {
		t.Fatalf("region-allocated page not restored to zero: %#x", got)
	}
	if got := m.Read64(0x4000_0000); got != 0xdeadbeef {
		t.Fatalf("byte-store page not restored: %#x", got)
	}
}

// TestCheckpointDiscardKeepsWrites verifies Discard keeps every write
// made since Snapshot.
func TestCheckpointDiscardKeepsWrites(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 1)
	c := m.Snapshot()
	m.Write64(0x1000, 2)
	m.Write64(0x2000, 3)
	c.Discard()
	if got := m.Read64(0x1000); got != 2 {
		t.Fatalf("Read64(0x1000) = %d after Discard, want 2", got)
	}
	if got := m.Read64(0x2000); got != 3 {
		t.Fatalf("Read64(0x2000) = %d after Discard, want 3", got)
	}
	// The checkpoint must fully release: a new snapshot works.
	m.Snapshot().Discard()
}

// TestCheckpointCostIsDirtyPages verifies the undo log is proportional
// to pages dirtied inside the region, not the resident set, and that
// repeated writes to the same page save it once.
func TestCheckpointCostIsDirtyPages(t *testing.T) {
	m := NewMemory()
	for i := uint64(0); i < 1024; i++ { // 1024 resident pages
		m.Write64(i<<pageShift, i+1)
	}
	c := m.Snapshot()
	for j := 0; j < 100; j++ { // many writes, 3 distinct pages
		m.Write64(0<<pageShift, uint64(j))
		m.Write64(5<<pageShift, uint64(j))
		m.Write64(9<<pageShift, uint64(j))
	}
	if got := c.Pages(); got != 3 {
		t.Fatalf("checkpoint saved %d pages, want 3", got)
	}
	c.Restore()
}

// TestCheckpointConcurrentFirstWrites races many views' first writes —
// both to disjoint pages and to disjoint words of shared pages — under
// an active checkpoint, then restores and checks exactness. Exercised
// by the -race CI job.
func TestCheckpointConcurrentFirstWrites(t *testing.T) {
	m := NewMemory()
	const workers = 8
	const pages = 64
	for i := uint64(0); i < pages; i++ {
		m.Write64(i<<pageShift, i+100)
	}
	before := m.Hash()

	c := m.Snapshot()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := m.NewView()
			for i := uint64(0); i < pages; i++ {
				// Disjoint words of every shared page: all workers race
				// to be the page's first writer.
				v.Write64(i<<pageShift+uint64(8+8*w), uint64(w)<<32|i)
			}
			// And a worker-private fresh page.
			v.Write64((pages+uint64(w))<<pageShift, uint64(w))
		}(w)
	}
	wg.Wait()
	if got := c.Pages(); got != pages+workers {
		t.Fatalf("checkpoint saved %d pages, want %d", got, pages+workers)
	}
	c.Restore()
	if got := m.Hash(); got != before {
		t.Fatalf("hash after concurrent restore = %#x, want %#x", got, before)
	}
	for i := uint64(0); i < pages; i++ {
		if got := m.Read64(i << pageShift); got != i+100 {
			t.Fatalf("page %d word = %d, want %d", i, got, i+100)
		}
	}
}

// TestCheckpointNestedPanics pins the single-active-checkpoint
// contract.
func TestCheckpointNestedPanics(t *testing.T) {
	m := NewMemory()
	c := m.Snapshot()
	defer c.Discard()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Snapshot did not panic")
		}
	}()
	m.Snapshot()
}

// TestWriteNoCheckpointAllocs guards the store fast path: with no
// checkpoint active, Write64 must not allocate (the touch hook is a
// plain pointer load).
func TestWriteNoCheckpointAllocs(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 1)
	if n := testing.AllocsPerRun(100, func() {
		m.Write64(0x1000, 42)
	}); n != 0 {
		t.Fatalf("Write64 allocated %.1f times per op with no checkpoint", n)
	}
}
