package vm

import (
	"fmt"
	"sync/atomic"

	"janus/internal/guest"
	"janus/internal/obj"
)

// Context is one hardware thread's architectural state plus its virtual
// clock and instrumentation hooks.
type Context struct {
	// GPR holds the general-purpose registers; index guest.RegTLS (16)
	// is the thread-local-storage base pseudo-register.
	GPR [guest.NumGPR + 1]uint64
	// VReg holds the packed vector registers.
	VReg [guest.NumVReg][guest.VLEN]float64
	// Flags from the last CMP/TEST.
	ZF bool // zero
	LF bool // signed less-than

	PC     uint64
	Halted bool
	Exit   int64

	// Cycles is the virtual clock: the accumulated cost-model latency of
	// every instruction this context has executed.
	Cycles int64
	// Insts counts executed instructions.
	Insts int64

	// Bus routes memory accesses; defaults to the machine memory. The
	// host-parallel runtime substitutes a per-thread MemView, and the
	// STM substitutes a buffering bus during speculation.
	Bus Bus

	// OnMem, when non-nil, observes every data memory access with its
	// effective address. The dependence profiler hooks here.
	OnMem func(addr uint64, write bool, width int64)

	// ID is the Janus thread id (0 = main).
	ID int
}

// Reg reads a register, honouring the TLS pseudo-register.
func (c *Context) Reg(r guest.Reg) uint64 {
	if r == guest.RegNone {
		return 0
	}
	return c.GPR[r]
}

// SetReg writes a register.
func (c *Context) SetReg(r guest.Reg, v uint64) {
	if r == guest.RegNone {
		return
	}
	c.GPR[r] = v
}

// EffAddr computes the effective address of a memory operand.
func (c *Context) EffAddr(m guest.Mem) uint64 {
	addr := uint64(m.Disp)
	if m.Base != guest.RegNone {
		addr += c.Reg(m.Base)
	}
	if m.Index != guest.RegNone {
		addr += c.Reg(m.Index) * uint64(m.Scale)
	}
	return addr
}

// Machine is a loaded guest program: its memory image, code sources and
// allocation state. Contexts execute against a machine.
//
// All code is decoded eagerly at load time, so FetchInst performs no
// writes and is safe to call from concurrently executing guest threads
// (the DBM translates blocks into per-thread code caches while other
// threads run).
type Machine struct {
	Exe  *obj.Executable
	Libs []*obj.Library
	Mem  *Memory

	// exeInsts caches decoded executable instructions by code index
	// (flat slice, no hashing on the fetch fast path); exeOK marks
	// valid entries. Both are immutable after NewMachine.
	exeInsts []guest.Inst
	exeOK    []bool
	// libInsts/libOK cache decoded library instructions per library,
	// indexed by instruction slot. Immutable after NewMachine.
	libInsts [][]guest.Inst
	libOK    [][]bool

	// pltTarget maps a PLT stub address to its resolved library address.
	// Immutable after NewMachine.
	pltTarget map[uint64]uint64

	// heapNext is the bump-allocation frontier for SysAlloc, advanced
	// atomically. Guest allocation from inside a host-parallel region is
	// prevented by the DBM's eligibility scan (a SYSCALL in a loop body
	// forces the round-robin engine), which keeps allocation addresses —
	// and therefore results — schedule-independent.
	heapNext atomic.Uint64

	// Output collects values written by SysWrite/SysWriteF in order.
	Output []uint64
}

// NewMachine loads exe and libs: copies the data section into memory,
// resolves PLT stubs against library exports, and pre-decodes all
// executable and library code.
func NewMachine(exe *obj.Executable, libs ...*obj.Library) (*Machine, error) {
	nInst := len(exe.Code) / guest.InstSize
	m := &Machine{
		Exe:       exe,
		Libs:      libs,
		Mem:       NewMemory(),
		exeInsts:  make([]guest.Inst, nInst),
		exeOK:     make([]bool, nInst),
		libInsts:  make([][]guest.Inst, len(libs)),
		libOK:     make([][]bool, len(libs)),
		pltTarget: make(map[uint64]uint64),
	}
	m.heapNext.Store(obj.DefaultHeapBase)
	m.Mem.WriteBytes(exe.DataBase, exe.Data)
	for _, im := range exe.Imports {
		resolved := false
		for _, lib := range libs {
			if s, ok := lib.SymbolByName(im.Name); ok {
				m.pltTarget[im.PLT] = s.Addr
				resolved = true
				break
			}
		}
		if !resolved {
			return nil, fmt.Errorf("vm: unresolved import %q", im.Name)
		}
	}
	for idx := 0; idx < nInst; idx++ {
		addr := exe.CodeBase + uint64(idx)*guest.InstSize
		in, err := guest.Decode(exe.Code[uint64(idx)*guest.InstSize:])
		if err != nil {
			continue // undecodable slot: FetchInst reports the error lazily
		}
		if target, ok := m.pltTarget[addr]; ok {
			// Loader-patched PLT stub.
			in = guest.NewInstI(guest.JMP, guest.RegNone, int64(target))
		}
		m.exeInsts[idx] = in
		m.exeOK[idx] = true
	}
	for li, lib := range libs {
		n := len(lib.Code) / guest.InstSize
		m.libInsts[li] = make([]guest.Inst, n)
		m.libOK[li] = make([]bool, n)
		for idx := 0; idx < n; idx++ {
			in, err := guest.Decode(lib.Code[uint64(idx)*guest.InstSize:])
			if err != nil {
				continue
			}
			m.libInsts[li][idx] = in
			m.libOK[li][idx] = true
		}
	}
	return m, nil
}

// NewContext returns a fresh context with its stack at top and PC at the
// program entry.
func (m *Machine) NewContext(id int, stackTop uint64) *Context {
	c := &Context{ID: id, PC: m.Exe.Entry, Bus: m.Mem}
	c.SetReg(guest.SP, stackTop)
	return c
}

// FetchInst returns the decoded instruction at addr from the executable
// or a library, with PLT stubs resolved to their library targets. All
// decoding happened at load time, so FetchInst mutates nothing and is
// safe for concurrent use.
func (m *Machine) FetchInst(addr uint64) (guest.Inst, error) {
	// Fast path: executable code indexes a flat decode cache. The cache
	// is sized in whole instructions, so bounding the index also rejects
	// a truncated trailing fragment, which falls through to the decoding
	// error path.
	if addr >= m.Exe.CodeBase {
		off := addr - m.Exe.CodeBase
		if idx := off / guest.InstSize; idx < uint64(len(m.exeOK)) && off%guest.InstSize == 0 {
			if m.exeOK[idx] {
				return m.exeInsts[idx], nil
			}
			_, err := m.Exe.InstAt(addr) // reproduce the decode error
			return guest.Inst{}, err
		}
	}
	if m.Exe.InCode(addr) {
		// Misaligned or truncated executable address.
		_, err := m.Exe.InstAt(addr)
		return guest.Inst{}, err
	}
	for li, lib := range m.Libs {
		if !lib.InCode(addr) {
			continue
		}
		off := addr - lib.Base
		if idx := off / guest.InstSize; off%guest.InstSize == 0 && idx < uint64(len(m.libOK[li])) {
			if m.libOK[li][idx] {
				return m.libInsts[li][idx], nil
			}
			_, err := guest.Decode(lib.Code[off:])
			return guest.Inst{}, err
		}
		// Misaligned library fetch: decode on the fly (pure, uncached).
		return guest.Decode(lib.Code[off:])
	}
	return guest.Inst{}, fmt.Errorf("vm: fetch from unmapped address %#x", addr)
}

// InLibrary reports whether addr is inside any mapped shared library —
// i.e. code the static analyser never saw.
func (m *Machine) InLibrary(addr uint64) bool {
	for _, lib := range m.Libs {
		if lib.InCode(addr) {
			return true
		}
	}
	return false
}

// PLTTarget returns the resolved target of a PLT stub, if addr is one.
func (m *Machine) PLTTarget(addr uint64) (uint64, bool) {
	t, ok := m.pltTarget[addr]
	return t, ok
}

// Alloc carves size bytes of zeroed heap, 64-byte aligned.
func (m *Machine) Alloc(size uint64) uint64 {
	span := (size + 63) &^ 63
	return m.heapNext.Add(span) - span
}
