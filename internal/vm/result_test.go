package vm

import (
	"math"
	"reflect"
	"testing"
)

func TestResultEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		r    Result
	}{
		{"zero", Result{}},
		{"typical", Result{
			Exit:     42,
			Output:   []uint64{0, 1, math.MaxUint64, 0xdeadbeef},
			Cycles:   1_234_567,
			Insts:    7_654_321,
			MemHash:  0x1234_5678_9abc_def0,
			DataHash: math.MaxUint64,
		}},
		{"negative exit", Result{Exit: -1, Cycles: math.MaxInt64, Insts: math.MinInt64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := EncodeResult(&tc.r)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := DecodeResult(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(*got, tc.r) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, tc.r)
			}
		})
	}
}

func TestDecodeResultRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeResult([]byte(`{"Exit":0,"Bogus":1}`)); err == nil {
		t.Fatal("payload with unknown field decoded without error")
	}
}

func TestDecodeResultRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("not json"), []byte(`[1,2]`)} {
		if _, err := DecodeResult(data); err == nil {
			t.Fatalf("garbage %q decoded without error", data)
		}
	}
}
