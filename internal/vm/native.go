package vm

import (
	"fmt"

	"janus/internal/guest"
	"janus/internal/obj"
)

// Result summarises an execution for correctness comparison and the
// virtual-time performance model.
type Result struct {
	Exit    int64
	Output  []uint64
	Cycles  int64
	Insts   int64
	MemHash uint64
	// DataHash digests memory below the runtime-private/stack regions,
	// comparable across native and parallelised executions.
	DataHash uint64
}

// DataHashLimit excludes stacks, TLS and library text from DataHash.
const DataHashLimit = 0x7000_0000_0000

// DefaultMaxSteps bounds run loops against runaway guest programs.
const DefaultMaxSteps = 2_000_000_000

// RunNative executes the program natively (no binary modification),
// exactly as the paper's "native" baseline runs outside DynamoRIO.
func RunNative(exe *obj.Executable, libs ...*obj.Library) (*Result, error) {
	m, err := NewMachine(exe, libs...)
	if err != nil {
		return nil, err
	}
	c := m.NewContext(0, obj.DefaultStackTop)
	if err := RunContext(m, c, DefaultMaxSteps); err != nil {
		return nil, err
	}
	return &Result{
		Exit:     c.Exit,
		Output:   m.Output,
		Cycles:   c.Cycles,
		Insts:    c.Insts,
		MemHash:  m.Mem.Hash(),
		DataHash: m.Mem.HashBelow(DataHashLimit),
	}, nil
}

// RunContext drives a context until HALT/exit or the step bound.
func RunContext(m *Machine, c *Context, maxSteps int64) error {
	for steps := int64(0); steps < maxSteps; steps++ {
		in, err := m.FetchInst(c.PC)
		if err != nil {
			return err
		}
		next, err := ExecInst(m, c, &in, c.PC+guest.InstSize)
		if err == ErrExited {
			return nil
		}
		if err != nil {
			return err
		}
		c.PC = next
	}
	return fmt.Errorf("vm: exceeded %d steps without exiting", maxSteps)
}
