// Package vm implements the guest machine: sparse paged memory,
// per-thread execution contexts, single-instruction semantics with a
// virtual cycle cost model, and a native (unmodified) runner.
//
// The virtual cycle clock substitutes for wall-clock measurement on real
// hardware: every instruction charges its cost-model latency to the
// executing context, and the parallel runtime combines per-thread clocks
// (max across threads plus orchestration overheads) to produce the
// elapsed time of a parallel region. This keeps every experiment
// deterministic and host-independent.
package vm

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

const pageSize = 1 << 12
const pageMask = pageSize - 1

// Memory is a sparse, zero-filled, byte-addressable 64-bit space.
// All addresses are readable and writable; the simulator does not model
// protection faults (the paper's transformations never rely on them).
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	key := addr >> 12
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// Load8 returns the byte at addr.
func (m *Memory) Load8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Store8 sets the byte at addr.
func (m *Memory) Store8(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read64 loads a little-endian 64-bit word from addr.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & pageMask
	if off+8 <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off : off+8])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Load8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit word at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & pageMask
	if off+8 <= pageSize {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:off+8], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Store8(addr+i, byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.Store8(addr+uint64(i), c)
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Load8(addr + uint64(i))
	}
	return out
}

// Hash returns a digest over all resident pages, used to compare final
// memory images between native and parallelised executions. Zero pages
// that were never touched do not contribute, and pages that contain only
// zeroes hash identically to absent pages.
func (m *Memory) Hash() uint64 {
	keys := make([]uint64, 0, len(m.pages))
	for k, p := range m.pages {
		if !allZero(p) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := fnv.New64a()
	var kb [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(kb[:], k)
		h.Write(kb[:])
		h.Write(m.pages[k][:])
	}
	return h.Sum64()
}

// HashBelow digests only resident pages whose addresses are below
// limit, so runtime-private regions (worker stacks, TLS) can be
// excluded when comparing a parallelised run against a native one.
func (m *Memory) HashBelow(limit uint64) uint64 {
	keys := make([]uint64, 0, len(m.pages))
	for k, p := range m.pages {
		if k<<12 < limit && !allZero(p) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := fnv.New64a()
	var kb [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(kb[:], k)
		h.Write(kb[:])
		h.Write(m.pages[k][:])
	}
	return h.Sum64()
}

func allZero(p *[pageSize]byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// Bus is the memory interface instructions execute against. The plain
// machine memory implements it; the STM wraps it with buffering during
// speculative execution.
type Bus interface {
	Read64(addr uint64) uint64
	Write64(addr uint64, v uint64)
}

var _ Bus = (*Memory)(nil)
