// Package vm implements the guest machine: paged memory, per-thread
// execution contexts, single-instruction semantics with a virtual cycle
// cost model, and a native (unmodified) runner.
//
// The virtual cycle clock substitutes for wall-clock measurement on real
// hardware: every instruction charges its cost-model latency to the
// executing context, and the parallel runtime combines per-thread clocks
// (max across threads plus orchestration overheads) to produce the
// elapsed time of a parallel region. This keeps every experiment
// deterministic and host-independent.
package vm

import (
	"encoding/binary"
	"sort"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1

	// leafBits pages share one directory leaf, so the map lookup in the
	// translation slow path happens once per 4 MiB region rather than
	// once per 4 KiB page.
	leafBits = 10
	leafMask = (1 << leafBits) - 1
)

// FNV-1a constants, folded 64 bits at a time over page contents.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// noPage is the TLB tag for an empty slot; no real page number reaches
// it (addresses are 64-bit, page numbers at most 52-bit).
const noPage = ^uint64(0)

// page is one 4 KiB block plus its cached digest state. digest and
// nonzero are valid only while dirty is false; every write path sets
// dirty and the hash routines refresh lazily.
type page struct {
	data    [pageSize]byte
	key     uint64 // addr >> pageShift
	digest  uint64
	nonzero bool
	dirty   bool
}

// refresh recomputes the digest and nonzero flag in one pass over the
// page, folding 64-bit words FNV-1a style.
func (p *page) refresh() {
	h := uint64(fnvOffset)
	var nz uint64
	for i := 0; i < pageSize; i += 8 {
		w := binary.LittleEndian.Uint64(p.data[i:])
		nz |= w
		h = (h ^ w) * fnvPrime
	}
	p.digest = h
	p.nonzero = nz != 0
	p.dirty = false
}

// leaf is one directory entry: a flat array of page pointers covering a
// 4 MiB aligned span.
type leaf struct {
	pages [1 << leafBits]*page
}

// Memory is a sparse, zero-filled, byte-addressable 64-bit space backed
// by a two-level page table: a directory of 4 MiB leaves (map keyed by
// high address bits, consulted only on TLB miss) each holding a flat
// array of 4 KiB pages. A two-entry software TLB caches the most
// recently touched pages so steady-state access needs no map lookup.
//
// All addresses are readable and writable; the simulator does not model
// protection faults (the paper's transformations never rely on them).
type Memory struct {
	leaves map[uint64]*leaf

	// all lists every allocated page for the hash routines; it is
	// re-sorted by page number on demand after new allocations.
	all    []*page
	sorted bool

	// Software TLB: the last two distinct pages touched, most recent
	// first. Single-threaded by design (the DBM steps contexts
	// round-robin on one goroutine), so no synchronisation is needed.
	tlbKey  [2]uint64
	tlbPage [2]*page

	// lastLeaf caches the directory entry of the most recent TLB miss,
	// so misses within the same 4 MiB span skip the map.
	lastLeafKey uint64
	lastLeaf    *leaf
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{
		leaves: make(map[uint64]*leaf),
		tlbKey: [2]uint64{noPage, noPage},
	}
}

// find returns the resident page containing addr, or nil.
func (m *Memory) find(addr uint64) *page {
	key := addr >> pageShift
	if key == m.tlbKey[0] {
		return m.tlbPage[0]
	}
	if key == m.tlbKey[1] {
		m.tlbKey[0], m.tlbKey[1] = m.tlbKey[1], m.tlbKey[0]
		m.tlbPage[0], m.tlbPage[1] = m.tlbPage[1], m.tlbPage[0]
		return m.tlbPage[0]
	}
	return m.walk(key, false)
}

// ensure returns the page containing addr, allocating it if absent.
func (m *Memory) ensure(addr uint64) *page {
	key := addr >> pageShift
	if key == m.tlbKey[0] {
		return m.tlbPage[0]
	}
	if key == m.tlbKey[1] {
		m.tlbKey[0], m.tlbKey[1] = m.tlbKey[1], m.tlbKey[0]
		m.tlbPage[0], m.tlbPage[1] = m.tlbPage[1], m.tlbPage[0]
		return m.tlbPage[0]
	}
	return m.walk(key, true)
}

// walk is the TLB-miss path: two-level table lookup, optional
// allocation, and TLB fill. Misses without allocation are not cached,
// so a later allocation of the same page cannot be shadowed by a stale
// negative entry.
func (m *Memory) walk(key uint64, create bool) *page {
	lf := m.lastLeaf
	if lf == nil || m.lastLeafKey != key>>leafBits {
		lf = m.leaves[key>>leafBits]
		if lf == nil {
			if !create {
				return nil
			}
			lf = new(leaf)
			m.leaves[key>>leafBits] = lf
		}
		m.lastLeafKey = key >> leafBits
		m.lastLeaf = lf
	}
	p := lf.pages[key&leafMask]
	if p == nil {
		if !create {
			return nil
		}
		p = &page{key: key, dirty: true}
		lf.pages[key&leafMask] = p
		m.all = append(m.all, p)
		m.sorted = false
	}
	m.tlbKey[1], m.tlbPage[1] = m.tlbKey[0], m.tlbPage[0]
	m.tlbKey[0], m.tlbPage[0] = key, p
	return p
}

// Load8 returns the byte at addr.
func (m *Memory) Load8(addr uint64) byte {
	p := m.find(addr)
	if p == nil {
		return 0
	}
	return p.data[addr&pageMask]
}

// Store8 sets the byte at addr.
func (m *Memory) Store8(addr uint64, v byte) {
	p := m.ensure(addr)
	p.dirty = true
	p.data[addr&pageMask] = v
}

// Read64 loads a little-endian 64-bit word from addr.
func (m *Memory) Read64(addr uint64) uint64 {
	if off := addr & pageMask; off <= pageSize-8 {
		if p := m.find(addr); p != nil {
			return binary.LittleEndian.Uint64(p.data[off : off+8])
		}
		return 0
	}
	return m.read64Cross(addr)
}

func (m *Memory) read64Cross(addr uint64) uint64 {
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Load8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit word at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	if off := addr & pageMask; off <= pageSize-8 {
		p := m.ensure(addr)
		p.dirty = true
		binary.LittleEndian.PutUint64(p.data[off:off+8], v)
		return
	}
	m.write64Cross(addr, v)
}

func (m *Memory) write64Cross(addr uint64, v uint64) {
	for i := uint64(0); i < 8; i++ {
		m.Store8(addr+i, byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr, one page span per
// copy.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.ensure(addr)
		p.dirty = true
		n := copy(p.data[addr&pageMask:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	m.ReadInto(addr, out)
	return out
}

// ReadInto fills dst with the bytes starting at addr, one page span per
// copy, without allocating.
func (m *Memory) ReadInto(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		span := pageSize - int(off)
		if span > len(dst) {
			span = len(dst)
		}
		if p := m.find(addr); p != nil {
			copy(dst[:span], p.data[off:])
		} else {
			clear(dst[:span])
		}
		dst = dst[span:]
		addr += uint64(span)
	}
}

// Copy moves n bytes from src to dst inside the address space using
// page-span copies, without allocating. Overlapping ranges copy in
// ascending address order (the runtime's writeback ranges never
// overlap).
func (m *Memory) Copy(dst, src uint64, n int) {
	for n > 0 {
		span := pageSize - int(src&pageMask)
		if d := pageSize - int(dst&pageMask); d < span {
			span = d
		}
		if span > n {
			span = n
		}
		dp := m.ensure(dst)
		dp.dirty = true
		do := dst & pageMask
		if sp := m.find(src); sp != nil {
			copy(dp.data[do:int(do)+span], sp.data[src&pageMask:])
		} else {
			clear(dp.data[do : int(do)+span])
		}
		src += uint64(span)
		dst += uint64(span)
		n -= span
	}
}

// Hash returns a digest over all resident pages, used to compare final
// memory images between native and parallelised executions. Zero pages
// that were never touched do not contribute, and pages that contain only
// zeroes hash identically to absent pages. Per-page digests are cached
// and only pages written since the last call are re-hashed.
func (m *Memory) Hash() uint64 {
	return m.hashBelow(^uint64(0))
}

// HashBelow digests only resident pages whose addresses are below
// limit, so runtime-private regions (worker stacks, TLS) can be
// excluded when comparing a parallelised run against a native one.
func (m *Memory) HashBelow(limit uint64) uint64 {
	return m.hashBelow(limit)
}

func (m *Memory) hashBelow(limit uint64) uint64 {
	if !m.sorted {
		sort.Slice(m.all, func(i, j int) bool { return m.all[i].key < m.all[j].key })
		m.sorted = true
	}
	h := uint64(fnvOffset)
	for _, p := range m.all {
		if p.key<<pageShift >= limit {
			break
		}
		if p.dirty {
			p.refresh()
		}
		if !p.nonzero {
			continue
		}
		h = (h ^ p.key) * fnvPrime
		h = (h ^ p.digest) * fnvPrime
	}
	return h
}

// Pages returns the number of resident pages (diagnostics only).
func (m *Memory) Pages() int { return len(m.all) }

// Bus is the memory interface instructions execute against. The plain
// machine memory implements it; the STM wraps it with buffering during
// speculative execution.
type Bus interface {
	Read64(addr uint64) uint64
	Write64(addr uint64, v uint64)
}

var _ Bus = (*Memory)(nil)
