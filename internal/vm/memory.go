// Package vm implements the guest machine: paged memory, per-thread
// execution contexts, single-instruction semantics with a virtual cycle
// cost model, and a native (unmodified) runner.
//
// The virtual cycle clock substitutes for wall-clock measurement on real
// hardware: every instruction charges its cost-model latency to the
// executing context, and the parallel runtime combines per-thread clocks
// (max across threads plus orchestration overheads) to produce the
// elapsed time of a parallel region. This keeps every experiment
// deterministic and host-independent.
//
// Memory is shared between guest threads, but all thread-private access
// state (the software TLB and the last-leaf cache) lives in per-thread
// MemViews, so guest threads scheduled on different host goroutines can
// access disjoint words concurrently without synchronisation on the hot
// path. Structural changes (page and leaf allocation) are serialised by
// a mutex on the miss path, and page-table slots are atomic pointers so
// lock-free readers never observe a torn update.
package vm

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1

	// leafBits pages share one directory leaf, so the map lookup in the
	// translation slow path happens once per 4 MiB region rather than
	// once per 4 KiB page.
	leafBits = 10
	leafMask = (1 << leafBits) - 1
)

// FNV-1a constants, folded 64 bits at a time over page contents.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// noPage is the TLB tag for an empty slot; no real page number reaches
// it (addresses are 64-bit, page numbers at most 52-bit).
const noPage = ^uint64(0)

// page is one 4 KiB block plus its cached digest state. digest and
// nonzero are valid only while dirty is zero; every write path sets
// dirty and the hash routines refresh lazily. dirty is accessed
// atomically because host-parallel guest threads writing disjoint words
// of the same page mark it dirty concurrently.
type page struct {
	data    [pageSize]byte
	key     uint64 // addr >> pageShift
	digest  uint64
	nonzero bool
	dirty   atomic.Uint32
	// snapEpoch is the checkpoint epoch this page was last saved under
	// (see checkpoint.go); stale values never match a live checkpoint.
	snapEpoch atomic.Uint64
}

// markDirty invalidates the cached digest. The common case (page
// already dirty) is a single atomic load, which on the hot store path
// costs no more than a plain load on mainstream architectures.
func (p *page) markDirty() {
	if p.dirty.Load() == 0 {
		p.dirty.Store(1)
	}
}

// refresh recomputes the digest and nonzero flag in one pass over the
// page, folding 64-bit words FNV-1a style.
func (p *page) refresh() {
	h := uint64(fnvOffset)
	var nz uint64
	for i := 0; i < pageSize; i += 8 {
		w := binary.LittleEndian.Uint64(p.data[i:])
		nz |= w
		h = (h ^ w) * fnvPrime
	}
	p.digest = h
	p.nonzero = nz != 0
	p.dirty.Store(0)
}

// leaf is one directory entry: an array of page slots covering a 4 MiB
// aligned span. Slots are atomic pointers: they transition nil→page
// exactly once (under Memory.mu), and lock-free readers on other
// goroutines must not observe a torn write.
type leaf struct {
	pages [1 << leafBits]atomic.Pointer[page]
}

// Memory is a sparse, zero-filled, byte-addressable 64-bit space backed
// by a two-level page table: a directory of 4 MiB leaves (map keyed by
// high address bits, consulted only on TLB+leaf miss) each holding an
// array of 4 KiB page slots.
//
// All addresses are readable and writable; the simulator does not model
// protection faults (the paper's transformations never rely on them).
//
// Memory's own accessor methods (Read64, WriteBytes, …) go through an
// embedded default MemView and are not safe for concurrent use; the
// host-parallel runtime gives each guest thread its own MemView (see
// NewView), which may be used concurrently with other views as long as
// the guest threads' written words are disjoint — exactly the
// disjointness Janus' static analysis and runtime bounds checks
// guarantee for the loops it parallelises.
type Memory struct {
	// mu serialises structural growth: leaf-map inserts, page
	// allocation, and the all/sorted bookkeeping. The data fast paths
	// never take it.
	mu     sync.RWMutex
	leaves map[uint64]*leaf

	// all lists every allocated page for the hash routines; it is
	// re-sorted by page number on demand after new allocations.
	all    []*page
	sorted bool

	// view is the default single-threaded access port used by Memory's
	// own methods.
	view MemView

	// ckpt is the active region checkpoint, or nil. Deliberately a plain
	// pointer: it flips only on the orchestrating goroutine while no
	// guest thread runs (before spawn / after join), so store fast paths
	// read it without atomics (see checkpoint.go).
	ckpt *Checkpoint
	// ckptEpoch numbers checkpoints so page stamps from released
	// checkpoints never alias a live one.
	ckptEpoch uint64
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	m := &Memory{leaves: make(map[uint64]*leaf)}
	m.view.init(m)
	return m
}

// NewView returns a fresh per-thread access port onto m. Distinct views
// may be used from distinct goroutines concurrently; a single view must
// not be shared between goroutines.
func (m *Memory) NewView() *MemView {
	v := &MemView{}
	v.init(m)
	return v
}

// leafFor returns the directory leaf covering leafKey, allocating it if
// absent and create is set.
func (m *Memory) leafFor(leafKey uint64, create bool) *leaf {
	m.mu.RLock()
	lf := m.leaves[leafKey]
	m.mu.RUnlock()
	if lf != nil || !create {
		return lf
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if lf = m.leaves[leafKey]; lf == nil {
		lf = new(leaf)
		m.leaves[leafKey] = lf
	}
	return lf
}

// addPage allocates the page with the given key inside lf, or returns
// the existing one if another thread won the race.
func (m *Memory) addPage(lf *leaf, key uint64) *page {
	m.mu.Lock()
	defer m.mu.Unlock()
	slot := &lf.pages[key&leafMask]
	if p := slot.Load(); p != nil {
		return p
	}
	p := &page{key: key}
	p.dirty.Store(1)
	m.all = append(m.all, p)
	m.sorted = false
	slot.Store(p)
	return p
}

// MemView is one thread's access port onto a shared Memory: the
// thread-private software TLB (the last two distinct pages touched) and
// the last-leaf cache (the directory entry of the most recent TLB miss,
// so misses within the same 4 MiB span skip the directory map). Views
// hold no guest state of their own — dropping or recreating a view
// never changes simulated results, only host-side locality.
type MemView struct {
	mem *Memory

	// Software TLB: the last two distinct pages touched, most recent
	// first.
	tlbKey  [2]uint64
	tlbPage [2]*page

	// lastLeaf caches the directory entry of the most recent TLB miss.
	lastLeafKey uint64
	lastLeaf    *leaf
}

func (v *MemView) init(m *Memory) {
	v.mem = m
	v.tlbKey = [2]uint64{noPage, noPage}
	v.lastLeafKey = noPage
	v.lastLeaf = nil
	v.tlbPage = [2]*page{}
}

// find returns the resident page containing addr, or nil.
func (v *MemView) find(addr uint64) *page {
	key := addr >> pageShift
	if key == v.tlbKey[0] {
		return v.tlbPage[0]
	}
	if key == v.tlbKey[1] {
		v.tlbKey[0], v.tlbKey[1] = v.tlbKey[1], v.tlbKey[0]
		v.tlbPage[0], v.tlbPage[1] = v.tlbPage[1], v.tlbPage[0]
		return v.tlbPage[0]
	}
	return v.walk(key, false)
}

// ensure returns the page containing addr, allocating it if absent.
func (v *MemView) ensure(addr uint64) *page {
	key := addr >> pageShift
	if key == v.tlbKey[0] {
		return v.tlbPage[0]
	}
	if key == v.tlbKey[1] {
		v.tlbKey[0], v.tlbKey[1] = v.tlbKey[1], v.tlbKey[0]
		v.tlbPage[0], v.tlbPage[1] = v.tlbPage[1], v.tlbPage[0]
		return v.tlbPage[0]
	}
	return v.walk(key, true)
}

// walk is the TLB-miss path: two-level table lookup, optional
// allocation, and TLB fill. Misses without allocation are not cached,
// so a later allocation of the same page cannot be shadowed by a stale
// negative entry.
func (v *MemView) walk(key uint64, create bool) *page {
	leafKey := key >> leafBits
	lf := v.lastLeaf
	if lf == nil || v.lastLeafKey != leafKey {
		lf = v.mem.leafFor(leafKey, create)
		if lf == nil {
			return nil
		}
		v.lastLeafKey = leafKey
		v.lastLeaf = lf
	}
	p := lf.pages[key&leafMask].Load()
	if p == nil {
		if !create {
			return nil
		}
		p = v.mem.addPage(lf, key)
	}
	v.tlbKey[1], v.tlbPage[1] = v.tlbKey[0], v.tlbPage[0]
	v.tlbKey[0], v.tlbPage[0] = key, p
	return p
}

// touchCkpt is the checkpointed store path: save the pre-write page
// image, then invalidate the cached digest as usual. Every store path
// must run this before mutating p's data when a checkpoint is active.
// The hook is open-coded at each store site (ckpt nil-check + else
// markDirty) rather than wrapped in a helper: a wrapper containing
// this call exceeds the inlining budget, and the store fast paths are
// themselves too big to inline, so a helper would put a real function
// call on every store. Open-coded, the no-checkpoint cost is one
// plain pointer load and a predicted branch.
func (v *MemView) touchCkpt(p *page) {
	v.mem.ckpt.save(p)
	p.markDirty()
}

// Load8 returns the byte at addr.
func (v *MemView) Load8(addr uint64) byte {
	p := v.find(addr)
	if p == nil {
		return 0
	}
	return p.data[addr&pageMask]
}

// Store8 sets the byte at addr.
func (v *MemView) Store8(addr uint64, b byte) {
	p := v.ensure(addr)
	if v.mem.ckpt != nil {
		v.touchCkpt(p)
	} else {
		p.markDirty()
	}
	p.data[addr&pageMask] = b
}

// Read64 loads a little-endian 64-bit word from addr.
func (v *MemView) Read64(addr uint64) uint64 {
	if off := addr & pageMask; off <= pageSize-8 {
		if p := v.find(addr); p != nil {
			return binary.LittleEndian.Uint64(p.data[off : off+8])
		}
		return 0
	}
	return v.read64Cross(addr)
}

func (v *MemView) read64Cross(addr uint64) uint64 {
	var x uint64
	for i := uint64(0); i < 8; i++ {
		x |= uint64(v.Load8(addr+i)) << (8 * i)
	}
	return x
}

// Write64 stores a little-endian 64-bit word at addr.
func (v *MemView) Write64(addr uint64, x uint64) {
	if off := addr & pageMask; off <= pageSize-8 {
		p := v.ensure(addr)
		if v.mem.ckpt != nil {
			v.touchCkpt(p)
		} else {
			p.markDirty()
		}
		binary.LittleEndian.PutUint64(p.data[off:off+8], x)
		return
	}
	v.write64Cross(addr, x)
}

func (v *MemView) write64Cross(addr uint64, x uint64) {
	for i := uint64(0); i < 8; i++ {
		v.Store8(addr+i, byte(x>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr, one page span per
// copy.
func (v *MemView) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := v.ensure(addr)
		if v.mem.ckpt != nil {
			v.touchCkpt(p)
		} else {
			p.markDirty()
		}
		n := copy(p.data[addr&pageMask:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadInto fills dst with the bytes starting at addr, one page span per
// copy, without allocating.
func (v *MemView) ReadInto(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		span := pageSize - int(off)
		if span > len(dst) {
			span = len(dst)
		}
		if p := v.find(addr); p != nil {
			copy(dst[:span], p.data[off:])
		} else {
			clear(dst[:span])
		}
		dst = dst[span:]
		addr += uint64(span)
	}
}

// Copy moves n bytes from src to dst inside the address space using
// page-span copies, without allocating. Overlapping ranges copy in
// ascending address order (the runtime's writeback ranges never
// overlap).
func (v *MemView) Copy(dst, src uint64, n int) {
	for n > 0 {
		span := pageSize - int(src&pageMask)
		if d := pageSize - int(dst&pageMask); d < span {
			span = d
		}
		if span > n {
			span = n
		}
		dp := v.ensure(dst)
		if v.mem.ckpt != nil {
			v.touchCkpt(dp)
		} else {
			dp.markDirty()
		}
		do := dst & pageMask
		if sp := v.find(src); sp != nil {
			copy(dp.data[do:int(do)+span], sp.data[src&pageMask:])
		} else {
			clear(dp.data[do : int(do)+span])
		}
		src += uint64(span)
		dst += uint64(span)
		n -= span
	}
}

// Load8 returns the byte at addr.
func (m *Memory) Load8(addr uint64) byte { return m.view.Load8(addr) }

// Store8 sets the byte at addr.
func (m *Memory) Store8(addr uint64, b byte) { m.view.Store8(addr, b) }

// Read64 loads a little-endian 64-bit word from addr.
func (m *Memory) Read64(addr uint64) uint64 { return m.view.Read64(addr) }

// Write64 stores a little-endian 64-bit word at addr.
func (m *Memory) Write64(addr uint64, x uint64) { m.view.Write64(addr, x) }

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) { m.view.WriteBytes(addr, b) }

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	m.view.ReadInto(addr, out)
	return out
}

// ReadInto fills dst with the bytes starting at addr without
// allocating.
func (m *Memory) ReadInto(addr uint64, dst []byte) { m.view.ReadInto(addr, dst) }

// Copy moves n bytes from src to dst inside the address space.
func (m *Memory) Copy(dst, src uint64, n int) { m.view.Copy(dst, src, n) }

// Hash returns a digest over all resident pages, used to compare final
// memory images between native and parallelised executions. Zero pages
// that were never touched do not contribute, and pages that contain only
// zeroes hash identically to absent pages. Per-page digests are cached
// and only pages written since the last call are re-hashed.
//
// Hash must not run concurrently with guest writes; the runtime only
// hashes between regions, when a single goroutine owns the memory.
func (m *Memory) Hash() uint64 {
	return m.hashBelow(^uint64(0))
}

// HashBelow digests only resident pages whose addresses are below
// limit, so runtime-private regions (worker stacks, TLS) can be
// excluded when comparing a parallelised run against a native one.
func (m *Memory) HashBelow(limit uint64) uint64 {
	return m.hashBelow(limit)
}

func (m *Memory) hashBelow(limit uint64) uint64 {
	m.mu.Lock()
	if !m.sorted {
		sort.Slice(m.all, func(i, j int) bool { return m.all[i].key < m.all[j].key })
		m.sorted = true
	}
	all := m.all
	m.mu.Unlock()
	h := uint64(fnvOffset)
	for _, p := range all {
		if p.key<<pageShift >= limit {
			break
		}
		if p.dirty.Load() != 0 {
			p.refresh()
		}
		if !p.nonzero {
			continue
		}
		h = (h ^ p.key) * fnvPrime
		h = (h ^ p.digest) * fnvPrime
	}
	return h
}

// Pages returns the number of resident pages (diagnostics only).
func (m *Memory) Pages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.all)
}

// Bus is the memory interface instructions execute against. The plain
// machine memory and per-thread MemViews implement it; the STM wraps it
// with buffering during speculative execution.
type Bus interface {
	Read64(addr uint64) uint64
	Write64(addr uint64, v uint64)
}

var (
	_ Bus = (*Memory)(nil)
	_ Bus = (*MemView)(nil)
)
