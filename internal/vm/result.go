package vm

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Result serialisation for the durable artifact cache
// (internal/artcache): a native baseline is a deterministic function
// of the binary, so its Result can be stored on disk and replayed
// byte-for-byte. JSON is used deliberately — Go round-trips every
// int64/uint64/float64 struct field exactly (values decode into typed
// fields, never through float64), and the encoding is self-describing
// enough that a field mismatch is detected rather than silently
// misread. Layout changes to Result must bump the caller's artifact
// kind tag (see janus's cache glue), invalidating old entries.

// EncodeResult serialises r for the artifact cache.
func EncodeResult(r *Result) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult parses an EncodeResult payload. Unknown fields are an
// error: a payload written by a Result with extra fields belongs to a
// different schema and must be recomputed, not half-read.
func DecodeResult(data []byte) (*Result, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	r := new(Result)
	if err := dec.Decode(r); err != nil {
		return nil, fmt.Errorf("vm: decode cached result: %w", err)
	}
	return r, nil
}
