package vm_test

// Thin wrappers over the shared engine micro-benchmark bodies in
// internal/enginebench, which janus-bench -engine-json runs verbatim:
// `go test -bench` and the committed BENCH_engine.json snapshot always
// measure the same workloads.

import (
	"testing"

	"janus/internal/enginebench"
	"janus/internal/vm"
)

func BenchmarkMemoryRead64(b *testing.B)          { enginebench.ByName("MemoryRead64").Fn(b) }
func BenchmarkMemoryWrite64(b *testing.B)         { enginebench.ByName("MemoryWrite64").Fn(b) }
func BenchmarkMemoryHashIncremental(b *testing.B) { enginebench.ByName("MemoryHashIncremental").Fn(b) }
func BenchmarkExecInst(b *testing.B)              { enginebench.ByName("ExecInst").Fn(b) }
func BenchmarkRunNative(b *testing.B)             { enginebench.ByName("RunNative").Fn(b) }

// TestExecInstZeroAlloc asserts the dispatch loop allocates nothing in
// steady state: the shared arithmetic/memory/branch mix re-executed
// over a warm machine must report zero allocations per run.
func TestExecInstZeroAlloc(t *testing.T) {
	exe, err := enginebench.BuildProgram()
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewMachine(exe)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewContext(0, 0x7fff_0000)
	// Warm the decode cache and memory pages.
	if err := vm.RunContext(m, c, vm.DefaultMaxSteps); err != nil {
		t.Fatal(err)
	}
	insts := enginebench.InstMix()
	allocs := testing.AllocsPerRun(100, func() {
		for i := range insts {
			if _, err := vm.ExecInst(m, c, &insts[i], 0x400000); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("ExecInst steady state allocates %.1f objects per run, want 0", allocs)
	}
}
