package vm

import "sync"

// Region checkpointing.
//
// A Checkpoint captures the memory image at a point in time so a
// speculative region engine can undo a failed region and re-execute it
// deterministically. It is built on the same page granularity as the
// incremental hash: activating a checkpoint costs O(1); every page
// receives a copy-on-first-write snapshot the first time any thread
// dirties it while the checkpoint is active, so the total cost is
// O(pages dirtied inside the region), never O(resident set).
//
// Concurrency contract: Snapshot and Restore/Discard are called by the
// single orchestrating goroutine, before region workers are spawned and
// after they are joined. While the checkpoint is active, any number of
// workers may write through their MemViews: the first writer of a page
// copies it under the checkpoint mutex *before* its own store lands
// (every store path runs the open-coded touch hook — ckpt check, then
// MemView.touchCkpt — ahead of mutating page data),
// and later writers observe the saved epoch stamp and pay one atomic
// load. The active-checkpoint field itself is a plain pointer read on
// the store fast path — safe because activation happens-before the
// worker spawns and deactivation happens-after the join, so no store
// can race the field flip.

// Checkpoint is an undo log of pre-region page images.
type Checkpoint struct {
	m *Memory
	// epoch identifies this checkpoint on page stamps; pages whose
	// snapEpoch matches are already saved. Stale stamps from earlier
	// checkpoints never match, so Discard needs no stamp sweep.
	epoch uint64

	mu    sync.Mutex
	saved []savedPage
}

// savedPage is one page's pre-region image.
type savedPage struct {
	p    *page
	data []byte
}

// Snapshot activates a checkpoint over the whole address space. At most
// one checkpoint may be active per Memory; Restore or Discard releases
// it. Snapshot itself copies nothing.
func (m *Memory) Snapshot() *Checkpoint {
	if m.ckpt != nil {
		panic("vm: nested memory checkpoint")
	}
	m.ckptEpoch++
	c := &Checkpoint{m: m, epoch: m.ckptEpoch}
	m.ckpt = c
	return c
}

// save copies p's current contents into the checkpoint if this is the
// first write to p since the checkpoint activated. Callers must invoke
// it before mutating p's data: the epoch stamp is published only after
// the copy completes, so a concurrent first-writer of the same page
// cannot slip its store into the saved image.
func (c *Checkpoint) save(p *page) {
	if p.snapEpoch.Load() == c.epoch {
		return
	}
	c.mu.Lock()
	if p.snapEpoch.Load() != c.epoch {
		buf := make([]byte, pageSize)
		copy(buf, p.data[:])
		c.saved = append(c.saved, savedPage{p: p, data: buf})
		p.snapEpoch.Store(c.epoch)
	}
	c.mu.Unlock()
}

// Restore rewrites every page dirtied since Snapshot back to its saved
// image and deactivates the checkpoint: memory is byte-identical to the
// snapshot point. Pages first allocated inside the region were saved as
// zeroes on their first write, so they restore to zeroes and drop back
// out of the memory hashes (all-zero pages hash like absent ones).
// O(dirty pages); must not run concurrently with guest writes.
func (c *Checkpoint) Restore() {
	for _, s := range c.saved {
		copy(s.p.data[:], s.data)
		s.p.dirty.Store(1)
	}
	c.release()
}

// Discard deactivates the checkpoint and drops the undo log, keeping
// every write made since Snapshot. O(1) beyond garbage.
func (c *Checkpoint) Discard() {
	c.release()
}

func (c *Checkpoint) release() {
	if c.m.ckpt == c {
		c.m.ckpt = nil
	}
	c.saved = nil
}

// Pages reports how many pages the checkpoint has saved so far
// (diagnostics and cost tests only).
func (c *Checkpoint) Pages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.saved)
}
