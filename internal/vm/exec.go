package vm

import (
	"fmt"
	"math"

	"janus/internal/guest"
)

// ErrExited is returned by run loops when the program has exited.
var ErrExited = fmt.Errorf("vm: program exited")

// loadN reads a word at addr through the bus, notifying the profiler
// hook. A method rather than a closure so the dispatch loop allocates
// nothing per instruction.
func (c *Context) loadN(addr uint64, width int64) uint64 {
	if c.OnMem != nil {
		c.OnMem(addr, false, width)
	}
	return c.Bus.Read64(addr)
}

// storeN writes a word at addr through the bus, notifying the profiler
// hook.
func (c *Context) storeN(addr uint64, v uint64, width int64) {
	if c.OnMem != nil {
		c.OnMem(addr, true, width)
	}
	c.Bus.Write64(addr, v)
}

// f reads a register as a float64.
func (c *Context) f(r guest.Reg) float64 { return math.Float64frombits(c.Reg(r)) }

// setf writes a float64 into a register.
func (c *Context) setf(r guest.Reg, v float64) { c.SetReg(r, math.Float64bits(v)) }

// ExecInst executes one instruction in context c, charging its cost to
// the virtual clock, and returns the address of the next instruction.
// next is the fall-through address (for the native runner this is
// in-memory PC + InstSize; the DBM passes the original application
// address that follows the instruction, which keeps call return
// addresses and branch fall-throughs correct even for code executing
// from a code cache at different host locations).
func ExecInst(m *Machine, c *Context, in *guest.Inst, next uint64) (uint64, error) {
	c.Cycles += in.Op.Cycles()
	c.Insts++

	switch in.Op {
	case guest.NOP:
	case guest.HALT:
		c.Halted = true
		return next, ErrExited

	case guest.MOV:
		c.SetReg(in.Rd, c.Reg(in.Rs))
	case guest.MOVI:
		c.SetReg(in.Rd, uint64(in.Imm))
	case guest.LD:
		c.SetReg(in.Rd, c.loadN(c.EffAddr(in.M), 8))
	case guest.ST:
		c.storeN(c.EffAddr(in.M), c.Reg(in.Rs), 8)
	case guest.STI:
		c.storeN(c.EffAddr(in.M), uint64(in.Imm), 8)
	case guest.LEA:
		c.SetReg(in.Rd, c.EffAddr(in.M))
	case guest.PUSH:
		sp := c.Reg(guest.SP) - 8
		c.SetReg(guest.SP, sp)
		c.storeN(sp, c.Reg(in.Rs), 8)
	case guest.POP:
		sp := c.Reg(guest.SP)
		c.SetReg(in.Rd, c.loadN(sp, 8))
		c.SetReg(guest.SP, sp+8)

	case guest.ADD:
		c.SetReg(in.Rd, c.Reg(in.Rd)+c.Reg(in.Rs))
	case guest.SUB:
		c.SetReg(in.Rd, c.Reg(in.Rd)-c.Reg(in.Rs))
	case guest.IMUL:
		c.SetReg(in.Rd, uint64(int64(c.Reg(in.Rd))*int64(c.Reg(in.Rs))))
	case guest.IDIV:
		d := int64(c.Reg(in.Rs))
		if d == 0 {
			return 0, fmt.Errorf("vm: integer divide by zero at %#x", c.PC)
		}
		c.SetReg(in.Rd, uint64(int64(c.Reg(in.Rd))/d))
	case guest.AND:
		c.SetReg(in.Rd, c.Reg(in.Rd)&c.Reg(in.Rs))
	case guest.OR:
		c.SetReg(in.Rd, c.Reg(in.Rd)|c.Reg(in.Rs))
	case guest.XOR:
		c.SetReg(in.Rd, c.Reg(in.Rd)^c.Reg(in.Rs))
	case guest.SHL:
		c.SetReg(in.Rd, c.Reg(in.Rd)<<(c.Reg(in.Rs)&63))
	case guest.SHR:
		c.SetReg(in.Rd, c.Reg(in.Rd)>>(c.Reg(in.Rs)&63))

	case guest.ADDI:
		c.SetReg(in.Rd, c.Reg(in.Rd)+uint64(in.Imm))
	case guest.SUBI:
		c.SetReg(in.Rd, c.Reg(in.Rd)-uint64(in.Imm))
	case guest.IMULI:
		c.SetReg(in.Rd, uint64(int64(c.Reg(in.Rd))*in.Imm))
	case guest.ANDI:
		c.SetReg(in.Rd, c.Reg(in.Rd)&uint64(in.Imm))
	case guest.ORI:
		c.SetReg(in.Rd, c.Reg(in.Rd)|uint64(in.Imm))
	case guest.XORI:
		c.SetReg(in.Rd, c.Reg(in.Rd)^uint64(in.Imm))
	case guest.SHLI:
		c.SetReg(in.Rd, c.Reg(in.Rd)<<(uint64(in.Imm)&63))
	case guest.SHRI:
		c.SetReg(in.Rd, c.Reg(in.Rd)>>(uint64(in.Imm)&63))

	case guest.INC:
		c.SetReg(in.Rd, c.Reg(in.Rd)+1)
	case guest.DEC:
		c.SetReg(in.Rd, c.Reg(in.Rd)-1)
	case guest.NEG:
		c.SetReg(in.Rd, uint64(-int64(c.Reg(in.Rd))))

	case guest.FADD:
		c.setf(in.Rd, c.f(in.Rd)+c.f(in.Rs))
	case guest.FSUB:
		c.setf(in.Rd, c.f(in.Rd)-c.f(in.Rs))
	case guest.FMUL:
		c.setf(in.Rd, c.f(in.Rd)*c.f(in.Rs))
	case guest.FDIV:
		c.setf(in.Rd, c.f(in.Rd)/c.f(in.Rs))
	case guest.FSQRT:
		c.setf(in.Rd, math.Sqrt(c.f(in.Rs)))
	case guest.FNEG:
		c.setf(in.Rd, -c.f(in.Rs))
	case guest.CVTIF:
		c.setf(in.Rd, float64(int64(c.Reg(in.Rs))))
	case guest.CVTFI:
		c.SetReg(in.Rd, uint64(int64(c.f(in.Rs))))

	case guest.CMP:
		a, b := int64(c.Reg(in.Rd)), int64(c.Reg(in.Rs))
		c.ZF, c.LF = a == b, a < b
	case guest.CMPI:
		a := int64(c.Reg(in.Rd))
		c.ZF, c.LF = a == in.Imm, a < in.Imm
	case guest.FCMP:
		a, b := c.f(in.Rd), c.f(in.Rs)
		c.ZF, c.LF = a == b, a < b
	case guest.TEST:
		v := c.Reg(in.Rd) & c.Reg(in.Rs)
		c.ZF, c.LF = v == 0, int64(v) < 0
	case guest.CMOVE:
		if c.ZF {
			c.SetReg(in.Rd, c.Reg(in.Rs))
		}
	case guest.CMOVNE:
		if !c.ZF {
			c.SetReg(in.Rd, c.Reg(in.Rs))
		}

	case guest.JMP:
		return uint64(in.Imm), nil
	case guest.JMPI:
		return c.Reg(in.Rd), nil
	case guest.JE:
		if c.ZF {
			return uint64(in.Imm), nil
		}
	case guest.JNE:
		if !c.ZF {
			return uint64(in.Imm), nil
		}
	case guest.JL:
		if c.LF {
			return uint64(in.Imm), nil
		}
	case guest.JLE:
		if c.LF || c.ZF {
			return uint64(in.Imm), nil
		}
	case guest.JG:
		if !c.LF && !c.ZF {
			return uint64(in.Imm), nil
		}
	case guest.JGE:
		if !c.LF {
			return uint64(in.Imm), nil
		}

	case guest.CALL:
		sp := c.Reg(guest.SP) - 8
		c.SetReg(guest.SP, sp)
		c.storeN(sp, next, 8)
		return uint64(in.Imm), nil
	case guest.CALLI:
		sp := c.Reg(guest.SP) - 8
		c.SetReg(guest.SP, sp)
		c.storeN(sp, next, 8)
		return c.Reg(in.Rd), nil
	case guest.RET:
		sp := c.Reg(guest.SP)
		ra := c.loadN(sp, 8)
		c.SetReg(guest.SP, sp+8)
		return ra, nil

	case guest.SYSCALL:
		return next, execSyscall(m, c)

	case guest.VLD:
		addr := c.EffAddr(in.M)
		if c.OnMem != nil {
			c.OnMem(addr, false, 8*guest.VLEN)
		}
		for i := 0; i < guest.VLEN; i++ {
			c.VReg[in.Rd][i] = math.Float64frombits(c.Bus.Read64(addr + uint64(8*i)))
		}
	case guest.VST:
		addr := c.EffAddr(in.M)
		if c.OnMem != nil {
			c.OnMem(addr, true, 8*guest.VLEN)
		}
		for i := 0; i < guest.VLEN; i++ {
			c.Bus.Write64(addr+uint64(8*i), math.Float64bits(c.VReg[in.Rs][i]))
		}
	case guest.VADD:
		for i := 0; i < guest.VLEN; i++ {
			c.VReg[in.Rd][i] += c.VReg[in.Rs][i]
		}
	case guest.VMUL:
		for i := 0; i < guest.VLEN; i++ {
			c.VReg[in.Rd][i] *= c.VReg[in.Rs][i]
		}
	case guest.VBCST:
		v := c.f(in.Rs)
		for i := 0; i < guest.VLEN; i++ {
			c.VReg[in.Rd][i] = v
		}

	default:
		return 0, fmt.Errorf("vm: unimplemented opcode %s", in.Op)
	}
	return next, nil
}

func execSyscall(m *Machine, c *Context) error {
	switch nr := int64(c.Reg(guest.R0)); nr {
	case guest.SysExit:
		c.Halted = true
		c.Exit = int64(c.Reg(guest.R1))
		return ErrExited
	case guest.SysWrite, guest.SysWriteF:
		m.Output = append(m.Output, c.Reg(guest.R1))
	case guest.SysAlloc:
		c.SetReg(guest.R0, m.Alloc(c.Reg(guest.R1)))
	case guest.SysClock:
		c.SetReg(guest.R0, uint64(c.Cycles))
	default:
		return fmt.Errorf("vm: unknown syscall %d", nr)
	}
	return nil
}
