package vm

import (
	"math"
	"testing"

	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
)

// runProg assembles and runs a main function, returning the result.
func runProg(t *testing.T, emit func(f *asm.FuncBuilder)) *Result {
	t.Helper()
	b := asm.NewBuilder("t")
	b.Data("d", 4096)
	f := b.Func("main")
	emit(f)
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNative(exe)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// write emits a SysWrite of register r.
func write(f *asm.FuncBuilder, r guest.Reg) {
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, r)
	f.Syscall()
}

func TestBitwiseAndShifts(t *testing.T) {
	res := runProg(t, func(f *asm.FuncBuilder) {
		f.Movi(guest.R2, 0b1100)
		f.Movi(guest.R3, 0b1010)
		f.Mov(guest.R4, guest.R2)
		f.Op(guest.AND, guest.R4, guest.R3)
		write(f, guest.R4) // 0b1000
		f.Mov(guest.R4, guest.R2)
		f.Op(guest.OR, guest.R4, guest.R3)
		write(f, guest.R4) // 0b1110
		f.Mov(guest.R4, guest.R2)
		f.Movi(guest.R5, 2)
		f.Op(guest.SHL, guest.R4, guest.R5)
		write(f, guest.R4) // 0b110000
		f.Mov(guest.R4, guest.R2)
		f.Op(guest.SHR, guest.R4, guest.R5)
		write(f, guest.R4) // 0b11
		f.Halt()
	})
	want := []uint64{0b1000, 0b1110, 0b110000, 0b11}
	for i, w := range want {
		if res.Output[i] != w {
			t.Errorf("output %d = %#b, want %#b", i, res.Output[i], w)
		}
	}
}

func TestUnaryAndConversions(t *testing.T) {
	res := runProg(t, func(f *asm.FuncBuilder) {
		f.Movi(guest.R2, 41)
		f.I(guest.Inst{Op: guest.INC, Rd: guest.R2, Rs: guest.RegNone, M: guest.NoMem})
		write(f, guest.R2) // 42
		f.I(guest.Inst{Op: guest.DEC, Rd: guest.R2, Rs: guest.RegNone, M: guest.NoMem})
		f.I(guest.Inst{Op: guest.NEG, Rd: guest.R2, Rs: guest.RegNone, M: guest.NoMem})
		write(f, guest.R2) // -41 as uint64
		f.Movi(guest.R3, 9)
		f.Op(guest.CVTIF, guest.R4, guest.R3) // 9.0
		f.Op(guest.CVTFI, guest.R5, guest.R4) // back to 9
		write(f, guest.R5)
		f.Halt()
	})
	if res.Output[0] != 42 {
		t.Errorf("inc: %d", res.Output[0])
	}
	if int64(res.Output[1]) != -41 {
		t.Errorf("neg: %d", int64(res.Output[1]))
	}
	if res.Output[2] != 9 {
		t.Errorf("cvt round trip: %d", res.Output[2])
	}
}

func TestFCMPAndFDiv(t *testing.T) {
	res := runProg(t, func(f *asm.FuncBuilder) {
		less := f.NewLabel()
		f.MoviF(guest.R2, 1.5)
		f.MoviF(guest.R3, 2.5)
		f.Op(guest.FCMP, guest.R2, guest.R3)
		f.J(guest.JL, less)
		f.Movi(guest.R4, 0)
		f.Halt()
		f.Bind(less)
		f.Mov(guest.R4, guest.R3)
		f.Op(guest.FDIV, guest.R4, guest.R2) // 2.5/1.5
		f.Movi(guest.R0, guest.SysWriteF)
		f.Mov(guest.R1, guest.R4)
		f.Syscall()
		f.Halt()
	})
	got := math.Float64frombits(res.Output[0])
	if math.Abs(got-2.5/1.5) > 1e-15 {
		t.Errorf("fdiv: %v", got)
	}
}

func TestSTIAndLEA(t *testing.T) {
	res := runProg(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "d", 0)
		f.I(guest.Inst{Op: guest.STI, Rd: guest.RegNone, Rs: guest.RegNone, Imm: 77,
			M: guest.Mem{Base: guest.R8, Index: guest.RegNone, Scale: 1, Disp: 16}})
		f.Movi(guest.R2, 2)
		f.Lea(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R2, Scale: 8})
		f.Ld(guest.R4, guest.Mem{Base: guest.R3, Index: guest.RegNone, Scale: 1})
		write(f, guest.R4) // 77 via computed address
		f.Halt()
	})
	if res.Output[0] != 77 {
		t.Errorf("sti/lea: %d", res.Output[0])
	}
}

func TestIndirectJumpAndCall(t *testing.T) {
	b := asm.NewBuilder("indirect")
	f := b.Func("main")
	// CALLI through a register holding the function address.
	f.Movi(guest.R7, 0) // patched below via data trick: use direct name
	f.Call("target")    // ensures target is laid out
	// Now call again indirectly: compute target's address from the
	// symbol table at build time is not exposed, so instead test JMPI
	// over a local label address materialised with LEA-like MOVI.
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R6)
	f.Syscall()
	f.Halt()
	tg := b.Func("target")
	tg.Movi(guest.R6, 123)
	tg.Ret()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNative(exe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 123 {
		t.Fatalf("call result %d", res.Output[0])
	}
	// JMPI: jump to an address held in a register.
	sym, _ := exe.SymbolByName("target")
	m, _ := NewMachine(exe)
	c := m.NewContext(0, obj.DefaultStackTop)
	c.SetReg(guest.R9, sym.Addr)
	jmpi := guest.NewInst(guest.JMPI, guest.R9, guest.RegNone)
	next, err := ExecInst(m, c, &jmpi, 0)
	if err != nil || next != sym.Addr {
		t.Fatalf("jmpi -> %#x, err %v", next, err)
	}
	// CALLI: pushes the return address and jumps.
	c.SetReg(guest.SP, obj.DefaultStackTop)
	calli := guest.NewInst(guest.CALLI, guest.R9, guest.RegNone)
	next, err = ExecInst(m, c, &calli, 0x400aaa)
	if err != nil || next != sym.Addr {
		t.Fatalf("calli -> %#x", next)
	}
	if ra := m.Mem.Read64(c.Reg(guest.SP)); ra != 0x400aaa {
		t.Fatalf("return address %#x", ra)
	}
}

func TestClockSyscall(t *testing.T) {
	res := runProg(t, func(f *asm.FuncBuilder) {
		f.Movi(guest.R0, guest.SysClock)
		f.Syscall()
		write(f, guest.R0)
		f.Halt()
	})
	if res.Output[0] == 0 {
		t.Error("virtual clock should be nonzero after executing instructions")
	}
}

func TestUnknownSyscallFails(t *testing.T) {
	b := asm.NewBuilder("badsys")
	f := b.Func("main")
	f.Movi(guest.R0, 999)
	f.Syscall()
	f.Halt()
	exe, _ := b.Build()
	if _, err := RunNative(exe); err == nil {
		t.Fatal("unknown syscall must error")
	}
}

func TestTestOpAndJNE(t *testing.T) {
	res := runProg(t, func(f *asm.FuncBuilder) {
		nz := f.NewLabel()
		f.Movi(guest.R2, 0b0110)
		f.Movi(guest.R3, 0b0010)
		f.Op(guest.TEST, guest.R2, guest.R3)
		f.J(guest.JNE, nz) // taken: r2 & r3 != 0
		f.Movi(guest.R4, 0)
		f.Halt()
		f.Bind(nz)
		f.Movi(guest.R4, 1)
		write(f, guest.R4)
		f.Halt()
	})
	if len(res.Output) != 1 || res.Output[0] != 1 {
		t.Fatalf("TEST/JNE path: %v", res.Output)
	}
}
