package vm

import (
	"testing"
)

func BenchmarkMemoryReadWriteStride(b *testing.B) {
	m := NewMemory()
	for p := uint64(0); p < 64; p++ {
		m.Write64(0x10_0000+p*pageSize, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		a := 0x10_0000 + uint64(i%64)*pageSize
		m.Write64(a, uint64(i))
		sink += m.Read64(a + 8)
	}
	_ = sink
}

// BenchmarkMemoryWriteBytes measures the bulk image-load path
// (dominates machine construction).
func BenchmarkMemoryWriteBytes(b *testing.B) {
	m := NewMemory()
	buf := make([]byte, 64*pageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteBytes(0x600000, buf)
	}
}

func BenchmarkMemoryHashFull(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := NewMemory()
		for p := uint64(0); p < 256; p++ {
			m.Write64(0x600000+p*pageSize, p+1)
		}
		b.StartTimer()
		_ = m.Hash()
	}
}
