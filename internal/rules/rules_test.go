package rules

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"janus/internal/guest"
	"janus/internal/sym"
)

func sampleSchedule() *Schedule {
	s := &Schedule{ExeName: "bench", ExeSize: 4096}
	s.Append(Rule{Addr: 0x400900, ID: LOOP_INIT, LoopID: 3, Data: LoopInitData{
		Inductions: []InductionSpec{{Reg: guest.R1, Init: sym.ConstExpr(0), Step: 1}},
		Reductions: []ReductionSpec{{Reg: guest.R2, Op: guest.FADD}},
		Trip:       TripSpec{Known: true, Num: sym.RegExpr(guest.R7), Den: 1},
		Policy:     PolicyChunked,
		ChunkSize:  4,
		LoopStart:  0x400900,
	}})
	s.Append(Rule{Addr: 0x400a00, ID: LOOP_FINISH, LoopID: 3, Data: LoopFinishData{
		Inductions: []InductionSpec{{Reg: guest.R1, Init: sym.ConstExpr(0), Step: 1}},
		Reductions: []ReductionSpec{{Reg: guest.R2, Op: guest.FADD}},
		LiveOut:    []guest.Reg{guest.R2, guest.R5},
	}})
	s.Append(Rule{Addr: 0x400918, ID: LOOP_UPDATE_BOUND, LoopID: 3, Data: UpdateBoundData{
		CmpAddr: 0x400918, IsImm: true, BoundReg: guest.RegNone, IVReg: guest.R1, Step: 1,
		Init: sym.ConstExpr(0), ExitOp: guest.JGE,
	}})
	s.Append(Rule{Addr: 0x400930, ID: MEM_PRIVATISE, LoopID: 3, Data: MemPrivatiseData{Slot: 2, Size: 8}})
	s.Append(Rule{Addr: 0x400938, ID: MEM_MAIN_STACK, LoopID: 3, Data: MemMainStackData{}})
	s.Append(Rule{Addr: 0x400880, ID: MEM_BOUNDS_CHECK, LoopID: 3, Data: BoundsCheckData{
		Ranges: []RangeSpec{
			{Write: true, Base: sym.RegExpr(guest.R8), Stride: 8, LoOff: 0, HiOff: 8},
			{Write: false, Base: sym.RegExpr(guest.R9), Stride: 8, LoOff: 0, HiOff: 8},
		},
	}})
	s.Append(Rule{Addr: 0x400940, ID: TX_START, LoopID: 3, Data: TxData{CallTarget: 0x401000}})
	s.Append(Rule{Addr: 0x400958, ID: TX_FINISH, LoopID: 3, Data: TxData{}})
	s.Append(Rule{Addr: 0x400900, ID: PROF_LOOP_START, LoopID: 3, Data: ProfLoopData{}})
	s.Append(Rule{Addr: 0x400930, ID: PROF_MEM_ACCESS, LoopID: 3, Data: ProfMemData{}})
	s.Append(Rule{Addr: 0x400940, ID: PROF_EXCALL_START, LoopID: 3, Data: ProfExcallData{Target: 0x401000}})
	s.Append(Rule{Addr: 0x4008f0, ID: THREAD_SCHEDULE, LoopID: 3, Data: ThreadData{Target: 0x400900}})
	s.Append(Rule{Addr: 0x400a08, ID: THREAD_YIELD, LoopID: 3, Data: ThreadData{}})
	s.Append(Rule{Addr: 0x400870, ID: MEM_SPILL_REG, LoopID: 3, Data: SpillRegData{Regs: []guest.Reg{guest.R13, guest.R14}}})
	return s
}

func TestScheduleSaveLoadRoundTrip(t *testing.T) {
	s := sampleSchedule()
	img, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if back.ExeName != s.ExeName || back.ExeSize != s.ExeSize {
		t.Fatalf("header mismatch: %+v", back)
	}
	if len(back.Rules) != len(s.Rules) {
		t.Fatalf("rule count %d != %d", len(back.Rules), len(s.Rules))
	}
	for i := range s.Rules {
		if !reflect.DeepEqual(normalise(s.Rules[i]), normalise(back.Rules[i])) {
			t.Errorf("rule %d mismatch:\n  want %+v\n  got  %+v", i, s.Rules[i], back.Rules[i])
		}
	}
}

// normalise maps nil and empty Regs maps to a canonical form for
// comparison.
func normalise(r Rule) Rule { return r }

func TestScheduleSizePositive(t *testing.T) {
	s := sampleSchedule()
	if s.Size() <= 0 {
		t.Fatal("schedule size must be positive")
	}
	empty := &Schedule{ExeName: "x", ExeSize: 1}
	if empty.Size() >= s.Size() {
		t.Fatal("empty schedule should be smaller")
	}
}

func TestLoadRejectsCorruptImages(t *testing.T) {
	s := sampleSchedule()
	img, _ := s.Save()
	if _, err := Load(img[:10]); err == nil {
		t.Error("truncated image should fail")
	}
	if _, err := Load([]byte("XXXX")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Load(nil); err == nil {
		t.Error("nil image should fail")
	}
}

func TestIndexOrderPreserved(t *testing.T) {
	s := &Schedule{}
	// Two rules at the same address must come back in schedule order
	// (paper: transformations are applied in rewrite-schedule order).
	s.Append(Rule{Addr: 0x100, ID: MEM_MAIN_STACK, Data: MemMainStackData{}})
	s.Append(Rule{Addr: 0x100, ID: MEM_PRIVATISE, Data: MemPrivatiseData{Slot: 1, Size: 8}})
	s.Append(Rule{Addr: 0x200, ID: PROF_LOOP_ITER, Data: ProfLoopData{}})
	ix := BuildIndex(s)
	at := ix.At(0x100)
	if len(at) != 2 || at[0].ID != MEM_MAIN_STACK || at[1].ID != MEM_PRIVATISE {
		t.Fatalf("order not preserved: %v", at)
	}
	if !ix.Has(0x200) || ix.Has(0x300) {
		t.Fatal("Has broken")
	}
	if !ix.AnyInRange(0x100, 0x201) || ix.AnyInRange(0x201, 0x300) {
		t.Fatal("AnyInRange broken")
	}
}

func TestIDStrings(t *testing.T) {
	for id := PROF_LOOP_START; id < idMax; id++ {
		if id.String() == "" || !id.Valid() {
			t.Errorf("id %d has no name", id)
		}
	}
	if ID(0).Valid() || ID(999).Valid() {
		t.Error("invalid ids accepted")
	}
	if !PROF_MEM_ACCESS.IsProfiling() || LOOP_INIT.IsProfiling() {
		t.Error("IsProfiling wrong")
	}
}

func TestExprWireProperty(t *testing.T) {
	cfgq := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sym.ConstExpr(rng.Int63() - rng.Int63())
		e = e.Add(sym.IterExpr(int64(rng.Intn(64))))
		for i := 0; i < rng.Intn(4); i++ {
			e = e.Add(sym.RegExpr(guest.Reg(rng.Intn(16))).Scale(int64(rng.Intn(9) - 4)))
		}
		w := &wr{}
		w.expr(e)
		r := &rd{b: w.b.Bytes()}
		back := r.expr()
		return r.err == nil && e.Equal(back) || (e.Unknown && back.Unknown)
	}
	if err := quick.Check(f, cfgq); err != nil {
		t.Error(err)
	}
}

func TestTripSpecCount(t *testing.T) {
	ts := TripSpec{Known: true, Num: sym.ConstExpr(100), Den: 4, Round: sym.RoundCeil}
	n, ok := ts.Count(func(guest.Reg) uint64 { return 0 })
	if !ok || n != 25 {
		t.Fatalf("count = %d ok=%v", n, ok)
	}
	unk := TripSpec{}
	if _, ok := unk.Count(func(guest.Reg) uint64 { return 0 }); ok {
		t.Fatal("unknown trip must not count")
	}
}
