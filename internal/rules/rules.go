// Package rules defines the rewrite schedule: the architecture-
// independent interface between the static analyser and the dynamic
// binary modifier. A schedule is a header plus a sequence of rewrite
// rules; each rule names an application address where it triggers, a
// rule ID selecting the DBM handler, and a rule-specific payload.
//
// The rule set mirrors figure 3 of the paper: six profiling rules and
// twelve parallelisation rules. Adding functionality to Janus means
// adding a rule ID here and a handler in internal/dbm.
package rules

import "fmt"

// ID selects the DBM handler for a rule.
type ID uint16

// Profiling rules (figure 3, blue).
const (
	PROF_LOOP_START    ID = iota + 1 // start profiling a loop
	PROF_LOOP_FINISH                 // finish profiling a loop
	PROF_LOOP_ITER                   // start another loop iteration
	PROF_EXCALL_START                // start profiling an external call
	PROF_EXCALL_FINISH               // finish profiling an external call
	PROF_MEM_ACCESS                  // check a memory access for dependences

	// Parallelisation rules (figure 3, orange).
	THREAD_SCHEDULE   // schedule threads to jump to a code address
	THREAD_YIELD      // send threads back to the thread pool
	LOOP_INIT         // initialise loop context for each thread
	LOOP_FINISH       // combine loop contexts from all threads
	LOOP_UPDATE_BOUND // update a loop bound for a thread
	MEM_MAIN_STACK    // redirect a stack access to the main stack
	MEM_PRIVATISE     // redirect a memory access to a private address
	MEM_BOUNDS_CHECK  // perform a bounds check on array bounds
	MEM_SPILL_REG     // spill a set of registers to private storage
	MEM_RECOVER_REG   // recover a set of registers from private storage
	TX_START          // start a software transaction
	TX_FINISH         // validate and commit a software transaction

	idMax
)

var idNames = map[ID]string{
	PROF_LOOP_START:    "PROF_LOOP_START",
	PROF_LOOP_FINISH:   "PROF_LOOP_FINISH",
	PROF_LOOP_ITER:     "PROF_LOOP_ITER",
	PROF_EXCALL_START:  "PROF_EXCALL_START",
	PROF_EXCALL_FINISH: "PROF_EXCALL_FINISH",
	PROF_MEM_ACCESS:    "PROF_MEM_ACCESS",
	THREAD_SCHEDULE:    "THREAD_SCHEDULE",
	THREAD_YIELD:       "THREAD_YIELD",
	LOOP_INIT:          "LOOP_INIT",
	LOOP_FINISH:        "LOOP_FINISH",
	LOOP_UPDATE_BOUND:  "LOOP_UPDATE_BOUND",
	MEM_MAIN_STACK:     "MEM_MAIN_STACK",
	MEM_PRIVATISE:      "MEM_PRIVATISE",
	MEM_BOUNDS_CHECK:   "MEM_BOUNDS_CHECK",
	MEM_SPILL_REG:      "MEM_SPILL_REG",
	MEM_RECOVER_REG:    "MEM_RECOVER_REG",
	TX_START:           "TX_START",
	TX_FINISH:          "TX_FINISH",
}

func (id ID) String() string {
	if s, ok := idNames[id]; ok {
		return s
	}
	return fmt.Sprintf("RULE(%d)", uint16(id))
}

// Valid reports whether id is defined.
func (id ID) Valid() bool { return id >= PROF_LOOP_START && id < idMax }

// IsProfiling reports whether the rule belongs to the profiling set.
func (id ID) IsProfiling() bool { return id >= PROF_LOOP_START && id <= PROF_MEM_ACCESS }

// Rule is one rewrite rule. Addr is the application address the rule is
// attached to; LoopID names the loop the rule belongs to (-1 if none);
// Data is the rule-specific payload.
type Rule struct {
	Addr   uint64
	ID     ID
	LoopID int32
	Data   Payload
}

func (r Rule) String() string {
	return fmt.Sprintf("%#x %s loop=%d %v", r.Addr, r.ID, r.LoopID, r.Data)
}

// Schedule is a complete rewrite schedule for one executable.
type Schedule struct {
	// ExeName identifies the executable the schedule was generated for.
	ExeName string
	// ExeSize is the image size at generation time (consistency check).
	ExeSize uint64
	// Rules in static-analyser order; rules sharing an address are
	// applied in this order (paper §II-A2).
	Rules []Rule
}

// Append adds a rule.
func (s *Schedule) Append(r Rule) { s.Rules = append(s.Rules, r) }

// Index is the DBM's hash table from application address to the rules
// triggered there, preserving schedule order.
type Index struct {
	byAddr map[uint64][]Rule
}

// BuildIndex constructs the address hash table for a schedule.
func BuildIndex(s *Schedule) *Index {
	ix := &Index{byAddr: make(map[uint64][]Rule, len(s.Rules))}
	for _, r := range s.Rules {
		ix.byAddr[r.Addr] = append(ix.byAddr[r.Addr], r)
	}
	return ix
}

// At returns the rules attached to addr in schedule order.
func (ix *Index) At(addr uint64) []Rule { return ix.byAddr[addr] }

// Has reports whether any rule triggers at addr.
func (ix *Index) Has(addr uint64) bool { return len(ix.byAddr[addr]) > 0 }

// AnyInRange reports whether any rule triggers within [lo, hi).
func (ix *Index) AnyInRange(lo, hi uint64) bool {
	for a := range ix.byAddr {
		if a >= lo && a < hi {
			return true
		}
	}
	return false
}
