package rules

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"janus/internal/guest"
	"janus/internal/sym"
)

// Wire format:
//
//	header:  magic "JRS1", exe name, exe size, rule count
//	rule:    addr u64, id u16, loopID i32, payload length u32, payload
//
// Payload encodings are per rule ID. Expressions are encoded as
// (const i64, iter i64, nterms u16, {reg u8, coeff i64}...).

const scheduleMagic = "JRS1"

type wr struct{ b bytes.Buffer }

func (w *wr) u8(v uint8)   { w.b.WriteByte(v) }
func (w *wr) u16(v uint16) { _ = binary.Write(&w.b, binary.LittleEndian, v) }
func (w *wr) u32(v uint32) { _ = binary.Write(&w.b, binary.LittleEndian, v) }
func (w *wr) u64(v uint64) { _ = binary.Write(&w.b, binary.LittleEndian, v) }
func (w *wr) i64(v int64)  { w.u64(uint64(v)) }
func (w *wr) str(s string) { w.u32(uint32(len(s))); w.b.WriteString(s) }
func (w *wr) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *wr) expr(e sym.Expr) {
	w.boolean(e.Unknown)
	w.i64(e.Const)
	w.i64(e.Iter)
	regs := make([]guest.Reg, 0, len(e.Regs))
	for r := range e.Regs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	w.u16(uint16(len(regs)))
	for _, r := range regs {
		w.u8(uint8(r))
		w.i64(e.Regs[r])
	}
}

type rd struct {
	b   []byte
	off int
	err error
}

func (r *rd) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("rules: truncated schedule at offset %d", r.off)
		return false
	}
	return true
}

func (r *rd) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rd) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *rd) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rd) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rd) i64() int64 { return int64(r.u64()) }

func (r *rd) str() string {
	n := int(r.u32())
	if !r.need(n) {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rd) boolean() bool { return r.u8() == 1 }

func (r *rd) expr() sym.Expr {
	e := sym.Expr{}
	e.Unknown = r.boolean()
	e.Const = r.i64()
	e.Iter = r.i64()
	n := int(r.u16())
	for i := 0; i < n; i++ {
		reg := guest.Reg(r.u8())
		coeff := r.i64()
		if e.Regs == nil {
			e.Regs = map[guest.Reg]int64{}
		}
		e.Regs[reg] = coeff
	}
	return e
}

func encodePayload(w *wr, id ID, p Payload) error {
	switch d := p.(type) {
	case nil:
		// no payload
	case LoopInitData:
		w.u16(uint16(len(d.Inductions)))
		for _, iv := range d.Inductions {
			w.u8(uint8(iv.Reg))
			w.expr(iv.Init)
			w.i64(iv.Step)
		}
		w.u16(uint16(len(d.Reductions)))
		for _, rd := range d.Reductions {
			w.u8(uint8(rd.Reg))
			w.u8(uint8(rd.Op))
		}
		w.boolean(d.Trip.Known)
		w.expr(d.Trip.Num)
		w.i64(d.Trip.Den)
		w.u8(uint8(d.Trip.Round))
		w.u8(uint8(d.Policy))
		w.i64(d.ChunkSize)
		w.u64(d.LoopStart)
	case LoopFinishData:
		w.u16(uint16(len(d.Inductions)))
		for _, iv := range d.Inductions {
			w.u8(uint8(iv.Reg))
			w.expr(iv.Init)
			w.i64(iv.Step)
		}
		w.u16(uint16(len(d.Reductions)))
		for _, rd := range d.Reductions {
			w.u8(uint8(rd.Reg))
			w.u8(uint8(rd.Op))
		}
		w.u16(uint16(len(d.LiveOut)))
		for _, reg := range d.LiveOut {
			w.u8(uint8(reg))
		}
	case UpdateBoundData:
		w.u64(d.CmpAddr)
		w.boolean(d.IsImm)
		w.u8(uint8(d.BoundReg))
		w.u8(uint8(d.IVReg))
		w.i64(d.Step)
		w.expr(d.Init)
		w.u8(uint8(d.ExitOp))
	case MemPrivatiseData:
		w.u32(uint32(d.Slot))
		w.i64(d.Size)
		w.expr(d.SharedAddr)
	case MemMainStackData:
	case BoundsCheckData:
		w.u16(uint16(len(d.Ranges)))
		for _, rg := range d.Ranges {
			w.boolean(rg.Write)
			w.expr(rg.Base)
			w.i64(rg.Stride)
			w.i64(rg.LoOff)
			w.i64(rg.HiOff)
		}
	case SpillRegData:
		w.u16(uint16(len(d.Regs)))
		for _, reg := range d.Regs {
			w.u8(uint8(reg))
		}
	case TxData:
		w.u64(d.CallTarget)
	case ThreadData:
		w.u64(d.Target)
	case ProfLoopData, ProfMemData:
	case ProfExcallData:
		w.u64(d.Target)
	default:
		return fmt.Errorf("rules: cannot encode payload %T for %s", p, id)
	}
	return nil
}

func decodePayload(r *rd, id ID, n int) (Payload, error) {
	end := r.off + n
	var p Payload
	switch id {
	case LOOP_INIT:
		var d LoopInitData
		niv := int(r.u16())
		for i := 0; i < niv; i++ {
			var iv InductionSpec
			iv.Reg = guest.Reg(r.u8())
			iv.Init = r.expr()
			iv.Step = r.i64()
			d.Inductions = append(d.Inductions, iv)
		}
		nred := int(r.u16())
		for i := 0; i < nred; i++ {
			d.Reductions = append(d.Reductions, ReductionSpec{Reg: guest.Reg(r.u8()), Op: guest.Op(r.u8())})
		}
		d.Trip.Known = r.boolean()
		d.Trip.Num = r.expr()
		d.Trip.Den = r.i64()
		d.Trip.Round = sym.RoundMode(r.u8())
		d.Policy = Policy(r.u8())
		d.ChunkSize = r.i64()
		d.LoopStart = r.u64()
		p = d
	case LOOP_FINISH:
		var d LoopFinishData
		niv := int(r.u16())
		for i := 0; i < niv; i++ {
			var iv InductionSpec
			iv.Reg = guest.Reg(r.u8())
			iv.Init = r.expr()
			iv.Step = r.i64()
			d.Inductions = append(d.Inductions, iv)
		}
		nred := int(r.u16())
		for i := 0; i < nred; i++ {
			d.Reductions = append(d.Reductions, ReductionSpec{Reg: guest.Reg(r.u8()), Op: guest.Op(r.u8())})
		}
		nlo := int(r.u16())
		for i := 0; i < nlo; i++ {
			d.LiveOut = append(d.LiveOut, guest.Reg(r.u8()))
		}
		p = d
	case LOOP_UPDATE_BOUND:
		var d UpdateBoundData
		d.CmpAddr = r.u64()
		d.IsImm = r.boolean()
		d.BoundReg = guest.Reg(r.u8())
		d.IVReg = guest.Reg(r.u8())
		d.Step = r.i64()
		d.Init = r.expr()
		d.ExitOp = guest.Op(r.u8())
		p = d
	case MEM_PRIVATISE:
		var d MemPrivatiseData
		d.Slot = int32(r.u32())
		d.Size = r.i64()
		d.SharedAddr = r.expr()
		p = d
	case MEM_MAIN_STACK:
		p = MemMainStackData{}
	case MEM_BOUNDS_CHECK:
		var d BoundsCheckData
		nr := int(r.u16())
		for i := 0; i < nr; i++ {
			var rg RangeSpec
			rg.Write = r.boolean()
			rg.Base = r.expr()
			rg.Stride = r.i64()
			rg.LoOff = r.i64()
			rg.HiOff = r.i64()
			d.Ranges = append(d.Ranges, rg)
		}
		p = d
	case MEM_SPILL_REG, MEM_RECOVER_REG:
		var d SpillRegData
		nr := int(r.u16())
		for i := 0; i < nr; i++ {
			d.Regs = append(d.Regs, guest.Reg(r.u8()))
		}
		p = d
	case TX_START, TX_FINISH:
		var d TxData
		if n > 0 {
			d.CallTarget = r.u64()
		}
		p = d
	case THREAD_SCHEDULE, THREAD_YIELD:
		var d ThreadData
		if n > 0 {
			d.Target = r.u64()
		}
		p = d
	case PROF_LOOP_START, PROF_LOOP_FINISH, PROF_LOOP_ITER:
		p = ProfLoopData{}
	case PROF_MEM_ACCESS:
		p = ProfMemData{}
	case PROF_EXCALL_START, PROF_EXCALL_FINISH:
		var d ProfExcallData
		if n > 0 {
			d.Target = r.u64()
		}
		p = d
	default:
		return nil, fmt.Errorf("rules: unknown rule id %d", id)
	}
	if r.err == nil && r.off != end {
		return nil, fmt.Errorf("rules: payload size mismatch for %s: read %d of %d", id, r.off-(end-n), n)
	}
	return p, r.err
}

// Save serialises the schedule.
func (s *Schedule) Save() ([]byte, error) {
	w := &wr{}
	w.b.WriteString(scheduleMagic)
	w.str(s.ExeName)
	w.u64(s.ExeSize)
	w.u32(uint32(len(s.Rules)))
	for _, rule := range s.Rules {
		w.u64(rule.Addr)
		w.u16(uint16(rule.ID))
		w.u32(uint32(rule.LoopID))
		pw := &wr{}
		if err := encodePayload(pw, rule.ID, rule.Data); err != nil {
			return nil, err
		}
		w.u32(uint32(pw.b.Len()))
		w.b.Write(pw.b.Bytes())
	}
	return w.b.Bytes(), nil
}

// Load parses a schedule image.
func Load(img []byte) (*Schedule, error) {
	if len(img) < len(scheduleMagic) || string(img[:len(scheduleMagic)]) != scheduleMagic {
		return nil, fmt.Errorf("rules: bad schedule magic")
	}
	r := &rd{b: img, off: len(scheduleMagic)}
	s := &Schedule{}
	s.ExeName = r.str()
	s.ExeSize = r.u64()
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		var rule Rule
		rule.Addr = r.u64()
		rule.ID = ID(r.u16())
		rule.LoopID = int32(r.u32())
		plen := int(r.u32())
		if !r.need(plen) {
			break
		}
		p, err := decodePayload(r, rule.ID, plen)
		if err != nil {
			return nil, err
		}
		rule.Data = p
		s.Rules = append(s.Rules, rule)
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// Size returns the serialised schedule size in bytes (figure 10).
func (s *Schedule) Size() int {
	img, err := s.Save()
	if err != nil {
		return 0
	}
	return len(img)
}
