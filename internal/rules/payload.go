package rules

import (
	"fmt"

	"janus/internal/guest"
	"janus/internal/sym"
)

// Payload is the rule-specific data field. Concrete types below carry
// exactly what each DBM handler needs; they serialise via the wire
// format in encode.go.
type Payload interface {
	payloadKind() ID
}

// Policy is the thread-scheduling policy for a parallel loop (paper
// §II-E: equal contiguous chunks when the trip count is known, small
// round-robin chunks otherwise).
type Policy uint8

const (
	// PolicyChunked gives each thread ceil(N/T) contiguous iterations.
	PolicyChunked Policy = iota
	// PolicyRoundRobin hands out fixed-size chunks in thread order.
	PolicyRoundRobin
)

func (p Policy) String() string {
	if p == PolicyChunked {
		return "chunked"
	}
	return "round-robin"
}

// InductionSpec describes one induction variable for loop setup.
type InductionSpec struct {
	Reg  guest.Reg
	Init sym.Expr
	Step int64
}

// ReductionSpec describes one reduction register and its merge operator.
type ReductionSpec struct {
	Reg guest.Reg
	Op  guest.Op
}

// TripSpec is the serialisable symbolic trip count.
type TripSpec struct {
	Known bool
	Num   sym.Expr
	Den   int64
	Round sym.RoundMode
}

// Count evaluates the trip count against a register file reader.
func (t TripSpec) Count(regs func(guest.Reg) uint64) (int64, bool) {
	if !t.Known {
		return 0, false
	}
	tr := sym.Trip{Num: t.Num, Den: t.Den, Round: t.Round}
	return tr.Count(regs), true
}

// LoopInitData parameterises LOOP_INIT: everything a thread needs to
// take its slice of the iteration space.
type LoopInitData struct {
	Inductions []InductionSpec
	Reductions []ReductionSpec
	Trip       TripSpec
	Policy     Policy
	// ChunkSize for the round-robin policy.
	ChunkSize int64
	// LoopStart is the address threads jump to (the loop header).
	LoopStart uint64
}

func (LoopInitData) payloadKind() ID { return LOOP_INIT }

// LoopFinishData parameterises LOOP_FINISH: reconstructing main-thread
// state after the parallel region.
type LoopFinishData struct {
	Inductions []InductionSpec
	Reductions []ReductionSpec
	// LiveOut lists registers whose final value must be taken from the
	// thread that executed the last iteration.
	LiveOut []guest.Reg
}

func (LoopFinishData) payloadKind() ID { return LOOP_FINISH }

// UpdateBoundData parameterises LOOP_UPDATE_BOUND: how the per-thread
// iteration bound is installed.
type UpdateBoundData struct {
	// CmpAddr is the exit compare instruction.
	CmpAddr uint64
	// IsImm says the bound is an immediate in the compare (patched in
	// the thread-private code cache); otherwise BoundReg holds it.
	IsImm    bool
	BoundReg guest.Reg
	// IVReg is the induction register the compare tests.
	IVReg guest.Reg
	// Step of that induction variable.
	Step int64
	// Init is the induction's initial-value expression.
	Init sym.Expr
	// ExitOp is the conditional branch opcode ending the exit block.
	ExitOp guest.Op
}

func (UpdateBoundData) payloadKind() ID { return LOOP_UPDATE_BOUND }

// MemPrivatiseData redirects a memory access to thread-private storage.
type MemPrivatiseData struct {
	// Slot is the private-storage slot index within the thread's TLS.
	Slot int32
	// Size of the privatised object in bytes.
	Size int64
	// SharedAddr is the cell's invariant address expression, used to
	// copy the final private value back to shared memory at LOOP_FINISH.
	SharedAddr sym.Expr
}

func (MemPrivatiseData) payloadKind() ID { return MEM_PRIVATISE }

// MemMainStackData redirects a read-only stack access to the main
// thread's stack.
type MemMainStackData struct{}

func (MemMainStackData) payloadKind() ID { return MEM_MAIN_STACK }

// RangeSpec is one symbolic address range accessed by the loop (figure
// 4's [base, base+size]). Given the loop-entry registers and the trip
// count N, the accessed interval is
//
//	[ Base + LoOff + min(0, Stride·(N-1)),
//	  Base + HiOff + max(0, Stride·(N-1)) )
//
// where HiOff already includes the access width.
type RangeSpec struct {
	Write  bool
	Base   sym.Expr
	Stride int64
	LoOff  int64
	HiOff  int64
}

// Interval evaluates the accessed address interval.
func (rg RangeSpec) Interval(regs func(r guest.Reg) uint64, trip int64) (lo, hi int64) {
	base := rg.Base.Eval(regs, 0)
	span := rg.Stride * (trip - 1)
	if trip <= 0 {
		span = 0
	}
	lo = base + rg.LoOff
	hi = base + rg.HiOff
	if span < 0 {
		lo += span
	} else {
		hi += span
	}
	return lo, hi
}

// BoundsCheckData parameterises MEM_BOUNDS_CHECK: the runtime
// array-base check guarding a parallelised loop. Parallel execution is
// allowed only if no write range overlaps any other range.
type BoundsCheckData struct {
	Ranges []RangeSpec
}

func (BoundsCheckData) payloadKind() ID { return MEM_BOUNDS_CHECK }

// NumChecks returns the number of pairwise overlap tests the check
// performs (the paper's Table I metric counts the ranges involved).
func (d BoundsCheckData) NumChecks() int { return len(d.Ranges) }

// SpillRegData spills or recovers a register set to/from TLS.
type SpillRegData struct {
	Regs []guest.Reg
}

func (SpillRegData) payloadKind() ID { return MEM_SPILL_REG }

// TxData marks software-transaction boundaries around dynamically
// discovered code (shared-library calls).
type TxData struct {
	// CallTarget is the PLT address being guarded (TX_START only).
	CallTarget uint64
}

func (TxData) payloadKind() ID { return TX_START }

// ThreadData parameterises THREAD_SCHEDULE / THREAD_YIELD.
type ThreadData struct {
	// Target is the code address scheduled threads jump to.
	Target uint64
}

func (ThreadData) payloadKind() ID { return THREAD_SCHEDULE }

// ProfLoopData parameterises the loop-profiling rules.
type ProfLoopData struct{}

func (ProfLoopData) payloadKind() ID { return PROF_LOOP_START }

// ProfMemData parameterises PROF_MEM_ACCESS.
type ProfMemData struct{}

func (ProfMemData) payloadKind() ID { return PROF_MEM_ACCESS }

// ProfExcallData parameterises PROF_EXCALL_START/FINISH.
type ProfExcallData struct {
	// Target is the PLT address of the external call.
	Target uint64
}

func (ProfExcallData) payloadKind() ID { return PROF_EXCALL_START }

func payloadName(p Payload) string {
	if p == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%T", p)
}

var _ = payloadName
