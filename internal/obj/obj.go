// Package obj defines the executable and shared-library formats for
// guest programs: a code section of fixed-width encoded instructions, a
// data section, a symbol table, and an import table backed by PLT stubs.
//
// The format plays the role ELF plays in the paper. The static analyser
// consumes only the byte image plus the dynamic-symbol information that
// even stripped ELF binaries retain (section bounds, entry point, PLT
// import names); the full symbol table is optional, so analysis of
// stripped binaries is exercised directly.
package obj

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"janus/internal/guest"
)

// Default load addresses, deliberately echoing common x86-64 layouts.
const (
	DefaultCodeBase = 0x400000
	DefaultDataBase = 0x600000
	// DefaultStackTop is where the main thread stack begins (grows down).
	DefaultStackTop = 0x7fff_ffff_e000
	// DefaultHeapBase is where SysAlloc carves allocations from.
	DefaultHeapBase = 0x10_0000_0000
	// DefaultLibBase is where the first shared library is mapped.
	DefaultLibBase = 0x7f00_0000_0000
)

// SymKind classifies a symbol.
type SymKind uint8

const (
	SymFunc SymKind = iota
	SymData
)

// Symbol names an address range in a section.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Kind SymKind
}

// Import is an external function reached through a PLT stub. The stub at
// PLT is a single JMP whose target the loader patches to the resolved
// library symbol.
type Import struct {
	Name string
	PLT  uint64
}

// Executable is a loadable guest program image.
type Executable struct {
	Name     string
	Entry    uint64
	CodeBase uint64
	Code     []byte
	DataBase uint64
	Data     []byte
	Symbols  []Symbol // empty when stripped
	Imports  []Import
	// Stripped marks that Symbols carries no local function names; the
	// analyser must recover functions from the entry point and call
	// targets alone.
	Stripped bool
}

// CodeEnd returns the first address past the code section.
func (e *Executable) CodeEnd() uint64 { return e.CodeBase + uint64(len(e.Code)) }

// DataEnd returns the first address past the data section.
func (e *Executable) DataEnd() uint64 { return e.DataBase + uint64(len(e.Data)) }

// InCode reports whether addr lies inside the code section.
func (e *Executable) InCode(addr uint64) bool {
	return addr >= e.CodeBase && addr < e.CodeEnd()
}

// Decode disassembles the full code section. Instruction i sits at
// address CodeBase + i*guest.InstSize.
func (e *Executable) Decode() ([]guest.Inst, error) {
	return guest.DecodeAll(e.Code)
}

// InstAt decodes the single instruction at addr.
func (e *Executable) InstAt(addr uint64) (guest.Inst, error) {
	if !e.InCode(addr) {
		return guest.Inst{}, fmt.Errorf("obj: address %#x outside code section", addr)
	}
	off := addr - e.CodeBase
	if off%guest.InstSize != 0 {
		return guest.Inst{}, fmt.Errorf("obj: address %#x not instruction-aligned", addr)
	}
	return guest.Decode(e.Code[off:])
}

// ImportAt returns the import whose PLT stub is at addr, if any.
func (e *Executable) ImportAt(addr uint64) (Import, bool) {
	for _, im := range e.Imports {
		if im.PLT == addr {
			return im, true
		}
	}
	return Import{}, false
}

// FuncSymbols returns the function symbols sorted by address.
func (e *Executable) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range e.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SymbolByName finds a symbol by name.
func (e *Executable) SymbolByName(name string) (Symbol, bool) {
	for _, s := range e.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Strip returns a copy with local function symbols removed, keeping only
// what a stripped dynamic binary retains: entry, section bounds, imports.
func (e *Executable) Strip() *Executable {
	cp := *e
	cp.Symbols = nil
	cp.Stripped = true
	cp.Code = append([]byte(nil), e.Code...)
	cp.Data = append([]byte(nil), e.Data...)
	cp.Imports = append([]Import(nil), e.Imports...)
	return &cp
}

// Size returns the total image size in bytes (code + data), the figure
// the paper normalises rewrite-schedule sizes against.
func (e *Executable) Size() int { return len(e.Code) + len(e.Data) }

// Library is a shared object mapped by the loader.
type Library struct {
	Name    string
	Base    uint64
	Code    []byte
	Symbols []Symbol
}

// SymbolByName finds an exported library symbol.
func (l *Library) SymbolByName(name string) (Symbol, bool) {
	for _, s := range l.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// InCode reports whether addr lies in the library's code.
func (l *Library) InCode(addr uint64) bool {
	return addr >= l.Base && addr < l.Base+uint64(len(l.Code))
}

const magic = "JEXE0001"

// Save serialises the executable to a byte image (our "file format").
func (e *Executable) Save() []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	writeStr(&buf, e.Name)
	w64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w64(e.Entry)
	w64(e.CodeBase)
	w64(uint64(len(e.Code)))
	buf.Write(e.Code)
	w64(e.DataBase)
	w64(uint64(len(e.Data)))
	buf.Write(e.Data)
	if e.Stripped {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	w64(uint64(len(e.Symbols)))
	for _, s := range e.Symbols {
		writeStr(&buf, s.Name)
		w64(s.Addr)
		w64(s.Size)
		buf.WriteByte(byte(s.Kind))
	}
	w64(uint64(len(e.Imports)))
	for _, im := range e.Imports {
		writeStr(&buf, im.Name)
		w64(im.PLT)
	}
	return buf.Bytes()
}

// Load parses an image produced by Save.
func Load(img []byte) (*Executable, error) {
	r := bytes.NewReader(img)
	got := make([]byte, len(magic))
	if _, err := r.Read(got); err != nil || string(got) != magic {
		return nil, fmt.Errorf("obj: bad magic")
	}
	e := &Executable{}
	var err error
	rd64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(r, binary.LittleEndian, &v)
		}
		return v
	}
	rdStr := func() string {
		n := rd64()
		if err != nil || n > uint64(r.Len()) {
			if err == nil {
				err = fmt.Errorf("obj: truncated string")
			}
			return ""
		}
		b := make([]byte, n)
		_, err = r.Read(b)
		return string(b)
	}
	rdBytes := func() []byte {
		n := rd64()
		if err != nil || n > uint64(r.Len()) {
			if err == nil {
				err = fmt.Errorf("obj: truncated section")
			}
			return nil
		}
		b := make([]byte, n)
		_, err = r.Read(b)
		return b
	}
	e.Name = rdStr()
	e.Entry = rd64()
	e.CodeBase = rd64()
	e.Code = rdBytes()
	e.DataBase = rd64()
	e.Data = rdBytes()
	var sb [1]byte
	if err == nil {
		_, err = r.Read(sb[:])
	}
	e.Stripped = sb[0] == 1
	nsym := rd64()
	if err == nil && nsym > uint64(r.Len()) {
		return nil, fmt.Errorf("obj: corrupt symbol count")
	}
	for i := uint64(0); i < nsym && err == nil; i++ {
		var s Symbol
		s.Name = rdStr()
		s.Addr = rd64()
		s.Size = rd64()
		var kb [1]byte
		if err == nil {
			_, err = r.Read(kb[:])
		}
		s.Kind = SymKind(kb[0])
		e.Symbols = append(e.Symbols, s)
	}
	nimp := rd64()
	if err == nil && nimp > uint64(r.Len()) {
		return nil, fmt.Errorf("obj: corrupt import count")
	}
	for i := uint64(0); i < nimp && err == nil; i++ {
		var im Import
		im.Name = rdStr()
		im.PLT = rd64()
		e.Imports = append(e.Imports, im)
	}
	if err != nil {
		return nil, fmt.Errorf("obj: load: %w", err)
	}
	return e, nil
}

func writeStr(buf *bytes.Buffer, s string) {
	_ = binary.Write(buf, binary.LittleEndian, uint64(len(s)))
	buf.WriteString(s)
}

// Fingerprint returns the hex SHA-256 of the executable's serialised
// image: the content-address used by the durable artifact cache
// (internal/artcache) to key every derived artifact (native baselines,
// training profiles, DBM results) by the exact binary they came from.
// Every semantic field of an Executable is part of Save, so two
// executables with equal fingerprints are indistinguishable to the
// analyser, the VM and the DBM.
func (e *Executable) Fingerprint() string {
	sum := sha256.Sum256(e.Save())
	return hex.EncodeToString(sum[:])
}

// Fingerprint returns the hex SHA-256 of the library's canonical
// encoding (name, base, code, symbol table), mirroring
// Executable.Fingerprint for artifact-cache keys.
func (l *Library) Fingerprint() string {
	var buf bytes.Buffer
	writeStr(&buf, l.Name)
	_ = binary.Write(&buf, binary.LittleEndian, l.Base)
	_ = binary.Write(&buf, binary.LittleEndian, uint64(len(l.Code)))
	buf.Write(l.Code)
	_ = binary.Write(&buf, binary.LittleEndian, uint64(len(l.Symbols)))
	for _, s := range l.Symbols {
		writeStr(&buf, s.Name)
		_ = binary.Write(&buf, binary.LittleEndian, s.Addr)
		_ = binary.Write(&buf, binary.LittleEndian, s.Size)
		buf.WriteByte(byte(s.Kind))
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}
