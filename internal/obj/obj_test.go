package obj

import (
	"testing"

	"janus/internal/guest"
)

func sampleExe() *Executable {
	code := guest.EncodeAll([]guest.Inst{
		guest.NewInstI(guest.MOVI, guest.R1, 7),
		{Op: guest.RET, Rd: guest.RegNone, Rs: guest.RegNone, M: guest.NoMem},
		guest.NewInstI(guest.JMP, guest.RegNone, 0), // PLT stub
	})
	return &Executable{
		Name:     "sample",
		Entry:    DefaultCodeBase,
		CodeBase: DefaultCodeBase,
		Code:     code,
		DataBase: DefaultDataBase,
		Data:     []byte{1, 2, 3, 4},
		Symbols: []Symbol{
			{Name: "main", Addr: DefaultCodeBase, Size: 2 * guest.InstSize, Kind: SymFunc},
			{Name: "tab", Addr: DefaultDataBase, Size: 4, Kind: SymData},
		},
		Imports: []Import{{Name: "pow", PLT: DefaultCodeBase + 2*guest.InstSize}},
	}
}

func TestSectionPredicates(t *testing.T) {
	e := sampleExe()
	if !e.InCode(e.Entry) || e.InCode(e.CodeEnd()) {
		t.Fatal("InCode boundaries wrong")
	}
	if e.DataEnd() != DefaultDataBase+4 {
		t.Fatal("DataEnd wrong")
	}
	if e.Size() != len(e.Code)+4 {
		t.Fatal("Size wrong")
	}
}

func TestInstAt(t *testing.T) {
	e := sampleExe()
	in, err := e.InstAt(e.Entry)
	if err != nil || in.Op != guest.MOVI {
		t.Fatalf("InstAt entry: %v %v", in, err)
	}
	if _, err := e.InstAt(e.Entry + 1); err == nil {
		t.Fatal("misaligned InstAt must fail")
	}
	if _, err := e.InstAt(0xdead0000); err == nil {
		t.Fatal("out-of-section InstAt must fail")
	}
}

func TestSymbolLookups(t *testing.T) {
	e := sampleExe()
	if s, ok := e.SymbolByName("main"); !ok || s.Kind != SymFunc {
		t.Fatal("SymbolByName main")
	}
	if _, ok := e.SymbolByName("ghost"); ok {
		t.Fatal("phantom symbol")
	}
	fns := e.FuncSymbols()
	if len(fns) != 1 || fns[0].Name != "main" {
		t.Fatalf("FuncSymbols: %v", fns)
	}
	if im, ok := e.ImportAt(DefaultCodeBase + 2*guest.InstSize); !ok || im.Name != "pow" {
		t.Fatal("ImportAt")
	}
}

func TestStripKeepsDynamicInfo(t *testing.T) {
	e := sampleExe()
	st := e.Strip()
	if !st.Stripped || len(st.Symbols) != 0 {
		t.Fatal("symbols survive strip")
	}
	// Stripped binaries keep entry, sections, and imports (dynamic
	// symbol information survives stripping in real ELF too).
	if st.Entry != e.Entry || len(st.Imports) != 1 {
		t.Fatal("strip lost dynamic info")
	}
	// Strip must be a deep copy: mutating the copy leaves the original.
	st.Code[0] = 0xEE
	if e.Code[0] == 0xEE {
		t.Fatal("strip aliases code")
	}
}

func TestSaveLoadFull(t *testing.T) {
	e := sampleExe()
	back, err := Load(e.Save())
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != e.Name || back.Entry != e.Entry {
		t.Fatal("header mismatch")
	}
	if len(back.Symbols) != 2 || len(back.Imports) != 1 {
		t.Fatalf("tables mismatch: %d syms %d imports", len(back.Symbols), len(back.Imports))
	}
	if back.Symbols[0] != e.Symbols[0] || back.Imports[0] != e.Imports[0] {
		t.Fatal("entries mismatch")
	}
}

func TestLoadTruncationsFail(t *testing.T) {
	img := sampleExe().Save()
	for _, n := range []int{0, 4, 8, 20, len(img) / 2, len(img) - 1} {
		if _, err := Load(img[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestLibraryLookups(t *testing.T) {
	lib := &Library{
		Name: "libm", Base: DefaultLibBase,
		Code:    make([]byte, 3*guest.InstSize),
		Symbols: []Symbol{{Name: "pow", Addr: DefaultLibBase, Size: 2 * guest.InstSize, Kind: SymFunc}},
	}
	if s, ok := lib.SymbolByName("pow"); !ok || s.Addr != DefaultLibBase {
		t.Fatal("library symbol lookup")
	}
	if !lib.InCode(DefaultLibBase) || lib.InCode(DefaultLibBase+3*guest.InstSize) {
		t.Fatal("library InCode bounds")
	}
}
