package janusd

// Two daemon replicas sharing one artifact cache directory: the
// durability contract says concurrent warm runs stay byte-identical
// and never publish a corrupt entry. One replica runs in-process, the
// second is this test binary re-exec'd as a helper daemon (the same
// idiom internal/artcache's cross-process tests use), so the sharing
// really crosses a process boundary.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
	"time"

	"janus/internal/artcache"
)

// TestHelperReplicaDaemon is not a test: re-exec'd by
// TestReplicasShareCache, it serves a daemon on a loopback port until
// the parent kills it.
func TestHelperReplicaDaemon(t *testing.T) {
	if os.Getenv("JANUSD_REPLICA_HELPER") != "1" {
		t.Skip("helper process for TestReplicasShareCache")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("REPLICA-ERR", err)
		os.Exit(1)
	}
	s := New(Config{Workers: 2, CacheDir: os.Getenv("JANUSD_REPLICA_CACHE")})
	fmt.Printf("REPLICA-ADDR %s\n", ln.Addr())
	_ = s.Serve(ln)
}

func TestReplicasShareCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite renders across two processes; skipped in -short")
	}
	golden, err := os.ReadFile("../harness/testdata/janus-bench.golden")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Replica A, in-process, warms the shared cache with one full run.
	_, baseA, _ := startServer(t, Config{Workers: 2, CacheDir: dir})
	cA := &Client{Base: baseA}
	warm, err := cA.Render(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Output != string(golden) {
		t.Fatal("warming render differs from golden")
	}

	// Replica B: a separate OS process pointed at the same directory.
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperReplicaDaemon$", "-test.v")
	cmd.Env = append(os.Environ(),
		"JANUSD_REPLICA_HELPER=1",
		"JANUSD_REPLICA_CACHE="+dir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	var baseB string
	sc := bufio.NewScanner(stdout)
	re := regexp.MustCompile(`^REPLICA-ADDR (.+)$`)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			baseB = "http://" + m[1]
			break
		}
		if strings.HasPrefix(sc.Text(), "REPLICA-ERR") {
			t.Fatal(sc.Text())
		}
	}
	if baseB == "" {
		t.Fatal("replica B never reported its address")
	}

	// Concurrent warm runs against both replicas.
	type result struct {
		res *Response
		err error
	}
	results := make(chan result, 2)
	for _, base := range []string{baseA, baseB} {
		go func(base string) {
			c := &Client{Base: base, HTTP: longClient()}
			res, err := c.Render(context.Background(), Request{})
			results <- result{res, err}
		}(base)
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("concurrent warm render: %v", r.err)
		}
		if r.res.Output != string(golden) {
			t.Fatal("concurrent warm render not byte-identical to golden")
		}
	}

	// No corrupt entries on either side. The local handle is the same
	// one the harness used (OpenShared dedups per directory); the
	// remote replica reports through statusz.
	local, err := artcache.OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	if bad := local.Stats().BadEntries; bad != 0 {
		t.Fatalf("replica A saw %d corrupt cache entries", bad)
	}
	stB, err := (&Client{Base: baseB}).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stB.CacheBad != 0 {
		t.Fatalf("replica B saw %d corrupt cache entries", stB.CacheBad)
	}
	if stB.CacheHits == 0 {
		t.Fatal("replica B never hit the shared cache — the directory was not actually shared")
	}
}

// longClient returns an HTTP client that tolerates full-suite renders.
func longClient() *http.Client {
	return &http.Client{Timeout: 5 * time.Minute}
}
