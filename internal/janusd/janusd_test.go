package janusd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/rpc"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"janus/internal/faultinject"
	"janus/internal/harness"
)

// startServer runs an in-process daemon on a loopback listener and
// returns it with its base URL and the Serve error channel.
func startServer(t *testing.T, cfg Config) (*Server, string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()
	t.Cleanup(func() { s.Close() })
	return s, "http://" + ln.Addr().String(), errc
}

// tab2Output is the expected body for a {table:2} render — Table II is
// static data, so it renders instantly and byte-identically everywhere.
var (
	tab2Once sync.Once
	tab2Out  string
)

func tab2Expected(t *testing.T) string {
	t.Helper()
	tab2Once.Do(func() {
		out, err := harness.RenderAll(harness.DefaultOptions(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		tab2Out = out
	})
	return tab2Out
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	res, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res, payload
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res, payload
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRenderSync pins the synchronous endpoint: the body is the exact
// bytes a local render produces, with job metadata in headers.
func TestRenderSync(t *testing.T) {
	_, base, _ := startServer(t, Config{Workers: 2})
	res, payload := postJSON(t, base+"/v1/render", `{"table":2}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, payload)
	}
	if string(payload) != tab2Expected(t) {
		t.Fatalf("service render differs from local render:\n%q", payload)
	}
	if res.Header.Get("X-Janus-Job") == "" {
		t.Fatal("missing X-Janus-Job header")
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

// TestJobLifecycle drives the async API end to end: submit, status,
// events, result.
func TestJobLifecycle(t *testing.T) {
	_, base, _ := startServer(t, Config{Workers: 2})
	res, payload := postJSON(t, base+"/v1/jobs", `{"table":2}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", res.StatusCode, payload)
	}
	var acc Response
	if err := json.Unmarshal(payload, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" {
		t.Fatalf("no job ID in %s", payload)
	}

	res, payload = getBody(t, base+"/v1/jobs/"+acc.ID+"/result")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", res.StatusCode, payload)
	}
	var final Response
	if err := json.Unmarshal(payload, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Output != tab2Expected(t) {
		t.Fatalf("unexpected terminal response: state %s, %d bytes", final.State, len(final.Output))
	}

	res, payload = getBody(t, base+"/v1/jobs/"+acc.ID)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status status %d", res.StatusCode)
	}

	res, payload = getBody(t, base+"/v1/jobs/"+acc.ID+"/events")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", res.StatusCode)
	}
	ev := string(payload)
	for _, want := range []string{"accepted " + acc.ID, "state running", "tab2 start", "tab2 done", "state done"} {
		if !strings.Contains(ev, want) {
			t.Fatalf("event stream missing %q:\n%s", want, ev)
		}
	}

	res, payload = getBody(t, base+"/v1/jobs/nope")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d: %s", res.StatusCode, payload)
	}
	var nf Response
	if err := json.Unmarshal(payload, &nf); err != nil || nf.ErrKind != KindNotFound {
		t.Fatalf("unknown job kind %q err %v", nf.ErrKind, err)
	}
}

// mustPlan parses a fault plan spec or dies.
func mustPlan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLoadShedding pins the admission bound: with one worker wedged by
// a slow-worker fault and zero queue depth, the next submission is
// shed with 429 + Retry-After and a typed response.
func TestLoadShedding(t *testing.T) {
	s, base, _ := startServer(t, Config{
		Workers:    1,
		QueueDepth: -1, // no queue: shed as soon as the worker is busy
		Inject:     mustPlan(t, "slow-worker@1"),
		StallDelay: 500 * time.Millisecond,
	})
	res, payload := postJSON(t, base+"/v1/jobs", `{"table":2}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", res.StatusCode, payload)
	}
	var acc Response
	if err := json.Unmarshal(payload, &acc); err != nil {
		t.Fatal(err)
	}

	res, payload = postJSON(t, base+"/v1/render", `{"table":2}`)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429: %s", res.StatusCode, payload)
	}
	if ra := res.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var shed Response
	if err := json.Unmarshal(payload, &shed); err != nil || shed.ErrKind != KindShed {
		t.Fatalf("shed kind %q err %v", shed.ErrKind, err)
	}
	if s.Snapshot().Shed == 0 {
		t.Fatal("shed counter not incremented")
	}

	// The wedged job still completes correctly.
	res, payload = getBody(t, base+"/v1/jobs/"+acc.ID+"/result")
	var final Response
	if err := json.Unmarshal(payload, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Output != tab2Expected(t) {
		t.Fatalf("wedged job did not finish cleanly: %s %s", final.State, final.Err)
	}
}

// TestClientBackoffCompletesAll is the load-shed acceptance shape at
// small scale: pool cap 1, no queue, N concurrent clients; everyone
// completes through seeded jittered backoff and every output is
// byte-identical.
func TestClientBackoffCompletesAll(t *testing.T) {
	s, base, _ := startServer(t, Config{
		Workers:    1,
		QueueDepth: -1,
		Inject:     mustPlan(t, "slow-worker@1"),
		StallDelay: 100 * time.Millisecond,
	})
	const n = 4
	outs := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &Client{Base: base, Backoff: Backoff{
				Base:    20 * time.Millisecond,
				Max:     200 * time.Millisecond,
				Retries: 50,
				Seed:    uint64(i + 1),
			}}
			outs[i], errs[i] = c.Render(context.Background(), Request{Table: 2})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if outs[i].Output != tab2Expected(t) {
			t.Fatalf("client %d output differs", i)
		}
	}
	if s.Snapshot().Shed == 0 {
		t.Fatal("no submission was ever shed — the test exercised nothing")
	}
}

// TestDeadline pins per-request deadlines: a job wedged in the queue
// past its deadline fails with the typed deadline kind and HTTP 504.
func TestDeadline(t *testing.T) {
	_, base, _ := startServer(t, Config{
		Workers:    1,
		Inject:     mustPlan(t, "queue-stall@1"),
		StallDelay: time.Second,
	})
	res, payload := postJSON(t, base+"/v1/render", `{"table":2,"deadline_ms":50}`)
	if res.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", res.StatusCode, payload)
	}
	var r Response
	if err := json.Unmarshal(payload, &r); err != nil || r.ErrKind != KindDeadline {
		t.Fatalf("kind %q err %v: %s", r.ErrKind, err, payload)
	}
}

// TestPanicContainment: a handler panic becomes a structured error and
// the daemon keeps serving.
func TestPanicContainment(t *testing.T) {
	_, base, _ := startServer(t, Config{
		Workers: 2,
		Inject:  mustPlan(t, "handler-panic@1"),
	})
	res, payload := postJSON(t, base+"/v1/render", `{"table":2}`)
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", res.StatusCode, payload)
	}
	var r Response
	if err := json.Unmarshal(payload, &r); err != nil {
		t.Fatal(err)
	}
	if r.ErrKind != KindPanic || !strings.Contains(r.Err, "handler-panic") {
		t.Fatalf("kind %q err %q", r.ErrKind, r.Err)
	}
	// The daemon survived: liveness and the whole API still answer.
	res, payload = getBody(t, base+"/healthz")
	if res.StatusCode != http.StatusOK || !strings.Contains(string(payload), "ok") {
		t.Fatalf("healthz after panic: %d %s", res.StatusCode, payload)
	}
}

// TestServiceFaultMatrix is the acceptance matrix over the new
// service-level points: for every point × stride × seed, the daemon
// never dies, and every request ends in either a byte-identical
// success or a typed structured error.
func TestServiceFaultMatrix(t *testing.T) {
	want := tab2Expected(t)
	for _, spec := range []string{
		"handler-panic@1", "handler-panic@2#1", "handler-panic@3#7",
		"queue-stall@1", "queue-stall@2#5",
		"slow-worker@1", "slow-worker@2#9",
	} {
		t.Run(spec, func(t *testing.T) {
			_, base, _ := startServer(t, Config{
				Workers:    2,
				QueueDepth: 8,
				Inject:     mustPlan(t, spec),
				StallDelay: 10 * time.Millisecond,
			})
			const n = 6
			var wg sync.WaitGroup
			results := make([]*Response, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, payload := postJSON(t, base+"/v1/render", `{"table":2}`)
					r := &Response{}
					if res.StatusCode == http.StatusOK {
						r.State, r.Output = StateDone, string(payload)
					} else if err := json.Unmarshal(payload, r); err != nil {
						t.Errorf("request %d: undecodable %d response %q", i, res.StatusCode, payload)
						return
					}
					results[i] = r
				}(i)
			}
			wg.Wait()
			panics := 0
			for i, r := range results {
				if r == nil {
					continue // already reported
				}
				switch {
				case r.State == StateDone:
					if r.Output != want {
						t.Errorf("request %d: success with wrong bytes", i)
					}
				case r.ErrKind == KindPanic:
					panics++
				default:
					t.Errorf("request %d: unexpected failure kind %q: %s", i, r.ErrKind, r.Err)
				}
			}
			if strings.HasPrefix(spec, "handler-panic") && panics == 0 {
				t.Error("handler-panic plan fired no panic")
			}
			// Liveness after the storm.
			if res, _ := getBody(t, base+"/healthz"); res.StatusCode != http.StatusOK {
				t.Fatal("daemon unhealthy after fault matrix")
			}
		})
	}
}

// TestRPCRender drives the same daemon over net/rpc on the same
// listener: byte-identity holds across both protocol surfaces.
func TestRPCRender(t *testing.T) {
	_, base, _ := startServer(t, Config{Workers: 2})
	addr := strings.TrimPrefix(base, "http://")
	client, err := rpc.DialHTTPPath("tcp", addr, "/rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var res Response
	if err := client.Call("Janus.Render", Request{Table: 2}, &res); err != nil {
		t.Fatal(err)
	}
	if res.State != StateDone || res.Output != tab2Expected(t) {
		t.Fatalf("rpc render: state %s err %s", res.State, res.Err)
	}

	var id string
	if err := client.Call("Janus.Submit", Request{Table: 2}, &id); err != nil {
		t.Fatal(err)
	}
	var final Response
	if err := client.Call("Janus.Wait", id, &final); err != nil {
		t.Fatal(err)
	}
	if final.Output != tab2Expected(t) {
		t.Fatal("rpc submit/wait output differs")
	}

	var st Stats
	if err := client.Call("Janus.Stats", struct{}{}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Served < 2 || st.PID != os.Getpid() {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDrainGraceful: during drain the daemon refuses new work with the
// typed draining kind, readyz flips to 503, in-flight jobs complete
// and deliver, and Serve exits cleanly.
func TestDrainGraceful(t *testing.T) {
	s, base, errc := startServer(t, Config{
		Workers:    1,
		Inject:     mustPlan(t, "slow-worker@1"),
		StallDelay: 400 * time.Millisecond,
	})
	res, payload := postJSON(t, base+"/v1/jobs", `{"table":2}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", res.StatusCode, payload)
	}
	var acc Response
	if err := json.Unmarshal(payload, &acc); err != nil {
		t.Fatal(err)
	}
	j, ok := s.Job(acc.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	waitFor(t, "job running", func() bool { return j.State() == StateRunning })

	// Open the result exchange before draining: its response must be
	// delivered through the drain.
	resultc := make(chan *Response, 1)
	go func() {
		_, payload := getBody(t, base+"/v1/jobs/"+acc.ID+"/result")
		var r Response
		_ = json.Unmarshal(payload, &r)
		resultc <- &r
	}()

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	waitFor(t, "draining", s.Draining)

	if res, _ := getBody(t, base+"/readyz"); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", res.StatusCode)
	}
	if res, payload := postJSON(t, base+"/v1/jobs", `{"table":2}`); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %s", res.StatusCode, payload)
	} else {
		var r Response
		if err := json.Unmarshal(payload, &r); err != nil || r.ErrKind != KindDraining {
			t.Fatalf("draining kind %q err %v", r.ErrKind, err)
		}
	}

	final := <-resultc
	if final.State != StateDone || final.Output != tab2Expected(t) {
		t.Fatalf("in-flight job dropped by drain: %s %s", final.State, final.Err)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-errc; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
}

// TestDrainDeadlineCancels: when the drain budget expires, still-running
// jobs are cancelled through their contexts and flush typed responses —
// clients get an answer, never a dropped connection.
func TestDrainDeadlineCancels(t *testing.T) {
	s, base, _ := startServer(t, Config{
		Workers:    1,
		Inject:     mustPlan(t, "slow-worker@1"),
		StallDelay: 30 * time.Second, // far beyond the drain budget
	})
	res, payload := postJSON(t, base+"/v1/jobs", `{"table":2}`)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", res.StatusCode, payload)
	}
	var acc Response
	if err := json.Unmarshal(payload, &acc); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Job(acc.ID)
	waitFor(t, "job running", func() bool { return j.State() == StateRunning })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hard drain took %v — the stalled job was not cancelled", elapsed)
	}
	final, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if final.ErrKind != KindCanceled && final.ErrKind != KindDeadline {
		t.Fatalf("cancelled job kind %q (err %q)", final.ErrKind, final.Err)
	}
}

// TestBadRequests: malformed bodies and inject specs are refused with
// typed 400s before touching the pool.
func TestBadRequests(t *testing.T) {
	s, base, _ := startServer(t, Config{Workers: 1})
	for _, body := range []string{`{bad json`, `{"nope":1}`, `{"inject":"not-a-point"}`} {
		res, payload := postJSON(t, base+"/v1/render", body)
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d: %s", body, res.StatusCode, payload)
		}
		var r Response
		if err := json.Unmarshal(payload, &r); err != nil || r.ErrKind != KindBadRequest {
			t.Fatalf("body %q: kind %q err %v", body, r.ErrKind, err)
		}
	}
	if s.Snapshot().Served != 0 {
		t.Fatal("a bad request was admitted")
	}
}

// TestClientRetryAfterFloor pins the backoff math: delays grow
// exponentially from Base, never exceed Max (even against a server
// Retry-After of a full second), and the jitter stream is a pure
// function of the seed.
func TestClientRetryAfterFloor(t *testing.T) {
	c := &Client{Backoff: Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Seed: 42}}
	var prev time.Duration
	for attempt := 0; attempt < 6; attempt++ {
		d := c.delay(attempt, "1") // server hints 1s; Max must cap it
		if d > 80*time.Millisecond*3/2 {
			t.Fatalf("attempt %d: delay %v exceeds jittered Max", attempt, d)
		}
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
		}
		prev = d
	}
	_ = prev
	a := &Client{Backoff: Backoff{Base: time.Millisecond, Seed: 7}}
	b := &Client{Backoff: Backoff{Base: time.Millisecond, Seed: 7}}
	for i := 0; i < 8; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed produced different jitter streams")
		}
	}
}

// TestGoldenThroughService is the headline byte-identity contract: a
// full-suite render served over HTTP equals the janus-bench golden
// fixture exactly; then, with the pool capped at 1 and shedding
// enabled, N concurrent thin clients all complete via backoff and every
// body is again byte-identical.
func TestGoldenThroughService(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite renders are expensive; skipped in -short")
	}
	golden, err := os.ReadFile("../harness/testdata/janus-bench.golden")
	if err != nil {
		t.Fatal(err)
	}
	s, base, _ := startServer(t, Config{Workers: 1, QueueDepth: -1})

	c := &Client{Base: base, Backoff: Backoff{Base: 20 * time.Millisecond, Max: 300 * time.Millisecond, Retries: 100, Seed: 1}}
	warm, err := c.Render(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Output != string(golden) {
		t.Fatalf("service render differs from golden fixture (%d vs %d bytes)", len(warm.Output), len(golden))
	}

	const n = 3
	outs := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ci := &Client{Base: base, Backoff: Backoff{
				Base: 20 * time.Millisecond, Max: 300 * time.Millisecond,
				Retries: 200, Seed: uint64(100 + i),
			}}
			outs[i], errs[i] = ci.Render(context.Background(), Request{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if outs[i].Output != string(golden) {
			t.Fatalf("client %d: output not byte-identical to golden", i)
		}
	}
	if s.Snapshot().Shed == 0 {
		t.Log("note: no shed occurred (cap-1 contention did not materialise)")
	}
}

// TestEventsStreamFullSuite (cheap slice): progress events stream over
// HTTP while a render runs and end with the terminal state.
func TestEventsStream(t *testing.T) {
	_, base, _ := startServer(t, Config{
		Workers:    1,
		Inject:     mustPlan(t, "slow-worker@1"),
		StallDelay: 100 * time.Millisecond,
	})
	res, payload := postJSON(t, base+"/v1/jobs", `{"table":2}`)
	var acc Response
	if err := json.Unmarshal(payload, &acc); err != nil || res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", res.StatusCode, payload)
	}
	// Stream while the job is still stalled: the body must deliver
	// lines incrementally and close at the terminal state.
	hres, err := http.Get(base + "/v1/jobs/" + acc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(hres.Body)
	hres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ev := string(body)
	if !strings.Contains(ev, "fault: slow-worker") || !strings.Contains(ev, "state done") {
		t.Fatalf("stream missing expected lines:\n%s", ev)
	}
}

// TestPoolControls: runtime resize and purge through the server.
func TestPoolControls(t *testing.T) {
	s, base, _ := startServer(t, Config{Workers: 2, QueueDepth: 2})
	for i := 0; i < 3; i++ {
		if res, payload := postJSON(t, base+"/v1/render", `{"table":2}`); res.StatusCode != http.StatusOK {
			t.Fatalf("render %d: %d %s", i, res.StatusCode, payload)
		}
	}
	s.Resize(4)
	if got := s.Snapshot().Cap; got != 4 {
		t.Fatalf("cap after resize: %d", got)
	}
	waitFor(t, "workers idle", func() bool { return s.Snapshot().Idle > 0 })
	if purged := s.Purge(); purged == 0 {
		t.Fatal("purge reclaimed nothing with idle workers present")
	}
	if res, _ := postJSON(t, base+"/v1/render", `{"table":2}`); res.StatusCode != http.StatusOK {
		t.Fatal("render after purge failed")
	}
}

var _ = fmt.Sprintf // keep fmt import if assertions above change
