package janusd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Backoff shapes the client's retry schedule for shed (429) and
// draining (503) responses: seeded jittered exponential backoff, fully
// deterministic for a given Seed so tests can pin schedules.
type Backoff struct {
	// Base is the first retry delay; each further attempt doubles it.
	// Default 50ms.
	Base time.Duration
	// Max caps every delay, including a server-sent Retry-After.
	// Default 2s.
	Max time.Duration
	// Retries bounds retry attempts before the typed failure is
	// returned to the caller. Default 8.
	Retries int
	// Seed selects the jitter stream (splitmix64); two clients with
	// different seeds desynchronise instead of retrying in lockstep.
	Seed uint64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Retries <= 0 {
		b.Retries = 8
	}
	return b
}

// Client is the thin HTTP client the janus CLI's bench -server mode
// uses. Render retries shed/draining/transport failures with seeded
// jittered exponential backoff; every other failure kind is terminal
// and surfaces as the server's typed Response.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:7117".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// Backoff shapes retries; zero fields take defaults.
	Backoff Backoff

	mu  sync.Mutex
	rng uint64
	rok bool
}

// next draws from the client's private splitmix64 stream.
func (c *Client) next() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.rok {
		c.rng = c.Backoff.Seed
		c.rok = true
	}
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// delay computes the attempt-th retry delay: exponential from Base,
// capped at Max, stretched by jitter in [0.5, 1.5), and floored by the
// server's Retry-After (itself capped at Max, so a 1-second hint never
// stalls a test running with millisecond budgets).
func (c *Client) delay(attempt int, retryAfter string) time.Duration {
	b := c.Backoff.withDefaults()
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		if ra := time.Duration(secs) * time.Second; ra > d {
			d = min(ra, b.Max)
		}
	}
	jitter := 0.5 + float64(c.next()>>11)/float64(1<<53) // [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// retryable reports whether a response kind is worth retrying.
func retryable(kind string) bool {
	return kind == KindShed || kind == KindDraining
}

// Render submits req on the synchronous endpoint and returns the
// terminal response, retrying shed/draining answers and transport
// errors (a daemon mid-hot-restart) under the Backoff schedule. The
// returned Response may still be a typed failure (deadline, panic,
// render); only transport exhaustion returns a Go error.
func (c *Client) Render(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	b := c.Backoff.withDefaults()
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := c.renderOnce(ctx, body)
		switch {
		case err == nil && !retryable(res.ErrKind):
			return res, nil
		case err == nil:
			lastErr = fmt.Errorf("janusd: %s: %s", res.ErrKind, res.Err)
		default:
			lastErr = err
		}
		if attempt >= b.Retries {
			return nil, fmt.Errorf("janusd: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		ra := ""
		var sh *shedError
		if errors.As(lastErr, &sh) {
			ra = sh.retryAfter
		}
		t := time.NewTimer(c.delay(attempt, ra))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// shedError carries the server's Retry-After through the retry loop.
type shedError struct {
	kind, msg, retryAfter string
}

func (e *shedError) Error() string { return "janusd: " + e.kind + ": " + e.msg }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// renderOnce performs one POST /v1/render exchange. Retryable refusals
// come back as (nil, *shedError); terminal outcomes as a Response.
func (c *Client) renderOnce(ctx context.Context, body []byte) (*Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/render", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	payload, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, err
	}
	if hres.StatusCode == http.StatusOK {
		res := &Response{
			ID:     hres.Header.Get("X-Janus-Job"),
			State:  StateDone,
			Output: string(payload),
		}
		res.ElapsedMS, _ = strconv.ParseInt(hres.Header.Get("X-Janus-Elapsed-Ms"), 10, 64)
		res.Recoveries, _ = strconv.ParseInt(hres.Header.Get("X-Janus-Recoveries"), 10, 64)
		res.Demoted, _ = strconv.ParseInt(hres.Header.Get("X-Janus-Demoted"), 10, 64)
		return res, nil
	}
	var res Response
	if err := json.Unmarshal(payload, &res); err != nil {
		return nil, fmt.Errorf("janusd: HTTP %d with undecodable body: %q", hres.StatusCode, payload)
	}
	if retryable(res.ErrKind) {
		return nil, &shedError{kind: res.ErrKind, msg: res.Err, retryAfter: hres.Header.Get("Retry-After")}
	}
	return &res, nil
}

// Stats fetches the daemon's /statusz snapshot (no retries).
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/statusz", nil)
	if err != nil {
		return nil, err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	var st Stats
	if err := json.NewDecoder(hres.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Ready probes /readyz; false with a nil error means draining.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return false, err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	return hres.StatusCode == http.StatusOK, nil
}
