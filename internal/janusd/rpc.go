package janusd

import (
	"context"
	"errors"
	"net/http"
	"net/rpc"
)

// RPC is the daemon's net/rpc surface, registered as service "Janus"
// and reachable over HTTP CONNECT on /rpc of the same listener the
// JSON API uses (rpc.DialHTTPPath("tcp", addr, "/rpc")).
//
// Admission failures (shed, draining) come back as typed Responses
// with a nil RPC error, mirroring the JSON API: the transport worked,
// the request was refused.
type RPC struct {
	s *Server
}

// Render submits req and blocks until its terminal response.
func (r *RPC) Render(req Request, resp *Response) error {
	j, err := r.s.Submit(req)
	if err != nil {
		*resp = *submitFailure(err)
		return nil
	}
	res, _ := j.Wait(context.Background())
	*resp = *res
	return nil
}

// Submit admits req and returns its job ID without waiting.
func (r *RPC) Submit(req Request, id *string) error {
	j, err := r.s.Submit(req)
	if err != nil {
		return err
	}
	*id = j.ID
	return nil
}

// Wait blocks until job id finishes and returns its response.
func (r *RPC) Wait(id string, resp *Response) error {
	j, ok := r.s.Job(id)
	if !ok {
		return errors.New("janusd: unknown job " + id)
	}
	res, _ := j.Wait(context.Background())
	*resp = *res
	return nil
}

// Stats returns the daemon snapshot.
func (r *RPC) Stats(_ struct{}, st *Stats) error {
	*st = r.s.Snapshot()
	return nil
}

// rpcHandler builds the CONNECT-hijacking handler; rpc.Server's own
// ServeHTTP implements the hijack, so mounting it on the mux is all
// the multiplexing needed.
func (s *Server) rpcHandler() http.Handler {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Janus", &RPC{s: s}); err != nil {
		panic(err) // method-set mismatch is a programming error
	}
	return srv
}
