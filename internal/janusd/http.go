package janusd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"janus/internal/pool"
)

// Handler returns the daemon's full HTTP surface. One mux serves the
// JSON job API, the synchronous render endpoint, the health probes and
// the net/rpc CONNECT path, so a single listener carries everything.
//
//	POST /v1/jobs              submit, 202 {"id": ...} | 429 shed | 503 draining
//	GET  /v1/jobs/{id}         status snapshot
//	GET  /v1/jobs/{id}/result  blocks until terminal response
//	GET  /v1/jobs/{id}/events  streams progress lines until terminal
//	POST /v1/render            submit + wait; 200 text/plain = exact render bytes
//	GET  /healthz              liveness ("ok" even while draining)
//	GET  /readyz               readiness (503 once draining)
//	GET  /statusz              JSON Stats snapshot
//	     /rpc                  net/rpc over HTTP CONNECT
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/render", s.handleRender)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	mux.Handle("/rpc", s.rpcHandler())
	return mux
}

// statusFor maps a failure kind to its HTTP status.
func statusFor(kind string) int {
	switch kind {
	case "":
		return http.StatusOK
	case KindBadRequest:
		return http.StatusBadRequest
	case KindShed:
		return http.StatusTooManyRequests
	case KindDraining:
		return http.StatusServiceUnavailable
	case KindDeadline:
		return http.StatusGatewayTimeout
	case KindNotFound:
		return http.StatusNotFound
	default: // canceled, panic, render
		return http.StatusInternalServerError
	}
}

// submitFailure types a Submit error into a Response.
func submitFailure(err error) *Response {
	kind := KindBadRequest
	switch {
	case errors.Is(err, errDraining):
		kind = KindDraining
	case errors.Is(err, pool.ErrOverloaded):
		kind = KindShed
	}
	return &Response{State: StateFailed, Err: err.Error(), ErrKind: kind}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v)
}

// writeFailure emits a typed error response, adding Retry-After on
// load shed so clients know the backoff floor.
func writeFailure(w http.ResponseWriter, res *Response) {
	if res.ErrKind == KindShed {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, statusFor(res.ErrKind), res)
}

func decodeRequest(r *http.Request) (Request, error) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	return req, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeFailure(w, &Response{State: StateFailed, Err: err.Error(), ErrKind: KindBadRequest})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		writeFailure(w, submitFailure(err))
		return
	}
	writeJSON(w, http.StatusAccepted, &Response{ID: j.ID, State: j.State()})
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeFailure(w, &Response{ID: id, State: StateFailed,
			Err: "unknown job " + strconv.Quote(id), ErrKind: KindNotFound})
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	res := j.res
	state := j.state
	j.mu.Unlock()
	if res != nil {
		writeJSON(w, http.StatusOK, res)
		return
	}
	writeJSON(w, http.StatusOK, &Response{ID: j.ID, State: state})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	res, err := j.Wait(r.Context())
	if err != nil {
		return // client went away; nothing to deliver
	}
	writeJSON(w, statusFor(res.ErrKind), res)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	j.Events(r.Context(), func(line string) bool {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	})
}

// handleRender is the synchronous path: submit, wait, and on success
// answer 200 text/plain whose body is the exact bytes the render
// produced — what janus-bench would have printed — so curl | cmp
// against the golden fixture works with no JSON unwrapping. Job
// metadata rides in X-Janus-* headers; failures come back as the same
// typed JSON the async path uses.
func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeFailure(w, &Response{State: StateFailed, Err: err.Error(), ErrKind: KindBadRequest})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		writeFailure(w, submitFailure(err))
		return
	}
	res, werr := j.Wait(r.Context())
	if werr != nil {
		return // client went away mid-wait; the job still completes
	}
	if res.Failed() {
		writeFailure(w, res)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("X-Janus-Job", res.ID)
	h.Set("X-Janus-Elapsed-Ms", strconv.FormatInt(res.ElapsedMS, 10))
	h.Set("X-Janus-Recoveries", strconv.FormatInt(res.Recoveries, 10))
	h.Set("X-Janus-Demoted", strconv.FormatInt(res.Demoted, 10))
	_, _ = w.Write([]byte(res.Output))
}
