package janusd

import (
	"context"
	"net"
	"os"
	"time"
)

// Serve accepts connections on ln until the daemon is stopped. It
// returns http.ErrServerClosed after a clean Drain or Close, matching
// net/http's contract.
func (s *Server) Serve(ln net.Listener) error {
	return s.http.Serve(ln)
}

// Drain gracefully stops the daemon: new submissions are refused with
// a typed draining error (and /readyz flips to 503) while every
// in-flight job runs to completion and its response stays deliverable.
// If ctx expires first, the remaining jobs are cancelled through their
// contexts so they flush typed cancellation errors instead of being
// dropped mid-render — clients always see a terminal response.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil // second drain is a no-op; the first owns shutdown
	}
	s.cfg.Log.Printf("janusd: pid %d draining (%d queued, %d running)",
		os.Getpid(), s.pool.Queued(), s.pool.Running())
	s.pool.Close()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cfg.Log.Printf("janusd: drain deadline passed, cancelling in-flight jobs")
		s.baseCancel()
		<-done // cancelled renders abandon pending rows and finish fast
	}
	// Every job has a terminal response now; give in-flight HTTP
	// exchanges a moment to flush it before connections close.
	flushCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.http.Shutdown(flushCtx)
	s.cfg.Log.Printf("janusd: pid %d drained", os.Getpid())
	return err
}

// Close hard-stops the daemon: jobs are cancelled and connections
// closed without waiting. Tests use it; production paths should Drain.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.baseCancel()
	s.pool.Close()
	return s.http.Close()
}
