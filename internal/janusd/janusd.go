// Package janusd is the analysis-as-a-service layer: a long-lived
// daemon that serves the whole build → profile → analyze →
// parallelise → simulate pipeline over HTTP/JSON and Go net/rpc on a
// single listener. Requests are promoted into jobs on a bounded,
// resizable worker pool (internal/pool); each job carries its own
// harness.Options, gets an ID, streams progress events, and renders
// byte-identically to janus-bench, so the golden fixture pins the
// service path too.
//
// Robustness is the point of the package:
//
//   - per-request deadlines propagate as context cancellation into the
//     harness scheduler, so an expired job aborts its pending rows
//     instead of running the suite to completion;
//   - submissions beyond the pool's admission bound are shed with
//     HTTP 429 + Retry-After (the janus thin client retries them with
//     seeded jittered exponential backoff);
//   - a panicking job is contained to a structured error response —
//     the daemon never dies with a request;
//   - SIGTERM drains in-flight jobs under a deadline while refusing
//     new work, and SIGHUP hot-restarts by handing the listener fd to
//     a fresh process with zero dropped connections (grace.go);
//   - the whole lifecycle is deterministically testable through the
//     service-level faultinject points (handler-panic, queue-stall,
//     slow-worker).
package janusd

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"janus/internal/artcache"
	"janus/internal/faultinject"
	"janus/internal/harness"
	"janus/internal/pool"
)

// Config configures one daemon instance.
type Config struct {
	// Workers bounds how many jobs render concurrently (the pool cap).
	// Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many admitted jobs may wait beyond the
	// running ones; submissions past Workers+QueueDepth are shed.
	// Default 16; negative means no queue at all (shed whenever every
	// worker is busy).
	QueueDepth int
	// DefaultDeadline applies to requests that carry none. Zero means
	// no implicit deadline.
	DefaultDeadline time.Duration
	// DrainTimeout bounds graceful drain (SIGTERM / hot restart): when
	// it expires, still-running jobs are cancelled through their
	// contexts so their responses flush as typed errors. Default 60s.
	DrainTimeout time.Duration
	// CacheDir is the durable artifact cache shared by every request
	// that does not name its own. Replicas may share one directory.
	CacheDir string
	// Inject arms service-level fault injection (handler-panic,
	// queue-stall, slow-worker). Region-level points are ignored here —
	// they belong in a request's Inject spec.
	Inject *faultinject.Plan
	// StallDelay is how long queue-stall and slow-worker injections
	// delay an armed job. Default 100ms; tests shrink it.
	StallDelay time.Duration
	// KeepJobs bounds how many finished jobs stay queryable. Default
	// 256.
	KeepJobs int
	// Log receives lifecycle events; nil discards them.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 16
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	if c.StallDelay <= 0 {
		c.StallDelay = 100 * time.Millisecond
	}
	if c.KeepJobs <= 0 {
		c.KeepJobs = 256
	}
	if c.Log == nil {
		c.Log = log.New(nowhere{}, "", 0)
	}
	return c
}

type nowhere struct{}

func (nowhere) Write(p []byte) (int, error) { return len(p), nil }

// Request is one pipeline render request: the harness.Options a
// janus-bench invocation would build from its flags, plus a deadline.
// The zero value renders the full suite with default engines.
type Request struct {
	// Fig/Table select one figure (6..12) or table (1..2); both zero
	// renders everything, exactly like janus-bench.
	Fig   int `json:"fig,omitempty"`
	Table int `json:"table,omitempty"`
	// Threads and Jobs mirror harness.Options (zero = defaults).
	Threads int `json:"threads,omitempty"`
	Jobs    int `json:"jobs,omitempty"`
	// SingleGoroutine / StaticPartition force the deterministic engine
	// variants; rendered bytes are identical either way.
	SingleGoroutine bool `json:"single_goroutine,omitempty"`
	StaticPartition bool `json:"static_partition,omitempty"`
	// Inject arms region-level fault injection inside this request's
	// renders (spec grammar of janus-bench -inject).
	Inject string `json:"inject,omitempty"`
	// CacheDir overrides the daemon's configured artifact cache for
	// this request. Empty inherits the daemon default.
	CacheDir string `json:"cache_dir,omitempty"`
	// DeadlineMS bounds queue wait + render; past it the job fails with
	// a typed deadline error. Zero inherits Config.DefaultDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// options translates the request into per-run harness options.
func (r Request) options(cacheDir string, rec *harness.RecoveryLog, onProgress func(harness.ProgressEvent)) (harness.Options, error) {
	o := harness.DefaultOptions()
	if r.Threads > 0 {
		o.Threads = r.Threads
	}
	if r.Jobs > 0 {
		o.Jobs = r.Jobs
	}
	o.SingleGoroutine = r.SingleGoroutine
	o.StaticPartition = r.StaticPartition
	o.CacheDir = cacheDir
	o.Recovery = rec
	o.OnProgress = onProgress
	if r.Inject != "" {
		plan, err := faultinject.ParsePlan(r.Inject)
		if err != nil {
			return o, err
		}
		o.Inject = plan
	}
	return o, nil
}

// Error kinds carried by Response.ErrKind. Every failed request is
// classified into exactly one of these, so clients can branch without
// parsing message strings.
const (
	KindBadRequest = "bad-request" // malformed request (400)
	KindShed       = "shed"        // load shed at admission (429)
	KindDraining   = "draining"    // daemon is draining (503)
	KindDeadline   = "deadline"    // per-request deadline expired (504)
	KindCanceled   = "canceled"    // cancelled (drain hard-stop) (499→500)
	KindPanic      = "panic"       // handler panic, contained (500)
	KindRender     = "render"      // the harness itself errored (500)
	KindNotFound   = "not-found"   // unknown job ID (404)
)

// Response is the terminal state of a job.
type Response struct {
	ID      string `json:"id"`
	State   string `json:"state"` // "queued", "running", "done", "failed"
	Output  string `json:"output,omitempty"`
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
	// Recoveries/Demoted surface the request's speculation-recovery
	// counters (nonzero under region-level injection).
	Recoveries int64 `json:"recoveries,omitempty"`
	Demoted    int64 `json:"demoted,omitempty"`
	ElapsedMS  int64 `json:"elapsed_ms"`
}

// Failed reports whether the response is a typed failure.
func (r *Response) Failed() bool { return r.ErrKind != "" }

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one admitted request.
type Job struct {
	ID  string
	Req Request

	mu     sync.Mutex
	cond   *sync.Cond
	state  string
	events []string
	res    *Response

	ctx      context.Context
	cancel   context.CancelFunc
	accepted time.Time

	// armed service faults (at most one; decided at admission).
	injPanic, injStall, injSlow bool
}

func newJob(id string, req Request, ctx context.Context, cancel context.CancelFunc) *Job {
	j := &Job{ID: id, Req: req, state: StateQueued, ctx: ctx, cancel: cancel, accepted: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.cond.Broadcast()
	j.mu.Unlock()
	j.event("state " + s)
}

// event appends one progress line and wakes streamers.
func (j *Job) event(line string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.events) < 16384 { // bound a pathological streamer
		j.events = append(j.events, line)
	}
	j.cond.Broadcast()
}

// finish publishes the terminal response exactly once.
func (j *Job) finish(res *Response) {
	res.ElapsedMS = time.Since(j.accepted).Milliseconds()
	res.ID = j.ID
	if res.Failed() {
		res.State = StateFailed
	} else {
		res.State = StateDone
	}
	j.cancel()
	j.mu.Lock()
	if j.res == nil {
		j.res = res
		j.state = res.State
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	j.event("state " + res.State)
}

// Wait blocks until the job finishes or ctx is done, returning the
// terminal response.
func (j *Job) Wait(ctx context.Context) (*Response, error) {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		})
		defer stop()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.res == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j.cond.Wait()
	}
	return j.res, nil
}

// Events streams progress lines to yield, starting from the first,
// until the job finishes, yield returns false, or ctx is done.
func (j *Job) Events(ctx context.Context, yield func(line string) bool) {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		})
		defer stop()
	}
	i := 0
	for {
		j.mu.Lock()
		for i >= len(j.events) && j.res == nil && ctx.Err() == nil {
			j.cond.Wait()
		}
		lines := j.events[i:]
		i = len(j.events)
		done := j.res != nil
		j.mu.Unlock()
		for _, l := range lines {
			if !yield(l) {
				return
			}
		}
		if done || ctx.Err() != nil {
			return
		}
	}
}

// Server is one daemon instance. Create with New, serve with Serve,
// stop with Drain (graceful) or Close (hard).
type Server struct {
	cfg  Config
	pool *pool.Pool

	injMu sync.Mutex
	inj   *faultinject.Injector

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // finish order, for bounded retention
	nextID   atomic.Int64

	draining atomic.Bool
	inflight sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	http    *http.Server
	cache   *artcache.Cache // daemon-default cache handle, for statusz
	started time.Time

	served atomic.Int64 // jobs admitted over the server's lifetime
	shed   atomic.Int64 // submissions rejected with KindShed
}

// New returns an idle daemon; Serve starts it on a listener.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		pool:       pool.New(cfg.Workers, cfg.QueueDepth),
		inj:        faultinject.NewInjector(cfg.Inject),
		jobs:       map[string]*Job{},
		baseCtx:    ctx,
		baseCancel: cancel,
		started:    time.Now(),
	}
	if cfg.CacheDir != "" {
		// Same handle the harness opens (OpenShared dedups per dir), so
		// statusz reports the counters requests actually increment.
		if c, err := artcache.OpenShared(cfg.CacheDir); err == nil {
			s.cache = c
		} else {
			cfg.Log.Printf("janusd: cache %s unavailable: %v", cfg.CacheDir, err)
		}
	}
	s.pool.OnPanic = func(v any, stack []byte) {
		// Backstop only: runJob contains its own panics into structured
		// responses. Reaching here means the containment glue itself
		// broke; log loudly but keep the worker.
		cfg.Log.Printf("janusd: pool backstop caught panic: %v\n%s", v, stack)
	}
	s.http = &http.Server{Handler: s.Handler()}
	return s
}

// typed submit errors (the HTTP/RPC layers map them to kinds).
var (
	errDraining = errors.New("janusd: draining, not accepting work")
)

// Submit admits req as a job, or fails fast: pool.ErrOverloaded when
// the admission bound is hit (shed), errDraining during drain, or a
// validation error.
func (s *Server) Submit(req Request) (*Job, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	// Validate the region-level inject spec before admission so a bad
	// request never occupies a pool slot.
	if req.Inject != "" {
		if _, err := faultinject.ParsePlan(req.Inject); err != nil {
			return nil, err
		}
	}
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	j := newJob(id, req, ctx, cancel)

	// Service-level injection: the Arm/Fire pair is serialised here so
	// the n-th admitted job is the armed one, deterministically.
	s.injMu.Lock()
	s.inj.Arm()
	j.injPanic = s.inj.Fire(faultinject.HandlerPanic)
	j.injStall = s.inj.Fire(faultinject.QueueStall)
	j.injSlow = s.inj.Fire(faultinject.SlowWorker)
	s.injMu.Unlock()

	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()

	s.inflight.Add(1)
	if err := s.pool.Submit(func() { s.runJob(j) }); err != nil {
		s.inflight.Done()
		cancel()
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		if errors.Is(err, pool.ErrOverloaded) {
			s.shed.Add(1)
		}
		if errors.Is(err, pool.ErrClosed) {
			return nil, errDraining
		}
		return nil, err
	}
	s.served.Add(1)
	j.event(fmt.Sprintf("accepted %s", id))
	s.cfg.Log.Printf("janusd: %s accepted (queued %d, running %d)", id, s.pool.Queued(), s.pool.Running())
	return j, nil
}

// Job returns a live or retained job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one admitted job on a pool worker. Every exit path
// publishes a terminal Response; a panic anywhere in the render is
// contained into a structured failure and the worker survives.
func (s *Server) runJob(j *Job) {
	defer s.inflight.Done()
	defer s.retire(j.ID)
	defer func() {
		if v := recover(); v != nil {
			s.cfg.Log.Printf("janusd: %s panicked: %v", j.ID, v)
			j.finish(&Response{
				Err:     fmt.Sprintf("panic: %v", v),
				ErrKind: KindPanic,
			})
		}
	}()

	if j.injStall {
		// The job wedges while still queued: deadline and shedding
		// behaviour under a stalled dispense path.
		j.event("fault: queue-stall")
		s.sleep(j.ctx, s.cfg.StallDelay)
	}
	if err := j.ctx.Err(); err != nil {
		j.finish(classify(fmt.Errorf("expired before start: %w", err), err))
		return
	}
	j.setState(StateRunning)
	if j.injSlow {
		j.event("fault: slow-worker")
		s.sleep(j.ctx, s.cfg.StallDelay)
		// Re-check after the stall: a job whose deadline passed (or that
		// was cancelled by a hard drain) must report the typed error, not
		// limp into a render under a dead context.
		if err := j.ctx.Err(); err != nil {
			j.finish(classify(fmt.Errorf("expired mid-execution: %w", err), err))
			return
		}
	}
	if j.injPanic {
		panic("faultinject: handler-panic")
	}

	rec := &harness.RecoveryLog{}
	cacheDir := j.Req.CacheDir
	if cacheDir == "" {
		cacheDir = s.cfg.CacheDir
	}
	opts, err := j.Req.options(cacheDir, rec, func(ev harness.ProgressEvent) {
		switch ev.State {
		case "row":
			j.event(fmt.Sprintf("rows %d", ev.Rows))
		case "failed":
			j.event(fmt.Sprintf("%s %s: %s", ev.Experiment, ev.State, firstLine(ev.Err)))
		default:
			j.event(fmt.Sprintf("%s %s", ev.Experiment, ev.State))
		}
	})
	if err != nil {
		j.finish(&Response{Err: err.Error(), ErrKind: KindBadRequest})
		return
	}

	out, err := harness.RenderAllContext(j.ctx, opts, j.Req.Fig, j.Req.Table)
	res := &Response{
		Output:     out,
		Recoveries: rec.ParRecoveries.Load(),
		Demoted:    rec.DemotedLoops.Load(),
	}
	if err != nil {
		c := classify(err, j.ctx.Err())
		c.Output, c.Recoveries, c.Demoted = res.Output, res.Recoveries, res.Demoted
		res = c
	}
	j.finish(res)
}

// retire bounds the finished-job registry.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.KeepJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// classify maps a render/lifecycle error to a typed failure response.
// ctxErr is the job context's error (nil if the context is live).
func classify(err, ctxErr error) *Response {
	kind := KindRender
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctxErr, context.DeadlineExceeded):
		kind = KindDeadline
	case errors.Is(err, context.Canceled) || errors.Is(ctxErr, context.Canceled):
		kind = KindCanceled
	case errors.Is(err, harness.ErrCanceled):
		kind = KindCanceled
	}
	return &Response{Err: firstLine(err.Error()), ErrKind: kind}
}

// sleep waits for d or ctx, whichever ends first.
func (s *Server) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Draining reports whether the daemon has stopped accepting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats is the statusz snapshot.
type Stats struct {
	PID      int   `json:"pid"`
	UptimeMS int64 `json:"uptime_ms"`
	Cap      int   `json:"cap"`
	Queued   int   `json:"queued"`
	Running  int   `json:"running"`
	Idle     int   `json:"idle"`
	Served   int64 `json:"served"`
	Shed     int64 `json:"shed"`
	Draining bool  `json:"draining"`
	// Cache counters from the daemon-default artifact cache (zero
	// values when the daemon runs cacheless). CacheBad counts entries
	// rejected by verification — the replica-sharing tests assert it
	// stays zero.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	CacheBad    int64 `json:"cache_bad,omitempty"`
}

// Snapshot returns current daemon stats.
func (s *Server) Snapshot() Stats {
	var cs artcache.Stats
	if s.cache != nil {
		cs = s.cache.Stats()
	}
	return Stats{
		CacheHits:   cs.Hits,
		CacheMisses: cs.Misses,
		CacheBad:    cs.BadEntries,
		PID:         os.Getpid(),
		UptimeMS:    time.Since(s.started).Milliseconds(),
		Cap:         s.pool.Cap(),
		Queued:      s.pool.Queued(),
		Running:     s.pool.Running(),
		Idle:        s.pool.Idle(),
		Served:      s.served.Load(),
		Shed:        s.shed.Load(),
		Draining:    s.draining.Load(),
	}
}

// Resize re-bounds the worker pool at runtime.
func (s *Server) Resize(workers int) { s.pool.Resize(workers) }

// Purge reclaims idle pool workers (hot-restart and administrative
// use); queued and running jobs are untouched.
func (s *Server) Purge() int { return s.pool.Purge() }

// firstLine trims err text to its first line (stacks stay in the log).
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
