package janusd

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Hot restart works by fd inheritance: the draining parent dups its
// listener fd into a fresh exec of itself, so the kernel-side accept
// queue never closes and no connection is dropped in the handoff. The
// child finds the fd through JANUSD_GRACEFUL_FD, rebuilds the listener
// with net.FileListener, and starts accepting while the parent drains
// its in-flight jobs and exits 0.

// gracefulFDEnv names the inherited listener fd in the child's env.
const gracefulFDEnv = "JANUSD_GRACEFUL_FD"

// Listen returns a TCP listener for addr, preferring one inherited
// from a hot-restarting parent. The second result reports whether the
// listener was inherited.
func Listen(addr string) (net.Listener, bool, error) {
	if v := os.Getenv(gracefulFDEnv); v != "" {
		fd, err := strconv.Atoi(v)
		if err != nil {
			return nil, false, fmt.Errorf("janusd: bad %s=%q: %w", gracefulFDEnv, v, err)
		}
		f := os.NewFile(uintptr(fd), "janusd-inherited-listener")
		if f == nil {
			return nil, false, fmt.Errorf("janusd: %s=%d is not an open fd", gracefulFDEnv, fd)
		}
		ln, err := net.FileListener(f)
		f.Close() // FileListener dups; drop the inherited copy
		if err != nil {
			return nil, false, fmt.Errorf("janusd: inherit listener fd %d: %w", fd, err)
		}
		return ln, true, nil
	}
	ln, err := net.Listen("tcp", addr)
	return ln, false, err
}

// HotRestart launches a replacement process (same binary, same args)
// that inherits ln's fd, and returns the child's pid. The caller
// should Drain and exit once the child is running; the child serves
// new connections from the moment it starts, so none are dropped.
func HotRestart(ln net.Listener) (int, error) {
	return hotRestart(ln, os.Args[1:], nil)
}

// hotRestart is the testable core: args and extraEnv let a test binary
// re-exec itself into a helper process instead of a real daemon.
func hotRestart(ln net.Listener, args []string, extraEnv []string) (int, error) {
	tl, ok := ln.(*net.TCPListener)
	if !ok {
		return 0, fmt.Errorf("janusd: hot restart needs a TCP listener, have %T", ln)
	}
	f, err := tl.File()
	if err != nil {
		return 0, fmt.Errorf("janusd: dup listener fd: %w", err)
	}
	defer f.Close() // child holds its own copy after Start

	cmd := exec.Command(os.Args[0], args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.ExtraFiles = []*os.File{f} // becomes fd 3 in the child
	env := make([]string, 0, len(os.Environ())+2)
	for _, kv := range os.Environ() {
		if !strings.HasPrefix(kv, gracefulFDEnv+"=") {
			env = append(env, kv)
		}
	}
	env = append(env, gracefulFDEnv+"=3")
	env = append(env, extraEnv...)
	cmd.Env = env
	if err := cmd.Start(); err != nil {
		return 0, fmt.Errorf("janusd: spawn replacement: %w", err)
	}
	return cmd.Process.Pid, nil
}
