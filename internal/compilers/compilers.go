// Package compilers models the source-level auto-parallelising
// compilers Janus is compared against in figure 11: a conservative
// "gcc -ftree-parallelize-loops" baseline and a more aggressive
// vectorising "icc -parallel" baseline.
//
// A source compiler sees the program before code generation, so it pays
// no dynamic-translation or dispatch overhead and its parallel code is
// baked in. It is, however, conservative: gcc-like parallelisation only
// transforms loops provably independent at compile time (our type A),
// while icc-like parallelisation additionally emits multi-versioned
// loops guarded by runtime checks (our type C with checks). Neither
// profiles, so both also parallelise unprofitable loops.
//
// Both baselines reuse the same analysis and execution substrate with a
// zero-translation cost model, which is exactly what "the compiler did
// it statically" means in this simulator.
package compilers

import (
	"janus/internal/analyzer"
	"janus/internal/dbm"
	"janus/internal/obj"
	"janus/internal/vm"
)

// Kind selects the modelled compiler.
type Kind int

const (
	// GCC models gcc -O3 -ftree-parallelize-loops=N -floop-parallelize-all.
	GCC Kind = iota
	// ICC models icc -O3 -parallel.
	ICC
)

func (k Kind) String() string {
	if k == GCC {
		return "gcc"
	}
	return "icc"
}

// staticCost is the cost model for statically-generated parallel code:
// no translation, no dispatch, leaner fork/join than a DBM (the
// compiler emits the threading calls directly).
func staticCost() dbm.CostModel {
	c := dbm.DefaultCost()
	c.TransPerInst = 0
	c.Dispatch = 0
	c.LoopInitBase = 2500
	c.LoopInitPerThread = 600
	c.LoopFinishBase = 1200
	c.LoopFinishPerThread = 250
	return c
}

// Result is a compiler-parallelisation outcome.
type Result struct {
	// Speedup is parallel performance normalised to the same binary's
	// native sequential execution.
	Speedup float64
	// LoopsParallelised counts the transformed loops.
	LoopsParallelised int
}

// Engine selects the DBM region execution for the modelled compiler's
// simulated run. Results are bit-identical under every setting;
// callers thread their engine choice through so a single-goroutine or
// static-partition A/B run really is one end to end.
type Engine struct {
	// HostParallel runs eligible parallel regions on host goroutines.
	HostParallel bool
	// WorkStealing uses the work-stealing partitioner inside
	// host-parallel regions.
	WorkStealing bool
}

// Parallelise runs the modelled compiler over exe with the given thread
// count and returns the achieved speedup.
func Parallelise(kind Kind, exe *obj.Executable, threads int, eng Engine, libs ...*obj.Library) (*Result, error) {
	prog, err := analyzer.Analyze(exe)
	if err != nil {
		return nil, err
	}
	// No profiling: compilers select on static heuristics alone.
	// gcc: static DOALL only. icc: also runtime-checked multi-versioned
	// loops (type C with constructible checks) — but never speculation,
	// so loops with library calls stay sequential.
	opts := analyzer.SelectOptions{UseChecks: kind == ICC}
	prog.SelectLoops(opts)
	if kind == ICC {
		// icc cannot speculate on opaque library code: deselect loops
		// that would need transactions.
		for _, li := range prog.Loops {
			if li.Selected && len(li.LibCalls) > 0 {
				li.Selected = false
			}
		}
	} else {
		// gcc's tree-parallelizer gives up on loops with any call.
		for _, li := range prog.Loops {
			if li.Selected && (len(li.LibCalls) > 0 || len(li.Loop.CallTargets) > 0) {
				li.Selected = false
			}
		}
	}
	sched, err := prog.GenParallelSchedule()
	if err != nil {
		return nil, err
	}

	native, err := vm.RunNative(exe, libs...)
	if err != nil {
		return nil, err
	}
	cfg := dbm.Config{
		Threads:          threads,
		Parallel:         true,
		HostParallel:     eng.HostParallel,
		WorkStealing:     eng.WorkStealing,
		MinIterPerThread: 4,
		MaxSteps:         vm.DefaultMaxSteps,
		Cost:             staticCost(),
	}
	ex, err := dbm.New(exe, sched, cfg, libs...)
	if err != nil {
		return nil, err
	}
	res, err := ex.Run()
	if err != nil {
		return nil, err
	}
	selected := 0
	for _, li := range prog.Loops {
		if li.Selected {
			selected++
		}
	}
	return &Result{
		Speedup:           float64(native.Cycles) / float64(res.Cycles),
		LoopsParallelised: selected,
	}, nil
}
