package compilers

import (
	"testing"

	"janus/internal/workloads"
)

func TestGccConservativeOnLibraryCalls(t *testing.T) {
	// bwaves' hot loop calls pow: gcc-like parallelisation must skip it.
	exe, libs, err := workloads.Build("410.bwaves", workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parallelise(GCC, exe, 8, Engine{HostParallel: true, WorkStealing: true}, libs...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 0 {
		t.Fatal("no speedup computed")
	}
	icc, err := Parallelise(ICC, exe, 8, Engine{HostParallel: true, WorkStealing: true}, libs...)
	if err != nil {
		t.Fatal(err)
	}
	// icc admits checked loops, so it parallelises at least as many.
	if icc.LoopsParallelised < res.LoopsParallelised {
		t.Fatalf("icc (%d loops) should cover >= gcc (%d)", icc.LoopsParallelised, res.LoopsParallelised)
	}
}

func TestCompilersBeatNothingOnStaticDOALL(t *testing.T) {
	exe, libs, err := workloads.Build("462.libquantum", workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parallelise(GCC, exe, 8, Engine{HostParallel: true, WorkStealing: true}, libs...)
	if err != nil {
		t.Fatal(err)
	}
	// libquantum is dominated by constant-base static DOALL loops: even
	// a conservative compiler parallelises it well.
	if res.Speedup < 3 {
		t.Fatalf("gcc on libquantum: %.2fx", res.Speedup)
	}
	if res.LoopsParallelised == 0 {
		t.Fatal("no loops parallelised")
	}
}

func TestKindStrings(t *testing.T) {
	if GCC.String() != "gcc" || ICC.String() != "icc" {
		t.Fatal("kind names")
	}
}
