// Package enginebench holds the shared fixtures for the execution-
// engine micro-benchmarks. Both the repository go-test benchmarks
// (internal/vm) and `janus-bench -engine-json` import them, so the
// committed BENCH_engine.json snapshot measures exactly the workload
// the in-tree benchmarks measure — the two cannot drift apart.
package enginebench

import (
	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
)

// BuildProgram assembles the reduction loop used by the dispatch
// benchmarks: sum = Σ a[i] over 256 elements, then write + exit.
func BuildProgram() (*obj.Executable, error) {
	const n = 256
	b := asm.NewBuilder("engine-bench")
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i) * 3
	}
	b.DataI64("a", vals)
	f := b.Func("main")
	loop := f.NewLabel()
	done := f.NewLabel()
	f.MoviData(guest.R8, "a", 0)
	f.Movi(guest.R1, 0)
	f.Movi(guest.R2, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 0})
	f.Op(guest.ADD, guest.R2, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Movi(guest.R0, guest.SysExit)
	f.Movi(guest.R1, 0)
	f.Syscall()
	return b.Build()
}

// InstMix is the arithmetic/memory/branch mix the ExecInst benchmarks
// dispatch over.
func InstMix() []guest.Inst {
	return []guest.Inst{
		guest.NewInstI(guest.MOVI, guest.R1, 7),
		guest.NewInstI(guest.ADDI, guest.R1, 3),
		guest.NewInst(guest.ADD, guest.R2, guest.R1),
		guest.NewInstM(guest.ST, guest.R1, guest.Mem{Base: guest.RegNone, Index: guest.RegNone, Scale: 1, Disp: 0x6000}),
		guest.NewInstM(guest.LD, guest.R2, guest.Mem{Base: guest.RegNone, Index: guest.RegNone, Scale: 1, Disp: 0x6000}),
		guest.NewInst(guest.CMP, guest.R1, guest.R2),
		guest.NewInstI(guest.JE, guest.RegNone, 0x400000),
	}
}
