package enginebench

import (
	"testing"

	"janus/internal/analyzer"
	"janus/internal/dbm"
	"janus/internal/stm"
	"janus/internal/vm"
	"janus/internal/workloads"
)

// Spec is one shared micro-benchmark: the same body backs the go-test
// benchmarks (via thin Benchmark* wrappers) and `janus-bench
// -engine-json`, so the committed snapshot and `go test -bench` cannot
// measure different workloads.
type Spec struct {
	Name string
	Fn   func(b *testing.B)
}

// Specs returns the engine micro-benchmark suite. Each call builds
// fresh fixtures, so specs are independent.
func Specs() []Spec {
	return []Spec{
		{"MemoryRead64", benchMemoryRead64},
		{"MemoryWrite64", benchMemoryWrite64},
		{"MemoryHashIncremental", benchMemoryHashIncremental},
		{"ExecInst", benchExecInst},
		{"RunNative", benchRunNative},
		{"STM", benchSTM},
		{"RegionRoundRobin", benchRegion(false, false)},
		{"RegionHostParallel", benchRegion(true, false)},
		{"RegionStealing", benchRegion(true, true)},
	}
}

// Spec returns the named spec (nil Fn if unknown).
func ByName(name string) Spec {
	for _, sp := range Specs() {
		if sp.Name == name {
			return sp
		}
	}
	return Spec{}
}

// benchMemoryRead64 measures the TLB-hit load path.
func benchMemoryRead64(b *testing.B) {
	m := vm.NewMemory()
	m.Write64(0x1000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Read64(0x1000 + uint64(i%512)*8)
	}
	_ = sink
}

// benchMemoryWrite64 measures the TLB-hit store path (including dirty
// marking).
func benchMemoryWrite64(b *testing.B) {
	m := vm.NewMemory()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write64(0x1000+uint64(i%512)*8, uint64(i))
	}
}

// benchMemoryHashIncremental measures a re-hash after touching one page
// out of 256: the dirty-page cache should make it near-constant in the
// resident set size.
func benchMemoryHashIncremental(b *testing.B) {
	m := vm.NewMemory()
	for p := uint64(0); p < 256; p++ {
		m.Write64(0x600000+p*4096, p+1)
	}
	m.Hash() // populate digests
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		m.Write64(0x600000, uint64(i)+1) // dirty one page
		sink += m.Hash()
	}
	_ = sink
}

// benchExecInst measures the zero-allocation dispatch loop over the
// shared arithmetic/memory/branch mix. Must report 0 B/op.
func benchExecInst(b *testing.B) {
	exe, err := BuildProgram()
	if err != nil {
		b.Fatal(err)
	}
	m, err := vm.NewMachine(exe)
	if err != nil {
		b.Fatal(err)
	}
	c := m.NewContext(0, 0x7fff_0000)
	insts := InstMix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := &insts[i%len(insts)]
		if _, err := vm.ExecInst(m, c, in, 0x400000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRunNative measures whole-program interpretation throughput
// (fetch + dispatch + memory) on the shared reduction loop.
func benchRunNative(b *testing.B) {
	exe, err := BuildProgram()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.RunNative(exe); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRegion measures a full statically-parallelised DBM run of the
// lbm train workload (dominated by DOALL parallel regions) under the
// selected region engine, so the snapshot tracks the round-robin,
// static host-parallel and work-stealing engines. Simulated results
// are bit-identical between all three; only host time differs.
func benchRegion(hostParallel, stealing bool) func(b *testing.B) {
	return func(b *testing.B) {
		exe, libs, err := workloads.Build("470.lbm", workloads.Train, workloads.O3)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := analyzer.Analyze(exe)
		if err != nil {
			b.Fatal(err)
		}
		prog.SelectLoops(analyzer.SelectOptions{})
		sched, err := prog.GenParallelSchedule()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := dbm.DefaultConfig(8)
			cfg.HostParallel = hostParallel
			cfg.WorkStealing = stealing
			ex, err := dbm.New(exe, sched, cfg, libs...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ex.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSTM measures a full transaction lifecycle at a typical Janus
// write-set size: begin (reused buffers), a read/write mix, validate
// and commit.
func benchSTM(b *testing.B) {
	mem := vm.NewMemory()
	for i := uint64(0); i < 64; i++ {
		mem.Write64(0x1000+i*8, i)
	}
	tx := stm.Begin(mem, stm.Checkpoint{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Reset(mem, stm.Checkpoint{})
		for j := uint64(0); j < 32; j++ {
			a := 0x1000 + j*8
			tx.Write64(a, tx.Read64(a)+1)
		}
		if !tx.Validate() {
			b.Fatal("validate failed")
		}
		tx.Commit()
	}
}
