// Package singleflight provides a bounded result cache with
// singleflight semantics: the first caller for a key runs the
// computation, concurrent callers for the same key block on that one
// run and share its result. The repository's deterministic stages
// (native baselines, training profiles, workload builds) are cached
// through it so concurrent experiments never duplicate work.
package singleflight

import (
	"errors"
	"sync"
)

// call is one in-flight or completed computation.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Flight is a bounded singleflight result cache. The zero value is
// ready to use; Limit == 0 means unbounded.
type Flight[K comparable, V any] struct {
	// Limit bounds the number of cached entries; when reached,
	// completed entries are evicted (in-flight ones are kept, so the
	// run-exactly-once guarantee survives eviction).
	Limit int

	mu    sync.Mutex
	calls map[K]*call[V]
}

// Do returns the cached result for k, joining an in-flight
// computation if one exists and running fn exactly once otherwise.
// Errors are cached like values: the cached computations are
// deterministic, so a retry would fail identically.
func (f *Flight[K, V]) Do(k K, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = map[K]*call[V]{}
	}
	if c, ok := f.calls[k]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	if f.Limit > 0 && len(f.calls) >= f.Limit {
		for k2, c2 := range f.calls {
			select {
			case <-c2.done:
				delete(f.calls, k2)
			default: // in flight: keep, so concurrent callers still join it
			}
		}
	}
	c := &call[V]{done: make(chan struct{})}
	f.calls[k] = c
	f.mu.Unlock()
	completed := false
	defer func() {
		if completed {
			return
		}
		// fn panicked: drop the poisoned entry and release waiters with
		// an error instead of leaving them blocked forever on done. The
		// panic itself keeps propagating to the running caller.
		f.mu.Lock()
		delete(f.calls, k)
		f.mu.Unlock()
		c.err = errPanicked
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
	close(c.done)
	return c.val, c.err
}

// Reset drops every completed entry, forcing subsequent Do calls to
// recompute. In-flight computations are kept so concurrent callers
// still join them and the run-exactly-once guarantee holds. Tests use
// this to fall through the in-memory tier and exercise the durable
// artifact cache beneath it.
func (f *Flight[K, V]) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, c := range f.calls {
		select {
		case <-c.done:
			delete(f.calls, k)
		default: // in flight: keep
		}
	}
}

// errPanicked is handed to waiters whose shared computation panicked.
var errPanicked = errors.New("singleflight: shared computation panicked")
