package singleflight

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestResetRacesInFlightCallers hammers Do from many goroutines while
// another goroutine calls Reset in a tight loop. Two invariants must
// hold through the churn:
//
//  1. every caller gets the right value — a Reset landing between
//     claim and completion must never hand a waiter a zero value or
//     wedge it on an orphaned done channel;
//  2. runs of the same key never overlap — Reset may only drop
//     completed entries, so while one fn runs, every concurrent caller
//     for that key joins it instead of starting a second run.
//
// Run under -race this also shakes out unsynchronised map access
// between Do's claim path and Reset's sweep.
func TestResetRacesInFlightCallers(t *testing.T) {
	var f Flight[int, int]
	const keys = 4
	var running [keys]atomic.Int32
	var overlaps atomic.Int32
	fn := func(k int) func() (int, error) {
		return func() (int, error) {
			if running[k].Add(1) > 1 {
				overlaps.Add(1)
			}
			time.Sleep(50 * time.Microsecond) // widen the in-flight window
			running[k].Add(-1)
			return k * 7, nil
		}
	}

	stop := make(chan struct{})
	var resetter sync.WaitGroup
	resetter.Add(1)
	go func() {
		defer resetter.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.Reset()
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := (g + i) % keys
				v, err := f.Do(k, fn(k))
				if err != nil {
					t.Errorf("Do(%d): %v", k, err)
					return
				}
				if v != k*7 {
					t.Errorf("Do(%d) = %d, want %d — Reset corrupted a shared result", k, v, k*7)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	resetter.Wait()

	if n := overlaps.Load(); n > 0 {
		t.Fatalf("%d overlapping runs of one key — Reset dropped an in-flight entry", n)
	}
}
