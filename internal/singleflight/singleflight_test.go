package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesResult(t *testing.T) {
	var f Flight[string, int]
	runs := 0
	for i := 0; i < 3; i++ {
		v, err := f.Do("k", func() (int, error) { runs++; return 42, nil })
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
	}
	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1", runs)
	}
}

func TestDoCachesError(t *testing.T) {
	var f Flight[string, int]
	boom := errors.New("boom")
	runs := 0
	for i := 0; i < 2; i++ {
		if _, err := f.Do("k", func() (int, error) { runs++; return 0, boom }); err != boom {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if runs != 1 {
		t.Fatalf("erroring fn ran %d times, want 1 (errors are deterministic here)", runs)
	}
}

// TestConcurrentCallersJoinOneRun blocks the first computation until
// every other caller is waiting on it, then checks that exactly one run
// happened and all callers saw its result.
func TestConcurrentCallersJoinOneRun(t *testing.T) {
	var f Flight[string, int]
	const callers = 8
	var runs atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := f.Do("k", func() (int, error) {
				runs.Add(1)
				<-release
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the single in-flight run is registered, then let every
	// other caller pile onto it before releasing.
	for {
		f.mu.Lock()
		n := len(f.calls)
		f.mu.Unlock()
		if n == 1 {
			break
		}
	}
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
}

// TestEvictionKeepsInFlight fills a Limit-1 flight with a completed
// entry and an in-flight one, triggers eviction with a third key, and
// checks the in-flight entry still dedups joiners.
func TestEvictionKeepsInFlight(t *testing.T) {
	f := Flight[string, int]{Limit: 1}
	if _, err := f.Do("done", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Do("inflight", func() (int, error) {
			runs.Add(1)
			close(started)
			<-release
			return 2, nil
		})
	}()
	<-started
	// Over the limit: this must evict "done" but keep "inflight".
	if _, err := f.Do("evictor", func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	// A joiner for the in-flight key must not start a second run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := f.Do("inflight", func() (int, error) {
			runs.Add(1)
			return -1, nil
		})
		if err != nil || v != 2 {
			t.Errorf("joiner got %d, %v", v, err)
		}
	}()
	f.mu.Lock()
	if _, kept := f.calls["inflight"]; !kept {
		f.mu.Unlock()
		t.Fatal("eviction dropped the in-flight entry")
	}
	f.mu.Unlock()
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("in-flight fn ran %d times, want 1", got)
	}
	// The completed entry was evicted: a re-Do recomputes.
	v, err := f.Do("done", func() (int, error) { return 10, nil })
	if err != nil || v != 10 {
		t.Fatalf("re-Do after eviction = %d, %v", v, err)
	}
}

// TestResetDropsCompletedKeepsInFlight pins the Reset contract:
// completed entries recompute afterwards, but an in-flight run is kept
// so joiners still dedup onto it.
func TestResetDropsCompletedKeepsInFlight(t *testing.T) {
	var f Flight[string, int]
	if _, err := f.Do("done", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Do("inflight", func() (int, error) {
			runs.Add(1)
			close(started)
			<-release
			return 2, nil
		})
	}()
	<-started
	f.Reset()
	f.mu.Lock()
	_, droppedDone := f.calls["done"]
	_, keptInflight := f.calls["inflight"]
	f.mu.Unlock()
	if droppedDone {
		t.Fatal("Reset kept a completed entry")
	}
	if !keptInflight {
		t.Fatal("Reset dropped an in-flight entry")
	}
	// A joiner for the in-flight key must not start a second run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := f.Do("inflight", func() (int, error) {
			runs.Add(1)
			return -1, nil
		})
		if err != nil || v != 2 {
			t.Errorf("joiner got %d, %v", v, err)
		}
	}()
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("in-flight fn ran %d times, want 1", got)
	}
	// The completed entry really recomputes.
	runsDone := 0
	if v, err := f.Do("done", func() (int, error) { runsDone++; return 11, nil }); err != nil || v != 11 {
		t.Fatalf("re-Do after Reset = %d, %v", v, err)
	}
	if runsDone != 1 {
		t.Fatal("completed entry was not recomputed after Reset")
	}
}

// TestPanicReleasesWaiters pins the panic contract: the panicking
// caller sees the panic, a concurrent caller either joins the doomed
// run (and gets an error) or arrives after cleanup (and recomputes) —
// but never blocks forever — and the key is reusable afterwards.
func TestPanicReleasesWaiters(t *testing.T) {
	var f Flight[string, int]
	started := make(chan struct{})
	var waiterVal int
	var waiterErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-started
		waiterVal, waiterErr = f.Do("k", func() (int, error) { return 5, nil })
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the running caller")
			}
		}()
		f.Do("k", func() (int, error) {
			close(started)
			panic("boom")
		})
	}()
	wg.Wait() // must not deadlock: done is closed (or entry dropped) on panic
	if waiterErr == nil && waiterVal != 5 {
		t.Fatalf("waiter got (%d, nil): neither the panic error nor its own recomputation", waiterVal)
	}
	// The poisoned entry was dropped: the key works again, returning
	// either the waiter's cached recomputation (5) or a fresh run (9).
	v, err := f.Do("k", func() (int, error) { return 9, nil })
	if err != nil || (v != 9 && v != 5) {
		t.Fatalf("re-Do after panic = %d, %v", v, err)
	}
}
