package guest

// Fuzz tests pinning the decoder contract the rest of the system leans
// on: Decode must never panic whatever bytes it is handed (the static
// analyser feeds it raw, possibly-data bytes to detect embedded data),
// and the fixed-width encoding must round-trip — these are the
// properties that keep a rewrite schedule and its binary in agreement.
//
// CI runs each fuzz target as a short smoke
// (`go test -fuzz=FuzzX -fuzztime=10s`); locally the seed corpus runs
// as part of the ordinary test suite.

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the decoder: it must return a
// value or an error, never panic, and anything it accepts must
// re-encode into bytes it decodes to the same instruction
// (normalisation is idempotent).
func FuzzDecode(f *testing.F) {
	// Seed with structure: valid instructions, truncated buffers, an
	// undefined opcode, junk in the reserved bytes.
	for _, in := range []Inst{
		NewInst(ADD, R1, R2),
		NewInstI(MOVI, R3, -1),
		NewInstM(LD, R4, Mem{Base: R8, Index: R1, Scale: 8, Disp: 0x6000}),
		NewInstM(ST, R5, Mem{Base: RegNone, Index: RegNone, Scale: 1, Disp: -8}),
	} {
		b := Encode(in)
		f.Add(b[:])
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, InstSize))
	junk := Encode(NewInst(ADD, R0, R0))
	junk[6], junk[7] = 0xaa, 0x55 // reserved bytes
	f.Add(junk[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data)
		if err != nil {
			return
		}
		if len(data) < InstSize {
			t.Fatalf("decoded a %d-byte buffer (need %d)", len(data), InstSize)
		}
		if !in.Op.Valid() {
			t.Fatalf("decoder accepted undefined opcode %#x", byte(in.Op))
		}
		if in.M.Scale == 0 {
			t.Fatalf("decoder produced unnormalised zero scale: %+v", in)
		}
		// Decode → Encode → Decode must be a fixed point.
		re := Encode(in)
		again, err := Decode(re[:])
		if err != nil {
			t.Fatalf("re-encoded instruction does not decode: %v (%+v)", err, in)
		}
		if again != in {
			t.Fatalf("decode/encode not a fixed point:\nfirst  %+v\nsecond %+v", in, again)
		}
	})
}

// FuzzEncodeRoundTrip builds instructions from arbitrary field values:
// every valid-opcode instruction must survive Encode→Decode with only
// the documented normalisation (zero scale becomes 1), and every
// invalid opcode must be rejected.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(2), uint8(3), uint8(4), uint8(8), int64(64), int64(-1))
	f.Add(uint8(0xff), uint8(0), uint8(0), uint8(0xff), uint8(0xff), uint8(0), int64(0), int64(0))
	f.Add(uint8(31), uint8(16), uint8(15), uint8(7), uint8(1), uint8(1), int64(1)<<62, int64(-1)<<62)

	f.Fuzz(func(t *testing.T, op, rd, rs, base, index, scale uint8, disp, imm int64) {
		in := Inst{
			Op: Op(op), Rd: Reg(rd), Rs: Reg(rs), Imm: imm,
			M: Mem{Base: Reg(base), Index: Reg(index), Scale: scale, Disp: disp},
		}
		b := Encode(in)
		got, err := Decode(b[:])
		if !Op(op).Valid() {
			if err == nil {
				t.Fatalf("undefined opcode %#x decoded as %+v", op, got)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid instruction failed to decode: %v (%+v)", err, in)
		}
		want := in
		if want.M.Scale == 0 {
			want.M.Scale = 1
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", want, got)
		}
	})
}

// FuzzDecodeAll checks the whole-image decoder: arbitrary images never
// panic, and accepted images re-encode byte-identically after
// normalisation.
func FuzzDecodeAll(f *testing.F) {
	img := EncodeAll([]Inst{NewInst(ADD, R1, R2), NewInstI(JMP, RegNone, 0x400000)})
	f.Add(img)
	f.Add(img[:InstSize-1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		insts, err := DecodeAll(data)
		if err != nil {
			return
		}
		if len(data)%InstSize != 0 {
			t.Fatalf("decoded a ragged image of %d bytes", len(data))
		}
		re := EncodeAll(insts)
		if len(re) != len(data) {
			t.Fatalf("re-encoded image is %d bytes, input was %d", len(re), len(data))
		}
		again, err := DecodeAll(re)
		if err != nil {
			t.Fatalf("re-encoded image does not decode: %v", err)
		}
		for i := range insts {
			if again[i] != insts[i] {
				t.Fatalf("instruction %d not a fixed point: %+v vs %+v", i, insts[i], again[i])
			}
		}
	})
}
