package guest

import (
	"fmt"
	"strings"
)

// Mem is an x86-style memory operand: address = Base + Index*Scale + Disp.
// Base and Index may be RegNone. Scale is 1, 2, 4 or 8.
type Mem struct {
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int64
}

// NoMem is the absent memory operand.
var NoMem = Mem{Base: RegNone, Index: RegNone, Scale: 1}

// IsZero reports whether the operand is entirely absent.
func (m Mem) IsZero() bool {
	return m.Base == RegNone && m.Index == RegNone && m.Disp == 0
}

// IsAbsolute reports whether the operand has no register components and
// therefore names a fixed address (Disp).
func (m Mem) IsAbsolute() bool {
	return m.Base == RegNone && m.Index == RegNone
}

// String renders the operand in assembler syntax.
func (m Mem) String() string {
	var b strings.Builder
	b.WriteByte('[')
	wrote := false
	if m.Base != RegNone {
		b.WriteString(m.Base.String())
		wrote = true
	}
	if m.Index != RegNone {
		if wrote {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s*%d", m.Index, m.Scale)
		wrote = true
	}
	if m.Disp != 0 || !wrote {
		if wrote && m.Disp >= 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%#x", m.Disp)
	}
	b.WriteByte(']')
	return b.String()
}

// Inst is a single decoded guest instruction. The Rd/Rs fields double as
// vector register numbers for vector opcodes.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs  Reg
	Imm int64
	M   Mem
}

// NewInst returns a register-register instruction.
func NewInst(op Op, rd, rs Reg) Inst { return Inst{Op: op, Rd: rd, Rs: rs, M: NoMem} }

// NewInstI returns an instruction with an immediate operand.
func NewInstI(op Op, rd Reg, imm int64) Inst {
	return Inst{Op: op, Rd: rd, Imm: imm, M: NoMem}
}

// NewInstM returns an instruction with a memory operand.
func NewInstM(op Op, r Reg, m Mem) Inst {
	in := Inst{Op: op, Rd: RegNone, Rs: RegNone, M: m}
	if op.HasRd() {
		in.Rd = r
	}
	if op.HasRs() {
		in.Rs = r
	}
	return in
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	info := in.Op.String()
	var parts []string
	if in.Op.HasRd() {
		parts = append(parts, in.Rd.String())
	}
	if in.Op.HasRs() {
		parts = append(parts, in.Rs.String())
	}
	if in.Op.HasMem() {
		parts = append(parts, in.M.String())
	}
	if in.Op.HasImm() {
		if in.Op.IsBranch() || in.Op == CALL {
			parts = append(parts, fmt.Sprintf("%#x", uint64(in.Imm)))
		} else {
			parts = append(parts, fmt.Sprintf("%d", in.Imm))
		}
	}
	if len(parts) == 0 {
		return info
	}
	return info + " " + strings.Join(parts, ", ")
}

// Loc identifies a storage location read or written by an instruction,
// for def-use analysis. Exactly one of the fields is meaningful,
// selected by Kind.
type Loc struct {
	Kind LocKind
	Reg  Reg // for LocReg / LocVReg
}

// LocKind discriminates Loc.
type LocKind uint8

const (
	LocReg   LocKind = iota // general-purpose register Loc.Reg
	LocVReg                 // vector register Loc.Reg
	LocFlags                // the flags register
	LocMem                  // a memory cell (address not captured here)
)

func (l Loc) String() string {
	switch l.Kind {
	case LocReg:
		return l.Reg.String()
	case LocVReg:
		return fmt.Sprintf("v%d", uint8(l.Reg))
	case LocFlags:
		return "flags"
	case LocMem:
		return "mem"
	}
	return "?"
}

// regLoc and related helpers build Locs.
func regLoc(r Reg) Loc  { return Loc{Kind: LocReg, Reg: r} }
func vregLoc(r Reg) Loc { return Loc{Kind: LocVReg, Reg: r} }

// callArgRegs lists the calling convention's argument registers R1..R5.
func callArgRegs() []Loc {
	out := make([]Loc, 0, 5)
	for r := R1; r <= R5; r++ {
		out = append(out, regLoc(r))
	}
	return out
}

// Uses returns the locations read by the instruction, in no particular
// order. Memory reads are reported as a single LocMem entry; the precise
// address expression is handled by the symbolic analysis.
func (in Inst) Uses() []Loc {
	var out []Loc
	op := in.Op
	// ALU two-operand forms read their destination too.
	switch op {
	case ADD, SUB, IMUL, IDIV, AND, OR, XOR, SHL, SHR,
		FADD, FSUB, FMUL, FDIV,
		ADDI, SUBI, IMULI, ANDI, ORI, XORI, SHLI, SHRI,
		INC, DEC, NEG, CMP, CMPI, TEST, FCMP:
		if op.IsVector() {
			out = append(out, vregLoc(in.Rd))
		} else if in.Rd.Valid() || in.Rd == RegTLS {
			out = append(out, regLoc(in.Rd))
		}
	case VADD, VMUL:
		out = append(out, vregLoc(in.Rd))
	case CMOVE, CMOVNE:
		// Conditionally overwrites rd; conservatively reads it.
		out = append(out, regLoc(in.Rd))
	case JMPI:
		out = append(out, regLoc(in.Rd))
	case CALLI:
		out = append(out, regLoc(in.Rd))
		out = append(out, callArgRegs()...)
	case SYSCALL:
		out = append(out, regLoc(R0), regLoc(R1), regLoc(R2))
	case PUSH:
		out = append(out, regLoc(SP))
	case POP, RET:
		out = append(out, regLoc(SP))
	case CALL:
		// Calls read the argument registers of the convention. SP is
		// deliberately absent: a call returns with SP restored, so it
		// is SP-neutral for intra-procedural analysis.
		out = append(out, callArgRegs()...)
	}
	if op.HasRs() {
		if op.IsVector() && (op == VADD || op == VMUL || op == VST) {
			out = append(out, vregLoc(in.Rs))
		} else if in.Rs.Valid() || in.Rs == RegTLS {
			out = append(out, regLoc(in.Rs))
		}
	}
	if op.HasMem() {
		if in.M.Base != RegNone {
			out = append(out, regLoc(in.M.Base))
		}
		if in.M.Index != RegNone {
			out = append(out, regLoc(in.M.Index))
		}
		if op == LD || op == VLD {
			out = append(out, Loc{Kind: LocMem})
		}
	}
	if op == POP || op == RET {
		out = append(out, Loc{Kind: LocMem})
	}
	if op.ReadsFlags() {
		out = append(out, Loc{Kind: LocFlags})
	}
	return out
}

// Defs returns the locations written by the instruction.
func (in Inst) Defs() []Loc {
	var out []Loc
	op := in.Op
	switch op {
	case ST, STI, VST, CALL, CALLI, PUSH:
		out = append(out, Loc{Kind: LocMem})
	}
	if op.HasRd() {
		switch op {
		case CMP, CMPI, TEST, FCMP, JMPI:
			// Rd is a pure source for these.
		case VLD, VADD, VMUL, VBCST:
			out = append(out, vregLoc(in.Rd))
		default:
			if in.Rd.Valid() || in.Rd == RegTLS {
				out = append(out, regLoc(in.Rd))
			}
		}
	}
	switch op {
	case PUSH, POP, RET:
		out = append(out, regLoc(SP))
	case CALL, CALLI:
		// Calls clobber the caller-saved registers R0..R5 (return value
		// and argument registers); SP is balanced across the call.
		for r := R0; r <= R5; r++ {
			out = append(out, regLoc(r))
		}
	case SYSCALL:
		out = append(out, regLoc(R0))
	}
	if op.WritesFlags() {
		out = append(out, Loc{Kind: LocFlags})
	}
	return out
}

// ReadsMem reports whether the instruction loads from memory.
func (in Inst) ReadsMem() bool {
	switch in.Op {
	case LD, VLD, POP, RET:
		return true
	}
	return false
}

// WritesMem reports whether the instruction stores to memory.
func (in Inst) WritesMem() bool {
	switch in.Op {
	case ST, STI, VST, PUSH, CALL, CALLI:
		return true
	}
	return false
}

// AccessWidth returns the number of bytes read or written by a memory
// access instruction (0 for non-memory instructions).
func (in Inst) AccessWidth() int64 {
	switch in.Op {
	case LD, ST, STI, PUSH, POP:
		return 8
	case VLD, VST:
		return 8 * VLEN
	}
	return 0
}
