// Package guest defines the synthetic 64-bit guest ISA that Janus-Go
// analyses, transforms and executes.
//
// The ISA is deliberately modelled on x86-64: sixteen 64-bit general
// purpose registers, a flags register set by CMP/TEST, x86-style memory
// operands (base + index*scale + displacement), call/return with an
// explicit stack pointer, and a packed vector extension. These are the
// features that make binary-level analysis hard in the paper (complex
// addressing, flag-carried control flow, spills, unrolled and vectorised
// loops), so the same analysis obstacles arise here.
//
// Instructions have a fixed-width encoding (see encode.go) so that an
// executable is a flat byte image that must be decoded before analysis,
// exactly as a real disassembler-based static analyser would.
package guest

import "fmt"

// Reg names a general-purpose register. R15 is the stack pointer by
// convention (SP). RegTLS is a pseudo-register holding the thread-local
// storage base; it is only ever written by DBM-generated code, never by
// guest programs. RegNone marks an absent base/index in a memory operand.
type Reg uint8

const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// SP is the conventional stack pointer.
	SP = R15

	// RegTLS is the pseudo-register holding the thread-local storage
	// base address. Guest programs must not reference it; only code
	// emitted by rewrite-rule handlers does.
	RegTLS Reg = 16

	// NumGPR is the number of architectural general-purpose registers.
	NumGPR = 16

	// NumVReg is the number of packed vector registers.
	NumVReg = 16

	// RegNone marks an absent register in a memory operand.
	RegNone Reg = 0xFF
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "none"
	case r == RegTLS:
		return "tls"
	case r == SP:
		return "sp"
	case r < NumGPR:
		return fmt.Sprintf("r%d", uint8(r))
	default:
		return fmt.Sprintf("r?%d", uint8(r))
	}
}

// Valid reports whether r names an architectural GPR (including SP).
func (r Reg) Valid() bool { return r < NumGPR }

// Op is an opcode of the guest ISA.
type Op uint8

// Opcodes. The comment after each gives the operand form:
// rd = destination register, rs = source register, imm = 64-bit
// immediate, mem = memory operand, vd/vs = vector registers.
const (
	NOP  Op = iota // no operation
	HALT           // stop the machine

	// Data movement.
	MOV  // rd <- rs
	MOVI // rd <- imm
	LD   // rd <- [mem] (8 bytes)
	ST   // [mem] <- rs (8 bytes)
	STI  // [mem] <- imm (8 bytes)
	LEA  // rd <- effective address of mem
	PUSH // [--sp] <- rs
	POP  // rd <- [sp++]

	// Integer ALU, register form: rd <- rd op rs.
	ADD
	SUB
	IMUL
	IDIV // rd <- rd / rs (also writes remainder nowhere; trap on 0)
	AND
	OR
	XOR
	SHL
	SHR

	// Integer ALU, immediate form: rd <- rd op imm.
	ADDI
	SUBI
	IMULI
	ANDI
	ORI
	XORI
	SHLI
	SHRI

	// Unary.
	INC // rd <- rd + 1
	DEC // rd <- rd - 1
	NEG // rd <- -rd

	// Floating point (registers hold float64 bit patterns).
	FADD // rd <- rd +. rs
	FSUB
	FMUL
	FDIV
	FSQRT // rd <- sqrt(rs)
	FNEG  // rd <- -rs
	CVTIF // rd <- float64(int64(rs))
	CVTFI // rd <- int64(float64(rs))

	// Flags and conditional data movement.
	CMP   // flags <- compare(rd, rs) signed
	CMPI  // flags <- compare(rd, imm) signed
	FCMP  // flags <- compare float64(rd), float64(rs)
	TEST  // flags <- rd & rs
	CMOVE // rd <- rs if ZF
	CMOVNE

	// Control flow. Targets are absolute code addresses in imm.
	JMP  // unconditional
	JMPI // indirect: target in rd
	JE
	JNE
	JL
	JLE
	JG
	JGE
	CALL  // push return addr; jump imm
	CALLI // push return addr; jump rd
	RET   // pop return addr; jump

	// System interaction; the call number is in R0, args in R1..R5.
	SYSCALL

	// Packed vector extension: VLEN float64 lanes per register.
	VLD   // vd <- [mem..mem+8*VLEN)
	VST   // [mem..) <- vs
	VADD  // vd <- vd +. vs lanewise
	VMUL  // vd <- vd *. vs lanewise
	VBCST // vd <- broadcast float64 in rs

	opMax
)

// VLEN is the number of float64 lanes in a vector register (AVX-like
// 256-bit width).
const VLEN = 4

// opInfo is static metadata about an opcode.
type opInfo struct {
	name string
	// operand shape flags
	hasRd, hasRs, hasImm, hasMem, vector bool
	// cycles is the base latency charged by the cost model.
	cycles int64
}

var opTable = [opMax]opInfo{
	NOP:     {name: "nop", cycles: 1},
	HALT:    {name: "halt", cycles: 1},
	MOV:     {name: "mov", hasRd: true, hasRs: true, cycles: 1},
	MOVI:    {name: "movi", hasRd: true, hasImm: true, cycles: 1},
	LD:      {name: "ld", hasRd: true, hasMem: true, cycles: 4},
	ST:      {name: "st", hasRs: true, hasMem: true, cycles: 1},
	STI:     {name: "sti", hasImm: true, hasMem: true, cycles: 1},
	LEA:     {name: "lea", hasRd: true, hasMem: true, cycles: 1},
	PUSH:    {name: "push", hasRs: true, cycles: 2},
	POP:     {name: "pop", hasRd: true, cycles: 2},
	ADD:     {name: "add", hasRd: true, hasRs: true, cycles: 1},
	SUB:     {name: "sub", hasRd: true, hasRs: true, cycles: 1},
	IMUL:    {name: "imul", hasRd: true, hasRs: true, cycles: 3},
	IDIV:    {name: "idiv", hasRd: true, hasRs: true, cycles: 20},
	AND:     {name: "and", hasRd: true, hasRs: true, cycles: 1},
	OR:      {name: "or", hasRd: true, hasRs: true, cycles: 1},
	XOR:     {name: "xor", hasRd: true, hasRs: true, cycles: 1},
	SHL:     {name: "shl", hasRd: true, hasRs: true, cycles: 1},
	SHR:     {name: "shr", hasRd: true, hasRs: true, cycles: 1},
	ADDI:    {name: "addi", hasRd: true, hasImm: true, cycles: 1},
	SUBI:    {name: "subi", hasRd: true, hasImm: true, cycles: 1},
	IMULI:   {name: "imuli", hasRd: true, hasImm: true, cycles: 3},
	ANDI:    {name: "andi", hasRd: true, hasImm: true, cycles: 1},
	ORI:     {name: "ori", hasRd: true, hasImm: true, cycles: 1},
	XORI:    {name: "xori", hasRd: true, hasImm: true, cycles: 1},
	SHLI:    {name: "shli", hasRd: true, hasImm: true, cycles: 1},
	SHRI:    {name: "shri", hasRd: true, hasImm: true, cycles: 1},
	INC:     {name: "inc", hasRd: true, cycles: 1},
	DEC:     {name: "dec", hasRd: true, cycles: 1},
	NEG:     {name: "neg", hasRd: true, cycles: 1},
	FADD:    {name: "fadd", hasRd: true, hasRs: true, cycles: 4},
	FSUB:    {name: "fsub", hasRd: true, hasRs: true, cycles: 4},
	FMUL:    {name: "fmul", hasRd: true, hasRs: true, cycles: 5},
	FDIV:    {name: "fdiv", hasRd: true, hasRs: true, cycles: 14},
	FSQRT:   {name: "fsqrt", hasRd: true, hasRs: true, cycles: 16},
	FNEG:    {name: "fneg", hasRd: true, hasRs: true, cycles: 1},
	CVTIF:   {name: "cvtif", hasRd: true, hasRs: true, cycles: 4},
	CVTFI:   {name: "cvtfi", hasRd: true, hasRs: true, cycles: 4},
	CMP:     {name: "cmp", hasRd: true, hasRs: true, cycles: 1},
	CMPI:    {name: "cmpi", hasRd: true, hasImm: true, cycles: 1},
	FCMP:    {name: "fcmp", hasRd: true, hasRs: true, cycles: 4},
	TEST:    {name: "test", hasRd: true, hasRs: true, cycles: 1},
	CMOVE:   {name: "cmove", hasRd: true, hasRs: true, cycles: 1},
	CMOVNE:  {name: "cmovne", hasRd: true, hasRs: true, cycles: 1},
	JMP:     {name: "jmp", hasImm: true, cycles: 1},
	JMPI:    {name: "jmpi", hasRd: true, cycles: 2},
	JE:      {name: "je", hasImm: true, cycles: 1},
	JNE:     {name: "jne", hasImm: true, cycles: 1},
	JL:      {name: "jl", hasImm: true, cycles: 1},
	JLE:     {name: "jle", hasImm: true, cycles: 1},
	JG:      {name: "jg", hasImm: true, cycles: 1},
	JGE:     {name: "jge", hasImm: true, cycles: 1},
	CALL:    {name: "call", hasImm: true, cycles: 3},
	CALLI:   {name: "calli", hasRd: true, cycles: 4},
	RET:     {name: "ret", cycles: 3},
	SYSCALL: {name: "syscall", cycles: 50},
	VLD:     {name: "vld", hasRd: true, hasMem: true, vector: true, cycles: 5},
	VST:     {name: "vst", hasRs: true, hasMem: true, vector: true, cycles: 2},
	VADD:    {name: "vadd", hasRd: true, hasRs: true, vector: true, cycles: 4},
	VMUL:    {name: "vmul", hasRd: true, hasRs: true, vector: true, cycles: 5},
	VBCST:   {name: "vbcst", hasRd: true, hasRs: true, vector: true, cycles: 2},
}

// String returns the assembler mnemonic of the opcode.
func (op Op) String() string {
	if op < opMax && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// opValid caches which table entries are defined, so validity checks on
// the per-instruction dispatch path are a single array load.
var opValid = func() (v [opMax]bool) {
	for i := range opTable {
		v[i] = opTable[i].name != ""
	}
	return
}()

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opMax && opValid[op] }

// opCycles flattens the cost-model latencies (with the undefined-opcode
// fallback baked in) into one array, so the per-instruction charge is a
// single load.
var opCycles = func() (c [opMax]int64) {
	for i := range opTable {
		c[i] = opTable[i].cycles
		if opTable[i].name == "" {
			c[i] = 1
		}
	}
	return
}()

// Cycles returns the base cost-model latency of the opcode.
func (op Op) Cycles() int64 {
	if op < opMax {
		return opCycles[op]
	}
	return 1
}

// HasRd reports whether the opcode uses the Rd field.
func (op Op) HasRd() bool { return op.Valid() && opTable[op].hasRd }

// HasRs reports whether the opcode uses the Rs field.
func (op Op) HasRs() bool { return op.Valid() && opTable[op].hasRs }

// HasImm reports whether the opcode uses the immediate field.
func (op Op) HasImm() bool { return op.Valid() && opTable[op].hasImm }

// HasMem reports whether the opcode has a memory operand.
func (op Op) HasMem() bool { return op.Valid() && opTable[op].hasMem }

// IsVector reports whether the opcode operates on vector registers.
func (op Op) IsVector() bool { return op.Valid() && opTable[op].vector }

// IsBranch reports whether the opcode is any control transfer
// (conditional or not, direct or indirect), excluding CALL/RET.
func (op Op) IsBranch() bool {
	switch op {
	case JMP, JMPI, JE, JNE, JL, JLE, JG, JGE:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case JE, JNE, JL, JLE, JG, JGE:
		return true
	}
	return false
}

// IsBlockEnd reports whether the opcode terminates a basic block.
func (op Op) IsBlockEnd() bool {
	switch op {
	case JMP, JMPI, JE, JNE, JL, JLE, JG, JGE, CALL, CALLI, RET, HALT:
		return true
	}
	return false
}

// IsCall reports whether the opcode is a call.
func (op Op) IsCall() bool { return op == CALL || op == CALLI }

// ReadsFlags reports whether the opcode reads the flags register.
func (op Op) ReadsFlags() bool {
	switch op {
	case JE, JNE, JL, JLE, JG, JGE, CMOVE, CMOVNE:
		return true
	}
	return false
}

// WritesFlags reports whether the opcode writes the flags register.
func (op Op) WritesFlags() bool {
	switch op {
	case CMP, CMPI, FCMP, TEST:
		return true
	}
	return false
}

// InvertCond returns the opposite conditional branch opcode, or NOP if
// op is not a conditional branch.
func InvertCond(op Op) Op {
	switch op {
	case JE:
		return JNE
	case JNE:
		return JE
	case JL:
		return JGE
	case JLE:
		return JG
	case JG:
		return JLE
	case JGE:
		return JL
	}
	return NOP
}

// Syscall numbers (in R0 at a SYSCALL instruction).
const (
	SysExit   = 1 // exit(status=R1)
	SysWrite  = 2 // write value R1 to the program's output stream (IO)
	SysAlloc  = 3 // R0 <- allocate R1 bytes of zeroed heap
	SysWriteF = 4 // write float64 bits R1 to the output stream (IO)
	SysClock  = 5 // R0 <- virtual cycle counter
)

// IsIOSyscall reports whether syscall number nr performs IO; loops
// containing IO syscalls are rejected by the static analyser.
func IsIOSyscall(nr int64) bool { return nr == SysWrite || nr == SysWriteF }
