package guest

import (
	"encoding/binary"
	"fmt"
)

// InstSize is the fixed byte length of every encoded instruction. A flat
// fixed-width encoding keeps the decoder trivial while still forcing the
// static analyser to work from raw bytes, mirroring the role Capstone
// plays for the paper's analyser.
//
// Layout:
//
//	[0]     opcode
//	[1]     rd
//	[2]     rs
//	[3]     mem base register (RegNone if absent)
//	[4]     mem index register (RegNone if absent)
//	[5]     mem scale
//	[6:8]   reserved (zero)
//	[8:16]  mem displacement (little-endian int64)
//	[16:24] immediate (little-endian int64)
const InstSize = 24

// Encode serialises the instruction into its fixed-width form.
func Encode(in Inst) [InstSize]byte {
	var b [InstSize]byte
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd)
	b[2] = byte(in.Rs)
	b[3] = byte(in.M.Base)
	b[4] = byte(in.M.Index)
	scale := in.M.Scale
	if scale == 0 {
		scale = 1
	}
	b[5] = scale
	binary.LittleEndian.PutUint64(b[8:16], uint64(in.M.Disp))
	binary.LittleEndian.PutUint64(b[16:24], uint64(in.Imm))
	return b
}

// Decode parses one instruction from the front of buf. It returns an
// error if buf is too short or the opcode is undefined, which is how the
// static analyser detects data embedded in a code section.
func Decode(buf []byte) (Inst, error) {
	if len(buf) < InstSize {
		return Inst{}, fmt.Errorf("guest: truncated instruction: %d bytes", len(buf))
	}
	op := Op(buf[0])
	if !op.Valid() {
		return Inst{}, fmt.Errorf("guest: undefined opcode %#x", buf[0])
	}
	in := Inst{
		Op: op,
		Rd: Reg(buf[1]),
		Rs: Reg(buf[2]),
		M: Mem{
			Base:  Reg(buf[3]),
			Index: Reg(buf[4]),
			Scale: buf[5],
			Disp:  int64(binary.LittleEndian.Uint64(buf[8:16])),
		},
		Imm: int64(binary.LittleEndian.Uint64(buf[16:24])),
	}
	if in.M.Scale == 0 {
		in.M.Scale = 1
	}
	return in, nil
}

// EncodeAll serialises a sequence of instructions.
func EncodeAll(insts []Inst) []byte {
	out := make([]byte, 0, len(insts)*InstSize)
	for _, in := range insts {
		b := Encode(in)
		out = append(out, b[:]...)
	}
	return out
}

// DecodeAll parses an entire code image. The byte length must be a
// multiple of InstSize.
func DecodeAll(buf []byte) ([]Inst, error) {
	if len(buf)%InstSize != 0 {
		return nil, fmt.Errorf("guest: code image length %d not a multiple of %d", len(buf), InstSize)
	}
	out := make([]Inst, 0, len(buf)/InstSize)
	for off := 0; off < len(buf); off += InstSize {
		in, err := Decode(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("at offset %#x: %w", off, err)
		}
		out = append(out, in)
	}
	return out, nil
}
