package guest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"},
		{R7, "r7"},
		{SP, "sp"},
		{RegTLS, "tls"},
		{RegNone, "none"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestOpMetadataComplete(t *testing.T) {
	for op := Op(0); op < opMax; op++ {
		if opTable[op].name == "" {
			t.Errorf("opcode %d has no metadata entry", op)
		}
		if opTable[op].cycles <= 0 {
			t.Errorf("opcode %s has non-positive cycle cost", op)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !JE.IsCondBranch() || !JE.IsBranch() || !JE.ReadsFlags() {
		t.Error("JE predicates wrong")
	}
	if JMP.IsCondBranch() {
		t.Error("JMP should not be conditional")
	}
	if !CALL.IsCall() || !CALL.IsBlockEnd() {
		t.Error("CALL predicates wrong")
	}
	if !CMP.WritesFlags() || CMP.ReadsFlags() {
		t.Error("CMP flag predicates wrong")
	}
	if !RET.IsBlockEnd() || RET.IsBranch() {
		t.Error("RET predicates wrong")
	}
	if !VLD.IsVector() || LD.IsVector() {
		t.Error("vector predicates wrong")
	}
}

func TestInvertCond(t *testing.T) {
	pairs := [][2]Op{{JE, JNE}, {JL, JGE}, {JLE, JG}}
	for _, p := range pairs {
		if InvertCond(p[0]) != p[1] || InvertCond(p[1]) != p[0] {
			t.Errorf("InvertCond(%s/%s) broken", p[0], p[1])
		}
	}
	if InvertCond(ADD) != NOP {
		t.Error("InvertCond of non-branch should be NOP")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := []Inst{
		NewInst(ADD, R1, R2),
		NewInstI(MOVI, R3, -42),
		NewInstM(LD, R4, Mem{Base: R8, Index: R0, Scale: 4, Disp: 8}),
		NewInstM(ST, R5, Mem{Base: R9, Index: RegNone, Scale: 1, Disp: -16}),
		NewInstI(JMP, RegNone, 0x400900),
		{Op: STI, Rd: RegNone, Rs: RegNone, Imm: 7, M: Mem{Base: R2, Index: RegNone, Scale: 1, Disp: 24}},
		NewInst(VADD, 3, 4),
		{Op: SYSCALL, Rd: RegNone, Rs: RegNone, M: NoMem},
	}
	for _, in := range insts {
		b := Encode(in)
		got, err := Decode(b[:])
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip mismatch: %v -> %v", in, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, InstSize-1)); err == nil {
		t.Error("short buffer should fail")
	}
	bad := make([]byte, InstSize)
	bad[0] = byte(opMax) + 10
	if _, err := Decode(bad); err == nil {
		t.Error("undefined opcode should fail")
	}
	if _, err := DecodeAll(make([]byte, InstSize+1)); err == nil {
		t.Error("misaligned image should fail")
	}
}

func TestEncodeDecodeAll(t *testing.T) {
	insts := []Inst{NewInst(MOV, R0, R1), NewInstI(MOVI, R2, 9), {Op: RET, Rd: RegNone, Rs: RegNone, M: NoMem}}
	img := EncodeAll(insts)
	if len(img) != 3*InstSize {
		t.Fatalf("image length %d", len(img))
	}
	back, err := DecodeAll(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(insts) {
		t.Fatalf("decoded %d insts", len(back))
	}
	for i := range insts {
		if back[i] != insts[i] {
			t.Errorf("inst %d: %v != %v", i, back[i], insts[i])
		}
	}
}

// randomInst builds an arbitrary-but-valid instruction for property tests.
func randomInst(r *rand.Rand) Inst {
	for {
		op := Op(r.Intn(int(opMax)))
		if !op.Valid() {
			continue
		}
		in := Inst{Op: op, Rd: RegNone, Rs: RegNone, M: NoMem}
		if op.HasRd() {
			in.Rd = Reg(r.Intn(NumGPR))
		}
		if op.HasRs() {
			in.Rs = Reg(r.Intn(NumGPR))
		}
		if op.HasImm() {
			in.Imm = r.Int63() - r.Int63()
		}
		if op.HasMem() {
			in.M = Mem{Base: Reg(r.Intn(NumGPR)), Index: Reg(r.Intn(NumGPR)), Scale: []uint8{1, 2, 4, 8}[r.Intn(4)], Disp: int64(r.Intn(4096)) - 2048}
		}
		return in
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInst(r)
		b := Encode(in)
		got, err := Decode(b[:])
		return err == nil && got == in
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDefsUsesConsistency(t *testing.T) {
	// Every ALU two-operand op must read and write its destination.
	alu := []Op{ADD, SUB, IMUL, AND, OR, XOR, FADD, FMUL}
	for _, op := range alu {
		in := NewInst(op, R3, R4)
		if !hasReg(in.Uses(), R3) || !hasReg(in.Uses(), R4) {
			t.Errorf("%s uses wrong: %v", op, in.Uses())
		}
		if !hasReg(in.Defs(), R3) {
			t.Errorf("%s defs wrong: %v", op, in.Defs())
		}
	}
	// Loads read mem and base/index regs, write rd.
	ld := NewInstM(LD, R1, Mem{Base: R2, Index: R3, Scale: 8, Disp: 8})
	if !hasReg(ld.Uses(), R2) || !hasReg(ld.Uses(), R3) || !hasMem(ld.Uses()) {
		t.Errorf("LD uses wrong: %v", ld.Uses())
	}
	if !hasReg(ld.Defs(), R1) || hasMem(ld.Defs()) {
		t.Errorf("LD defs wrong: %v", ld.Defs())
	}
	// Stores are the reverse.
	st := NewInstM(ST, R1, Mem{Base: R2, Index: RegNone, Scale: 1})
	if !hasReg(st.Uses(), R1) || !hasReg(st.Uses(), R2) {
		t.Errorf("ST uses wrong: %v", st.Uses())
	}
	if !hasMem(st.Defs()) {
		t.Errorf("ST defs wrong: %v", st.Defs())
	}
	// CMP writes only flags.
	cmp := NewInst(CMP, R1, R2)
	for _, d := range cmp.Defs() {
		if d.Kind != LocFlags {
			t.Errorf("CMP should write only flags, got %v", cmp.Defs())
		}
	}
	// Conditional branch reads flags.
	je := NewInstI(JE, RegNone, 0x1000)
	if !hasFlags(je.Uses()) {
		t.Errorf("JE should read flags: %v", je.Uses())
	}
}

func TestAccessWidth(t *testing.T) {
	if w := NewInstM(LD, R0, NoMem).AccessWidth(); w != 8 {
		t.Errorf("LD width %d", w)
	}
	if w := NewInstM(VLD, 0, NoMem).AccessWidth(); w != 8*VLEN {
		t.Errorf("VLD width %d", w)
	}
	if w := NewInst(ADD, R0, R1).AccessWidth(); w != 0 {
		t.Errorf("ADD width %d", w)
	}
}

func TestMemString(t *testing.T) {
	m := Mem{Base: R8, Index: R0, Scale: 4, Disp: 8}
	if s := m.String(); s != "[r8+r0*4+0x8]" {
		t.Errorf("Mem.String() = %q", s)
	}
	abs := Mem{Base: RegNone, Index: RegNone, Scale: 1, Disp: 0x601000}
	if !abs.IsAbsolute() {
		t.Error("absolute operand not detected")
	}
	if s := abs.String(); s != "[0x601000]" {
		t.Errorf("abs Mem.String() = %q", s)
	}
}

func TestInstString(t *testing.T) {
	in := NewInstM(LD, R4, Mem{Base: R8, Index: RegNone, Scale: 1, Disp: 24})
	if s := in.String(); s != "ld r4, [r8+0x18]" {
		t.Errorf("Inst.String() = %q", s)
	}
	j := NewInstI(JLE, RegNone, 0x400900)
	if s := j.String(); s != "jle 0x400900" {
		t.Errorf("branch String() = %q", s)
	}
}

func hasReg(ls []Loc, r Reg) bool {
	for _, l := range ls {
		if l.Kind == LocReg && l.Reg == r {
			return true
		}
	}
	return false
}

func hasMem(ls []Loc) bool {
	for _, l := range ls {
		if l.Kind == LocMem {
			return true
		}
	}
	return false
}

func hasFlags(ls []Loc) bool {
	for _, l := range ls {
		if l.Kind == LocFlags {
			return true
		}
	}
	return false
}
