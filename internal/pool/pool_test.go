package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitRunsTasks(t *testing.T) {
	p := New(4, 100)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() { n.Add(1); wg.Done() }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	p.Close()
	p.Wait()
}

// TestAdmissionBoundExact pins the shedding contract: with cap C and
// depth D, exactly C+D tasks are admitted however the worker
// goroutines are scheduled, and the next submission fails with
// ErrOverloaded.
func TestAdmissionBoundExact(t *testing.T) {
	const c, d = 2, 3
	p := New(c, d)
	release := make(chan struct{})
	for i := 0; i < c+d; i++ {
		if err := p.Submit(func() { <-release }); err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-bound submit: got %v, want ErrOverloaded", err)
	}
	waitFor(t, "both workers busy", func() bool { return p.Running() == c })
	if got := p.Queued(); got != d {
		t.Fatalf("queued %d, want %d", got, d)
	}
	close(release)
	waitFor(t, "queue drained", func() bool { return p.Queued() == 0 && p.Running() == 0 })
	// Capacity freed: submissions are admitted again.
	done := make(chan struct{})
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	<-done
	p.Close()
	p.Wait()
}

func TestCloseRejectsAndDrains(t *testing.T) {
	p := New(1, 8)
	var ran atomic.Int64
	gate := make(chan struct{})
	p.Submit(func() { <-gate; ran.Add(1) })
	for i := 0; i < 3; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if err := p.Submit(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
	close(gate)
	p.Wait()
	if ran.Load() != 4 {
		t.Fatalf("queued tasks dropped at close: ran %d, want 4", ran.Load())
	}
}

func TestIdleAndPurge(t *testing.T) {
	p := New(3, 8)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		p.Submit(func() { wg.Done() })
	}
	wg.Wait()
	waitFor(t, "workers idle", func() bool { return p.Idle() == 3 })
	if n := p.Purge(); n != 3 {
		t.Fatalf("purged %d workers, want 3", n)
	}
	waitFor(t, "workers reaped", func() bool { return p.Idle() == 0 })
	// The pool respawns on demand after a purge.
	done := make(chan struct{})
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done
	p.Close()
	p.Wait()
}

func TestResizeGrowsAndShrinks(t *testing.T) {
	p := New(1, 16)
	if p.Cap() != 1 {
		t.Fatalf("cap %d, want 1", p.Cap())
	}
	gate := make(chan struct{})
	var peak atomic.Int64
	var cur atomic.Int64
	task := func() {
		if v := cur.Add(1); v > peak.Load() {
			peak.Store(v)
		}
		<-gate
		cur.Add(-1)
	}
	for i := 0; i < 4; i++ {
		if err := p.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "one running at cap 1", func() bool { return p.Running() == 1 })
	p.Resize(4)
	waitFor(t, "four running after grow", func() bool { return p.Running() == 4 })
	close(gate)
	waitFor(t, "drained", func() bool { return p.Running() == 0 })
	if peak.Load() != 4 {
		t.Fatalf("peak concurrency %d, want 4", peak.Load())
	}

	// Shrink back below the live worker count: excess workers exit,
	// concurrency honors the new bound, queued work still runs.
	p.Resize(1)
	gate2 := make(chan struct{})
	var peak2 atomic.Int64
	var cur2 atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		if err := p.Submit(func() {
			defer wg.Done()
			if v := cur2.Add(1); v > peak2.Load() {
				peak2.Store(v)
			}
			<-gate2
			cur2.Add(-1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "one running after shrink", func() bool { return p.Running() == 1 })
	if got := p.Running(); got != 1 {
		t.Fatalf("running %d after shrink, want 1", got)
	}
	go func() {
		// Release each in turn; with cap 1 they serialise.
		close(gate2)
	}()
	wg.Wait()
	if peak2.Load() != 1 {
		t.Fatalf("peak concurrency %d after shrink to 1, want 1", peak2.Load())
	}
	p.Close()
	p.Wait()
}

func TestPanicKeepsWorkerAlive(t *testing.T) {
	p := New(1, 8)
	var caught atomic.Int64
	p.OnPanic = func(v any, stack []byte) {
		if v != "boom" || len(stack) == 0 {
			t.Errorf("OnPanic got (%v, %d-byte stack)", v, len(stack))
		}
		caught.Add(1)
	}
	done := make(chan struct{})
	p.Submit(func() { panic("boom") })
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("task after panic never ran: worker died")
	}
	if caught.Load() != 1 {
		t.Fatalf("OnPanic ran %d times, want 1", caught.Load())
	}
	p.Close()
	p.Wait()
}

// TestConcurrentChurn hammers submit/resize/purge from many goroutines
// under the race detector; every admitted task must run exactly once.
func TestConcurrentChurn(t *testing.T) {
	p := New(4, 64)
	var admitted, ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				err := p.Submit(func() { ran.Add(1) })
				if err == nil {
					admitted.Add(1)
				} else if !errors.Is(err, ErrOverloaded) {
					t.Errorf("submit: %v", err)
					return
				}
				switch i % 50 {
				case 10:
					p.Resize(1 + i%7)
				case 30:
					p.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	p.Wait()
	if ran.Load() != admitted.Load() {
		t.Fatalf("admitted %d tasks but ran %d", admitted.Load(), ran.Load())
	}
}
