// Package pool provides the bounded, resizable worker pool behind the
// janusd job system. Tasks are submitted to a FIFO queue with a hard
// admission bound — a full pool rejects the submission immediately
// with ErrOverloaded instead of blocking, which is what lets the
// daemon shed load with a 429 rather than letting latency grow without
// bound. Workers are spawned on demand up to the capacity, park when
// idle, and can be reclaimed (Purge) or re-bounded (Resize) at runtime
// without dropping queued work; a panicking task never takes its
// worker down.
package pool

import (
	"errors"
	"runtime/debug"
	"sync"
)

var (
	// ErrClosed rejects submissions to a closed pool.
	ErrClosed = errors.New("pool: closed")
	// ErrOverloaded rejects submissions while the pool is at its
	// admission bound (Cap running + Depth queued). Callers decide the
	// shedding policy (janusd turns it into HTTP 429 + Retry-After).
	ErrOverloaded = errors.New("pool: queue full")
)

// Task is one unit of queued work.
type Task func()

// Pool is a bounded worker pool. The zero value is not usable; call
// New.
type Pool struct {
	mu   sync.Mutex
	cond *sync.Cond

	cap   int // concurrent-task bound
	depth int // queued-task bound beyond the running ones

	queue   []Task
	active  int // tasks executing right now
	workers int // goroutines alive (idle + executing)
	idle    int // workers parked in cond.Wait
	reap    int // idle workers Purge has condemned
	closed  bool

	// OnPanic, when non-nil, observes a panic recovered from a task
	// (value + stack). The worker always survives; by default the panic
	// is swallowed because the submitter is expected to wrap its task
	// with its own recovery and reporting (janusd does).
	OnPanic func(v any, stack []byte)

	done chan struct{} // closed when the last worker exits after Close
}

// New returns a pool running at most workers tasks concurrently and
// admitting at most depth queued tasks beyond the running ones.
// workers is clamped to >= 1 and depth to >= 0, so a pool always
// accepts at least one task.
func New(workers, depth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pool{cap: workers, depth: depth, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Submit queues t, spawning a worker if none is idle and the capacity
// allows one. It never blocks. The admission bound is exact: a
// submission is rejected with ErrOverloaded iff active+queued tasks
// already number Cap+Depth, whatever the worker goroutines' scheduling
// looks like at that instant. A closed pool returns ErrClosed.
func (p *Pool) Submit(t Task) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.active+len(p.queue) >= p.cap+p.depth {
		return ErrOverloaded
	}
	p.queue = append(p.queue, t)
	if p.idle > 0 {
		p.cond.Signal()
	} else if p.workers < p.cap {
		p.workers++
		go p.worker()
	}
	return nil
}

// worker runs queued tasks until the pool closes, Resize shrinks the
// capacity below the live worker count, or Purge condemns it while
// idle.
func (p *Pool) worker() {
	p.mu.Lock()
	for {
		for len(p.queue) == 0 && !p.closed && p.reap == 0 && p.workers <= p.cap {
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		if len(p.queue) == 0 && (p.closed || p.reap > 0 || p.workers > p.cap) {
			if p.reap > 0 {
				p.reap--
			}
			break
		}
		if p.workers > p.cap {
			// Shrunk below the live count: exit even with work queued;
			// the surviving workers (>= new cap >= 1) drain it.
			break
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.active++
		p.mu.Unlock()
		p.run(t)
		p.mu.Lock()
		p.active--
	}
	p.workers--
	if p.closed && p.workers == 0 {
		close(p.done)
	}
	p.mu.Unlock()
}

// run executes one task, containing panics so a broken task can never
// kill the worker (or the process embedding the pool).
func (p *Pool) run(t Task) {
	defer func() {
		if v := recover(); v != nil {
			if h := p.onPanic(); h != nil {
				h(v, debug.Stack())
			}
		}
	}()
	t()
}

func (p *Pool) onPanic() func(any, []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.OnPanic
}

// Resize re-bounds the pool to run at most workers tasks concurrently
// (clamped to >= 1). Growing spawns workers for queued tasks
// immediately; shrinking lets excess workers exit as they go idle (a
// busy worker finishes its current task first). Queued work is never
// dropped, but the admission bound tightens at once.
func (p *Pool) Resize(workers int) {
	if workers < 1 {
		workers = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cap = workers
	for p.workers < p.cap && len(p.queue) > p.idle {
		p.workers++
		go p.worker()
	}
	p.cond.Broadcast()
}

// Purge reclaims every currently idle worker. Busy workers and queued
// tasks are untouched; new submissions respawn workers on demand. It
// reports how many workers were condemned.
func (p *Pool) Purge() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.idle
	p.reap += n
	p.cond.Broadcast()
	return n
}

// Close rejects further submissions and releases the workers once the
// already-queued tasks drain. It does not wait; use Wait for that.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.workers == 0 {
		close(p.done)
	}
	p.cond.Broadcast()
}

// Wait blocks until Close has been called and every worker has exited
// (all queued tasks done).
func (p *Pool) Wait() {
	<-p.done
}

// Cap returns the current concurrent-task bound.
func (p *Pool) Cap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cap
}

// Depth returns the queued-task bound.
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.depth
}

// Idle returns how many spawned workers are parked waiting for work.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.idle
}

// Running returns how many tasks are executing right now.
func (p *Pool) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Queued returns the pending-queue depth (submitted, not yet started).
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}
