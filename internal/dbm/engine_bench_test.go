package dbm_test

// Thin wrappers over the shared region-engine micro-benchmark bodies in
// internal/enginebench, which janus-bench -engine-json runs verbatim:
// `go test -bench` and the committed BENCH_engine.json snapshot always
// measure the same workloads.

import (
	"testing"

	"janus/internal/enginebench"
)

func BenchmarkRegionRoundRobin(b *testing.B)   { enginebench.ByName("RegionRoundRobin").Fn(b) }
func BenchmarkRegionHostParallel(b *testing.B) { enginebench.ByName("RegionHostParallel").Fn(b) }
