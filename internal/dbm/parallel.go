package dbm

import (
	"fmt"
	"runtime/debug"

	"janus/internal/guest"
	"janus/internal/jrt"
	"janus/internal/rules"
)

// runParallelLoop is the LOOP_INIT handler on the main thread: it
// evaluates the guarding bounds check, partitions the iteration space,
// spins up the thread pool on the loop, steps the threads round-robin
// to completion, and merges the loop contexts (LOOP_FINISH).
func (ex *Executor) runParallelLoop(mainT *jrt.Thread, r rules.Rule) (*redirect, error) {
	ld := r.Data.(rules.LoopInitData)
	main := mainT.Ctx
	ex.Stats.Invocations++
	entry := func(reg guest.Reg) uint64 { return main.Reg(reg) }

	// Trip count for this invocation.
	n, known := ld.Trip.Count(entry)
	if !known || n <= 0 {
		ex.Stats.SeqFallbacks++
		return nil, nil
	}
	// Profitability floor.
	if n < int64(ex.Cfg.Threads)*ex.Cfg.MinIterPerThread {
		ex.Stats.SeqFallbacks++
		return nil, nil
	}

	// Runtime array-base check (§II-E1): all ranges written must be
	// disjoint from every other range. The applicable rules were indexed
	// at construction time.
	for _, d := range ex.checksAt[checkKey{addr: r.Addr, loopID: r.LoopID}] {
		ex.Stats.ChecksRun++
		main.Cycles += int64(len(d.Ranges)) * ex.Cfg.Cost.CheckPerRange
		ex.Stats.CheckCycles += int64(len(d.Ranges)) * ex.Cfg.Cost.CheckPerRange
		if !boundsCheckPasses(d, entry, n) {
			ex.Stats.ChecksFailed++
			ex.Stats.SeqFallbacks++
			// The loop was already modified in the code caches: flush
			// and reload the original code (the handlers are inert
			// outside parallel mode, so re-translation is enough).
			ex.flushCaches()
			return nil, nil
		}
	}

	ubd, haveBound := ex.boundData[r.LoopID]
	if !haveBound {
		return nil, fmt.Errorf("dbm: loop %d has no LOOP_UPDATE_BOUND rule", r.LoopID)
	}

	// Build the loop context.
	lc := &jrt.LoopCtx{
		LoopID:      r.LoopID,
		Init:        ld,
		Trip:        n,
		MainSP:      main.Reg(guest.SP),
		ExitTargets: ex.exitTargets[r.LoopID],
		ExitPrimary: ex.exitPrimary[r.LoopID],
		BoundValue:  make([]uint64, ex.Cfg.Threads),
		PrivSlots:   map[int32]jrt.PrivSlot{},
	}
	copy(lc.EntryRegs[:], main.GPR[:])
	for slot, pd := range ex.privSlots[r.LoopID] {
		lc.PrivSlots[slot] = jrt.PrivSlot{
			SharedAddr: uint64(pd.SharedAddr.Eval(entry, 0)),
			Size:       pd.Size,
		}
	}
	if len(lc.ExitTargets) == 0 {
		return nil, fmt.Errorf("dbm: loop %d has no exit targets", r.LoopID)
	}

	// Partition and launch.
	chunks := jrt.PartitionChunked(n, ex.Cfg.Threads)
	threads, err := ex.buildRegionThreads(ld, lc, ubd, entry, chunks)
	if err != nil {
		return nil, err
	}

	// Region execution. Both engines produce bit-identical per-thread
	// virtual clocks and memory images; the host-parallel engine is
	// chosen only when the static eligibility scan proves the loop body
	// free of cross-thread interactions the round-robin schedule would
	// otherwise order (see hostpar.go). Speculative engines run under
	// an undo log and fall back to round-robin on any failure (see
	// recover.go), so a recovered region renders exactly what a pure
	// round-robin run renders.
	ex.loop = lc
	ex.inParallel = true
	ex.Stats.ParRegions++
	defer func() { ex.loop = nil; ex.inParallel = false }()

	var engineErr error
	if scanned := ex.hostParEligible(r.LoopID, ld.LoopStart); scanned != nil {
		ex.Stats.HostParRegions++
		threads, engineErr = ex.runRegionRecoverable(r, threads, lc, ld, ubd, entry, n, chunks, scanned)
	} else {
		engineErr = ex.runRegionRoundRobin(r.LoopID, threads, lc)
	}
	// Fold thread-local counters in thread-ID order — a deterministic
	// schedule-independent point, identical for both engines. A failed
	// speculative attempt's threads were dropped unfolded; only the
	// threads that produced the region's result reach this point.
	for _, th := range threads {
		ex.fold(th)
	}
	if engineErr != nil {
		return nil, engineErr
	}

	// Virtual time: the region took as long as its slowest thread, plus
	// init/finish orchestration.
	var maxCycles int64
	for _, th := range threads {
		if th.Ctx.Cycles > maxCycles {
			maxCycles = th.Ctx.Cycles
		}
	}
	initFinish := ex.Cfg.Cost.LoopInitBase + ex.Cfg.Cost.LoopFinishBase +
		int64(ex.Cfg.Threads)*(ex.Cfg.Cost.LoopInitPerThread+ex.Cfg.Cost.LoopFinishPerThread)
	main.Cycles += maxCycles + initFinish
	ex.Stats.ParCycles += maxCycles
	ex.Stats.InitFinishCycles += initFinish
	var totalInsts int64
	for _, th := range threads {
		totalInsts += th.Ctx.Insts
	}
	main.Insts += totalInsts

	// LOOP_FINISH: combine loop contexts from all threads.
	last := lastNonEmpty(threads)
	for _, iv := range ld.Inductions {
		init := iv.Init.Eval(entry, 0)
		main.SetReg(iv.Reg, uint64(init+iv.Step*n))
	}
	finish := ex.finishData[r.LoopID]
	for _, red := range finish.Reductions {
		acc := main.Reg(red.Reg) // initial value flows through main
		for _, th := range threads {
			acc = jrt.MergeReduction(red.Op, acc, th.Ctx.Reg(red.Reg))
		}
		main.SetReg(red.Reg, acc)
	}
	if last != nil {
		for _, lo := range finish.LiveOut {
			main.SetReg(lo, last.Ctx.Reg(lo))
		}
		main.ZF, main.LF = last.Ctx.ZF, last.Ctx.LF
		// Copy privatised cells back to shared memory from the thread
		// that executed the final iteration, one page-span copy at a
		// time.
		for slot, ps := range lc.PrivSlots {
			ex.M.Mem.Copy(ps.SharedAddr, jrt.PrivAddr(last.ID, slot), int(ps.Size))
		}
	}

	// Resume sequential execution at the loop's primary exit target
	// (the smallest LOOP_FINISH address, fixed at construction time so
	// the resume point never depends on map iteration order).
	return &redirect{pc: ex.exitPrimary[r.LoopID]}, nil
}

// runRegionRoundRobin steps the region's threads round-robin at basic-
// block granularity on the calling goroutine. This is the fully general
// engine: the deterministic schedule orders speculative commits (oldest
// thread first) and serialises syscalls, so every loop can run under
// it.
func (ex *Executor) runRegionRoundRobin(loopID int32, threads []*jrt.Thread, lc *jrt.LoopCtx) (err error) {
	// The round-robin engine runs on the orchestrating goroutine, so a
	// panicking handler or guest bug would otherwise unwind the whole
	// process; contain it as a fatal RegionError (this engine is the
	// fallback — there is nothing left to recover to).
	cur := -1
	defer func() {
		if p := recover(); p != nil {
			err = panicErr(loopID, cur, p, debug.Stack())
		}
	}()
	active := 0
	for _, th := range threads {
		if th.State != jrt.StateDone {
			th.State = jrt.StateRunning
			active++
		}
	}
	guard := ex.Cfg.MaxSteps
	for active > 0 {
		oldest := oldestRunning(threads)
		progressed := false
		for _, th := range threads {
			if th.State != jrt.StateRunning {
				continue
			}
			// An aborted speculative thread waits until it is oldest
			// before re-executing non-speculatively.
			if ex.suppressTx[th.ID] && th.ID != oldest {
				continue
			}
			// Per-block guard check, the same boundary the host-parallel
			// engine's shared budget enforces: a runaway region fails
			// after MaxSteps blocks under either engine.
			if guard <= 0 {
				return regionErr(loopID, -1, ErrRegionStuck)
			}
			th.Oldest = th.ID == oldest
			cur = th.ID
			if err := ex.stepBlock(th); err != nil {
				return regionErr(loopID, th.ID, err)
			}
			progressed = true
			guard--
			if lc.IsExit(th.Ctx.PC) {
				th.State = jrt.StateDone
				if ex.tx[th.ID] != nil {
					// A transaction left open across the chunk end:
					// validate/commit now.
					if rd, err := ex.finishTx(th, ex.tx[th.ID]); err != nil {
						return err
					} else if rd != nil {
						th.Ctx.PC = rd.pc
						th.State = jrt.StateRunning
						continue
					}
				}
				active--
			}
		}
		if !progressed {
			return regionErr(loopID, -1, ErrRegionStuck)
		}
	}
	return nil
}

// boundsCheckPasses evaluates the runtime array-base check: every
// written range must be disjoint from every other range.
func boundsCheckPasses(d rules.BoundsCheckData, entry func(guest.Reg) uint64, trip int64) bool {
	type iv struct {
		lo, hi int64
		write  bool
	}
	ivs := make([]iv, len(d.Ranges))
	for i, rg := range d.Ranges {
		lo, hi := rg.Interval(entry, trip)
		ivs[i] = iv{lo: lo, hi: hi, write: rg.Write}
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if !ivs[i].write && !ivs[j].write {
				continue
			}
			if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
				return false
			}
		}
	}
	return true
}

func oldestRunning(threads []*jrt.Thread) int {
	for _, th := range threads {
		if th.State == jrt.StateRunning {
			return th.ID
		}
	}
	return -1
}

func lastNonEmpty(threads []*jrt.Thread) *jrt.Thread {
	for i := len(threads) - 1; i >= 0; i-- {
		if threads[i].Hi > threads[i].Lo {
			return threads[i]
		}
	}
	return nil
}
