package dbm

import (
	"math"
	"reflect"
	"testing"

	"janus/internal/vm"
)

func TestResultEncodeDecodeRoundTrip(t *testing.T) {
	r := Result{
		Result: vm.Result{
			Exit:     7,
			Output:   []uint64{1, math.MaxUint64},
			Cycles:   99,
			Insts:    1000,
			MemHash:  0xfeed_face_cafe_f00d,
			DataHash: math.MaxUint64 - 1,
		},
		Stats: Stats{
			TransBlocks:    12,
			TransInsts:     480,
			TransCycles:    960,
			ParCycles:      33,
			Invocations:    4,
			ParRegions:     3,
			HostParRegions: 3,
			StealRegions:   1,
			SeqFallbacks:   1,
			ParRecoveries:  2,
			DemotedLoops:   1,
			ChecksRun:      10,
			TxStarted:      6,
			TxCommits:      5,
			TxAborts:       1,
			SpecReads:      100,
			SpecWrites:     50,
			SpecInsts:      200,
		},
	}
	data, err := EncodeResult(&r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(*got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, r)
	}
}

func TestDecodeResultRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeResult([]byte(`{"Exit":0,"NotAField":true}`)); err == nil {
		t.Fatal("payload with unknown field decoded without error")
	}
}
