package dbm

import (
	"runtime/debug"
	"sync"
	"sync/atomic"

	"janus/internal/faultinject"
	"janus/internal/guest"
	"janus/internal/jrt"
	"janus/internal/rules"
	"janus/internal/vm"
)

// Work-stealing region execution.
//
// Static equal chunking (jrt.PartitionChunked) hands every guest
// thread the same number of iterations, but iterations need not cost
// the same: a data-dependent branch or a library call can make one
// chunk several times more expensive than its siblings, and with one
// host goroutine per guest thread the cheap workers idle while the
// expensive one finishes. This engine subdivides each static chunk
// into up to jrt.StealFactor pieces and lets idle workers steal
// pieces from a shared set of per-worker deques.
//
// The determinism contract is the same as hostpar.go's, and stronger:
// simulated results must be bit-identical to the *static* partitioner
// (and hence to the round-robin engine) at any GOMAXPROCS. Work
// stealing respects it because every subchunk's outcome is a pure
// function of its iteration range:
//
//   - Registers: a subchunk's context starts from the loop-entry
//     snapshot with its induction set to the subchunk base — exactly
//     how a static chunk starts, just at a finer grain. Flags and
//     live-outs come from the final iteration, which lives in the
//     owner's last subchunk whichever worker runs it.
//   - Cycles: dispatch and instruction costs are additive over
//     iterations, so summing a chunk's pieces equals running it
//     whole. Translation is charged once per (owner thread, block)
//     through the executor's charged sets (chargeStealOwner) — the
//     identical total a static run charges when the owner first
//     translates the block — no matter which worker, or how many,
//     actually translated it into their private steal caches.
//   - Reductions: subchunk partials are merged in ascending iteration
//     order. Integer ADD is associative, so the merged value matches
//     the static chunk's sequentially accumulated partial bit for bit;
//     loops with floating-point reductions are not steal-eligible
//     (stealEligible) because reassociation would perturb them.
//   - Memory: eligibility (hostParEligible) already proves iterations
//     write disjoint words, so shared memory ends identical. Worker
//     stacks and TLS scratch above vm.DataHashLimit do depend on which
//     worker ran which subchunk; they are invisible to DataHash (the
//     verification contract) and to every figure, but they make the
//     full-image MemHash schedule-dependent — the one simulated field
//     work stealing does not pin.
//
// The folded result is written back into the per-owner thread
// structures, so LOOP_FINISH (reduction merge, live-outs, privatised
// copy-back) runs the same code as the static engines.

// stealEligible reports whether an eligible host-parallel region may
// also use the work-stealing partitioner under the current
// configuration.
func (ex *Executor) stealEligible(loopID int32, ld rules.LoopInitData) bool {
	// Threads beyond 64 would overflow the per-block chargeMask.
	if !ex.Cfg.WorkStealing || ex.Cfg.Threads > 64 {
		return false
	}
	// The interior-piece discard accounting in runStealWorker is exact
	// only for top-tested, single-exit loops: the exit test must sit at
	// the loop head so the discarded failing check is the same block
	// the next piece re-executes (and charges, if ever) on entry, and
	// the only way out of a piece must be that patched bound. Any other
	// shape keeps static chunks.
	if ex.boundData[loopID].CmpAddr != ld.LoopStart || len(ex.exitTargets[loopID]) != 1 {
		return false
	}
	for _, red := range ld.Reductions {
		if red.Op != guest.ADD {
			return false
		}
	}
	return true
}

// chargeStealOwner charges block b's translation cost to the guest
// thread owning t's current subchunk, the first time any worker
// executes it for that owner. The owner's charged set accumulates
// exactly the blocks a static-chunk run of the same region sequence
// would have translated into the owner's cache, so the folded
// translation counters — and hence virtual cycles — are bit-identical
// to the static partitioner whichever worker reaches a block first.
func (ex *Executor) chargeStealOwner(t *jrt.Thread, b *tblock) {
	bit := uint64(1) << uint(t.Owner)
	if b.chargeMask&bit != 0 {
		return
	}
	ex.stealMu.Lock()
	set := ex.charged[t.Owner]
	if !set[b.start] {
		set[b.start] = true
		// Journal for recovery rollback (stealMu serialises appends to
		// the same owner's list from racing workers).
		ex.chargeUndo[t.Owner] = append(ex.chargeUndo[t.Owner], b.start)
		t.TransBlocks++
		t.TransInsts += int64(len(b.items))
		cost := int64(len(b.items)) * ex.Cfg.Cost.TransPerInst
		t.TransCycles += cost
		t.Ctx.Cycles += cost
	}
	ex.stealMu.Unlock()
	b.chargeMask |= bit
}

// stealDeques is the shared work pool: one deque of subchunk indices
// per worker, seeded with the worker's own static chunk's pieces.
// Workers take their own work front-to-back (ascending iterations,
// best locality) and steal from victims back-to-front.
type stealDeques struct {
	mu     sync.Mutex
	queues [][]int
}

func newStealDeques(workers int, chunks []jrt.StealChunk) *stealDeques {
	d := &stealDeques{queues: make([][]int, workers)}
	for i, sc := range chunks {
		d.queues[sc.Owner] = append(d.queues[sc.Owner], i)
	}
	return d
}

// next returns the next subchunk index for worker w: its own front, or
// a steal from the back of the first non-empty victim scanning
// round-robin from w+1. ok=false means no work remains anywhere.
func (d *stealDeques) next(w int) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if q := d.queues[w]; len(q) > 0 {
		idx := q[0]
		d.queues[w] = q[1:]
		return idx, true
	}
	n := len(d.queues)
	for off := 1; off < n; off++ {
		v := (w + off) % n
		if q := d.queues[v]; len(q) > 0 {
			idx := q[len(q)-1]
			d.queues[v] = q[:len(q)-1]
			return idx, true
		}
	}
	return 0, false
}

// stealResult is one subchunk's folded outcome, written once by the
// worker that executed it.
type stealResult struct {
	cycles, insts, steps              int64
	transBlocks, transInsts, transCyc int64
	// red[j] is the partial for ld.Reductions[j], accumulated from the
	// reduction identity over this subchunk's iterations.
	red []uint64
}

// runRegionStealing executes the region over work-stealing subchunks
// and folds the results back into the per-owner threads so the shared
// LOOP_FINISH path (parallel.go) sees exactly what the static
// partitioner would have produced.
func (ex *Executor) runRegionStealing(loopID int32, threads []*jrt.Thread, lc *jrt.LoopCtx, ld rules.LoopInitData, ubd rules.UpdateBoundData, entry func(guest.Reg) uint64, n int64, scanned map[uint64]bool) error {
	chunks := jrt.PartitionStealing(n, ex.Cfg.Threads, jrt.StealFactor)
	if len(chunks) == 0 {
		return nil
	}
	// Deterministic per-subchunk parameters, evaluated on the main
	// thread so workers never touch the main context.
	bounds := make([]uint64, len(chunks))
	for i, sc := range chunks {
		bv, err := jrt.PatchedBound(ubd, entry, sc.Hi)
		if err != nil {
			return err
		}
		bounds[i] = bv
	}
	ivInit := make([]int64, len(ld.Inductions))
	for j, iv := range ld.Inductions {
		ivInit[j] = iv.Init.Eval(entry, 0)
	}
	// ownerLast[o] is the index of owner o's final subchunk (-1 if the
	// owner's chunk is empty); the last entry overall holds the loop's
	// final iteration.
	ownerLast := make([]int, len(threads))
	for o := range ownerLast {
		ownerLast[o] = -1
	}
	for i, sc := range chunks {
		ownerLast[sc.Owner] = i
	}
	// isLast[i] marks owner-final subchunks: the only pieces whose
	// failing exit check a static chunk also executes. Interior pieces
	// discard theirs (see runStealWorker).
	isLast := make([]bool, len(chunks))
	for o, i := range ownerLast {
		if i >= 0 && chunks[i].Owner == o {
			isLast[i] = true
		}
	}
	final := len(chunks) - 1

	results := make([]stealResult, len(chunks))
	// ends[o] snapshots the ending registers and flags of owner o's
	// final subchunk (single writer: whichever worker runs it).
	type ownerEnd struct {
		gpr    [guest.NumGPR + 1]uint64
		zf, lf bool
	}
	ends := make([]ownerEnd, len(threads))
	// privEnd[slot] snapshots the privatised cells as written by the
	// loop's final iteration, read from the executing worker's TLS the
	// moment the final subchunk completes.
	privEnd := make(map[int32][]byte, len(lc.PrivSlots))

	var budget atomic.Int64
	budget.Store(ex.Cfg.MaxSteps)
	if ex.inj.Fire(faultinject.BudgetExhaust) {
		// Forced budget exhaustion: every worker trips the runaway
		// backstop on its first block.
		budget.Store(0)
	}
	var failed atomic.Bool
	errs := make([]error, len(threads))

	// Block linking must not leak between the sequential/static caches
	// and the steal caches: clear the anchors on both sides of the
	// region (link caches only skip map lookups, so this has no
	// virtual-cycle effect).
	clearLinks := func() {
		for i := range ex.lastBlk {
			ex.lastBlk[i] = nil
		}
	}
	clearLinks()
	ex.hostParActive = true
	ex.hostParSet = scanned
	ex.stealActive = true
	defer func() {
		ex.stealActive = false
		ex.hostParActive = false
		ex.hostParSet = nil
		clearLinks()
	}()

	deques := newStealDeques(ex.Cfg.Threads, chunks)
	var wg sync.WaitGroup
	for w := 0; w < ex.Cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Contain worker panics: a bug (or injected fault) in one
			// region must fail that region, never the process.
			defer func() {
				if p := recover(); p != nil {
					failed.Store(true)
					errs[w] = panicErr(loopID, w, p, debug.Stack())
				}
			}()
			errs[w] = ex.runStealWorker(w, loopID, lc, ld, chunks, bounds, ivInit, isLast, deques, results, &budget, &failed, func(idx int, th *jrt.Thread) {
				sc := chunks[idx]
				if idx == ownerLast[sc.Owner] {
					e := &ends[sc.Owner]
					e.gpr = th.Ctx.GPR
					e.zf, e.lf = th.Ctx.ZF, th.Ctx.LF
				}
				if idx == final {
					for slot, ps := range lc.PrivSlots {
						buf := make([]byte, ps.Size)
						ex.M.Mem.ReadInto(jrt.PrivAddr(w, slot), buf)
						privEnd[slot] = buf
					}
				}
			})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Fold subchunk results into the per-owner threads in deterministic
	// ascending-iteration order.
	acc := make([][]uint64, len(threads))
	for o := range acc {
		acc[o] = make([]uint64, len(ld.Reductions))
		for j, red := range ld.Reductions {
			acc[o][j] = jrt.ReductionIdentity(red.Op)
		}
	}
	for i := range chunks {
		o := chunks[i].Owner
		th := threads[o]
		rec := &results[i]
		th.Ctx.Cycles += rec.cycles
		th.Ctx.Insts += rec.insts
		th.Steps += rec.steps
		th.TransBlocks += rec.transBlocks
		th.TransInsts += rec.transInsts
		th.TransCycles += rec.transCyc
		for j, red := range ld.Reductions {
			acc[o][j] = jrt.MergeReduction(red.Op, acc[o][j], rec.red[j])
		}
	}
	for o, th := range threads {
		if ownerLast[o] < 0 {
			continue // empty chunk: keep the as-initialised context
		}
		th.Ctx.GPR = ends[o].gpr
		th.Ctx.ZF, th.Ctx.LF = ends[o].zf, ends[o].lf
		for j, red := range ld.Reductions {
			th.Ctx.SetReg(red.Reg, acc[o][j])
		}
		th.State = jrt.StateDone
	}
	// Re-home the final iteration's privatised cells to the owning
	// thread's TLS so the shared copy-back in LOOP_FINISH (which reads
	// lastNonEmpty's slots) sees the deterministic values.
	if len(privEnd) > 0 {
		last := lastNonEmpty(threads)
		for slot, buf := range privEnd {
			ex.M.Mem.WriteBytes(jrt.PrivAddr(last.ID, slot), buf)
		}
	}
	return nil
}

// runStealWorker drives worker w: take or steal subchunks until the
// pool drains, running each from the loop head to its patched-bound
// exit on a context that is re-initialised from the loop-entry
// snapshot per subchunk.
func (ex *Executor) runStealWorker(w int, loopID int32, lc *jrt.LoopCtx, ld rules.LoopInitData, chunks []jrt.StealChunk, bounds []uint64, ivInit []int64, isLast []bool, deques *stealDeques, results []stealResult, budget *atomic.Int64, failed *atomic.Bool, done func(idx int, th *jrt.Thread)) error {
	ctx := &vm.Context{ID: w, Bus: ex.views[w]}
	th := &jrt.Thread{ID: w, Ctx: ctx, State: jrt.StateRunning}
	for {
		if failed.Load() {
			return nil
		}
		idx, ok := deques.next(w)
		if !ok {
			return nil
		}
		sc := chunks[idx]
		th.Owner = sc.Owner
		ctx.GPR = lc.EntryRegs
		ctx.GPR[guest.RegTLS] = jrt.TLSFor(w)
		if w != 0 {
			ctx.SetReg(guest.SP, jrt.StackTopFor(w))
		}
		for j, iv := range ld.Inductions {
			ctx.SetReg(iv.Reg, uint64(ivInit[j]+iv.Step*sc.Lo))
		}
		for _, red := range ld.Reductions {
			ctx.SetReg(red.Reg, jrt.ReductionIdentity(red.Op))
		}
		ctx.VReg = [guest.NumVReg][guest.VLEN]float64{}
		ctx.ZF, ctx.LF = false, false
		ctx.PC = ld.LoopStart
		ctx.Cycles, ctx.Insts = 0, 0
		lc.BoundValue[w] = bounds[idx]

		for {
			if failed.Load() {
				return nil
			}
			if ex.inj.Fire(faultinject.WorkerPanic) {
				panic("faultinject: forced worker panic")
			}
			if ex.inj.Fire(faultinject.Stall) {
				// Forced stall: report the region wedged, as a livelocked
				// worker eventually would.
				failed.Store(true)
				return regionErr(loopID, w, ErrRegionStuck)
			}
			if budget.Add(-1) < 0 {
				if failed.Load() {
					return nil // a failing sibling may have drained the budget
				}
				failed.Store(true)
				return regionErr(loopID, w, ErrRegionStuck)
			}
			preCycles, preInsts, preSteps := ctx.Cycles, ctx.Insts, th.Steps
			if err := ex.stepBlock(th); err != nil {
				failed.Store(true)
				return regionErr(loopID, w, err)
			}
			if lc.IsExit(ctx.PC) {
				if !isLast[idx] {
					// Interior piece: its failing exit check is an artefact
					// of the subdivision — a static chunk flows straight
					// from this iteration into the next piece's first,
					// executing the head check once (which the next piece
					// re-executes as its entry check). Discard the extra
					// execution — and refund its budget charge — so folded
					// costs and the runaway threshold match static
					// chunking exactly. The discarded block is the loop
					// head (stealEligible pins the shape), which this
					// piece already executed at entry, so no translation
					// charge can hide in the discarded delta.
					ctx.Cycles, ctx.Insts, th.Steps = preCycles, preInsts, preSteps
					budget.Add(1)
				}
				break
			}
		}
		rec := &results[idx]
		rec.cycles, rec.insts = ctx.Cycles, ctx.Insts
		rec.steps = th.Steps
		rec.transBlocks, rec.transInsts, rec.transCyc = th.TransBlocks, th.TransInsts, th.TransCycles
		th.Steps, th.TransBlocks, th.TransInsts, th.TransCycles = 0, 0, 0, 0
		rec.red = make([]uint64, len(ld.Reductions))
		for j, red := range ld.Reductions {
			rec.red[j] = ctx.Reg(red.Reg)
		}
		done(idx, th)
	}
}
