package dbm

import (
	"janus/internal/faultinject"
	"janus/internal/guest"
	"janus/internal/jrt"
	"janus/internal/rules"
	"janus/internal/stm"
	"janus/internal/vm"
)

// redirect is returned by handlers that transfer control (a parallel
// region completing, a transaction aborting).
type redirect struct {
	pc uint64
}

// stepBlock translates (or fetches) and executes one basic block for
// thread t.
func (ex *Executor) stepBlock(t *jrt.Thread) error {
	b, err := ex.blockFor(t, t.Ctx.PC)
	if err != nil {
		return err
	}
	if ex.hostParActive {
		// Allowlist check: only a defeated eligibility verdict (e.g. a
		// redirected return address) can fail it — refuse rather than
		// execute unscanned code, or a syscall, on a concurrent worker.
		// The verdict is static per (block, loop), so it is stamped on
		// the thread-private block and steady state pays two compares.
		if ex.inj.Fire(faultinject.ScanDefeat) {
			// Forced scan defeat: behave exactly as if this block fell
			// outside the scanned set.
			return ErrScanEscaped
		}
		if b.scanLoop != ex.loop.LoopID {
			b.scanLoop = ex.loop.LoopID
			b.scanOK = !b.hasSyscall && ex.hostParSet[b.start]
		}
		if !b.scanOK {
			if b.hasSyscall && ex.hostParSet[b.start] {
				return ErrScanSyscall
			}
			return ErrScanEscaped
		}
		if ex.stealActive {
			ex.chargeStealOwner(t, b)
		}
	}
	ex.lastBlk[t.ID] = b
	t.Ctx.Cycles += ex.Cfg.Cost.Dispatch
	for i := range b.items {
		it := &b.items[i]
		// Rule handlers attached before the instruction.
		for _, r := range it.pre {
			rd, err := ex.runHandler(t, it, r)
			if err != nil {
				return err
			}
			if rd != nil {
				t.Ctx.PC = rd.pc
				return nil
			}
		}
		next, err := ex.execItem(t, it)
		t.Steps++
		if ex.Cfg.Profile {
			ex.Cov.Step(1)
			if ex.Ex.Active() {
				ex.Ex.StepInst()
			}
		}
		if err != nil {
			return err
		}
		if next != it.addr+guest.InstSize {
			t.Ctx.PC = next
			return nil
		}
	}
	t.Ctx.PC = b.end
	return nil
}

// execItem executes one translated instruction with its transformation.
func (ex *Executor) execItem(t *jrt.Thread, it *titem) (uint64, error) {
	c := t.Ctx
	next := it.addr + guest.InstSize
	if it.touchesMem && ex.tx[t.ID] != nil {
		c.Cycles += ex.Cfg.Cost.TxPerAccess
		ex.Stats.SpecInsts++
		if ex.Cfg.Profile && ex.Ex.Active() {
			ex.Ex.RecordMem(it.writesMem)
		}
	}
	switch it.kind {
	case execPrivatise:
		if ex.inParallel && ex.loop != nil && it.loopID == ex.loop.LoopID {
			return ex.execPrivatised(t, it, next)
		}
	case execMainStack:
		if ex.inParallel && ex.loop != nil && it.loopID == ex.loop.LoopID {
			return ex.execMainStackRead(t, it, next)
		}
	case execBound:
		if ex.inParallel && ex.loop != nil && it.loopID == ex.loop.LoopID {
			return ex.execPatchedBound(t, it, next)
		}
	}
	return vm.ExecInst(ex.M, c, &it.inst, next)
}

// execPrivatised redirects the access to the thread's TLS slot
// (MEM_PRIVATISE handler: "re-encoded into a direct memory access to a
// specific private storage location").
func (ex *Executor) execPrivatised(t *jrt.Thread, it *titem, next uint64) (uint64, error) {
	priv := jrt.PrivAddr(t.ID, it.priv.Slot)
	in := it.inst
	in.M = guest.Mem{Base: guest.RegNone, Index: guest.RegNone, Scale: 1, Disp: int64(priv)}
	return vm.ExecInst(ex.M, t.Ctx, &in, next)
}

// execMainStackRead redirects a read-only stack access to the main
// thread's stack frame (MEM_MAIN_STACK handler). The access' symbolic
// offset from the entry SP equals its current dynamic offset, so the
// address is mainSP + (effaddr - threadSP-at-entry); worker SPs are
// rebased at LOOP_INIT, so the entry SP is simply the worker's SP base.
func (ex *Executor) execMainStackRead(t *jrt.Thread, it *titem, next uint64) (uint64, error) {
	lc := ex.loop
	eff := t.Ctx.EffAddr(it.inst.M)
	var entrySP uint64
	if t.ID == 0 {
		entrySP = lc.MainSP
	} else {
		entrySP = jrt.StackTopFor(t.ID)
	}
	addr := lc.MainSP + (eff - entrySP)
	in := it.inst
	in.M = guest.Mem{Base: guest.RegNone, Index: guest.RegNone, Scale: 1, Disp: int64(addr)}
	return vm.ExecInst(ex.M, t.Ctx, &in, next)
}

// execPatchedBound executes the exit compare against the thread's
// chunk bound instead of the original loop bound (LOOP_UPDATE_BOUND
// handler; per-thread code caches let every thread see its own bound).
func (ex *Executor) execPatchedBound(t *jrt.Thread, it *titem, next uint64) (uint64, error) {
	lc := ex.loop
	c := t.Ctx
	c.Cycles += it.inst.Op.Cycles()
	c.Insts++
	iv := int64(c.Reg(it.bound.IVReg))
	bound := int64(lc.BoundValue[t.ID])
	c.ZF, c.LF = iv == bound, iv < bound
	return next, nil
}

// runHandler executes one pre-instruction rule handler.
func (ex *Executor) runHandler(t *jrt.Thread, it *titem, r rules.Rule) (*redirect, error) {
	switch r.ID {
	case rules.PROF_LOOP_ITER:
		first := !ex.Cov.IsActive(int(r.LoopID))
		ex.Cov.EnterIter(int(r.LoopID))
		ex.Dep.EnterIter(int(r.LoopID), first)
	case rules.PROF_LOOP_FINISH:
		ex.Cov.Finish(int(r.LoopID))
	case rules.PROF_MEM_ACCESS:
		in := it.inst
		if in.Op.HasMem() {
			ex.Dep.Record(int(r.LoopID), t.Ctx.EffAddr(in.M), in.AccessWidth(), in.WritesMem())
		}
	case rules.PROF_EXCALL_START:
		ex.Ex.Start(r.Addr)
	case rules.PROF_EXCALL_FINISH:
		ex.Ex.Finish()

	case rules.THREAD_SCHEDULE, rules.THREAD_YIELD:
		// Pool transitions are modelled inside the LOOP_INIT/FINISH
		// handlers; the rules themselves cost nothing extra.

	case rules.LOOP_INIT:
		if !ex.inParallel && t.ID == 0 && !ex.seqLatched(r.LoopID) {
			rd, err := ex.runParallelLoop(t, r)
			if err == nil && rd == nil {
				// Sequential fallback: latch so the handler does not
				// re-fire on every header execution of this invocation.
				ex.setSeqLatch(r.LoopID, true)
			}
			return rd, err
		}
	case rules.LOOP_FINISH:
		// Reached sequentially (fallback path): release the latch so
		// the next invocation re-attempts parallelisation.
		if !ex.inParallel {
			ex.setSeqLatch(r.LoopID, false)
		}

	case rules.MEM_BOUNDS_CHECK:
		// Evaluated inside runParallelLoop; standalone occurrence (e.g.
		// sequential fallback path) costs nothing.

	case rules.TX_START:
		if ex.hostParActive {
			// See ErrScanSyscall: speculation needs the round-robin
			// commit order.
			return nil, ErrScanTx
		}
		if ex.inParallel && ex.tx[t.ID] == nil && !ex.suppressTx[t.ID] {
			cp := stm.Checkpoint{GPR: t.Ctx.GPR, ZF: t.Ctx.ZF, LF: t.Ctx.LF, PC: it.addr}
			if spare := ex.txSpare[t.ID]; spare != nil {
				spare.Reset(ex.M.Mem, cp)
				ex.tx[t.ID] = spare
				ex.txSpare[t.ID] = nil
			} else {
				ex.tx[t.ID] = stm.Begin(ex.M.Mem, cp)
			}
			ex.txStartAddr[t.ID] = it.addr
			t.Ctx.Bus = ex.tx[t.ID]
			t.Ctx.Cycles += ex.Cfg.Cost.TxStart
			ex.Stats.TxStarted++
		}
	case rules.TX_FINISH:
		if tx := ex.tx[t.ID]; tx != nil {
			return ex.finishTx(t, tx)
		}
		// Non-speculative re-execution completed.
		ex.suppressTx[t.ID] = false

	case rules.MEM_SPILL_REG, rules.MEM_RECOVER_REG:
		// Register stealing is unnecessary in this DBM: handlers access
		// thread state directly rather than borrowing registers.
	}
	return nil, nil
}

// finishTx validates and commits (or aborts) thread t's transaction
// (TX_FINISH handler, figure 5).
func (ex *Executor) finishTx(t *jrt.Thread, tx *stm.Tx) (*redirect, error) {
	c := t.Ctx
	c.Cycles += int64(tx.ReadSetSize()) * ex.Cfg.Cost.TxValidatePerWord
	ex.Stats.SpecReads += tx.NumReads
	ex.Stats.SpecWrites += tx.NumWrites
	if tx.Validate() {
		c.Cycles += int64(tx.WriteSetSize()) * ex.Cfg.Cost.TxCommitPerWord
		tx.Commit()
		ex.tx[t.ID] = nil
		ex.txSpare[t.ID] = tx
		c.Bus = ex.views[t.ID]
		ex.Stats.TxCommits++
		return nil, nil
	}
	// Abort: roll back to the checkpoint and re-execute. The retry runs
	// non-speculatively, which is safe because the scheduler only steps
	// an aborted thread once it is the oldest (see parallel.go).
	cp := tx.Checkpoint()
	c.GPR = cp.GPR
	c.ZF, c.LF = cp.ZF, cp.LF
	ex.tx[t.ID] = nil
	ex.txSpare[t.ID] = tx
	c.Bus = ex.views[t.ID]
	ex.suppressTx[t.ID] = true
	t.Oldest = false // cleared; scheduler recomputes
	ex.Stats.TxAborts++
	return &redirect{pc: cp.PC}, nil
}
