package dbm

import (
	"janus/internal/guest"
	"janus/internal/jrt"
	"janus/internal/rules"
)

// execKind says how an instruction in a translated block executes.
type execKind uint8

const (
	// execNormal: unmodified guest semantics.
	execNormal execKind = iota
	// execPrivatise: memory operand redirected to a TLS private slot.
	execPrivatise
	// execMainStack: stack read redirected to the main thread's stack.
	execMainStack
	// execBound: exit compare tests the thread's patched bound.
	execBound
)

// titem is one instruction in a translated block: the original
// instruction plus the transformations the rewrite rules attached.
type titem struct {
	addr uint64
	inst guest.Inst
	// pre are the rules whose handlers run before the instruction.
	pre []rules.Rule
	// kind selects the execution transformation.
	kind execKind
	// priv carries MEM_PRIVATISE parameters.
	priv rules.MemPrivatiseData
	// bound carries LOOP_UPDATE_BOUND parameters.
	bound rules.UpdateBoundData
	// loopID of the transforming rule (for kind != execNormal).
	loopID int32
	// touchesMem and writesMem cache inst.ReadsMem()/WritesMem() so the
	// per-instruction dispatch loop never re-derives them.
	touchesMem bool
	writesMem  bool
}

// tblock is one translated basic block in a thread's code cache.
type tblock struct {
	start uint64
	items []titem
	// end is the fall-through address after the block.
	end uint64
	// hasSyscall marks blocks containing a SYSCALL: the host-parallel
	// engine refuses to execute them (syscalls are schedule-ordered),
	// turning any unsoundness in the eligibility scan into a loud
	// error instead of a data race.
	hasSyscall bool
	// scanLoop/scanOK memoise the host-parallel allowlist verdict for
	// this block (static per loop): scanOK is valid while scanLoop
	// matches the active loop, so steady-state dispatch skips the
	// scanned-set map lookup. Blocks are thread-private, so stamping
	// needs no synchronisation.
	scanLoop int32
	scanOK   bool
	// chargeMask caches, one bit per guest-thread owner, that this
	// block's translation cost has already been charged to that owner
	// (work-stealing regions only; see chargeStealOwner). Blocks are
	// thread-private, so stamping needs no synchronisation.
	chargeMask uint64
	// linkPC/linkBlk form a two-entry inline cache mapping this block's
	// observed successor addresses to their translated blocks (the
	// DBM's block linking): a taken/not-taken pair covers a conditional
	// branch, so steady-state dispatch skips the code-cache hash lookup.
	linkPC  [2]uint64
	linkBlk [2]*tblock
}

// maxBlockLen caps translated block length.
const maxBlockLen = 128

// blockFor returns thread t's translated block at addr, translating and
// caching it on a miss (the just-in-time recompilation step of figure
// 1(b)).
func (ex *Executor) blockFor(t *jrt.Thread, addr uint64) (*tblock, error) {
	// Block linking: the previous block's inline cache resolves its
	// common successors without touching the code-cache map.
	prev := ex.lastBlk[t.ID]
	if prev != nil {
		if prev.linkPC[0] == addr && prev.linkBlk[0] != nil {
			return prev.linkBlk[0], nil
		}
		if prev.linkPC[1] == addr && prev.linkBlk[1] != nil {
			return prev.linkBlk[1], nil
		}
	}
	cache := ex.caches[t.ID]
	if ex.stealActive {
		cache = ex.stealCaches[t.ID]
	}
	b, ok := cache[addr]
	if !ok {
		var err error
		b, err = ex.translate(addr)
		if err != nil {
			return nil, err
		}
		cache[addr] = b
		// Translation stats accumulate on the thread (folded into
		// ex.Stats at deterministic points) so host-parallel threads
		// translating concurrently never touch shared counters. The
		// charged set keeps the charge unique per guest thread even
		// when a work-stealing region already charged this owner for
		// the block (in which case the static engines would have found
		// it warm in the owner's cache). Work-stealing regions fill
		// worker-private stealCaches uncharged here and charge owners
		// deterministically in chargeStealOwner instead.
		if !ex.stealActive && !ex.charged[t.ID][addr] {
			ex.charged[t.ID][addr] = true
			if ex.hostParActive {
				// Journal charges made inside a speculative region so a
				// recovery can undo exactly these (lock-free: only the
				// owning thread appends to its own list).
				ex.chargeUndo[t.ID] = append(ex.chargeUndo[t.ID], addr)
			}
			t.TransBlocks++
			t.TransInsts += int64(len(b.items))
			cost := int64(len(b.items)) * ex.Cfg.Cost.TransPerInst
			t.TransCycles += cost
			t.Ctx.Cycles += cost
		}
	}
	if prev != nil {
		if prev.linkBlk[0] == nil {
			prev.linkPC[0], prev.linkBlk[0] = addr, b
		} else {
			prev.linkPC[1], prev.linkBlk[1] = addr, b
		}
	}
	return b, nil
}

// translate decodes one basic block starting at addr and applies the
// rewrite rules found in the schedule hash table (figure 2(b)).
func (ex *Executor) translate(addr uint64) (*tblock, error) {
	b := &tblock{start: addr, scanLoop: -1}
	a := addr
	for len(b.items) < maxBlockLen {
		in, err := ex.M.FetchInst(a)
		if err != nil {
			if len(b.items) > 0 {
				// Lazy decoding: stop at the first undecodable byte;
				// execution never falls through here (e.g. an exit
				// syscall precedes it).
				break
			}
			return nil, err
		}
		it := titem{addr: a, inst: in, writesMem: in.WritesMem()}
		it.touchesMem = it.writesMem || in.ReadsMem()
		if in.Op == guest.SYSCALL {
			b.hasSyscall = true
		}
		for _, r := range ex.Ix.At(a) {
			ex.applyRule(&it, r)
		}
		b.items = append(b.items, it)
		a += guest.InstSize
		if in.Op.IsBlockEnd() {
			break
		}
		// A rule on the next address that begins a region (LOOP_INIT,
		// LOOP_FINISH, profiling) must sit at a block head so its
		// handler runs exactly when control reaches it; end the block
		// early. This mirrors how a DBM splits blocks at instrumented
		// addresses.
		if ex.Ix.Has(a) {
			break
		}
	}
	b.end = a
	return b, nil
}

// applyRule is the rewrite-rule interpreter: each rule ID has a handler
// that transforms the instruction (figure 2(b)'s handler table). Rules
// are applied in schedule order.
func (ex *Executor) applyRule(it *titem, r rules.Rule) {
	switch r.ID {
	case rules.MEM_PRIVATISE:
		if !ex.Cfg.Parallel {
			return
		}
		it.kind = execPrivatise
		it.priv = r.Data.(rules.MemPrivatiseData)
		it.loopID = r.LoopID
	case rules.MEM_MAIN_STACK:
		if !ex.Cfg.Parallel {
			return
		}
		it.kind = execMainStack
		it.loopID = r.LoopID
	case rules.LOOP_UPDATE_BOUND:
		if !ex.Cfg.Parallel {
			return
		}
		it.kind = execBound
		it.bound = r.Data.(rules.UpdateBoundData)
		it.loopID = r.LoopID
	case rules.PROF_LOOP_ITER, rules.PROF_LOOP_FINISH, rules.PROF_MEM_ACCESS,
		rules.PROF_LOOP_START, rules.PROF_EXCALL_START, rules.PROF_EXCALL_FINISH:
		if ex.Cfg.Profile {
			it.pre = append(it.pre, r)
		}
	case rules.MEM_BOUNDS_CHECK, rules.THREAD_SCHEDULE, rules.THREAD_YIELD,
		rules.LOOP_INIT, rules.LOOP_FINISH, rules.TX_START, rules.TX_FINISH:
		if ex.Cfg.Parallel {
			it.pre = append(it.pre, r)
		}
	case rules.MEM_SPILL_REG, rules.MEM_RECOVER_REG:
		if ex.Cfg.Parallel {
			it.pre = append(it.pre, r)
		}
	}
}

// flushCaches models the paper's code-cache flush when a failed runtime
// check forces the original sequential code to be reloaded. Dispatch
// state referencing flushed blocks (the per-thread last block driving
// block linking) is dropped with them.
func (ex *Executor) flushCaches() {
	for i := range ex.caches {
		ex.caches[i] = map[uint64]*tblock{}
		ex.stealCaches[i] = map[uint64]*tblock{}
		ex.charged[i] = map[uint64]bool{}
		ex.lastBlk[i] = nil
	}
	ex.Stats.CacheFlushes++
}
