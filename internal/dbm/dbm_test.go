package dbm

import (
	"math"
	"testing"

	"janus/internal/analyzer"
	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
	"janus/internal/rules"
	"janus/internal/vm"
)

// pipeline analyzes exe, selects loops, generates the parallel schedule
// and runs under the DBM with the given thread count.
func pipeline(t *testing.T, exe *obj.Executable, threads int, libs ...*obj.Library) (*Result, *Executor) {
	t.Helper()
	p, err := analyzer.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	p.SelectLoops(analyzer.SelectOptions{UseChecks: true})
	sched, err := p.GenParallelSchedule()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := New(exe, sched, DefaultConfig(threads), libs...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, ex
}

// nativeOf runs the program natively for comparison.
func nativeOf(t *testing.T, exe *obj.Executable, libs ...*obj.Library) *vm.Result {
	t.Helper()
	res, err := vm.RunNative(exe, libs...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// buildScale builds: for i in 0..n-1: dst[i] = src[i]*3; write(sum of
// dst via second loop); exit.
func buildScale(t *testing.T, n int64) *obj.Executable {
	t.Helper()
	b := asm.NewBuilder("scale")
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i)*7 + 1
	}
	b.DataI64("src", src)
	b.Data("dst", int(n*8))
	f := b.Func("main")
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, "src", 0)
	f.MoviData(guest.R9, "dst", 0)
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.OpI(guest.IMULI, guest.R3, 3)
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	// Checksum sequentially.
	sum, sumDone := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Movi(guest.R2, 0)
	f.Bind(sum)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, sumDone)
	f.Ld(guest.R3, guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8})
	f.Op(guest.ADD, guest.R2, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, sum)
	f.Bind(sumDone)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Movi(guest.R0, guest.SysExit)
	f.Movi(guest.R1, 0)
	f.Syscall()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestParallelDOALLCorrectAndFaster(t *testing.T) {
	exe := buildScale(t, 4096)
	native := nativeOf(t, exe)
	res8, ex8 := pipeline(t, exe, 8)
	if res8.Output[0] != native.Output[0] {
		t.Fatalf("output: parallel %d, native %d", res8.Output[0], native.Output[0])
	}
	if ex8.DataHash() != native.MemHash {
		t.Fatal("memory image differs from native")
	}
	if ex8.Stats.ParRegions == 0 {
		t.Fatal("no parallel region executed")
	}
	res1, _ := pipeline(t, exe, 1)
	if res1.Output[0] != native.Output[0] {
		t.Fatal("1-thread output wrong")
	}
	speedup := float64(res1.Cycles) / float64(res8.Cycles)
	if speedup < 1.5 {
		t.Fatalf("8-thread speedup only %.2fx (1T=%d cycles, 8T=%d)", speedup, res1.Cycles, res8.Cycles)
	}
}

func TestBareDBMSlowerThanNative(t *testing.T) {
	exe := buildScale(t, 1024)
	native := nativeOf(t, exe)
	ex, err := New(exe, nil, Config{Threads: 1, Cost: DefaultCost()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != native.Output[0] {
		t.Fatal("bare DBM changes results")
	}
	if res.Cycles <= native.Cycles {
		t.Fatalf("DBM should add overhead: dbm=%d native=%d", res.Cycles, native.Cycles)
	}
	// But the overhead must be modest once the code cache warms up.
	if float64(res.Cycles) > 2.0*float64(native.Cycles) {
		t.Fatalf("DBM overhead too high: %d vs %d", res.Cycles, native.Cycles)
	}
}

func TestReductionLoop(t *testing.T) {
	b := asm.NewBuilder("reduce")
	const n = 2000
	vals := make([]float64, n)
	want := 0.0
	for i := range vals {
		vals[i] = float64(i) * 0.5
		want += vals[i]
	}
	b.DataF64("a", vals)
	f := b.Func("main")
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, "a", 0)
	f.Movi(guest.R1, 0)
	f.Movi(guest.R2, 0) // sum (float bits of +0.0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.Op(guest.FADD, guest.R2, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.Movi(guest.R0, guest.SysWriteF)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	native := nativeOf(t, exe)
	res, ex := pipeline(t, exe, 4)
	got := math.Float64frombits(res.Output[0])
	wantN := math.Float64frombits(native.Output[0])
	// Reduction reassociation: allow tiny FP drift.
	if math.Abs(got-wantN) > 1e-6*math.Abs(wantN) {
		t.Fatalf("sum = %v, native %v", got, wantN)
	}
	if ex.Stats.ParRegions == 0 {
		t.Fatal("reduction loop did not parallelise")
	}
	_ = want
}

// buildAliasProgram builds a loop whose source/dest pointers are loaded
// from memory; ptrB either aliases ptrA (overlap) or not.
func buildAliasProgram(t *testing.T, overlap bool) *obj.Executable {
	t.Helper()
	b := asm.NewBuilder("aliasy")
	const n = 512
	b.Data("bufA", 8*2*n)
	b.Data("ptrs", 16)
	f := b.Func("main")
	// ptrs[0] = &bufA; ptrs[1] = &bufA[n] or &bufA[1] if overlapping.
	f.MoviData(guest.R2, "bufA", 0)
	f.StData("ptrs", 0, guest.R2)
	off := int64(8 * n)
	if overlap {
		off = 8
	}
	f.MoviData(guest.R2, "bufA", off)
	f.StData("ptrs", 8, guest.R2)
	// for i: dst[i] = src[i] + 1  (dst = ptrs[1], src = ptrs[0])
	f.LdData(guest.R8, "ptrs", 0)
	f.LdData(guest.R9, "ptrs", 8)
	loop, done := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.OpI(guest.ADDI, guest.R3, 1)
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	// checksum of whole buffer
	f.MoviData(guest.R8, "bufA", 0)
	sum, sumDone := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Movi(guest.R2, 0)
	f.Bind(sum)
	f.Cmpi(guest.R1, 2*n)
	f.J(guest.JGE, sumDone)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.Op(guest.ADD, guest.R2, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, sum)
	f.Bind(sumDone)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestBoundsCheckPassesParallelises(t *testing.T) {
	exe := buildAliasProgram(t, false)
	native := nativeOf(t, exe)
	res, ex := pipeline(t, exe, 4)
	if res.Output[0] != native.Output[0] {
		t.Fatalf("output %d != native %d", res.Output[0], native.Output[0])
	}
	if ex.Stats.ChecksRun == 0 {
		t.Fatal("bounds check never ran")
	}
	if ex.Stats.ChecksFailed != 0 {
		t.Fatal("disjoint arrays failed the check")
	}
	if ex.Stats.ParRegions == 0 {
		t.Fatal("loop with passing check did not parallelise")
	}
}

func TestBoundsCheckFailFallsBackSequentially(t *testing.T) {
	exe := buildAliasProgram(t, true)
	native := nativeOf(t, exe)
	res, ex := pipeline(t, exe, 4)
	if res.Output[0] != native.Output[0] {
		t.Fatalf("aliased fallback output %d != native %d", res.Output[0], native.Output[0])
	}
	if ex.Stats.ChecksFailed == 0 {
		t.Fatal("overlapping arrays passed the check")
	}
	// The aliased copy loop must fall back; the independent checksum
	// loop still parallelises, so exactly one region runs.
	if ex.Stats.ParRegions != 1 {
		t.Fatalf("expected only the checksum loop to parallelise, got %d regions", ex.Stats.ParRegions)
	}
	if ex.Stats.SeqFallbacks == 0 {
		t.Fatal("fallback not recorded")
	}
	if ex.Stats.CacheFlushes == 0 {
		t.Fatal("failed check should flush the modified code cache")
	}
}

func TestPrivatisedScalar(t *testing.T) {
	b := asm.NewBuilder("priv")
	const n = 600
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i)
	}
	b.DataI64("src", src)
	b.Data("dst", 8*n)
	b.Data("tmp", 8)
	f := b.Func("main")
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, "src", 0)
	f.MoviData(guest.R9, "dst", 0)
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
	f.StData("tmp", 0, guest.R3) // write tmp
	f.LdData(guest.R4, "tmp", 0) // read tmp
	f.OpI(guest.IMULI, guest.R4, 5)
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R4)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	// read tmp after loop (expects last iteration's value) + checksum dst
	f.LdData(guest.R5, "tmp", 0)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R5)
	f.Syscall()
	f.LdData(guest.R6, "dst", 8*(n-1))
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R6)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	native := nativeOf(t, exe)
	res, ex := pipeline(t, exe, 4)
	if res.Output[0] != native.Output[0] || res.Output[1] != native.Output[1] {
		t.Fatalf("outputs %v != native %v", res.Output, native.Output)
	}
	if ex.Stats.ParRegions == 0 {
		t.Fatal("privatisable loop did not parallelise")
	}
	if ex.DataHash() != native.MemHash {
		t.Fatal("privatised cell not copied back correctly")
	}
}

func TestMainStackRedirect(t *testing.T) {
	b := asm.NewBuilder("stackread")
	const n = 400
	b.Data("dst", 8*n)
	f := b.Func("main")
	// Push a constant scale factor onto the stack; the loop reads it.
	f.Movi(guest.R2, 11)
	f.Push(guest.R2)
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R9, "dst", 0)
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R3, guest.Mem{Base: guest.SP, Index: guest.RegNone, Scale: 1}) // read-only stack slot
	f.Op(guest.IMUL, guest.R3, guest.R1)
	f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.Pop(guest.R2)
	f.LdData(guest.R4, "dst", 8*(n-1))
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R4)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	native := nativeOf(t, exe)
	res, ex := pipeline(t, exe, 4)
	if res.Output[0] != native.Output[0] {
		t.Fatalf("stack-redirect output %d != native %d (expect %d)", res.Output[0], native.Output[0], 11*(n-1))
	}
	if ex.Stats.ParRegions == 0 {
		t.Fatal("stack-reading loop did not parallelise")
	}
}

func TestSharedLibrarySpeculation(t *testing.T) {
	// Library function: fsq(x) = x*x (reads no heap; like the paper's
	// pow call with 0 writes, speculation always commits).
	lb := asm.NewBuilder("libm")
	sq := lb.Func("fsq")
	sq.Mov(guest.R0, guest.R1)
	sq.Op(guest.FMUL, guest.R0, guest.R1)
	sq.Ret()
	lib, err := lb.BuildLibrary(obj.DefaultLibBase)
	if err != nil {
		t.Fatal(err)
	}

	b := asm.NewBuilder("speclib")
	b.Import("fsq")
	const n = 256
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i) * 0.25
	}
	b.DataF64("src", vals)
	b.Data("dst", 8*n)
	f := b.Func("main")
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, "src", 0)
	f.MoviData(guest.R9, "dst", 0)
	f.Movi(guest.R6, 0) // induction in callee-saved register
	f.Bind(loop)
	f.Cmpi(guest.R6, n)
	f.J(guest.JGE, done)
	f.Ld(guest.R1, guest.Mem{Base: guest.R8, Index: guest.R6, Scale: 8})
	f.Call("fsq")
	f.St(guest.Mem{Base: guest.R9, Index: guest.R6, Scale: 8}, guest.R0)
	f.OpI(guest.ADDI, guest.R6, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.LdData(guest.R2, "dst", 8*(n-1))
	f.Movi(guest.R0, guest.SysWriteF)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	native := nativeOf(t, exe, lib)
	res, ex := pipeline(t, exe, 4, lib)
	if res.Output[0] != native.Output[0] {
		t.Fatalf("speculative output %v != native %v",
			math.Float64frombits(res.Output[0]), math.Float64frombits(native.Output[0]))
	}
	if ex.Stats.ParRegions == 0 {
		t.Fatal("library-calling loop did not parallelise")
	}
	if ex.Stats.TxStarted == 0 || ex.Stats.TxCommits == 0 {
		t.Fatalf("speculation not exercised: %+v", ex.Stats)
	}
	if ex.Stats.TxAborts != 0 {
		t.Fatalf("read-only library call should never abort: %d aborts", ex.Stats.TxAborts)
	}
}

func TestProfilingCoverageAndDependence(t *testing.T) {
	exe := buildAliasProgram(t, true) // overlapping: dependence must be observed
	p, err := analyzer.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	prof := p.GenProfileSchedule()
	if len(prof.Rules) == 0 {
		t.Fatal("empty profiling schedule")
	}
	ex, err := New(exe, prof, Config{Threads: 1, Profile: true, Cost: DefaultCost()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	fr := ex.Cov.Fractions()
	if len(fr) == 0 {
		t.Fatal("no coverage recorded")
	}
	var total float64
	for _, f := range fr {
		total += f
	}
	if total <= 0 {
		t.Fatal("zero coverage")
	}
	obs := ex.Dep.Observed()
	if len(obs) == 0 {
		t.Fatal("aliased loop dependence not observed by profiling")
	}
}

func TestScheduleRoundTripThroughBytes(t *testing.T) {
	// The DBM must behave identically when the schedule goes through
	// its serialised form (the real deployment path).
	exe := buildScale(t, 512)
	p, _ := analyzer.Analyze(exe)
	p.SelectLoops(analyzer.SelectOptions{UseChecks: true})
	sched, _ := p.GenParallelSchedule()
	img, err := sched.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := rules.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := New(exe, loaded, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	native := nativeOf(t, exe)
	if res.Output[0] != native.Output[0] {
		t.Fatal("serialised schedule changes behaviour")
	}
	if ex.Stats.ParRegions == 0 {
		t.Fatal("serialised schedule did not parallelise")
	}
}

func TestSmallTripFallsBack(t *testing.T) {
	exe := buildScale(t, 8) // 8 iterations over 8 threads: below floor
	native := nativeOf(t, exe)
	res, ex := pipeline(t, exe, 8)
	if res.Output[0] != native.Output[0] {
		t.Fatal("fallback output wrong")
	}
	if ex.Stats.ParRegions != 0 {
		t.Fatal("tiny loop should not parallelise")
	}
	if ex.Stats.SeqFallbacks == 0 {
		t.Fatal("fallback not recorded")
	}
}
