package dbm

import (
	"janus/internal/guest"
	"janus/internal/jrt"
	"janus/internal/rules"
	"janus/internal/vm"
)

// Region-level speculation recovery.
//
// The speculative engines (hostpar.go, steal.go) run a region
// concurrently only after the eligibility scan proves the threads
// cannot observe each other — but the backstops that enforce that
// proof at runtime (the allowlist, the shared step budget, panic
// containment) can still trip. Rather than abort the run, the region
// is executed under an undo log and re-executed deterministically:
//
//	snapshot memory (vm.Checkpoint, copy-on-first-write)
//	arm the fault injector, journal translation charges
//	run the speculative engine
//	on success: discard the snapshot and the journal
//	on ANY failure: restore memory, undo the journaled charges,
//	  drop the region caches, rebuild the guest threads, demote the
//	  loop to the round-robin engine for the rest of the run, and
//	  re-execute the region round-robin
//
// The round-robin re-execution is the arbiter: a transient failure
// (injected fault, defeated scan, exhausted budget, worker panic)
// re-executes cleanly and the run renders byte-identical output to a
// pure round-robin run; a genuine guest fault (divide by zero, bad
// fetch) reproduces deterministically and fails the run with
// round-robin's error.
//
// Why the rollback is complete — the contamination channels of a
// failed speculative attempt, and how each is undone:
//
//   - Guest memory: restored exactly by the checkpoint.
//   - Thread contexts (registers, cycles, BoundValue): the attempt's
//     jrt.Threads are dropped unfolded and rebuilt from the loop-entry
//     snapshot, so no counter or register from the failed attempt
//     survives.
//   - Translation charges: blockFor/chargeStealOwner journal every
//     (thread, block) pair first charged inside the region; rollback
//     deletes exactly those entries, so the re-execution re-charges
//     them just as a from-scratch round-robin run would.
//   - Code caches: cleared wholesale (selective eviction is unsound —
//     sibling blocks' inline link caches bypass the cache map).
//     Harmless to virtual time: re-translating an already-charged
//     block adds zero cycles, and the charged sets are preserved.
//   - Executor stats, profilers, transactions, output: unreachable
//     from inside a host-parallel region by construction (profilers
//     are ineligible, syscalls/TX trip the allowlist before running).

// runRegionRecoverable executes an eligible region under a speculative
// engine with full undo, falling back to the round-robin engine on any
// failure. It returns the threads that actually produced the region's
// result (the rebuilt set when recovery ran).
func (ex *Executor) runRegionRecoverable(r rules.Rule, threads []*jrt.Thread, lc *jrt.LoopCtx, ld rules.LoopInitData, ubd rules.UpdateBoundData, entry func(guest.Reg) uint64, n int64, chunks []jrt.Chunk, scanned map[uint64]bool) ([]*jrt.Thread, error) {
	cp := ex.M.Mem.Snapshot()
	ex.inj.Arm()
	var specErr error
	if ex.stealEligible(r.LoopID, ld) {
		ex.Stats.StealRegions++
		specErr = ex.runRegionStealing(r.LoopID, threads, lc, ld, ubd, entry, n, scanned)
	} else {
		specErr = ex.runRegionHostParallel(r.LoopID, threads, lc, scanned)
	}
	if specErr == nil {
		cp.Discard()
		ex.commitCharges()
		return threads, nil
	}

	// Recover: undo every effect of the failed attempt, then re-execute
	// deterministically.
	cp.Restore()
	ex.rollbackCharges()
	ex.clearRegionCaches()
	ex.Stats.ParRecoveries++
	ex.demote(r.LoopID)
	rebuilt, err := ex.buildRegionThreads(ld, lc, ubd, entry, chunks)
	if err != nil {
		return threads, err
	}
	return rebuilt, ex.runRegionRoundRobin(r.LoopID, rebuilt, lc)
}

// buildRegionThreads constructs the region's guest threads from the
// loop-entry register snapshot: per-thread contexts with induction
// variables set to chunk bases, reductions at identity, rebased worker
// stacks, and the per-thread patched bounds written into lc.BoundValue.
// Recovery calls it a second time to rebuild untainted threads.
func (ex *Executor) buildRegionThreads(ld rules.LoopInitData, lc *jrt.LoopCtx, ubd rules.UpdateBoundData, entry func(guest.Reg) uint64, chunks []jrt.Chunk) ([]*jrt.Thread, error) {
	threads := make([]*jrt.Thread, ex.Cfg.Threads)
	for i := 0; i < ex.Cfg.Threads; i++ {
		ctx := &vm.Context{ID: i, Bus: ex.views[i]}
		ctx.GPR = lc.EntryRegs
		ctx.GPR[guest.RegTLS] = jrt.TLSFor(i)
		if i != 0 {
			ctx.SetReg(guest.SP, jrt.StackTopFor(i))
		}
		for _, iv := range ld.Inductions {
			init := iv.Init.Eval(entry, 0)
			ctx.SetReg(iv.Reg, uint64(init+iv.Step*chunks[i].Lo))
		}
		for _, red := range ld.Reductions {
			ctx.SetReg(red.Reg, jrt.ReductionIdentity(red.Op))
		}
		bv, err := jrt.PatchedBound(ubd, entry, chunks[i].Hi)
		if err != nil {
			return nil, err
		}
		lc.BoundValue[i] = bv
		ctx.PC = ld.LoopStart
		th := &jrt.Thread{ID: i, Ctx: ctx, Lo: chunks[i].Lo, Hi: chunks[i].Hi, State: jrt.StateScheduled}
		if chunks[i].Lo >= chunks[i].Hi {
			th.State = jrt.StateDone
		}
		threads[i] = th
	}
	return threads, nil
}

// commitCharges drops the charge journal after a successful speculative
// region: the charges stand.
func (ex *Executor) commitCharges() {
	for i := range ex.chargeUndo {
		ex.chargeUndo[i] = ex.chargeUndo[i][:0]
	}
}

// rollbackCharges removes every (thread, block) translation charge
// first recorded inside the failed region, so re-execution re-charges
// them exactly as an untainted run would.
func (ex *Executor) rollbackCharges() {
	for t := range ex.chargeUndo {
		for _, addr := range ex.chargeUndo[t] {
			delete(ex.charged[t], addr)
		}
		ex.chargeUndo[t] = ex.chargeUndo[t][:0]
	}
}

// clearRegionCaches drops every code cache and dispatch anchor without
// touching the charged sets or the CacheFlushes counter: this is
// rollback bookkeeping, not the paper's modelled cache flush, and it
// must not perturb virtual time (re-translating a charged block is
// free).
func (ex *Executor) clearRegionCaches() {
	for i := range ex.caches {
		ex.caches[i] = map[uint64]*tblock{}
		ex.stealCaches[i] = map[uint64]*tblock{}
		ex.lastBlk[i] = nil
	}
}

// demoted reports whether a loop is latched onto the round-robin
// engine for the rest of the run.
func (ex *Executor) demoted(loopID int32) bool {
	return int(loopID) < len(ex.demotedLoop) && ex.demotedLoop[loopID]
}

// demote latches a loop onto the round-robin engine after a recovery,
// following the seqLoop grow pattern. Unlike the sequential-fallback
// latch this one is never released: the speculative attempt already
// failed once on this loop, and re-speculating would re-pay the
// checkpoint and re-risk the fault every invocation.
func (ex *Executor) demote(loopID int32) {
	if ex.demoted(loopID) {
		return
	}
	if int(loopID) >= len(ex.demotedLoop) {
		grown := make([]bool, loopID+1, 2*(loopID+1))
		copy(grown, ex.demotedLoop)
		ex.demotedLoop = grown
	}
	ex.demotedLoop[loopID] = true
	ex.Stats.DemotedLoops++
}
