package dbm

import (
	"testing"

	"janus/internal/analyzer"
	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
)

// TestSpeculationAbortAndRetry exercises the full abort path of the
// just-in-time STM: a shared library function performs a read-modify-
// write on a global counter, so concurrent transactions from different
// threads conflict. Value-based validation must catch the conflicts,
// the losers must roll back to their checkpoints and re-execute
// non-speculatively once oldest, and the final counter must still equal
// the iteration count (increments commute, so the program's final
// memory state is order-independent).
func TestSpeculationAbortAndRetry(t *testing.T) {
	const n = 64

	// Library: bump() { *counter += 1 } — the counter address arrives
	// in R1.
	lb := asm.NewBuilder("libcnt")
	bump := lb.Func("bump")
	bump.Ld(guest.R0, guest.Mem{Base: guest.R1, Index: guest.RegNone, Scale: 1})
	bump.OpI(guest.ADDI, guest.R0, 1)
	bump.St(guest.Mem{Base: guest.R1, Index: guest.RegNone, Scale: 1}, guest.R0)
	bump.Ret()
	lib, err := lb.BuildLibrary(obj.DefaultLibBase)
	if err != nil {
		t.Fatal(err)
	}

	// Program: for i in 0..n-1 { bump(&counter) }; write(counter).
	b := asm.NewBuilder("spinbump")
	b.Import("bump")
	b.Data("counter", 8)
	f := b.Func("main")
	loop, done := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R6, 0)
	f.Bind(loop)
	f.Cmpi(guest.R6, n)
	f.J(guest.JGE, done)
	f.MoviData(guest.R1, "counter", 0)
	f.Call("bump")
	f.OpI(guest.ADDI, guest.R6, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.LdData(guest.R2, "counter", 0)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	p, err := analyzer.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	// The loop has a library call, so it is ambiguous (dynamic). Select
	// it for speculation without dependence profiling, which would
	// otherwise (correctly) reject it — the point here is to drive the
	// abort machinery.
	p.SelectLoops(analyzer.SelectOptions{UseChecks: true})
	selected := 0
	for _, li := range p.Loops {
		if li.Selected {
			selected++
		}
	}
	if selected != 1 {
		t.Fatalf("selected %d loops", selected)
	}
	sched, err := p.GenParallelSchedule()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4)
	ex, err := New(exe, sched, cfg, lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != n {
		t.Fatalf("counter = %d, want %d (lost updates despite STM)", res.Output[0], n)
	}
	if ex.Stats.TxAborts == 0 {
		t.Fatal("conflicting RMW library calls must abort at least once")
	}
	if ex.Stats.TxCommits == 0 {
		t.Fatal("no transaction ever committed")
	}
	t.Logf("tx: %d started, %d commits, %d aborts", ex.Stats.TxStarted, ex.Stats.TxCommits, ex.Stats.TxAborts)
}

// TestSpeculationCommitHoldsUntilOldest checks that a transaction with
// buffered writes coming from a non-oldest thread still commits with
// correct values (the scheduler only steps aborted threads when they
// are oldest, and validation serialises RMW chains).
func TestSpeculationManyThreads(t *testing.T) {
	const n = 96
	lb := asm.NewBuilder("libcnt")
	bump := lb.Func("bump")
	bump.Ld(guest.R0, guest.Mem{Base: guest.R1, Index: guest.RegNone, Scale: 1})
	bump.OpI(guest.ADDI, guest.R0, 3)
	bump.St(guest.Mem{Base: guest.R1, Index: guest.RegNone, Scale: 1}, guest.R0)
	bump.Ret()
	lib, err := lb.BuildLibrary(obj.DefaultLibBase)
	if err != nil {
		t.Fatal(err)
	}
	b := asm.NewBuilder("spinbump8")
	b.Import("bump")
	b.Data("counter", 8)
	f := b.Func("main")
	loop, done := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R6, 0)
	f.Bind(loop)
	f.Cmpi(guest.R6, n)
	f.J(guest.JGE, done)
	f.MoviData(guest.R1, "counter", 0)
	f.Call("bump")
	f.OpI(guest.ADDI, guest.R6, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.LdData(guest.R2, "counter", 0)
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := analyzer.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	p.SelectLoops(analyzer.SelectOptions{UseChecks: true})
	sched, err := p.GenParallelSchedule()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := New(exe, sched, DefaultConfig(8), lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 3*n {
		t.Fatalf("counter = %d, want %d", res.Output[0], 3*n)
	}
}
