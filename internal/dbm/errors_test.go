package dbm

import (
	"errors"
	"strings"
	"testing"
)

func TestRegionErrorClassification(t *testing.T) {
	err := regionErr(7, 3, ErrScanEscaped)
	var re *RegionError
	if !errors.As(err, &re) {
		t.Fatalf("regionErr did not produce a *RegionError: %T", err)
	}
	if re.LoopID != 7 || re.Worker != 3 {
		t.Errorf("blame lost: loop %d worker %d, want 7/3", re.LoopID, re.Worker)
	}
	if !errors.Is(err, ErrScanEscaped) {
		t.Error("errors.Is cannot see through RegionError to the cause")
	}
	if errors.Is(err, ErrWorkerPanic) {
		t.Error("errors.Is matches an unrelated cause")
	}
	if got := err.Error(); !strings.Contains(got, "loop 7 worker 3") {
		t.Errorf("Error() drops the blame: %q", got)
	}
}

func TestRegionErrorNoWorkerBlame(t *testing.T) {
	err := regionErr(4, -1, ErrRegionStuck)
	if got := err.Error(); strings.Contains(got, "worker") {
		t.Errorf("Error() invents a worker for a region-wide failure: %q", got)
	} else if !strings.Contains(got, "loop 4") {
		t.Errorf("Error() drops the loop: %q", got)
	}
}

// A step error crossing nested helpers must keep the innermost blame:
// re-wrapping an existing RegionError is a no-op.
func TestRegionErrorNoDoubleWrap(t *testing.T) {
	inner := regionErr(7, 3, ErrRegionStuck)
	outer := regionErr(9, -1, inner)
	if outer != inner {
		t.Fatalf("regionErr re-wrapped an existing RegionError: %v", outer)
	}
}

func TestPanicErrClassifiesAsWorkerPanic(t *testing.T) {
	err := panicErr(5, 2, "index out of range", []byte("goroutine 1 [running]:\n..."))
	if !errors.Is(err, ErrWorkerPanic) {
		t.Error("panicErr does not classify as ErrWorkerPanic")
	}
	var re *RegionError
	if !errors.As(err, &re) {
		t.Fatalf("panicErr did not produce a *RegionError: %T", err)
	}
	if len(re.Stack) == 0 {
		t.Error("captured stack lost")
	}
	if got := err.Error(); !strings.Contains(got, "index out of range") {
		t.Errorf("panic value lost from message: %q", got)
	}
}

// The demotion latch: grows on demand, counts each loop once, never
// releases.
func TestDemotionLatch(t *testing.T) {
	ex := &Executor{}
	if ex.demoted(12) {
		t.Error("loop demoted before any demotion")
	}
	ex.demote(12)
	if !ex.demoted(12) || ex.demoted(11) || ex.demoted(13) {
		t.Error("latch imprecise after demote(12)")
	}
	ex.demote(12)
	ex.demote(3)
	if got := ex.Stats.DemotedLoops; got != 2 {
		t.Errorf("DemotedLoops = %d after demoting loops {12, 3}, want 2", got)
	}
	if !ex.demoted(12) || !ex.demoted(3) {
		t.Error("latch released")
	}
}
