package dbm

import (
	"runtime/debug"
	"sync"
	"sync/atomic"

	"janus/internal/faultinject"
	"janus/internal/guest"
	"janus/internal/jrt"
	"janus/internal/rules"
)

// Host-parallel region execution.
//
// The round-robin engine (parallel.go) steps guest threads on one
// goroutine; its fixed schedule is what makes speculative commit order
// and syscall interleaving deterministic. For the loops Janus actually
// parallelises, though, that schedule is pure overhead: the runtime
// bounds checks (and, for static DOALL loops, the static analysis)
// guarantee every word written by one thread is disjoint from every
// word any other thread touches, so the threads cannot observe each
// other and ANY schedule — including truly concurrent execution on
// host goroutines — produces bit-identical per-thread virtual clocks,
// registers and memory.
//
// hostParEligible proves the "cannot observe each other" part for the
// remaining channels a loop body could interact through:
//
//   - SYSCALL: SysWrite appends to the shared output stream and
//     SysAlloc bumps the shared heap frontier; both are ordered by the
//     round-robin schedule, so a body that may reach one must keep
//     that schedule.
//   - TX_START: speculation validates against shared memory and
//     commits in age order; concurrency would reorder commits.
//   - JMPI/CALLI: indirect control flow makes the reachable-code scan
//     unsound, so it conservatively rejects.
//
// The scan walks the static control-flow graph from the loop head,
// pruning at the loop's exit targets (every exit carries a LOOP_FINISH
// rule, and translated blocks always break at rule addresses, so a
// running thread is caught at an exit before executing past it). The
// verdict depends only on the binary and the schedule, never on an
// invocation, so it is cached per loop.

// hostParScanCap bounds the eligibility scan; bodies larger than this
// conservatively use the round-robin engine.
const hostParScanCap = 1 << 15

// hostParEligible returns the scanned body-address set if the loop
// starting at start may run its region on host goroutines under the
// current configuration, or nil if it must use the round-robin engine.
func (ex *Executor) hostParEligible(loopID int32, start uint64) map[uint64]bool {
	if !ex.Cfg.HostParallel || ex.Cfg.Profile || ex.Cfg.Threads <= 1 {
		return nil
	}
	// A loop demoted by a speculation recovery stays on the round-robin
	// engine for the rest of the run (see recover.go); the cached scan
	// verdict below remains valid, it just stops being consulted.
	if ex.demoted(loopID) {
		return nil
	}
	if set, seen := ex.hostParScan[loopID]; seen {
		return set
	}
	set := ex.scanHostParBody(loopID, start)
	ex.hostParScan[loopID] = set
	return set
}

// scanHostParBody walks the statically reachable code of one loop body
// and, if it is free of schedule-dependent effects, returns the set of
// visited addresses (nil otherwise). The set doubles as the runtime
// allowlist: a host-parallel worker refuses any block starting outside
// it, so even control flow the scan cannot see (a redirected return
// address) fails deterministically instead of executing unscanned code
// concurrently.
func (ex *Executor) scanHostParBody(loopID int32, start uint64) map[uint64]bool {
	exits := ex.exitTargets[loopID]
	// site distinguishes code reached at loop level (topLevel: a RET
	// here would pop a frame pushed before the region and escape it)
	// from code reached through a scanned CALL (inCall: its RET
	// returns to a scanned fall-through).
	const (
		topLevel = 1 << iota
		inCall
	)
	type item struct {
		addr uint64
		site uint8
	}
	seen := make(map[uint64]uint8)
	work := []item{{start, topLevel}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[it.addr]&it.site != 0 || exits[it.addr] {
			continue
		}
		if seen[it.addr] == 0 && len(seen) >= hostParScanCap {
			return nil
		}
		seen[it.addr] |= it.site
		for _, r := range ex.Ix.At(it.addr) {
			if r.ID == rules.TX_START {
				return nil
			}
		}
		in, err := ex.M.FetchInst(it.addr)
		if err != nil {
			return nil
		}
		next := item{it.addr + guest.InstSize, it.site}
		switch in.Op {
		case guest.SYSCALL:
			return nil
		case guest.JMPI, guest.CALLI:
			return nil
		case guest.RET:
			if it.site&topLevel != 0 {
				// Returning out of the function containing the loop
				// would leave the region without passing an exit target.
				return nil
			}
			// Path ends: the return address was pushed by a scanned
			// CALL, whose fall-through is already on the worklist.
		case guest.HALT:
			// Path ends.
		case guest.JMP:
			work = append(work, item{uint64(in.Imm), it.site})
		case guest.CALL:
			work = append(work, item{uint64(in.Imm), inCall}, next)
		case guest.JE, guest.JNE, guest.JL, guest.JLE, guest.JG, guest.JGE:
			work = append(work, item{uint64(in.Imm), it.site}, next)
		default:
			work = append(work, next)
		}
	}
	set := make(map[uint64]bool, len(seen))
	for a := range seen {
		set[a] = true
	}
	return set
}

// runRegionHostParallel executes the region with one host goroutine per
// guest thread. Eligibility (hostParEligible) guarantees the threads
// share no schedule-ordered state, so each goroutine simply runs its
// thread to its chunk exit; per-thread code caches, memory views and
// counters keep the hot paths free of locks. Results are bit-identical
// to runRegionRoundRobin.
func (ex *Executor) runRegionHostParallel(loopID int32, threads []*jrt.Thread, lc *jrt.LoopCtx, scanned map[uint64]bool) error {
	errs := make([]error, len(threads))
	// One region-wide block budget shared by all threads, matching the
	// round-robin engine's single per-block guard exactly, so a runaway
	// region trips after the same MaxSteps total under either engine.
	var budget atomic.Int64
	budget.Store(ex.Cfg.MaxSteps)
	if ex.inj.Fire(faultinject.BudgetExhaust) {
		// Forced budget exhaustion: every worker trips the runaway
		// backstop on its first block.
		budget.Store(0)
	}
	// failed cancels the siblings of a failing thread: any error sends
	// the whole region to recovery, so their remaining work is wasted.
	// Which threads record an error can depend on host scheduling (a
	// sibling may finish or notice the flag first); the region's
	// success/failure never does, and the round-robin re-execution —
	// not the specific message — is what determines the run's outcome.
	var failed atomic.Bool
	ex.hostParActive = true
	ex.hostParSet = scanned
	defer func() { ex.hostParActive = false; ex.hostParSet = nil }()
	var wg sync.WaitGroup
	for _, th := range threads {
		if th.State == jrt.StateDone {
			continue
		}
		th.State = jrt.StateRunning
		wg.Add(1)
		go func(th *jrt.Thread) {
			defer wg.Done()
			// Contain worker panics: a bug (or injected fault) in one
			// region must fail that region, never the process.
			defer func() {
				if p := recover(); p != nil {
					failed.Store(true)
					errs[th.ID] = panicErr(loopID, th.ID, p, debug.Stack())
				}
			}()
			errs[th.ID] = ex.runThreadToExit(loopID, th, lc, &budget, &failed)
		}(th)
	}
	wg.Wait()
	// Report the lowest-ID recorded error.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runThreadToExit drives one guest thread from the loop head to its
// chunk exit, charging each block to the region's shared runaway
// budget and abandoning the chunk once a sibling has failed.
func (ex *Executor) runThreadToExit(loopID int32, th *jrt.Thread, lc *jrt.LoopCtx, budget *atomic.Int64, failed *atomic.Bool) error {
	for {
		if failed.Load() {
			return nil
		}
		if ex.inj.Fire(faultinject.WorkerPanic) {
			panic("faultinject: forced worker panic")
		}
		if ex.inj.Fire(faultinject.Stall) {
			// Forced stall: report the region wedged, as a livelocked
			// worker eventually would.
			failed.Store(true)
			return regionErr(loopID, th.ID, ErrRegionStuck)
		}
		if budget.Add(-1) < 0 {
			if failed.Load() {
				return nil // a failing sibling may have drained the budget
			}
			failed.Store(true)
			return regionErr(loopID, th.ID, ErrRegionStuck)
		}
		if err := ex.stepBlock(th); err != nil {
			failed.Store(true)
			return regionErr(loopID, th.ID, err)
		}
		if lc.IsExit(th.Ctx.PC) {
			th.State = jrt.StateDone
			return nil
		}
	}
}
