// Package dbm is the Janus dynamic binary modifier: the DynamoRIO-like
// layer that translates basic blocks just-in-time into per-thread code
// caches, consults the rewrite-schedule hash table before caching, and
// invokes the rule handlers that transform the code (figure 2(b)).
//
// Execution is deterministic and the elapsed time of a parallel region
// is always the maximum thread virtual-cycle clock plus orchestration
// overheads (see ARCHITECTURE.md). Three region engines produce that
// result:
//
//   - round-robin: guest threads stepped at basic-block granularity on
//     one goroutine. Fully general — the fixed schedule orders
//     speculative commits and syscalls.
//   - host-parallel: one host goroutine per guest thread, used when a
//     static scan of the loop body proves the threads cannot observe
//     each other (see hostpar.go). Per-thread code caches, memory
//     views and counters keep the hot paths lock-free.
//   - work-stealing (the default for scan-eligible loops): the same
//     host-parallel execution over a finer partition — idle workers
//     steal subchunks from a shared set of deques, and every piece
//     folds back into its owning guest thread so the folded result is
//     bit-identical to static chunking (see steal.go).
//
// Simulated results — virtual cycles, figures, data hashes — are
// bit-identical between the engines and independent of GOMAXPROCS;
// only host wall-clock differs. (The full-image MemHash additionally
// covers worker-private scratch, which under work stealing records
// host scheduling; DataHash, the verification contract, never does.)
package dbm

import (
	"fmt"
	"sync"

	"janus/internal/faultinject"
	"janus/internal/guest"
	"janus/internal/jrt"
	"janus/internal/obj"
	"janus/internal/profiler"
	"janus/internal/rules"
	"janus/internal/stm"
	"janus/internal/vm"
)

// CostModel holds the virtual-cycle charges for DBM machinery. The
// defaults are tuned so the relative overheads match the paper's
// observations (≈6% average slowdown under the bare modifier, checks
// costing a few percent, speculation expensive per access).
type CostModel struct {
	// TransPerInst is charged once per instruction translated into a
	// code cache.
	TransPerInst int64
	// Dispatch is charged per basic-block entry (cache lookup + link).
	Dispatch int64
	// LoopInitBase/PerThread model LOOP_INIT (starting all threads).
	LoopInitBase      int64
	LoopInitPerThread int64
	// LoopFinishBase/PerThread model LOOP_FINISH (joining threads).
	LoopFinishBase      int64
	LoopFinishPerThread int64
	// CheckPerRange is charged per range pair in MEM_BOUNDS_CHECK.
	CheckPerRange int64
	// TxStart / TxPerAccess / TxValidatePerWord / TxCommitPerWord model
	// the software-transaction overheads.
	TxStart           int64
	TxPerAccess       int64
	TxValidatePerWord int64
	TxCommitPerWord   int64
}

// DefaultCost is the standard cost model.
func DefaultCost() CostModel {
	return CostModel{
		TransPerInst:        60,
		Dispatch:            1,
		LoopInitBase:        4000,
		LoopInitPerThread:   900,
		LoopFinishBase:      2000,
		LoopFinishPerThread: 400,
		CheckPerRange:       60,
		TxStart:             60,
		TxPerAccess:         6,
		TxValidatePerWord:   12,
		TxCommitPerWord:     8,
	}
}

// Config controls one DBM execution.
type Config struct {
	// Threads is the parallel thread count (>=1).
	Threads int
	// Parallel enables the parallelisation rule handlers.
	Parallel bool
	// Profile enables the profiling rule handlers.
	Profile bool
	// HostParallel runs eligible parallel regions on real host
	// goroutines (one per guest thread) instead of stepping guest
	// threads round-robin on one goroutine. Virtual-cycle results are
	// bit-identical either way — eligibility is established by a static
	// scan of the loop body (see hostpar.go) — so this trades nothing
	// but host wall-clock. Regions the scan cannot prove safe
	// (syscalls, indirect control flow, speculation) fall back to the
	// round-robin engine.
	HostParallel bool
	// WorkStealing subdivides each host-parallel region's static chunks
	// into ~StealFactor pieces per thread that idle host workers steal
	// from a shared set of deques, balancing host wall-clock when
	// per-iteration cost is uneven. Every piece's virtual-cycle cost is
	// folded back into the guest thread that owns it under static
	// chunking, so simulated results are bit-identical to the static
	// partitioner (see steal.go); only host wall-clock changes. Regions
	// the eligibility scan sends to the round-robin engine, and loops
	// with floating-point reductions, keep static chunks.
	WorkStealing bool
	// MinIterPerThread is the profitability floor: loops with fewer
	// iterations per thread run sequentially.
	MinIterPerThread int64
	// MaxSteps bounds total executed instructions.
	MaxSteps int64
	// Cost is the virtual-cycle cost model.
	Cost CostModel
	// Inject, when non-nil, arms deterministic fault injection inside
	// speculative regions (see internal/faultinject); nil costs
	// nothing.
	Inject *faultinject.Plan
}

// DefaultConfig returns a ready-to-use configuration.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:          threads,
		Parallel:         true,
		HostParallel:     true,
		WorkStealing:     true,
		MinIterPerThread: 4,
		MaxSteps:         vm.DefaultMaxSteps,
		Cost:             DefaultCost(),
	}
}

// Stats aggregates DBM counters for the evaluation figures.
type Stats struct {
	// Translation.
	TransBlocks int64
	TransInsts  int64
	TransCycles int64
	// Time breakdown (virtual cycles).
	ParCycles        int64
	InitFinishCycles int64
	CheckCycles      int64
	// Parallelisation events.
	Invocations int64
	ParRegions  int64
	// HostParRegions counts the regions that ran on host goroutines
	// (the remainder of ParRegions used the round-robin engine).
	HostParRegions int64
	// StealRegions counts the host-parallel regions that used the
	// work-stealing partitioner (a subset of HostParRegions).
	StealRegions int64
	SeqFallbacks int64
	CacheFlushes int64
	// ParRecoveries counts speculative regions that failed, rolled back
	// and re-executed round-robin; DemotedLoops counts the distinct
	// loops latched onto the round-robin engine by those recoveries.
	// Both are folded on the orchestrating goroutine only, so they are
	// deterministic for a given injection plan.
	ParRecoveries int64
	DemotedLoops  int64
	// Runtime checks.
	ChecksRun    int64
	ChecksFailed int64
	// Speculation.
	TxStarted  int64
	TxCommits  int64
	TxAborts   int64
	SpecReads  int64
	SpecWrites int64
	SpecInsts  int64
}

// checkKey locates the MEM_BOUNDS_CHECK rules guarding one loop at one
// LOOP_INIT site.
type checkKey struct {
	addr   uint64
	loopID int32
}

// Executor runs one program under the DBM.
type Executor struct {
	M     *vm.Machine
	Sched *rules.Schedule
	Ix    *rules.Index
	Cfg   Config

	Stats Stats

	// caches[t] is thread t's private code cache.
	caches []map[uint64]*tblock
	// charged[t] records the blocks whose translation cost has been
	// charged to guest thread t. For the sequential, round-robin and
	// static-chunk host-parallel paths this always mirrors caches[t] (a
	// block is charged exactly when it is first translated), so
	// charging behaviour is unchanged; the work-stealing engine
	// executes blocks from worker-private stealCaches and charges
	// owners deterministically through this set instead (see steal.go).
	charged []map[uint64]bool
	// stealCaches[w] is worker w's code cache for work-stealing
	// regions, kept separate from caches so the charged sets above stay
	// exactly "the blocks a static-chunk run would have translated".
	stealCaches []map[uint64]*tblock
	// stealActive is set while a work-stealing region runs; stealMu
	// then guards the charged sets (which are single-goroutine
	// otherwise).
	stealActive bool
	stealMu     sync.Mutex
	// lastBlk[t] is the block thread t executed last, the anchor for
	// block linking in blockFor. Entries are only ever touched by the
	// owning thread, so host-parallel threads never contend.
	lastBlk []*tblock

	// views[t] is thread t's private memory view (software TLB +
	// last-leaf cache) over the shared machine memory.
	views []*vm.MemView

	// hostParScan caches the per-loop host-parallel eligibility verdict
	// (the loop body is static, so one scan per loop suffices): the set
	// of statically reachable body addresses for an eligible loop, nil
	// for an ineligible one.
	hostParScan map[int32]map[uint64]bool

	// main is the program's main context.
	main *vm.Context

	// loop is the active parallel-region state (nil outside regions).
	loop       *jrt.LoopCtx
	inParallel bool
	// hostParActive is set while region threads run on host goroutines,
	// and hostParSet then holds the active loop's scanned address set.
	// Written only by the main thread before spawning and after joining
	// the workers; workers read them to refuse any block the
	// eligibility scan did not see (plus schedule-ordered work:
	// syscalls, transactions) — work that only a defeated static scan
	// could reach — failing loudly instead of racing.
	hostParActive bool
	hostParSet    map[uint64]bool

	// Per-loop metadata precomputed from the schedule.
	exitTargets map[int32]map[uint64]bool
	boundData   map[int32]rules.UpdateBoundData
	privSlots   map[int32]map[int32]rules.MemPrivatiseData
	// exitPrimary is the loop's deterministic resume address: the
	// smallest LOOP_FINISH target.
	exitPrimary map[int32]uint64
	// finishData is the first LOOP_FINISH payload per loop, in schedule
	// order.
	finishData map[int32]rules.LoopFinishData
	// checksAt indexes MEM_BOUNDS_CHECK payloads by (rule address,
	// loop), replacing the per-invocation scan over the address index.
	checksAt map[checkKey][]rules.BoundsCheckData

	// Profiling state.
	Cov *profiler.Coverage
	Dep *profiler.Dependence
	Ex  *profiler.Excall

	// seqLoop marks loops currently running sequentially (fallback), so
	// LOOP_INIT does not re-fire on every header execution. Indexed by
	// loop ID (dense small ints from the analyzer).
	seqLoop []bool
	// demotedLoop latches loops onto the round-robin engine after a
	// speculation recovery (see recover.go). Same indexing as seqLoop.
	demotedLoop []bool

	// inj is the armed fault injector (nil unless Config.Inject is
	// set; nil-safe everywhere it is consulted).
	inj *faultinject.Injector
	// chargeUndo[t] journals the block addresses first charged to guest
	// thread t inside the active speculative region, so a recovery can
	// undo exactly those charges. Appended lock-free by the owning
	// thread on the static host-parallel path and under stealMu on the
	// stealing path; drained on the orchestrating goroutine.
	chargeUndo [][]uint64

	// Per-thread transaction state (index = thread ID). txSpare keeps a
	// finished transaction per thread for buffer reuse.
	tx          []*stm.Tx
	txSpare     []*stm.Tx
	suppressTx  []bool
	txStartAddr []uint64

	steps int64
}

// New creates an executor for exe+libs under schedule s (which may be
// nil for a bare "DynamoRIO only" run).
func New(exe *obj.Executable, s *rules.Schedule, cfg Config, libs ...*obj.Library) (*Executor, error) {
	m, err := vm.NewMachine(exe, libs...)
	if err != nil {
		return nil, err
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = vm.DefaultMaxSteps
	}
	if s == nil {
		s = &rules.Schedule{ExeName: exe.Name}
	}
	ex := &Executor{
		M:           m,
		Sched:       s,
		Ix:          rules.BuildIndex(s),
		Cfg:         cfg,
		caches:      make([]map[uint64]*tblock, cfg.Threads),
		charged:     make([]map[uint64]bool, cfg.Threads),
		stealCaches: make([]map[uint64]*tblock, cfg.Threads),
		lastBlk:     make([]*tblock, cfg.Threads),
		views:       make([]*vm.MemView, cfg.Threads),
		hostParScan: map[int32]map[uint64]bool{},
		exitTargets: map[int32]map[uint64]bool{},
		boundData:   map[int32]rules.UpdateBoundData{},
		privSlots:   map[int32]map[int32]rules.MemPrivatiseData{},
		exitPrimary: map[int32]uint64{},
		finishData:  map[int32]rules.LoopFinishData{},
		checksAt:    map[checkKey][]rules.BoundsCheckData{},
		Cov:         profiler.NewCoverage(),
		Dep:         profiler.NewDependence(),
		Ex:          profiler.NewExcall(),
		tx:          make([]*stm.Tx, cfg.Threads),
		txSpare:     make([]*stm.Tx, cfg.Threads),
		suppressTx:  make([]bool, cfg.Threads),
		txStartAddr: make([]uint64, cfg.Threads),
		inj:         faultinject.NewInjector(cfg.Inject),
		chargeUndo:  make([][]uint64, cfg.Threads),
	}
	for i := range ex.caches {
		ex.caches[i] = map[uint64]*tblock{}
		ex.charged[i] = map[uint64]bool{}
		ex.stealCaches[i] = map[uint64]*tblock{}
		ex.views[i] = m.Mem.NewView()
	}
	for _, r := range s.Rules {
		switch r.ID {
		case rules.LOOP_FINISH:
			set := ex.exitTargets[r.LoopID]
			if set == nil {
				set = map[uint64]bool{}
				ex.exitTargets[r.LoopID] = set
			}
			set[r.Addr] = true
			if prev, ok := ex.exitPrimary[r.LoopID]; !ok || r.Addr < prev {
				ex.exitPrimary[r.LoopID] = r.Addr
			}
			if _, ok := ex.finishData[r.LoopID]; !ok {
				ex.finishData[r.LoopID] = r.Data.(rules.LoopFinishData)
			}
		case rules.LOOP_UPDATE_BOUND:
			ex.boundData[r.LoopID] = r.Data.(rules.UpdateBoundData)
		case rules.MEM_PRIVATISE:
			m := ex.privSlots[r.LoopID]
			if m == nil {
				m = map[int32]rules.MemPrivatiseData{}
				ex.privSlots[r.LoopID] = m
			}
			d := r.Data.(rules.MemPrivatiseData)
			m[d.Slot] = d
		case rules.MEM_BOUNDS_CHECK:
			k := checkKey{addr: r.Addr, loopID: r.LoopID}
			ex.checksAt[k] = append(ex.checksAt[k], r.Data.(rules.BoundsCheckData))
		}
	}
	ex.main = m.NewContext(0, obj.DefaultStackTop)
	ex.main.GPR[guest.RegTLS] = jrt.TLSFor(0)
	return ex, nil
}

// Result is the outcome of a DBM execution.
type Result struct {
	vm.Result
	Stats Stats
}

// fold drains thread t's locally accumulated counters into the
// executor's global step budget and stats. Threads accumulate locally
// so host-parallel execution never races on shared counters; folding
// happens at deterministic points (after each sequential block, and in
// thread-ID order when a parallel region joins), so the folded totals
// are identical whichever engine ran the region.
func (ex *Executor) fold(t *jrt.Thread) {
	ex.steps += t.Steps
	ex.Stats.TransBlocks += t.TransBlocks
	ex.Stats.TransInsts += t.TransInsts
	ex.Stats.TransCycles += t.TransCycles
	t.Steps, t.TransBlocks, t.TransInsts, t.TransCycles = 0, 0, 0, 0
}

// Run executes the program to completion under the DBM.
func (ex *Executor) Run() (*Result, error) {
	t := &jrt.Thread{ID: 0, Ctx: ex.main}
	for !ex.main.Halted {
		if ex.steps >= ex.Cfg.MaxSteps {
			return nil, fmt.Errorf("dbm: exceeded %d steps: %w", ex.Cfg.MaxSteps, ErrStepBudget)
		}
		err := ex.stepBlock(t)
		ex.fold(t)
		if err != nil {
			if err == vm.ErrExited {
				break
			}
			return nil, err
		}
	}
	return &Result{
		Result: vm.Result{
			Exit:     ex.main.Exit,
			Output:   ex.M.Output,
			Cycles:   ex.main.Cycles,
			Insts:    ex.main.Insts,
			MemHash:  ex.M.Mem.Hash(),
			DataHash: ex.M.Mem.HashBelow(vm.DataHashLimit),
		},
		Stats: ex.Stats,
	}, nil
}

// DataHash hashes memory below the runtime-private regions, for
// correctness comparison against native runs (worker stacks and TLS
// would otherwise differ).
func (ex *Executor) DataHash() uint64 {
	return ex.M.Mem.HashBelow(vm.DataHashLimit)
}

// seqLatched reports whether a loop is latched into sequential
// fallback for the current invocation.
func (ex *Executor) seqLatched(loopID int32) bool {
	return int(loopID) < len(ex.seqLoop) && ex.seqLoop[loopID]
}

// setSeqLatch sets or clears the sequential-fallback latch.
func (ex *Executor) setSeqLatch(loopID int32, v bool) {
	if int(loopID) >= len(ex.seqLoop) {
		if !v {
			return
		}
		grown := make([]bool, loopID+1, 2*(loopID+1))
		copy(grown, ex.seqLoop)
		ex.seqLoop = grown
	}
	ex.seqLoop[loopID] = v
}
