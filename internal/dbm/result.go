package dbm

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Result serialisation for the durable artifact cache
// (internal/artcache). A DBM execution is a deterministic function of
// (binary, schedule, configuration) — the determinism contract the
// golden fixture pins — so the full Result, stats included, can be
// stored on disk and replayed. Engine-selection knobs must be part of
// the cache key: virtual-cycle results are bit-identical across
// engines, but engine-attribution counters (HostParRegions,
// StealRegions) are not. See janus's cache glue for the key layout;
// changing Result or Stats fields must bump the artifact kind tag
// there.

// EncodeResult serialises r for the artifact cache.
func EncodeResult(r *Result) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult parses an EncodeResult payload, rejecting payloads with
// unknown fields (a schema skew must recompute, not half-read).
func DecodeResult(data []byte) (*Result, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	r := new(Result)
	if err := dec.Decode(r); err != nil {
		return nil, fmt.Errorf("dbm: decode cached result: %w", err)
	}
	return r, nil
}
