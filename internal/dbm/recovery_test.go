package dbm_test

// Recovery tests for the speculative region engines: under every
// deterministic fault-injection point, a run whose speculative regions
// fail must roll back, re-execute round-robin and finish bit-identical
// to a run that never left the round-robin engine — same simulated
// result AND same stats (minus the engine/recovery counters that
// legitimately record which path ran). Run with -race these double as
// race tests for the checkpoint save hook, the charge journal and the
// cache-clearing recovery path under real concurrency.

import (
	"runtime"
	"testing"

	"janus/internal/analyzer"
	"janus/internal/dbm"
	"janus/internal/faultinject"
	"janus/internal/workloads"
)

// runInjected executes one workload with a speculative engine armed
// with the given injection plan.
func runInjected(t *testing.T, name string, stealing bool, plan *faultinject.Plan) *dbm.Result {
	t.Helper()
	exe, libs, err := workloads.Build(name, workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyzer.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	prog.SelectLoops(analyzer.SelectOptions{})
	sched, err := prog.GenParallelSchedule()
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbm.DefaultConfig(8)
	cfg.HostParallel = true
	cfg.WorkStealing = stealing
	cfg.Inject = plan
	ex, err := dbm.New(exe, sched, cfg, libs...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sansRecoveryStats additionally clears the recovery counters: an
// injected run records recoveries and demotions by design, everything
// else must match the pure round-robin run exactly.
func sansRecoveryStats(s dbm.Stats) dbm.Stats {
	s = sansEngineStats(s)
	s.ParRecoveries = 0
	s.DemotedLoops = 0
	return s
}

// injectionSpecs covers every injection point. worker-panic doubles as
// the panic-containment test: the forced panic must surface as a
// recovered region failure, never crash the process or the test.
var injectionSpecs = []string{"scan-defeat", "worker-panic", "stall", "budget"}

func TestRecoveryBitIdenticalPerPoint(t *testing.T) {
	rr := runEngine(t, "470.lbm", false)
	for _, spec := range injectionSpecs {
		for _, tc := range []struct {
			engine   string
			stealing bool
		}{{"static", false}, {"steal", true}} {
			t.Run(spec+"/"+tc.engine, func(t *testing.T) {
				plan, err := faultinject.ParsePlan(spec)
				if err != nil {
					t.Fatal(err)
				}
				inj := runInjected(t, "470.lbm", tc.stealing, plan)
				if inj.Stats.ParRecoveries == 0 {
					t.Fatalf("injection %q never triggered a recovery (stats %+v)", spec, inj.Stats)
				}
				if inj.Stats.DemotedLoops == 0 {
					t.Errorf("recovery ran %d times but demoted no loop", inj.Stats.ParRecoveries)
				}
				if inj.Stats.DemotedLoops > inj.Stats.ParRecoveries {
					t.Errorf("more demotions (%d) than recoveries (%d)", inj.Stats.DemotedLoops, inj.Stats.ParRecoveries)
				}
				if !sameResult(rr, inj) {
					t.Errorf("recovered run diverges from round-robin:\n round-robin %+v\n   recovered %+v", rr.Result, inj.Result)
				}
				if sansRecoveryStats(rr.Stats) != sansRecoveryStats(inj.Stats) {
					t.Errorf("stats diverge after recovery:\n round-robin %+v\n   recovered %+v", rr.Stats, inj.Stats)
				}
			})
		}
	}
}

// TestRecoverySparseInjection arms the injector on every third
// speculative region: recovered regions and untouched speculative
// regions must interleave without contaminating each other, and the
// demotion latch must keep each failed loop off the speculative path
// for the rest of the run.
func TestRecoverySparseInjection(t *testing.T) {
	rr := runEngine(t, "433.milc", false)
	plan, err := faultinject.ParsePlan("scan-defeat@3#42")
	if err != nil {
		t.Fatal(err)
	}
	inj := runInjected(t, "433.milc", true, plan)
	if inj.Stats.ParRecoveries == 0 {
		t.Fatal("sparse injection never triggered a recovery")
	}
	if !sameResult(rr, inj) {
		t.Errorf("recovered run diverges from round-robin:\n round-robin %+v\n   recovered %+v", rr.Result, inj.Result)
	}
	if sansRecoveryStats(rr.Stats) != sansRecoveryStats(inj.Stats) {
		t.Errorf("stats diverge after recovery:\n round-robin %+v\n   recovered %+v", rr.Stats, inj.Stats)
	}
}

// TestRecoveryDeterministicAcrossGOMAXPROCS pins the whole recovery
// path — which regions fail, how many recoveries run, which loops
// demote — as a deterministic function of the injection plan alone.
func TestRecoveryDeterministicAcrossGOMAXPROCS(t *testing.T) {
	plan, err := faultinject.ParsePlan("worker-panic")
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	one := runInjected(t, "470.lbm", true, plan)
	runtime.GOMAXPROCS(max(runtime.NumCPU(), 4))
	many := runInjected(t, "470.lbm", true, plan)

	if !sameResult(one, many) {
		t.Errorf("recovered results differ across GOMAXPROCS:\n 1: %+v\n n: %+v", one.Result, many.Result)
	}
	if one.Stats != many.Stats {
		t.Errorf("recovery stats differ across GOMAXPROCS:\n 1: %+v\n n: %+v", one.Stats, many.Stats)
	}
}
