package dbm

import (
	"errors"
	"fmt"
)

// Region failure causes. Every failure inside a parallel region is
// reported as a *RegionError wrapping one of these (or the underlying
// guest fault), so callers can classify with errors.Is/As instead of
// matching message strings.
var (
	// ErrRegionStuck reports a wedged parallel region: no runnable
	// thread made progress, or the region exhausted its shared step
	// budget.
	ErrRegionStuck = errors.New("parallel region made no progress")
	// ErrScanSyscall / ErrScanTx / ErrScanEscaped report schedule-
	// ordered work reached inside a host-parallel region — impossible
	// unless the eligibility scan's static view of the loop body was
	// defeated at runtime.
	ErrScanSyscall = errors.New("syscall reached in host-parallel region (eligibility scan defeated)")
	ErrScanTx      = errors.New("transaction started in host-parallel region (eligibility scan defeated)")
	ErrScanEscaped = errors.New("unscanned block reached in host-parallel region (eligibility scan defeated)")
	// ErrWorkerPanic reports a panic recovered inside a region worker;
	// the RegionError carries the captured stack.
	ErrWorkerPanic = errors.New("region worker panicked")
	// ErrStepBudget reports the executor-wide instruction budget
	// (Config.MaxSteps) exhausted outside any parallel region.
	ErrStepBudget = errors.New("step budget exceeded")
)

// RegionError is a failure inside one parallel region: which loop,
// which worker (-1 when no single worker is to blame, e.g. a wedged
// round-robin schedule), and the underlying cause. Speculative-engine
// failures are recovered by re-executing the region round-robin (see
// runRegionRecoverable); a RegionError that escapes Executor.Run came
// from the deterministic engine itself and is genuinely fatal.
type RegionError struct {
	LoopID int32
	Worker int
	Cause  error
	// Stack is the captured goroutine stack when Cause wraps
	// ErrWorkerPanic, nil otherwise.
	Stack []byte
}

func (e *RegionError) Error() string {
	if e.Worker < 0 {
		return fmt.Sprintf("dbm: loop %d: %v", e.LoopID, e.Cause)
	}
	return fmt.Sprintf("dbm: loop %d worker %d: %v", e.LoopID, e.Worker, e.Cause)
}

func (e *RegionError) Unwrap() error { return e.Cause }

// regionErr wraps cause as a RegionError unless it already is one
// (step errors can cross nested helpers; blame the innermost frame).
func regionErr(loopID int32, worker int, cause error) error {
	var re *RegionError
	if errors.As(cause, &re) {
		return cause
	}
	return &RegionError{LoopID: loopID, Worker: worker, Cause: cause}
}

// panicErr converts a recovered panic value and stack into a
// RegionError that classifies as ErrWorkerPanic.
func panicErr(loopID int32, worker int, p any, stack []byte) error {
	return &RegionError{
		LoopID: loopID,
		Worker: worker,
		Cause:  fmt.Errorf("%w: %v", ErrWorkerPanic, p),
		Stack:  stack,
	}
}
