package dbm_test

// Determinism tests for the host-parallel region engine: simulated
// results must be bit-identical to the single-goroutine round-robin
// engine, at any GOMAXPROCS. Run with -race these also double as race
// tests for the per-thread TLBs, code caches and block-link inline
// caches under real concurrency.

import (
	"runtime"
	"slices"
	"testing"

	"janus/internal/analyzer"
	"janus/internal/dbm"
	"janus/internal/workloads"
)

// runEngine executes one workload under a statically-parallelised DBM
// with the given engine selection. Work stealing is pinned off: these
// tests compare the two static-chunk engines (steal_test.go covers the
// work-stealing partitioner).
func runEngine(t *testing.T, name string, hostParallel bool) *dbm.Result {
	t.Helper()
	exe, libs, err := workloads.Build(name, workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyzer.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	prog.SelectLoops(analyzer.SelectOptions{})
	sched, err := prog.GenParallelSchedule()
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbm.DefaultConfig(8)
	cfg.HostParallel = hostParallel
	cfg.WorkStealing = false
	ex, err := dbm.New(exe, sched, cfg, libs...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sansEngineStats clears the only stats that legitimately differ
// between the engines: which of them ran the regions.
func sansEngineStats(s dbm.Stats) dbm.Stats {
	s.HostParRegions = 0
	s.StealRegions = 0
	return s
}

// sameResult compares every simulated-outcome field (the Output slice
// keeps vm.Result from being comparable with ==).
func sameResult(a, b *dbm.Result) bool {
	return a.Exit == b.Exit && a.Cycles == b.Cycles && a.Insts == b.Insts &&
		a.MemHash == b.MemHash && a.DataHash == b.DataHash &&
		slices.Equal(a.Output, b.Output)
}

func TestHostParallelBitIdenticalToRoundRobin(t *testing.T) {
	for _, name := range []string{"470.lbm", "462.libquantum", "433.milc"} {
		t.Run(name, func(t *testing.T) {
			rr := runEngine(t, name, false)
			hp := runEngine(t, name, true)
			if rr.Stats.HostParRegions != 0 {
				t.Fatalf("round-robin run used host-parallel engine %d times", rr.Stats.HostParRegions)
			}
			if hp.Stats.HostParRegions == 0 {
				t.Fatalf("host-parallel engine never engaged (all %d regions fell back)", hp.Stats.ParRegions)
			}
			if !sameResult(rr, hp) {
				t.Errorf("results differ:\n round-robin %+v\nhost-parallel %+v", rr.Result, hp.Result)
			}
			if sansEngineStats(rr.Stats) != sansEngineStats(hp.Stats) {
				t.Errorf("stats differ:\n round-robin %+v\nhost-parallel %+v", rr.Stats, hp.Stats)
			}
		})
	}
}

func TestHostParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	one := runEngine(t, "470.lbm", true)
	runtime.GOMAXPROCS(max(runtime.NumCPU(), 4))
	many := runEngine(t, "470.lbm", true)

	if !sameResult(one, many) {
		t.Errorf("results differ across GOMAXPROCS:\n 1: %+v\n n: %+v", one.Result, many.Result)
	}
	if one.Stats != many.Stats {
		t.Errorf("stats differ across GOMAXPROCS:\n 1: %+v\n n: %+v", one.Stats, many.Stats)
	}
}
