package dbm_test

// Determinism tests for the work-stealing partitioner: simulated
// results must be bit-identical to the static equal-chunk partitioner
// at any GOMAXPROCS, whichever worker steals which piece. The one
// exception is the full-image MemHash — worker stacks and TLS scratch
// above vm.DataHashLimit depend on which worker ran which subchunk —
// so these tests compare everything the determinism contract covers:
// outputs, virtual cycles, instruction counts, DataHash and stats.

import (
	"runtime"
	"slices"
	"testing"

	"janus/internal/analyzer"
	"janus/internal/dbm"
	"janus/internal/workloads"
)

// runStealEngine executes one workload under a statically-parallelised
// DBM with host-parallel regions and the given partitioner.
func runStealEngine(t *testing.T, name string, stealing bool) *dbm.Result {
	t.Helper()
	exe, libs, err := workloads.Build(name, workloads.Train, workloads.O3)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyzer.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	prog.SelectLoops(analyzer.SelectOptions{})
	sched, err := prog.GenParallelSchedule()
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbm.DefaultConfig(8)
	cfg.WorkStealing = stealing
	ex, err := dbm.New(exe, sched, cfg, libs...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// samePinnedResult compares every simulated field the determinism
// contract pins under work stealing (all of vm.Result except the
// full-image MemHash).
func samePinnedResult(a, b *dbm.Result) bool {
	return a.Exit == b.Exit && a.Cycles == b.Cycles && a.Insts == b.Insts &&
		a.DataHash == b.DataHash && slices.Equal(a.Output, b.Output)
}

func TestStealingBitIdenticalToStaticChunks(t *testing.T) {
	for _, name := range []string{"470.lbm", "462.libquantum", "433.milc", "459.GemsFDTD"} {
		t.Run(name, func(t *testing.T) {
			static := runStealEngine(t, name, false)
			steal := runStealEngine(t, name, true)
			if static.Stats.StealRegions != 0 {
				t.Fatalf("static run used the stealing partitioner %d times", static.Stats.StealRegions)
			}
			if steal.Stats.StealRegions == 0 {
				t.Fatalf("stealing partitioner never engaged (%d host-parallel regions)", steal.Stats.HostParRegions)
			}
			if !samePinnedResult(static, steal) {
				t.Errorf("results differ:\n  static %+v\nstealing %+v", static.Result, steal.Result)
			}
			if sansEngineStats(static.Stats) != sansEngineStats(steal.Stats) {
				t.Errorf("stats differ:\n  static %+v\nstealing %+v", static.Stats, steal.Stats)
			}
		})
	}
}

func TestStealingDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	one := runStealEngine(t, "470.lbm", true)
	runtime.GOMAXPROCS(max(runtime.NumCPU(), 4))
	many := runStealEngine(t, "470.lbm", true)

	if !samePinnedResult(one, many) {
		t.Errorf("results differ across GOMAXPROCS:\n 1: %+v\n n: %+v", one.Result, many.Result)
	}
	if one.Stats != many.Stats {
		t.Errorf("stats differ across GOMAXPROCS:\n 1: %+v\n n: %+v", one.Stats, many.Stats)
	}
}

// TestStealingRepeatedRunsIdentical replays the stealing configuration
// several times: whichever worker wins each steal race, the folded
// outcome must not change between runs.
func TestStealingRepeatedRunsIdentical(t *testing.T) {
	first := runStealEngine(t, "433.milc", true)
	for i := 0; i < 3; i++ {
		again := runStealEngine(t, "433.milc", true)
		if !samePinnedResult(first, again) {
			t.Fatalf("run %d differs:\nfirst %+v\nagain %+v", i+1, first.Result, again.Result)
		}
		if first.Stats != again.Stats {
			t.Fatalf("run %d stats differ:\nfirst %+v\nagain %+v", i+1, first.Stats, again.Stats)
		}
	}
}
