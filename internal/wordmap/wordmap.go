// Package wordmap provides a small open-addressed hash table keyed by
// 64-bit words with linear probing, shared by the STM read/write sets
// and the dependence profiler. It replaces map[uint64]V on
// per-instruction fast paths: no runtime map machinery, and the backing
// arrays are reusable across transactions/invocations via Reset.
//
// Tables are not goroutine-safe; both users are confined to the DBM's
// single-goroutine execution paths (speculative loops and profiled
// runs never use the host-parallel engine).
package wordmap

// minCap is the initial table size; must be a power of two.
const minCap = 64

// Table maps 64-bit word addresses to values of type V. The zero value
// is ready to use; the table grows at 50% load.
type Table[V any] struct {
	keys []uint64
	vals []V
	occ  []bool
	n    int
}

// Mix is a 64-bit finalizer (splitmix64-style) spreading word addresses
// across the table.
func Mix(a uint64) uint64 {
	a ^= a >> 33
	a *= 0xff51afd7ed558ccd
	a ^= a >> 33
	a *= 0xc4ceb9fe1a85ec53
	a ^= a >> 33
	return a
}

func (t *Table[V]) init() {
	t.keys = make([]uint64, minCap)
	t.vals = make([]V, minCap)
	t.occ = make([]bool, minCap)
	t.n = 0
}

// Reset empties the table, keeping the backing arrays.
func (t *Table[V]) Reset() {
	if t.keys == nil {
		t.init()
		return
	}
	clear(t.occ)
	t.n = 0
}

// Len returns the number of stored keys.
func (t *Table[V]) Len() int { return t.n }

func (t *Table[V]) slot(addr uint64) int {
	mask := uint64(len(t.keys) - 1)
	i := Mix(addr) & mask
	for t.occ[i] && t.keys[i] != addr {
		i = (i + 1) & mask
	}
	return int(i)
}

// Get returns the value stored for addr.
func (t *Table[V]) Get(addr uint64) (V, bool) {
	if t.n == 0 {
		var zero V
		return zero, false
	}
	i := t.slot(addr)
	if !t.occ[i] {
		var zero V
		return zero, false
	}
	return t.vals[i], true
}

// Put inserts or overwrites addr→val and reports whether the key was
// newly inserted.
func (t *Table[V]) Put(addr uint64, val V) bool {
	if t.keys == nil {
		t.init()
	}
	i := t.slot(addr)
	if t.occ[i] {
		t.vals[i] = val
		return false
	}
	t.occ[i] = true
	t.keys[i] = addr
	t.vals[i] = val
	t.n++
	if t.n*2 >= len(t.keys) {
		t.grow()
	}
	return true
}

// PutIfAbsent stores addr→val only if addr is not present, and reports
// whether it inserted.
func (t *Table[V]) PutIfAbsent(addr uint64, val V) bool {
	if t.keys == nil {
		t.init()
	}
	i := t.slot(addr)
	if t.occ[i] {
		return false
	}
	t.occ[i] = true
	t.keys[i] = addr
	t.vals[i] = val
	t.n++
	if t.n*2 >= len(t.keys) {
		t.grow()
	}
	return true
}

func (t *Table[V]) grow() {
	oldKeys, oldVals, oldOcc := t.keys, t.vals, t.occ
	size := len(oldKeys) * 2
	t.keys = make([]uint64, size)
	t.vals = make([]V, size)
	t.occ = make([]bool, size)
	t.n = 0
	for i, used := range oldOcc {
		if used {
			j := t.slot(oldKeys[i])
			t.keys[j] = oldKeys[i]
			t.vals[j] = oldVals[i]
			t.occ[j] = true
			t.n++
		}
	}
}

// Range calls f for every stored key/value until f returns false. The
// iteration order is the table's probe layout: deterministic for a
// given insertion history, but not sorted.
func (t *Table[V]) Range(f func(addr uint64, val V) bool) {
	for i, used := range t.occ {
		if used && !f(t.keys[i], t.vals[i]) {
			return
		}
	}
}
