package wordmap

import "testing"

func TestBasicAndZeroKey(t *testing.T) {
	var m Table[uint64]
	if _, ok := m.Get(0); ok {
		t.Fatal("empty table reports key 0")
	}
	if !m.Put(0, 7) {
		t.Fatal("fresh insert of key 0 not reported")
	}
	if v, ok := m.Get(0); !ok || v != 7 {
		t.Fatalf("key 0 = %d,%v", v, ok)
	}
	if m.Put(0, 9) {
		t.Fatal("overwrite reported as insert")
	}
	if v, _ := m.Get(0); v != 9 {
		t.Fatal("overwrite lost")
	}
	if m.PutIfAbsent(0, 1) {
		t.Fatal("PutIfAbsent replaced existing key")
	}
	if v, _ := m.Get(0); v != 9 {
		t.Fatal("PutIfAbsent mutated existing value")
	}
}

func TestGrowKeepsAllKeys(t *testing.T) {
	var m Table[uint64]
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		m.Put(i*8, i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.Get(i * 8); !ok || v != i {
			t.Fatalf("key %d lost across grows", i*8)
		}
	}
}

func TestResetKeepsCapacityDropsKeys(t *testing.T) {
	var m Table[uint64]
	for i := uint64(0); i < 100; i++ {
		m.Put(i, i)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("Reset kept keys")
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("Reset kept key 5")
	}
	if !m.Put(5, 50) {
		t.Fatal("insert after Reset not reported as fresh")
	}
}

func TestRangeVisitsEverything(t *testing.T) {
	var m Table[uint64]
	want := map[uint64]uint64{}
	for i := uint64(0); i < 500; i++ {
		m.Put(i*16, i)
		want[i*16] = i
	}
	seen := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		seen[k] = v
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(seen), len(want))
	}
	for k, v := range want {
		if seen[k] != v {
			t.Fatalf("key %d: %d != %d", k, seen[k], v)
		}
	}
}

// BenchmarkTable measures the raw open-addressed table against the
// previous map[uint64]uint64 representation.
func BenchmarkTable(b *testing.B) {
	var m Table[uint64]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			m.Reset()
		}
		a := uint64(i%512) * 8
		m.Put(a, uint64(i))
		if _, ok := m.Get(a); !ok {
			b.Fatal("lost key")
		}
	}
}
