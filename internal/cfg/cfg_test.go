package cfg

import (
	"testing"

	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
)

// buildNestedLoops assembles:
//
//	main:
//	  for i in 0..9:
//	    for j in 0..4:
//	      body
//	  call helper
//	  halt
//	helper: ret
func buildNestedLoops(t *testing.T) *obj.Executable {
	t.Helper()
	b := asm.NewBuilder("nested")
	f := b.Func("main")
	outer, outerDone := f.NewLabel(), f.NewLabel()
	inner, innerDone := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0) // i
	f.Bind(outer)
	f.Cmpi(guest.R1, 10)
	f.J(guest.JGE, outerDone)
	f.Movi(guest.R2, 0) // j
	f.Bind(inner)
	f.Cmpi(guest.R2, 5)
	f.J(guest.JGE, innerDone)
	f.Op(guest.ADD, guest.R3, guest.R2)
	f.OpI(guest.ADDI, guest.R2, 1)
	f.J(guest.JMP, inner)
	f.Bind(innerDone)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, outer)
	f.Bind(outerDone)
	f.Call("helper")
	f.Halt()
	h := b.Func("helper")
	h.Nop()
	h.Ret()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestBuildFindsFunctions(t *testing.T) {
	exe := buildNestedLoops(t)
	p, err := Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("found %d functions, want 2", len(p.Funcs))
	}
	names := map[string]bool{}
	for _, fn := range p.Funcs {
		names[fn.Name] = true
	}
	if !names["main"] || !names["helper"] {
		t.Fatalf("function names: %v", names)
	}
}

func TestStrippedDiscoversCalledFunctions(t *testing.T) {
	exe := buildNestedLoops(t).Strip()
	p, err := Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("stripped: found %d functions, want 2 (entry + call target)", len(p.Funcs))
	}
}

func TestLoopNesting(t *testing.T) {
	exe := buildNestedLoops(t)
	p, err := Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	main := p.FuncByAddr[exe.Entry]
	if main == nil {
		t.Fatal("no main")
	}
	if len(main.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(main.Loops))
	}
	var outer, inner *Loop
	for _, l := range main.Loops {
		if l.Depth == 1 {
			outer = l
		} else {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("nesting depths wrong: %+v", main.Loops)
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent should be outer")
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Error("outer loop's children wrong")
	}
	if inner.Depth != 2 {
		t.Errorf("inner depth = %d", inner.Depth)
	}
	if !outer.Body[inner.Header] {
		t.Error("outer body must contain inner header")
	}
	if inner.Outermost() != outer {
		t.Error("Outermost broken")
	}
}

func TestLoopExits(t *testing.T) {
	exe := buildNestedLoops(t)
	p, _ := Build(exe)
	main := p.FuncByAddr[exe.Entry]
	for _, l := range main.Loops {
		if len(l.Exits) == 0 || len(l.ExitTargets) == 0 {
			t.Errorf("loop at %#x has no exits", l.Header.Addr)
		}
		for _, e := range l.Exits {
			if !l.Body[e] {
				t.Error("exit block must be inside loop")
			}
		}
		for _, et := range l.ExitTargets {
			if l.Body[et] {
				t.Error("exit target must be outside loop")
			}
		}
	}
}

func TestDominators(t *testing.T) {
	exe := buildNestedLoops(t)
	p, _ := Build(exe)
	main := p.FuncByAddr[exe.Entry]
	entry := main.Entry
	if main.Idom(entry) != nil {
		t.Error("entry has no idom")
	}
	for _, b := range main.Blocks {
		if !main.Dominates(entry, b) {
			t.Errorf("entry must dominate %#x", b.Addr)
		}
		if !main.Dominates(b, b) {
			t.Error("dominance must be reflexive")
		}
	}
	// A loop header dominates every block in its body.
	for _, l := range main.Loops {
		for b := range l.Body {
			if !main.Dominates(l.Header, b) {
				t.Errorf("header %#x must dominate body %#x", l.Header.Addr, b.Addr)
			}
		}
	}
}

func TestDominanceFrontier(t *testing.T) {
	b := asm.NewBuilder("diamond")
	f := b.Func("main")
	elseL, join := f.NewLabel(), f.NewLabel()
	f.Cmpi(guest.R1, 0)
	f.J(guest.JE, elseL)
	f.Movi(guest.R2, 1)
	f.J(guest.JMP, join)
	f.Bind(elseL)
	f.Movi(guest.R2, 2)
	f.Bind(join)
	f.Halt()
	exe, _ := b.Build()
	p, err := Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	main := p.Funcs[0]
	df := main.DominanceFrontier()
	// Both arms of the diamond have the join block in their frontier.
	joinCount := 0
	for _, blocks := range df {
		for _, x := range blocks {
			if len(x.Preds) == 2 {
				joinCount++
			}
		}
	}
	if joinCount < 2 {
		t.Fatalf("join should be in two frontiers, got %d", joinCount)
	}
}

func TestBlockStructure(t *testing.T) {
	exe := buildNestedLoops(t)
	p, _ := Build(exe)
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			if len(b.Insts) == 0 {
				t.Fatalf("%s: empty block at %#x", fn.Name, b.Addr)
			}
			// Only the last instruction may end a block.
			for i, in := range b.Insts[:len(b.Insts)-1] {
				if in.Op.IsBlockEnd() {
					t.Errorf("%s: block %#x has terminator at %d", fn.Name, b.Addr, i)
				}
			}
			// Succ/pred symmetry.
			for _, s := range b.Succs {
				if !containsBlock(s.Preds, b) {
					t.Errorf("asymmetric edge %#x -> %#x", b.Addr, s.Addr)
				}
			}
		}
	}
}

func TestIndirectJumpMarksFunction(t *testing.T) {
	b := asm.NewBuilder("indirect")
	f := b.Func("main")
	f.Movi(guest.R1, int64(obj.DefaultCodeBase))
	f.I(guest.NewInst(guest.JMPI, guest.R1, guest.RegNone))
	exe, _ := b.Build()
	p, err := Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Funcs[0].HasIndirect {
		t.Error("indirect jump not flagged")
	}
}

func TestPLTCallNotTreatedAsLocalFunction(t *testing.T) {
	b := asm.NewBuilder("pltcall")
	b.Import("ext")
	f := b.Func("main")
	f.Call("ext")
	f.Halt()
	exe, _ := b.Build()
	p, err := Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 1 {
		t.Fatalf("PLT stub must not become a function: %d funcs", len(p.Funcs))
	}
	if len(p.PLTNames) != 1 {
		t.Fatalf("PLT names: %v", p.PLTNames)
	}
}

func TestMultiExitLoop(t *testing.T) {
	b := asm.NewBuilder("multiexit")
	f := b.Func("main")
	loop, brk, done := f.NewLabel(), f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, 100)
	f.J(guest.JGE, done)
	f.Cmpi(guest.R1, 50)
	f.J(guest.JE, brk)
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(brk)
	f.Nop()
	f.Bind(done)
	f.Halt()
	exe, _ := b.Build()
	p, _ := Build(exe)
	main := p.Funcs[0]
	if len(main.Loops) != 1 {
		t.Fatalf("loops: %d", len(main.Loops))
	}
	if len(main.Loops[0].Exits) != 2 {
		t.Fatalf("multi-exit loop should have 2 exit blocks, got %d", len(main.Loops[0].Exits))
	}
}
