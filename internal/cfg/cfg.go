// Package cfg recovers control-flow structure from a raw executable:
// function discovery (from symbols when present, or from the entry point
// and call targets when stripped), basic blocks, control-flow graphs,
// dominator trees, natural loops and the loop nesting forest, and a call
// graph. It is the front half of the Janus static binary analyser.
package cfg

import (
	"fmt"
	"sort"

	"janus/internal/guest"
	"janus/internal/obj"
)

// Block is a basic block: a maximal straight-line instruction sequence.
type Block struct {
	// Addr is the address of the first instruction.
	Addr uint64
	// Insts are the decoded instructions; instruction i is at
	// Addr + i*guest.InstSize.
	Insts []guest.Inst
	// Succs and Preds are CFG edges within the enclosing function.
	Succs []*Block
	Preds []*Block
	// Index is the block's position in Func.Blocks.
	Index int
	// Fn is the enclosing function.
	Fn *Func
}

// InstAddr returns the address of instruction i in the block.
func (b *Block) InstAddr(i int) uint64 { return b.Addr + uint64(i*guest.InstSize) }

// End returns the first address past the block.
func (b *Block) End() uint64 { return b.Addr + uint64(len(b.Insts)*guest.InstSize) }

// Last returns the final instruction of the block.
func (b *Block) Last() guest.Inst { return b.Insts[len(b.Insts)-1] }

// Func is a recovered function.
type Func struct {
	Name  string
	Entry *Block
	// Blocks in reverse postorder from the entry.
	Blocks []*Block
	// BlockAt maps a code address to the block starting there.
	BlockAt map[uint64]*Block
	// Calls lists direct call targets (addresses, may include PLT stubs).
	Calls []uint64
	// HasIndirect is set when the function contains an indirect jump or
	// call whose targets cannot be determined statically.
	HasIndirect bool
	// HasSyscall is set when the function executes syscalls directly.
	HasSyscall bool
	// idom[i] is the immediate dominator of Blocks[i] (nil for entry).
	idom []*Block
	// Loops in this function, outermost first within each nest.
	Loops []*Loop
}

// Program is the CFG-level view of an executable.
type Program struct {
	Exe        *obj.Executable
	Funcs      []*Func
	FuncByAddr map[uint64]*Func
	// PLTNames maps a PLT stub address to the imported symbol name.
	PLTNames map[uint64]string
}

// Build disassembles the executable and recovers functions, blocks,
// dominators, loops and the call graph. It works for stripped binaries:
// function starts are then discovered from the entry point and direct
// call targets, the same information the paper's analyser relies on.
func Build(exe *obj.Executable) (*Program, error) {
	insts, err := exe.Decode()
	if err != nil {
		return nil, fmt.Errorf("cfg: %w", err)
	}
	p := &Program{
		Exe:        exe,
		FuncByAddr: make(map[uint64]*Func),
		PLTNames:   make(map[uint64]string),
	}
	for _, im := range exe.Imports {
		p.PLTNames[im.PLT] = im.Name
	}

	instAt := func(addr uint64) (guest.Inst, bool) {
		if !exe.InCode(addr) || (addr-exe.CodeBase)%guest.InstSize != 0 {
			return guest.Inst{}, false
		}
		return insts[(addr-exe.CodeBase)/guest.InstSize], true
	}

	// Seed function starts.
	starts := map[uint64]string{exe.Entry: "entry"}
	if !exe.Stripped {
		for _, s := range exe.FuncSymbols() {
			if _, isPLT := p.PLTNames[s.Addr]; !isPLT {
				starts[s.Addr] = s.Name
			}
		}
	}
	// Iteratively add direct call targets until fixpoint.
	work := make([]uint64, 0, len(starts))
	for a := range starts {
		work = append(work, a)
	}
	seenFuncs := map[uint64]bool{}
	for len(work) > 0 {
		fa := work[len(work)-1]
		work = work[:len(work)-1]
		if seenFuncs[fa] {
			continue
		}
		seenFuncs[fa] = true
		if _, isPLT := p.PLTNames[fa]; isPLT {
			continue
		}
		for _, target := range scanCalls(fa, instAt, p.PLTNames) {
			if _, ok := starts[target]; !ok {
				starts[target] = fmt.Sprintf("fn_%x", target)
			}
			work = append(work, target)
		}
	}

	addrs := make([]uint64, 0, len(starts))
	for a := range starts {
		if _, isPLT := p.PLTNames[a]; !isPLT {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, fa := range addrs {
		name := starts[fa]
		if sym, ok := symbolAt(exe, fa); ok {
			name = sym
		}
		fn, err := buildFunc(name, fa, instAt, p.PLTNames)
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, fn)
		p.FuncByAddr[fa] = fn
	}
	for _, fn := range p.Funcs {
		computeDominators(fn)
		findLoops(fn)
	}
	return p, nil
}

func symbolAt(exe *obj.Executable, addr uint64) (string, bool) {
	for _, s := range exe.Symbols {
		if s.Kind == obj.SymFunc && s.Addr == addr {
			return s.Name, true
		}
	}
	return "", false
}

// scanCalls walks reachable instructions from fa and collects direct
// call targets that are not PLT stubs.
func scanCalls(fa uint64, instAt func(uint64) (guest.Inst, bool), plt map[uint64]string) []uint64 {
	var targets []uint64
	seen := map[uint64]bool{}
	work := []uint64{fa}
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[a] {
			continue
		}
		seen[a] = true
		in, ok := instAt(a)
		if !ok {
			continue
		}
		next := a + guest.InstSize
		switch {
		case in.Op == guest.CALL:
			if _, isPLT := plt[uint64(in.Imm)]; !isPLT {
				targets = append(targets, uint64(in.Imm))
			}
			work = append(work, next)
		case in.Op == guest.JMP:
			work = append(work, uint64(in.Imm))
		case in.Op.IsCondBranch():
			work = append(work, uint64(in.Imm), next)
		case in.Op == guest.RET, in.Op == guest.HALT, in.Op == guest.JMPI:
			// stop
		default:
			work = append(work, next)
		}
	}
	return targets
}

// buildFunc discovers the blocks reachable from fa and links the CFG.
func buildFunc(name string, fa uint64, instAt func(uint64) (guest.Inst, bool), plt map[uint64]string) (*Func, error) {
	fn := &Func{Name: name, BlockAt: make(map[uint64]*Block)}

	// Pass 1: find reachable instruction addresses and block leaders.
	leaders := map[uint64]bool{fa: true}
	reachable := map[uint64]bool{}
	var callTargets []uint64
	work := []uint64{fa}
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		if reachable[a] {
			continue
		}
		in, ok := instAt(a)
		if !ok {
			// Fall-through into undecodable bytes (section end, data
			// padding): terminate the path, as a disassembler would.
			continue
		}
		reachable[a] = true
		next := a + guest.InstSize
		switch {
		case in.Op == guest.JMP:
			leaders[uint64(in.Imm)] = true
			work = append(work, uint64(in.Imm))
		case in.Op.IsCondBranch():
			leaders[uint64(in.Imm)] = true
			leaders[next] = true
			work = append(work, uint64(in.Imm), next)
		case in.Op.IsCall():
			if in.Op == guest.CALL {
				callTargets = append(callTargets, uint64(in.Imm))
			} else {
				fn.HasIndirect = true
			}
			// A call ends the block; execution resumes at next.
			leaders[next] = true
			work = append(work, next)
		case in.Op == guest.RET || in.Op == guest.HALT:
			// stop
		case in.Op == guest.JMPI:
			fn.HasIndirect = true
			// Unknown targets: stop exploration on this path.
		default:
			if in.Op == guest.SYSCALL {
				fn.HasSyscall = true
			}
			work = append(work, next)
		}
	}
	fn.Calls = callTargets

	// Pass 2: materialise blocks between leaders.
	leaderList := make([]uint64, 0, len(leaders))
	for a := range leaders {
		if reachable[a] {
			leaderList = append(leaderList, a)
		}
	}
	sort.Slice(leaderList, func(i, j int) bool { return leaderList[i] < leaderList[j] })
	for _, la := range leaderList {
		b := &Block{Addr: la, Fn: fn}
		for a := la; reachable[a]; a += guest.InstSize {
			if a != la && leaders[a] {
				break
			}
			in, _ := instAt(a)
			b.Insts = append(b.Insts, in)
			if in.Op.IsBlockEnd() {
				break
			}
		}
		if len(b.Insts) == 0 {
			continue
		}
		fn.BlockAt[la] = b
	}

	// Pass 3: successor edges.
	for _, b := range fn.BlockAt {
		last := b.Last()
		link := func(target uint64) {
			if t, ok := fn.BlockAt[target]; ok {
				b.Succs = append(b.Succs, t)
				t.Preds = append(t.Preds, b)
			}
		}
		switch {
		case last.Op == guest.JMP:
			link(uint64(last.Imm))
		case last.Op.IsCondBranch():
			link(b.End()) // fall-through first
			link(uint64(last.Imm))
		case last.Op.IsCall():
			link(b.End()) // calls return to the next block
		case last.Op == guest.RET, last.Op == guest.HALT, last.Op == guest.JMPI:
			// no intra-procedural successors
		default:
			link(b.End())
		}
	}

	entry, ok := fn.BlockAt[fa]
	if !ok {
		return nil, fmt.Errorf("cfg: %s: entry block missing", name)
	}
	fn.Entry = entry
	fn.Blocks = reversePostorder(entry)
	for i, b := range fn.Blocks {
		b.Index = i
	}
	return fn, nil
}

func reversePostorder(entry *Block) []*Block {
	var order []*Block
	seen := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	dfs(entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// computeDominators fills fn.idom using the Cooper-Harvey-Kennedy
// iterative algorithm over reverse postorder.
func computeDominators(fn *Func) {
	n := len(fn.Blocks)
	fn.idom = make([]*Block, n)
	if n == 0 {
		return
	}
	fn.idom[0] = fn.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range fn.Blocks[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if fn.idom[p.Index] == nil && p != fn.Entry {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(fn, p, newIdom)
				}
			}
			if newIdom != nil && fn.idom[b.Index] != newIdom {
				fn.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
}

func intersect(fn *Func, a, b *Block) *Block {
	for a != b {
		for a.Index > b.Index {
			a = fn.idom[a.Index]
		}
		for b.Index > a.Index {
			b = fn.idom[b.Index]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (nil for the entry block).
func (fn *Func) Idom(b *Block) *Block {
	if b == fn.Entry {
		return nil
	}
	return fn.idom[b.Index]
}

// Dominates reports whether a dominates b (reflexive).
func (fn *Func) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		if b == fn.Entry || b == nil {
			return false
		}
		b = fn.idom[b.Index]
		if b == nil {
			return false
		}
	}
}

// DominanceFrontier computes the dominance frontier of every block,
// needed for SSA phi placement.
func (fn *Func) DominanceFrontier() map[*Block][]*Block {
	df := make(map[*Block][]*Block, len(fn.Blocks))
	for _, b := range fn.Blocks {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p
			for runner != nil && runner != fn.idom[b.Index] {
				if !contains(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
				if runner == fn.Entry {
					break
				}
				runner = fn.idom[runner.Index]
			}
		}
	}
	return df
}

func contains(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
