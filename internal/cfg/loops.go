package cfg

import (
	"sort"

	"janus/internal/guest"
)

// Loop is a natural loop discovered from a back edge whose target
// dominates its source.
type Loop struct {
	// ID is unique within the program once assigned by the analyser.
	ID int
	Fn *Func
	// Header is the single entry block of the loop.
	Header *Block
	// Body is the set of blocks in the loop, including the header.
	Body map[*Block]bool
	// Latches are the blocks with a back edge to the header.
	Latches []*Block
	// Exits are blocks inside the loop with a successor outside.
	Exits []*Block
	// ExitTargets are the first blocks outside the loop reached from exits.
	ExitTargets []*Block
	// Parent is the innermost enclosing loop (nil for top level).
	Parent *Loop
	// Children are the directly nested loops.
	Children []*Loop
	// Depth is 1 for outermost loops.
	Depth int
	// CallTargets are direct call target addresses made inside the loop.
	CallTargets []uint64
	// HasIndirect is set if the loop body contains indirect control flow.
	HasIndirect bool
}

// Blocks returns the loop body sorted by address, header first.
func (l *Loop) Blocks() []*Block {
	out := make([]*Block, 0, len(l.Body))
	for b := range l.Body {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i] == l.Header {
			return true
		}
		if out[j] == l.Header {
			return false
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Contains reports whether block b belongs to the loop body.
func (l *Loop) Contains(b *Block) bool { return l.Body[b] }

// InstCount returns the static number of instructions in the loop body.
func (l *Loop) InstCount() int {
	n := 0
	for b := range l.Body {
		n += len(b.Insts)
	}
	return n
}

// Outermost returns the root of this loop's nest.
func (l *Loop) Outermost() *Loop {
	for l.Parent != nil {
		l = l.Parent
	}
	return l
}

// findLoops discovers natural loops in fn and builds the nesting forest.
// Loops sharing a header are merged, as is conventional.
func findLoops(fn *Func) {
	byHeader := map[*Block]*Loop{}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs {
			if fn.Dominates(s, b) {
				// Back edge b -> s.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Fn: fn, Header: s, Body: map[*Block]bool{s: true}}
					byHeader[s] = l
				}
				l.Latches = append(l.Latches, b)
				collectBody(l, b)
			}
		}
	}
	var loops []*Loop
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header.Addr < loops[j].Header.Addr })

	// Exits, calls and indirection.
	for _, l := range loops {
		for _, b := range l.Blocks() {
			isExit := false
			for _, s := range b.Succs {
				if !l.Body[s] {
					isExit = true
					if !containsBlock(l.ExitTargets, s) {
						l.ExitTargets = append(l.ExitTargets, s)
					}
				}
			}
			if isExit {
				l.Exits = append(l.Exits, b)
			}
			last := b.Last()
			if last.Op.IsCall() {
				if last.Op == guest.CALL {
					l.CallTargets = append(l.CallTargets, uint64(last.Imm))
				} else {
					l.HasIndirect = true
				}
			}
			if last.Op == guest.JMPI {
				l.HasIndirect = true
			}
		}
	}

	// Nesting: loop A is nested in B if B's body contains A's header and
	// A != B. Choose the smallest such B as parent.
	for _, a := range loops {
		var parent *Loop
		for _, b := range loops {
			if a == b || !b.Body[a.Header] {
				continue
			}
			if parent == nil || len(b.Body) < len(parent.Body) {
				parent = b
			}
		}
		a.Parent = parent
		if parent != nil {
			parent.Children = append(parent.Children, a)
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	fn.Loops = loops
}

func collectBody(l *Loop, latch *Block) {
	work := []*Block{latch}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if l.Body[b] {
			continue
		}
		l.Body[b] = true
		for _, p := range b.Preds {
			work = append(work, p)
		}
	}
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
