package asm

import (
	"testing"

	"janus/internal/guest"
	"janus/internal/obj"
)

func TestLabelResolution(t *testing.T) {
	b := NewBuilder("labels")
	f := b.Func("main")
	skip := f.NewLabel()
	f.J(guest.JMP, skip)
	f.Nop()
	f.Nop()
	f.Bind(skip)
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	insts, _ := exe.Decode()
	if insts[0].Op != guest.JMP {
		t.Fatal("first inst not JMP")
	}
	want := exe.CodeBase + 3*guest.InstSize
	if uint64(insts[0].Imm) != want {
		t.Fatalf("jump target %#x, want %#x", insts[0].Imm, want)
	}
}

func TestUnboundLabelFails(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Func("main")
	l := f.NewLabel()
	f.J(guest.JMP, l) // never bound
	if _, err := b.Build(); err == nil {
		t.Fatal("unbound label must fail")
	}
}

func TestUndefinedCallFails(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Func("main")
	f.Call("missing")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined call must fail")
	}
}

func TestUndefinedDataFails(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Func("main")
	f.MoviData(guest.R1, "nodata", 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined data must fail")
	}
}

func TestDataLayout(t *testing.T) {
	b := NewBuilder("data")
	a1 := b.Data("a", 64)
	a2 := b.DataI64("b", []int64{1, 2, 3})
	a3 := b.DataF64("c", []float64{1.5})
	if a1 != obj.DefaultDataBase {
		t.Fatalf("first array at %#x", a1)
	}
	if a2 != a1+64 || a3 != a2+24 {
		t.Fatalf("layout: %#x %#x %#x", a1, a2, a3)
	}
	if b.DataAddr("b") != a2 {
		t.Fatal("DataAddr broken")
	}
	f := b.Func("main")
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Initialised values present in the image.
	if got := exe.Data[a2-obj.DefaultDataBase]; got != 1 {
		t.Fatalf("data[0] of b = %d", got)
	}
}

func TestEntryIsMain(t *testing.T) {
	b := NewBuilder("entry")
	h := b.Func("helper")
	h.Ret()
	m := b.Func("main")
	m.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := exe.SymbolByName("main")
	if !ok || exe.Entry != sym.Addr {
		t.Fatalf("entry %#x, main at %#x", exe.Entry, sym.Addr)
	}
}

func TestImportsCreatePLTStubs(t *testing.T) {
	b := NewBuilder("plt")
	b.Import("pow")
	b.Import("pow") // deduplicated
	b.Import("exp")
	f := b.Func("main")
	f.Call("pow")
	f.Call("exp")
	f.Halt()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(exe.Imports) != 2 {
		t.Fatalf("imports: %v", exe.Imports)
	}
	// The PLT stubs live past the functions, inside the code section.
	for _, im := range exe.Imports {
		if !exe.InCode(im.PLT) {
			t.Fatalf("PLT %#x outside code", im.PLT)
		}
		if _, ok := exe.ImportAt(im.PLT); !ok {
			t.Fatal("ImportAt broken")
		}
	}
}

func TestLibraryRelocation(t *testing.T) {
	b := NewBuilder("lib")
	f := b.Func("f")
	l := f.NewLabel()
	f.Bind(l)
	f.Call("g")
	f.J(guest.JMP, l)
	g := b.Func("g")
	g.Ret()
	lib, err := b.BuildLibrary(0x7f00_0000_0000)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := lib.SymbolByName("g"); !ok || !lib.InCode(s.Addr) {
		t.Fatal("library symbol table broken")
	}
	// The CALL must target g's library address.
	insts, err := guest.DecodeAll(lib.Code)
	if err != nil {
		t.Fatal(err)
	}
	gsym, _ := lib.SymbolByName("g")
	if uint64(insts[0].Imm) != gsym.Addr {
		t.Fatalf("lib call target %#x, want %#x", insts[0].Imm, gsym.Addr)
	}
}

func TestLibraryRejectsData(t *testing.T) {
	b := NewBuilder("lib")
	b.Data("d", 8)
	f := b.Func("f")
	f.LdData(guest.R1, "d", 0)
	f.Ret()
	if _, err := b.BuildLibrary(0x7f00_0000_0000); err == nil {
		t.Fatal("library data relocation must fail")
	}
}

func TestFuncBuilderLen(t *testing.T) {
	b := NewBuilder("len")
	f := b.Func("main")
	if f.Len() != 0 {
		t.Fatal("fresh function not empty")
	}
	f.Nop()
	f.Halt()
	if f.Len() != 2 {
		t.Fatalf("len %d", f.Len())
	}
	// Func returns the same builder for the same name.
	if b.Func("main") != f {
		t.Fatal("Func not idempotent")
	}
}

func TestEmptyProgramFails(t *testing.T) {
	b := NewBuilder("empty")
	if _, err := b.Build(); err == nil {
		t.Fatal("empty program must fail")
	}
}
