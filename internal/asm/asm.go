// Package asm provides a programmatic assembler for guest programs: it
// lays out functions, binds labels, resolves calls and data references,
// and emits obj.Executable images. The workload generators use it to
// build the SPEC-like benchmark binaries.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"janus/internal/guest"
	"janus/internal/obj"
)

// Label identifies a branch target inside one function.
type Label int

// relocKind says which field of an instruction needs patching at layout
// time and with what.
type relocKind uint8

const (
	relocNone  relocKind = iota
	relocLabel           // Imm <- address of label
	relocFunc            // Imm <- address of function or PLT stub
	relocDataI           // Imm <- address of data symbol (+addend)
	relocDataM           // M.Disp <- address of data symbol (+addend)
)

type item struct {
	inst   guest.Inst
	kind   relocKind
	label  Label
	sym    string
	addend int64
}

// FuncBuilder accumulates the instructions of one function.
type FuncBuilder struct {
	name   string
	items  []item
	labels []int // label -> item index, -1 if unbound
	b      *Builder
}

// Builder accumulates a whole program.
type Builder struct {
	name      string
	codeBase  uint64
	dataBase  uint64
	funcs     []*FuncBuilder
	byName    map[string]*FuncBuilder
	data      []byte
	dataSyms  []obj.Symbol
	dataAddr  map[string]uint64
	imports   []string
	importSet map[string]bool
}

// NewBuilder starts a program named name at the default load addresses.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:      name,
		codeBase:  obj.DefaultCodeBase,
		dataBase:  obj.DefaultDataBase,
		byName:    map[string]*FuncBuilder{},
		dataAddr:  map[string]uint64{},
		importSet: map[string]bool{},
	}
}

// Func begins (or returns the existing) function fn. The first function
// defined is the program entry point.
func (b *Builder) Func(name string) *FuncBuilder {
	if f, ok := b.byName[name]; ok {
		return f
	}
	f := &FuncBuilder{name: name, b: b}
	b.funcs = append(b.funcs, f)
	b.byName[name] = f
	return f
}

// Import declares an external function reached via a PLT stub.
func (b *Builder) Import(name string) {
	if !b.importSet[name] {
		b.importSet[name] = true
		b.imports = append(b.imports, name)
	}
}

// Data reserves size bytes of zeroed data under name and returns its
// virtual address.
func (b *Builder) Data(name string, size int) uint64 {
	addr := b.dataBase + uint64(len(b.data))
	b.data = append(b.data, make([]byte, size)...)
	b.dataSyms = append(b.dataSyms, obj.Symbol{Name: name, Addr: addr, Size: uint64(size), Kind: obj.SymData})
	b.dataAddr[name] = addr
	return addr
}

// DataF64 emits a float64 array initialised with vals.
func (b *Builder) DataF64(name string, vals []float64) uint64 {
	addr := b.Data(name, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b.data[addr-b.dataBase+uint64(i*8):], math.Float64bits(v))
	}
	return addr
}

// DataI64 emits an int64 array initialised with vals.
func (b *Builder) DataI64(name string, vals []int64) uint64 {
	addr := b.Data(name, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b.data[addr-b.dataBase+uint64(i*8):], uint64(v))
	}
	return addr
}

// DataAddr returns the address of a previously defined data symbol.
func (b *Builder) DataAddr(name string) uint64 { return b.dataAddr[name] }

// NewLabel creates an unbound label.
func (f *FuncBuilder) NewLabel() Label {
	f.labels = append(f.labels, -1)
	return Label(len(f.labels) - 1)
}

// Bind attaches l to the next emitted instruction.
func (f *FuncBuilder) Bind(l Label) {
	f.labels[l] = len(f.items)
}

// emit appends a raw item.
func (f *FuncBuilder) emit(it item) *FuncBuilder {
	f.items = append(f.items, it)
	return f
}

// I emits an arbitrary instruction verbatim.
func (f *FuncBuilder) I(in guest.Inst) *FuncBuilder { return f.emit(item{inst: in}) }

// Mov emits rd <- rs.
func (f *FuncBuilder) Mov(rd, rs guest.Reg) *FuncBuilder {
	return f.I(guest.NewInst(guest.MOV, rd, rs))
}

// Movi emits rd <- imm.
func (f *FuncBuilder) Movi(rd guest.Reg, imm int64) *FuncBuilder {
	return f.I(guest.NewInstI(guest.MOVI, rd, imm))
}

// MoviF emits rd <- float64 bit pattern of v.
func (f *FuncBuilder) MoviF(rd guest.Reg, v float64) *FuncBuilder {
	return f.I(guest.NewInstI(guest.MOVI, rd, int64(math.Float64bits(v))))
}

// MoviData emits rd <- address of data symbol sym + addend.
func (f *FuncBuilder) MoviData(rd guest.Reg, sym string, addend int64) *FuncBuilder {
	return f.emit(item{inst: guest.NewInstI(guest.MOVI, rd, 0), kind: relocDataI, sym: sym, addend: addend})
}

// Ld emits rd <- [m].
func (f *FuncBuilder) Ld(rd guest.Reg, m guest.Mem) *FuncBuilder {
	return f.I(guest.NewInstM(guest.LD, rd, m))
}

// St emits [m] <- rs.
func (f *FuncBuilder) St(m guest.Mem, rs guest.Reg) *FuncBuilder {
	return f.I(guest.NewInstM(guest.ST, rs, m))
}

// LdData emits rd <- [sym+addend], an absolute-addressed load.
func (f *FuncBuilder) LdData(rd guest.Reg, sym string, addend int64) *FuncBuilder {
	in := guest.NewInstM(guest.LD, rd, guest.Mem{Base: guest.RegNone, Index: guest.RegNone, Scale: 1})
	return f.emit(item{inst: in, kind: relocDataM, sym: sym, addend: addend})
}

// StData emits [sym+addend] <- rs.
func (f *FuncBuilder) StData(sym string, addend int64, rs guest.Reg) *FuncBuilder {
	in := guest.NewInstM(guest.ST, rs, guest.Mem{Base: guest.RegNone, Index: guest.RegNone, Scale: 1})
	return f.emit(item{inst: in, kind: relocDataM, sym: sym, addend: addend})
}

// Lea emits rd <- &m.
func (f *FuncBuilder) Lea(rd guest.Reg, m guest.Mem) *FuncBuilder {
	return f.I(guest.NewInstM(guest.LEA, rd, m))
}

// Op emits a two-register ALU instruction.
func (f *FuncBuilder) Op(op guest.Op, rd, rs guest.Reg) *FuncBuilder {
	return f.I(guest.NewInst(op, rd, rs))
}

// OpI emits an ALU instruction with immediate.
func (f *FuncBuilder) OpI(op guest.Op, rd guest.Reg, imm int64) *FuncBuilder {
	return f.I(guest.NewInstI(op, rd, imm))
}

// Cmp emits flags <- compare(ra, rb).
func (f *FuncBuilder) Cmp(ra, rb guest.Reg) *FuncBuilder {
	return f.I(guest.NewInst(guest.CMP, ra, rb))
}

// Cmpi emits flags <- compare(ra, imm).
func (f *FuncBuilder) Cmpi(ra guest.Reg, imm int64) *FuncBuilder {
	return f.I(guest.NewInstI(guest.CMPI, ra, imm))
}

// J emits a branch (JMP or conditional) to label l.
func (f *FuncBuilder) J(op guest.Op, l Label) *FuncBuilder {
	return f.emit(item{inst: guest.NewInstI(op, guest.RegNone, 0), kind: relocLabel, label: l})
}

// Call emits a call to the named function (local or imported).
func (f *FuncBuilder) Call(name string) *FuncBuilder {
	return f.emit(item{inst: guest.NewInstI(guest.CALL, guest.RegNone, 0), kind: relocFunc, sym: name})
}

// Ret emits a return.
func (f *FuncBuilder) Ret() *FuncBuilder {
	return f.I(guest.Inst{Op: guest.RET, Rd: guest.RegNone, Rs: guest.RegNone, M: guest.NoMem})
}

// Push and Pop manage the stack.
func (f *FuncBuilder) Push(rs guest.Reg) *FuncBuilder {
	return f.I(guest.Inst{Op: guest.PUSH, Rd: guest.RegNone, Rs: rs, M: guest.NoMem})
}

// Pop emits rd <- [sp++].
func (f *FuncBuilder) Pop(rd guest.Reg) *FuncBuilder {
	return f.I(guest.Inst{Op: guest.POP, Rd: rd, Rs: guest.RegNone, M: guest.NoMem})
}

// Syscall emits a syscall; the number must already be in R0.
func (f *FuncBuilder) Syscall() *FuncBuilder {
	return f.I(guest.Inst{Op: guest.SYSCALL, Rd: guest.RegNone, Rs: guest.RegNone, M: guest.NoMem})
}

// Halt stops the machine.
func (f *FuncBuilder) Halt() *FuncBuilder {
	return f.I(guest.Inst{Op: guest.HALT, Rd: guest.RegNone, Rs: guest.RegNone, M: guest.NoMem})
}

// Nop emits a no-op.
func (f *FuncBuilder) Nop() *FuncBuilder {
	return f.I(guest.Inst{Op: guest.NOP, Rd: guest.RegNone, Rs: guest.RegNone, M: guest.NoMem})
}

// Len returns the number of instructions emitted so far.
func (f *FuncBuilder) Len() int { return len(f.items) }

// Build lays out all functions and the PLT, resolves relocations and
// returns the finished executable.
func (b *Builder) Build() (*obj.Executable, error) {
	// Assign addresses: functions in definition order, then PLT stubs.
	funcAddr := map[string]uint64{}
	addr := b.codeBase
	for _, f := range b.funcs {
		funcAddr[f.name] = addr
		addr += uint64(len(f.items) * guest.InstSize)
	}
	pltAddr := map[string]uint64{}
	var imports []obj.Import
	for _, name := range b.imports {
		pltAddr[name] = addr
		imports = append(imports, obj.Import{Name: name, PLT: addr})
		addr += guest.InstSize
	}

	var code []byte
	var symbols []obj.Symbol
	for _, f := range b.funcs {
		base := funcAddr[f.name]
		symbols = append(symbols, obj.Symbol{Name: f.name, Addr: base, Size: uint64(len(f.items) * guest.InstSize), Kind: obj.SymFunc})
		for idx, it := range f.items {
			in := it.inst
			switch it.kind {
			case relocLabel:
				bound := f.labels[it.label]
				if bound < 0 {
					return nil, fmt.Errorf("asm: %s: unbound label %d", f.name, it.label)
				}
				in.Imm = int64(base + uint64(bound*guest.InstSize))
			case relocFunc:
				if a, ok := funcAddr[it.sym]; ok {
					in.Imm = int64(a)
				} else if a, ok := pltAddr[it.sym]; ok {
					in.Imm = int64(a)
				} else {
					return nil, fmt.Errorf("asm: %s: call to undefined function %q", f.name, it.sym)
				}
			case relocDataI:
				a, ok := b.dataAddr[it.sym]
				if !ok {
					return nil, fmt.Errorf("asm: %s: reference to undefined data %q", f.name, it.sym)
				}
				in.Imm = int64(a) + it.addend
			case relocDataM:
				a, ok := b.dataAddr[it.sym]
				if !ok {
					return nil, fmt.Errorf("asm: %s: reference to undefined data %q", f.name, it.sym)
				}
				in.M.Disp = int64(a) + it.addend
			}
			eb := guest.Encode(in)
			code = append(code, eb[:]...)
			_ = idx
		}
	}
	// PLT stubs: a single JMP each; target patched by the loader.
	for range b.imports {
		eb := guest.Encode(guest.NewInstI(guest.JMP, guest.RegNone, 0))
		code = append(code, eb[:]...)
	}
	symbols = append(symbols, b.dataSyms...)

	if len(b.funcs) == 0 {
		return nil, fmt.Errorf("asm: program %q has no functions", b.name)
	}
	entry := funcAddr[b.funcs[0].name]
	if f, ok := b.byName["main"]; ok {
		entry = funcAddr[f.name]
	}
	return &obj.Executable{
		Name:     b.name,
		Entry:    entry,
		CodeBase: b.codeBase,
		Code:     code,
		DataBase: b.dataBase,
		Data:     append([]byte(nil), b.data...),
		Symbols:  symbols,
		Imports:  imports,
	}, nil
}

// BuildLibrary assembles a shared library from the builder's functions.
// Data sections are not supported in libraries.
func (b *Builder) BuildLibrary(base uint64) (*obj.Library, error) {
	funcAddr := map[string]uint64{}
	addr := base
	for _, f := range b.funcs {
		funcAddr[f.name] = addr
		addr += uint64(len(f.items) * guest.InstSize)
	}
	var code []byte
	var symbols []obj.Symbol
	for _, f := range b.funcs {
		fbase := funcAddr[f.name]
		symbols = append(symbols, obj.Symbol{Name: f.name, Addr: fbase, Size: uint64(len(f.items) * guest.InstSize), Kind: obj.SymFunc})
		for _, it := range f.items {
			in := it.inst
			switch it.kind {
			case relocLabel:
				bound := f.labels[it.label]
				if bound < 0 {
					return nil, fmt.Errorf("asm: lib %s: unbound label", f.name)
				}
				in.Imm = int64(fbase + uint64(bound*guest.InstSize))
			case relocFunc:
				a, ok := funcAddr[it.sym]
				if !ok {
					return nil, fmt.Errorf("asm: lib %s: undefined function %q", f.name, it.sym)
				}
				in.Imm = int64(a)
			case relocDataI, relocDataM:
				return nil, fmt.Errorf("asm: lib %s: data relocations unsupported in libraries", f.name)
			}
			eb := guest.Encode(in)
			code = append(code, eb[:]...)
		}
	}
	return &obj.Library{Name: b.name, Base: base, Code: code, Symbols: symbols}, nil
}
