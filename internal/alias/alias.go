// Package alias performs the memory dependence analysis of the static
// analyser: it partitions a loop's memory accesses by symbolic array
// base, computes distance-vector dependence tests within each array,
// identifies privatisable and main-stack accesses, and emits the
// symbolic ranges for runtime MEM_BOUNDS_CHECK rules between arrays
// whose separation cannot be proved statically (paper §II-D and fig. 4).
package alias

import (
	"fmt"
	"sort"
	"strings"

	"janus/internal/guest"
	"janus/internal/rules"
	"janus/internal/ssa"
	"janus/internal/sym"
)

// Group is a set of accesses sharing a symbolic array base: the same
// register polynomial (with constant bases folded into BaseConst).
type Group struct {
	// Key is the canonical string of the register part of the base.
	Key string
	// Base is the invariant symbolic base (register part only; per-
	// access constants live in the Offsets).
	Base sym.Expr
	// Accesses in this group.
	Accesses []sym.Access
	// Stride is the common per-iteration stride, valid if UniformStride.
	Stride        int64
	UniformStride bool
	HasWrite      bool
	HasRead       bool
}

// SpanOffsets returns the min constant offset and max constant offset +
// width over the group's accesses.
func (g *Group) SpanOffsets() (lo, hi int64) {
	first := true
	for _, a := range g.Accesses {
		c := a.Addr.Const
		if first {
			lo, hi = c, c+a.Width
			first = false
			continue
		}
		if c < lo {
			lo = c
		}
		if c+a.Width > hi {
			hi = c + a.Width
		}
	}
	return lo, hi
}

// Dep is a proven cross-iteration data dependence.
type Dep struct {
	A, B sym.Access
	Kind string // "flow", "anti/output", "unknown-stride"
}

// Result is the outcome of dependence analysis for one loop.
type Result struct {
	// Groups by symbolic base.
	Groups []*Group
	// Deps are statically proven cross-iteration dependences that
	// privatisation cannot remove.
	Deps []Dep
	// Privatisable are stride-0 scalar cells written before read each
	// iteration; MEM_PRIVATISE removes their WAR/WAW dependences.
	Privatisable []PrivGroup
	// MainStackReads are read-only stack accesses needing
	// MEM_MAIN_STACK redirection in parallel threads.
	MainStackReads []ssa.InstRef
	// Unanalyzable are accesses whose address could not be
	// canonicalised; they force profiling/speculation (type C or D).
	Unanalyzable []sym.Access
	// Checks holds the symbolic ranges for a runtime bounds check, one
	// per group participating in a cross-group pair involving a write.
	// Empty when all bases were proved distinct or none is writable.
	Checks []rules.RangeSpec
	// CheckFailed is set when a cross-group pair existed but a range
	// was not runtime-computable, so no check can guard the loop.
	CheckFailed bool
}

// PrivGroup is one privatisable memory cell.
type PrivGroup struct {
	// Addr is the cell's invariant address expression.
	Addr sym.Expr
	Size int64
	Refs []ssa.InstRef
}

// Analyze runs dependence analysis over la. tripKnown conveys whether
// la.Trip is available (bounding the distance test).
func Analyze(la *sym.Analysis) *Result {
	res := &Result{}
	groups := map[string]*Group{}

	for _, acc := range la.Accesses {
		if acc.Addr.Unknown {
			res.Unanalyzable = append(res.Unanalyzable, acc)
			continue
		}
		key := baseKey(acc.Addr)
		g := groups[key]
		if g == nil {
			base := acc.Addr.Invariant()
			base.Const = 0
			g = &Group{Key: key, Base: base, UniformStride: true, Stride: acc.Addr.Iter}
			groups[key] = g
		}
		if acc.Addr.Iter != g.Stride {
			g.UniformStride = false
		}
		if acc.Write {
			g.HasWrite = true
		} else {
			g.HasRead = true
		}
		g.Accesses = append(g.Accesses, acc)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res.Groups = append(res.Groups, groups[k])
	}

	var tripN int64 = -1 // unknown
	if la.Trip != nil {
		if n, ok := la.Trip.IsStatic(); ok {
			tripN = n
		}
	}

	// Within-group dependence tests.
	for _, g := range res.Groups {
		analyzeGroup(la, g, tripN, res)
	}

	// Cross-group: constant bases can be separated statically; symbolic
	// bases need runtime checks when a write is involved.
	emitCrossGroupChecks(la, res, tripN)

	// Stack reads: groups whose base is exactly SP and read-only.
	for _, g := range res.Groups {
		if isStackBase(g.Base) && !g.HasWrite {
			for _, a := range g.Accesses {
				res.MainStackReads = append(res.MainStackReads, a.Ref)
			}
		}
	}
	return res
}

func baseKey(e sym.Expr) string {
	inv := e.Invariant()
	regs := make([]guest.Reg, 0, len(inv.Regs))
	for r := range inv.Regs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	var b strings.Builder
	for _, r := range regs {
		fmt.Fprintf(&b, "%s*%d;", r, inv.Regs[r])
	}
	if len(regs) == 0 {
		// Constant bases are comparable exactly; each absolute array is
		// its own group only through its constant, so group all
		// constant-based accesses together and let the distance test
		// separate them.
		b.WriteString("const")
	}
	return b.String()
}

func isStackBase(e sym.Expr) bool {
	return len(e.Regs) == 1 && e.Regs[guest.SP] == 1
}

// analyzeGroup performs the distance-vector test between every
// write-read and write-write pair in the group. Stride-0 cells are
// tracked separately so scalar temporaries can be privatised.
func analyzeGroup(la *sym.Analysis, g *Group, tripN int64, res *Result) {
	if !g.HasWrite {
		return
	}
	var strided []sym.Access
	cells := map[int64][]sym.Access{}
	for _, a := range g.Accesses {
		if a.Addr.Iter == 0 {
			cells[a.Addr.Const] = append(cells[a.Addr.Const], a)
		} else {
			strided = append(strided, a)
		}
	}

	// Strided vs strided.
	for i := 0; i < len(strided); i++ {
		for j := i; j < len(strided); j++ {
			a, b := strided[i], strided[j]
			if !a.Write && !b.Write {
				continue
			}
			if a.Addr.Iter == b.Addr.Iter {
				if dep, kind := crossIterDep(a, b, tripN); dep {
					res.Deps = append(res.Deps, Dep{A: a, B: b, Kind: kind})
				}
			} else if !sweptDisjoint(a, b, tripN) {
				res.Deps = append(res.Deps, Dep{A: a, B: b, Kind: "mixed-stride"})
			}
		}
	}

	// Cells vs strided, and cells vs other cells.
	conflicted := map[int64]bool{}
	offs := make([]int64, 0, len(cells))
	for off := range cells {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		cellW := maxWidth(cells[off])
		cellWrites := anyWrite(cells[off])
		for _, sacc := range strided {
			if !cellWrites && !sacc.Write {
				continue
			}
			cell := sym.Access{Addr: sym.Expr{Const: off}, Width: cellW, Write: cellWrites}
			if !sweptDisjoint(cell, sacc, tripN) {
				conflicted[off] = true
				res.Deps = append(res.Deps, Dep{A: cells[off][0], B: sacc, Kind: "cell-array"})
			}
		}
		for _, other := range offs {
			if other == off {
				continue
			}
			if overlap(off, cellW, other, maxWidth(cells[other])) && (cellWrites || anyWrite(cells[other])) {
				conflicted[off] = true
			}
		}
	}

	// Privatisation or carried flow for unconflicted write cells.
	for _, off := range offs {
		if conflicted[off] || !anyWrite(cells[off]) {
			continue
		}
		if writeDominatesReads(la, cells[off]) {
			pg := PrivGroup{Addr: cells[off][0].Addr.Invariant(), Size: maxWidth(cells[off])}
			for _, a := range cells[off] {
				pg.Refs = append(pg.Refs, a.Ref)
			}
			res.Privatisable = append(res.Privatisable, pg)
		} else {
			res.Deps = append(res.Deps, Dep{A: cells[off][0], B: cells[off][len(cells[off])-1], Kind: "flow"})
		}
	}
}

func anyWrite(accs []sym.Access) bool {
	for _, a := range accs {
		if a.Write {
			return true
		}
	}
	return false
}

// sweptDisjoint proves the full iteration-space footprints of two
// accesses (relative to the shared base) do not overlap. With an
// unknown trip count, strided footprints are unbounded and nothing can
// be proved.
func sweptDisjoint(a, b sym.Access, tripN int64) bool {
	if tripN < 0 && (a.Addr.Iter != 0 || b.Addr.Iter != 0) {
		return false
	}
	aLo, aHi := footprint(a, tripN)
	bLo, bHi := footprint(b, tripN)
	return aHi <= bLo || bHi <= aLo
}

// footprint returns [lo, hi) of access a over iterations [0, N).
func footprint(a sym.Access, tripN int64) (int64, int64) {
	c, s, w := a.Addr.Const, a.Addr.Iter, a.Width
	if s == 0 || tripN <= 0 {
		return c, c + w
	}
	span := s * (tripN - 1)
	if span < 0 {
		return c + span, c + w
	}
	return c, c + span + w
}

// crossIterDep solves whether addresses a (iteration i1) and b
// (iteration i2) can touch overlapping bytes with i1 != i2, both within
// [0, N). Addresses share the same symbolic base, so only constants and
// strides matter.
func crossIterDep(a, b sym.Access, tripN int64) (bool, string) {
	sa, sb := a.Addr.Iter, b.Addr.Iter
	da := a.Addr.Const
	db := b.Addr.Const
	if sa != sb {
		// Differing strides over the same base: solve exactly only for
		// the easy case sa == 0 || sb == 0 with const distance; be
		// conservative otherwise.
		if sa == 0 || sb == 0 {
			// One side fixed: the strided side sweeps; overlap almost
			// always possible unless ranges provably disjoint. Be
			// conservative.
			return true, "mixed-stride"
		}
		return true, "unknown-stride"
	}
	s := sa
	if s == 0 {
		// Same cell each iteration.
		if overlap(da, a.Width, db, b.Width) {
			return true, "same-cell"
		}
		return false, ""
	}
	// Need integer k = i1 - i2 != 0 with -wb < (da - db) + s*k < wa
	// and |k| < N when N is known.
	d := da - db
	// k in ((-wb - d)/s, (wa - d)/s) for s > 0 (reversed for s < 0).
	lo, hi := intervalDiv(-b.Width-d+1, a.Width-d-1, s)
	for k := lo; k <= hi; k++ {
		if k == 0 {
			continue
		}
		if tripN >= 0 && (k >= tripN || k <= -tripN) {
			continue
		}
		v := d + s*k
		if v > -b.Width && v < a.Width {
			return true, "distance"
		}
	}
	return false, ""
}

// intervalDiv returns the integer k-range to scan for solutions of
// numLo <= s*k <= numHi.
func intervalDiv(numLo, numHi, s int64) (int64, int64) {
	if s < 0 {
		numLo, numHi, s = -numHi, -numLo, -s
	}
	lo := floorDiv(numLo, s)
	hi := floorDiv(numHi, s) + 1
	// Clamp the scan to a sane window; strides and widths are small.
	if hi-lo > 64 {
		hi = lo + 64
	}
	return lo, hi
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func overlap(a int64, wa int64, b int64, wb int64) bool {
	return a < b+wb && b < a+wa
}

func maxWidth(accs []sym.Access) int64 {
	var w int64
	for _, a := range accs {
		if a.Width > w {
			w = a.Width
		}
	}
	return w
}

// writeDominatesReads reports whether some write to the cell dominates
// every read of it within the loop (so each iteration writes before
// reading: WAR/WAW only, removable by privatisation).
func writeDominatesReads(la *sym.Analysis, accs []sym.Access) bool {
	fn := la.Loop.Fn
	var writes []ssa.InstRef
	for _, a := range accs {
		if a.Write {
			writes = append(writes, a.Ref)
		}
	}
	for _, a := range accs {
		if a.Write {
			continue
		}
		covered := false
		for _, w := range writes {
			if w.Block == a.Ref.Block && w.Idx < a.Ref.Idx {
				covered = true
				break
			}
			if w.Block != a.Ref.Block && fn.Dominates(w.Block, a.Ref.Block) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// emitCrossGroupChecks builds the MEM_BOUNDS_CHECK ranges for arrays
// whose separation is not statically provable.
func emitCrossGroupChecks(la *sym.Analysis, res *Result, tripN int64) {
	// Collect groups with symbolic (register) bases plus the constant
	// group; checks are needed between any write group and any other
	// group unless both bases are constant (then the distance test above
	// already decided).
	var symbolic []*Group
	for _, g := range res.Groups {
		if isStackBase(g.Base) {
			continue
		}
		if len(g.Base.Regs) > 0 {
			symbolic = append(symbolic, g)
		}
	}
	if len(symbolic) == 0 {
		return
	}
	needsCheck := false
	for i, g := range symbolic {
		if g.HasWrite {
			// Against every other group (symbolic or constant).
			if len(res.Groups) > 1 || len(g.Accesses) < len(la.Accesses) {
				needsCheck = true
			}
		}
		for j := i + 1; j < len(symbolic); j++ {
			if g.HasWrite || symbolic[j].HasWrite {
				needsCheck = true
			}
		}
	}
	if !needsCheck {
		return
	}
	// Trip must be computable at runtime for the ranges to close.
	if la.Trip == nil || la.Trip.Num.Unknown {
		res.CheckFailed = true
		return
	}
	_ = tripN
	for _, g := range res.Groups {
		if isStackBase(g.Base) {
			continue
		}
		if !g.UniformStride {
			res.CheckFailed = true
			return
		}
		if g.Base.Unknown {
			res.CheckFailed = true
			return
		}
		lo, hi := g.SpanOffsets()
		res.Checks = append(res.Checks, rules.RangeSpec{
			Write:  g.HasWrite,
			Base:   g.Base,
			Stride: g.Stride,
			LoOff:  lo,
			HiOff:  hi,
		})
	}
}
