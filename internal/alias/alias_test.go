package alias

import (
	"testing"

	"janus/internal/asm"
	"janus/internal/cfg"
	"janus/internal/guest"
	"janus/internal/ssa"
	"janus/internal/sym"
)

func analyze(t *testing.T, build func(f *asm.FuncBuilder)) (*sym.Analysis, *Result) {
	t.Helper()
	b := asm.NewBuilder("t")
	b.Data("a", 8*4096)
	b.Data("b", 8*4096)
	f := b.Func("main")
	build(f)
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	main := p.FuncByAddr[exe.Entry]
	if len(main.Loops) == 0 {
		t.Fatal("no loops")
	}
	la := sym.Analyze(main.Loops[0], ssa.Build(main))
	return la, Analyze(la)
}

// loopHeaderWith emits the standard counting-loop prologue/epilogue and
// calls body for the loop body instructions.
func loopHeaderWith(f *asm.FuncBuilder, n int64, body func()) {
	loop, done := f.NewLabel(), f.NewLabel()
	f.Movi(guest.R1, 0)
	f.Bind(loop)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	body()
	f.OpI(guest.ADDI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	f.Halt()
}

func TestIndependentArraysNoDeps(t *testing.T) {
	// b[i] = a[i] with constant (static) bases: provably independent.
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "a", 0)
		f.MoviData(guest.R9, "b", 0)
		loopHeaderWith(f, 1024, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
		})
	})
	if len(res.Deps) != 0 {
		t.Fatalf("false dependences: %v", res.Deps)
	}
	if len(res.Checks) != 0 {
		t.Fatalf("constant bases should not need checks: %v", res.Checks)
	}
}

func TestInPlaceUpdateNoCrossIterDep(t *testing.T) {
	// a[i] = a[i] * 2: same cell, same iteration — DOALL.
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "a", 0)
		loopHeaderWith(f, 512, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.OpI(guest.IMULI, guest.R3, 2)
			f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R3)
		})
	})
	if len(res.Deps) != 0 {
		t.Fatalf("in-place update misclassified: %v", res.Deps)
	}
}

func TestLoopCarriedStencilDetected(t *testing.T) {
	// a[i] = a[i-1]: flow dependence at distance 1.
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "a", 0)
		loopHeaderWith(f, 512, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 0})
			f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8}, guest.R3)
		})
	})
	if len(res.Deps) == 0 {
		t.Fatal("distance-1 dependence missed")
	}
}

func TestFarApartOffsetsNoDep(t *testing.T) {
	// Writes at a[i] and reads at a[i + 2048] with N=512: distance 2048
	// exceeds the iteration range, no dependence.
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "a", 0)
		loopHeaderWith(f, 512, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8 * 2048})
			f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R3)
		})
	})
	if len(res.Deps) != 0 {
		t.Fatalf("trip-bounded distance test failed: %v", res.Deps)
	}
}

func TestRuntimeBasesNeedChecks(t *testing.T) {
	// Bases come from memory (opaque pointers): checks required.
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.LdData(guest.R8, "a", 0) // runtime pointer
		f.LdData(guest.R9, "b", 0)
		loopHeaderWith(f, 512, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
		})
	})
	if len(res.Checks) != 2 {
		t.Fatalf("want 2 range specs, got %d (failed=%v)", len(res.Checks), res.CheckFailed)
	}
	var wr, rd int
	for _, c := range res.Checks {
		if c.Write {
			wr++
		} else {
			rd++
		}
	}
	if wr != 1 || rd != 1 {
		t.Fatalf("check roles wrong: %d writes %d reads", wr, rd)
	}
	// Interval evaluation: r8=0x10000, r9=0x20000, N=512 — disjoint.
	regs := func(r guest.Reg) uint64 {
		switch r {
		case guest.R8:
			return 0x10000
		case guest.R9:
			return 0x20000
		}
		return 0
	}
	lo0, hi0 := res.Checks[0].Interval(regs, 512)
	lo1, hi1 := res.Checks[1].Interval(regs, 512)
	if hi0-lo0 != 512*8 || hi1-lo1 != 512*8 {
		t.Fatalf("interval sizes: [%d,%d) [%d,%d)", lo0, hi0, lo1, hi1)
	}
	if lo0 < hi1 && lo1 < hi0 {
		t.Fatal("intervals should be disjoint for these registers")
	}
}

func TestScalarPrivatisation(t *testing.T) {
	// tmp (a fixed cell) is written then read every iteration: WAR/WAW
	// removable by privatisation.
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "a", 0)
		loopHeaderWith(f, 128, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.StData("b", 0, guest.R3)     // tmp = a[i]  (write first)
			f.LdData(guest.R4, "b", 0)     // use tmp
			f.OpI(guest.ADDI, guest.R4, 1) //
			f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R4)
		})
	})
	if len(res.Privatisable) != 1 {
		t.Fatalf("privatisable cells: %d (deps=%v)", len(res.Privatisable), res.Deps)
	}
	if len(res.Deps) != 0 {
		t.Fatalf("privatisable cell should carry no dep: %v", res.Deps)
	}
	if res.Privatisable[0].Size != 8 || len(res.Privatisable[0].Refs) != 2 {
		t.Fatalf("priv group: %+v", res.Privatisable[0])
	}
}

func TestScalarCarriedFlowDetected(t *testing.T) {
	// acc cell is read then written: genuine cross-iteration flow.
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "a", 0)
		loopHeaderWith(f, 128, func() {
			f.LdData(guest.R3, "b", 0) // read previous value
			f.Ld(guest.R4, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.Op(guest.ADD, guest.R3, guest.R4)
			f.StData("b", 0, guest.R3) // write new value
		})
	})
	if len(res.Privatisable) != 0 {
		t.Fatal("carried scalar wrongly privatised")
	}
	if len(res.Deps) == 0 {
		t.Fatal("carried scalar flow dependence missed")
	}
}

func TestOpaqueAccessReported(t *testing.T) {
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "a", 0)
		loopHeaderWith(f, 64, func() {
			f.Ld(guest.R4, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.Ld(guest.R5, guest.Mem{Base: guest.R4, Index: guest.RegNone, Scale: 1})
			f.St(guest.Mem{Base: guest.R4, Index: guest.RegNone, Scale: 1}, guest.R5)
		})
	})
	if len(res.Unanalyzable) != 2 {
		t.Fatalf("opaque accesses: %d", len(res.Unanalyzable))
	}
}

func TestVectorAccessWidths(t *testing.T) {
	// Vector store sweeping 32 bytes per iteration with stride 32.
	_, res := analyze(t, func(f *asm.FuncBuilder) {
		f.MoviData(guest.R8, "a", 0)
		f.MoviData(guest.R9, "b", 0)
		loop, done := f.NewLabel(), f.NewLabel()
		f.Movi(guest.R1, 0)
		f.Bind(loop)
		f.Cmpi(guest.R1, 4096)
		f.J(guest.JGE, done)
		f.I(guest.NewInstM(guest.VLD, 0, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}))
		f.I(guest.NewInstM(guest.VST, 0, guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}))
		f.OpI(guest.ADDI, guest.R1, 4)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Halt()
	})
	if len(res.Deps) != 0 {
		t.Fatalf("vector copy misclassified: %v", res.Deps)
	}
	for _, g := range res.Groups {
		if g.Stride != 32 {
			t.Fatalf("vector stride = %d, want 32", g.Stride)
		}
	}
}

func TestOverlapHelper(t *testing.T) {
	if !overlap(0, 8, 4, 8) || overlap(0, 8, 8, 8) || !overlap(4, 8, 0, 8) {
		t.Fatal("overlap() broken")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 3}, {8, 2, 4}, {-8, 2, -4},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
