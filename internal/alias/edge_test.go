package alias

import (
	"testing"

	"janus/internal/guest"
	"janus/internal/sym"
)

// TestOverlap pins the half-open interval semantics of the byte-range
// overlap test: adjacent ranges never alias, any shared byte does.
func TestOverlap(t *testing.T) {
	tests := []struct {
		name         string
		a, wa, b, wb int64
		want         bool
	}{
		{"identical", 0, 8, 0, 8, true},
		{"contained", 0, 32, 8, 8, true},
		{"partial", 0, 8, 4, 8, true},
		{"adjacent-right", 0, 8, 8, 8, false},
		{"adjacent-left", 8, 8, 0, 8, false},
		{"disjoint", 0, 8, 64, 8, false},
		{"one-byte-shared", 0, 9, 8, 8, true},
		{"negative-offsets", -16, 8, -12, 8, true},
		{"negative-disjoint", -16, 8, -8, 8, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := overlap(tc.a, tc.wa, tc.b, tc.wb); got != tc.want {
				t.Errorf("overlap(%d,%d,%d,%d) = %v, want %v", tc.a, tc.wa, tc.b, tc.wb, got, tc.want)
			}
		})
	}
}

func acc(off, stride int64, write bool) sym.Access {
	return sym.Access{Write: write, Width: 8, Addr: sym.Expr{Const: off, Iter: stride}}
}

// TestCrossIterDep tables the distance test over accesses sharing one
// symbolic base: constant distances inside and outside the iteration
// space, unaligned partial overlap, same-cell accumulators, and the
// conservative mixed/unknown-stride fallbacks.
func TestCrossIterDep(t *testing.T) {
	tests := []struct {
		name string
		a, b sym.Access
		trip int64
		want bool
		kind string
	}{
		// a[i] written, a[i+1] read: distance-1 flow dependence.
		{"distance-1", acc(0, 8, true), acc(8, 8, false), 256, true, "distance"},
		// Distance 8 within a 256-iteration space.
		{"distance-8", acc(0, 8, true), acc(64, 8, false), 256, true, "distance"},
		// The dependence distance equals the trip count: never realised.
		{"distance-beyond-trip", acc(0, 8, true), acc(8*6, 8, false), 6, false, ""},
		// Unaligned 4-byte offset still lands inside the 8-byte write.
		{"unaligned-partial", acc(0, 8, true), acc(4, 8, false), 256, true, "distance"},
		// Stride 16 with offset 8: the odd words are never written.
		{"interleaved-disjoint", acc(0, 16, true), acc(8, 16, false), 256, false, ""},
		// Same scalar cell written every iteration.
		{"same-cell", acc(0, 0, true), acc(0, 0, false), 256, true, "same-cell"},
		{"distinct-cells", acc(0, 0, true), acc(8, 0, false), 256, false, ""},
		// Zero-stride cell against a sweeping write: conservative.
		{"mixed-stride", acc(0, 0, true), acc(0, 8, false), 256, true, "mixed-stride"},
		// Differing nonzero strides: conservative unknown.
		{"unknown-stride", acc(0, 8, true), acc(0, 16, false), 256, true, "unknown-stride"},
		// Unknown trip count: distance deps must still be found.
		{"distance-unknown-trip", acc(0, 8, true), acc(8, 8, false), -1, true, "distance"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, kind := crossIterDep(tc.a, tc.b, tc.trip)
			if got != tc.want || kind != tc.kind {
				t.Errorf("crossIterDep = (%v, %q), want (%v, %q)", got, kind, tc.want, tc.kind)
			}
		})
	}
}

// TestSweptDisjoint covers whole-iteration-space footprint separation:
// adjacent array footprints, overlapping sweeps, negative strides, and
// the unknown-trip conservatism.
func TestSweptDisjoint(t *testing.T) {
	tests := []struct {
		name string
		a, b sym.Access
		trip int64
		want bool
	}{
		// Two 64-element arrays side by side, both swept: adjacent.
		{"adjacent-arrays", acc(0, 8, true), acc(64*8, 8, false), 64, true},
		// The second array starts one element early: one shared word.
		{"one-word-overlap", acc(0, 8, true), acc(63*8, 8, false), 64, false},
		// Negative stride sweeping down into the other range.
		{"negative-stride-overlap", acc(64*8, -8, true), acc(0, 8, false), 64, false},
		// Scalar cell beyond the swept range.
		{"cell-past-sweep", acc(0, 8, true), acc(64*8, 0, false), 64, true},
		// Unknown trip: a strided access could reach anything.
		{"unknown-trip", acc(0, 8, true), acc(1<<20, 0, false), -1, false},
		// Unknown trip but both stride-0: plain interval test.
		{"unknown-trip-cells", acc(0, 0, true), acc(8, 0, false), -1, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := sweptDisjoint(tc.a, tc.b, tc.trip); got != tc.want {
				t.Errorf("sweptDisjoint = %v, want %v", got, tc.want)
			}
		})
	}
}

func symAcc(base guest.Reg, off, stride int64, write bool) sym.Access {
	return sym.Access{Write: write, Width: 8, Addr: sym.Expr{
		Regs:  map[guest.Reg]int64{base: 1},
		Const: off,
		Iter:  stride,
	}}
}

func analysisWith(trip int64, accs ...sym.Access) *sym.Analysis {
	la := &sym.Analysis{Accesses: accs}
	if trip > 0 {
		la.Trip = &sym.Trip{Num: sym.ConstExpr(trip), Den: 1}
	}
	return la
}

// TestAnalyzeConstantBases drives the full Analyze pass over
// constant-base (symbol+offset) access patterns: overlapping ranges
// prove a dependence, adjacent ranges prove independence, and neither
// needs a runtime check.
func TestAnalyzeConstantBases(t *testing.T) {
	const n = 64
	t.Run("adjacent-no-alias", func(t *testing.T) {
		res := Analyze(analysisWith(n,
			acc(0, 8, true),     // write a[i], a at offset 0
			acc(n*8, 8, false))) // read  b[i], b adjacent after a
		if len(res.Deps) != 0 {
			t.Errorf("adjacent constant arrays produced deps: %v", res.Deps)
		}
		if len(res.Checks) != 0 || res.CheckFailed {
			t.Errorf("constant bases must not need runtime checks: %d checks, failed=%v", len(res.Checks), res.CheckFailed)
		}
	})
	t.Run("overlapping-must-alias", func(t *testing.T) {
		res := Analyze(analysisWith(n,
			acc(0, 8, true),         // write a[i]
			acc((n-1)*8, 8, false))) // read starting at a's last word
		if len(res.Deps) == 0 {
			t.Error("overlapping constant ranges produced no dependence")
		}
	})
	t.Run("same-array-distance", func(t *testing.T) {
		res := Analyze(analysisWith(n,
			acc(8, 8, true),   // write a[i+1]
			acc(0, 8, false))) // read a[i]
		if len(res.Deps) == 0 {
			t.Fatal("distance-1 stencil produced no dependence")
		}
		if res.Deps[0].Kind != "distance" {
			t.Errorf("dep kind %q, want distance", res.Deps[0].Kind)
		}
	})
	t.Run("read-only", func(t *testing.T) {
		res := Analyze(analysisWith(n, acc(0, 8, false), acc(8, 8, false)))
		if len(res.Deps) != 0 || len(res.Checks) != 0 {
			t.Error("read-only loop must have no deps and no checks")
		}
	})
}

// TestAnalyzeSymbolicBases drives Analyze over register-symbolic bases
// — the may-alias shapes that need runtime MEM_BOUNDS_CHECK ranges —
// including the failure modes where no check can be constructed.
func TestAnalyzeSymbolicBases(t *testing.T) {
	const n = 64
	t.Run("two-bases-checked", func(t *testing.T) {
		res := Analyze(analysisWith(n,
			symAcc(guest.R8, 0, 8, false),
			symAcc(guest.R9, 0, 8, true)))
		if len(res.Deps) != 0 {
			t.Errorf("distinct symbolic bases are not a static dep: %v", res.Deps)
		}
		if res.CheckFailed {
			t.Fatal("checks unexpectedly failed")
		}
		if len(res.Checks) != 2 {
			t.Fatalf("got %d check ranges, want 2 (one per group)", len(res.Checks))
		}
		var wrote, read bool
		for _, c := range res.Checks {
			if c.Write {
				wrote = true
				if c.Base.Regs[guest.R9] != 1 {
					t.Errorf("write range base %v, want R9", c.Base)
				}
			} else {
				read = true
			}
			if c.LoOff != 0 || c.HiOff != 8 {
				t.Errorf("range offsets [%d,%d), want [0,8)", c.LoOff, c.HiOff)
			}
			if c.Stride != 8 {
				t.Errorf("range stride %d, want 8", c.Stride)
			}
		}
		if !wrote || !read {
			t.Errorf("check set missing write/read range: wrote=%v read=%v", wrote, read)
		}
	})
	t.Run("same-base-offset-stencil", func(t *testing.T) {
		// One symbolic array, write at [R8+8i+8], read at [R8+8i]: the
		// offsets prove a distance-1 dependence without knowing R8.
		res := Analyze(analysisWith(n,
			symAcc(guest.R8, 8, 8, true),
			symAcc(guest.R8, 0, 8, false)))
		if len(res.Deps) == 0 {
			t.Fatal("symbol-offset stencil produced no dependence")
		}
		if len(res.Checks) != 0 {
			t.Errorf("single-group loop needs no cross-group checks, got %d", len(res.Checks))
		}
	})
	t.Run("unknown-trip-check-failed", func(t *testing.T) {
		res := Analyze(analysisWith(0, // no trip count
			symAcc(guest.R8, 0, 8, false),
			symAcc(guest.R9, 0, 8, true)))
		if !res.CheckFailed {
			t.Error("unbounded trip must fail check construction")
		}
		if len(res.Checks) != 0 {
			t.Errorf("failed check construction still emitted %d ranges", len(res.Checks))
		}
	})
	t.Run("non-uniform-stride-check-failed", func(t *testing.T) {
		res := Analyze(analysisWith(n,
			symAcc(guest.R8, 0, 8, true),
			symAcc(guest.R8, 0, 16, false),
			symAcc(guest.R9, 0, 8, false)))
		if !res.CheckFailed {
			t.Error("mixed strides within a group must fail check construction")
		}
	})
	t.Run("unanalyzable-access", func(t *testing.T) {
		res := Analyze(analysisWith(n,
			sym.Access{Write: true, Width: 8, Addr: sym.UnknownExpr()},
			acc(0, 8, false)))
		if len(res.Unanalyzable) != 1 {
			t.Errorf("got %d unanalyzable accesses, want 1", len(res.Unanalyzable))
		}
	})
	t.Run("stack-reads", func(t *testing.T) {
		res := Analyze(analysisWith(n,
			sym.Access{Width: 8, Addr: sym.Expr{Regs: map[guest.Reg]int64{guest.SP: 1}, Const: 16}},
			acc(0, 8, true)))
		if len(res.MainStackReads) != 1 {
			t.Errorf("got %d main-stack reads, want 1", len(res.MainStackReads))
		}
		if len(res.Checks) != 0 {
			t.Errorf("read-only stack group must not join the check set, got %d ranges", len(res.Checks))
		}
	})
}
