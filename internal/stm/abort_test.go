package stm

import (
	"testing"

	"janus/internal/vm"
)

// The wordmap backing the read/write sets starts at 64 slots and grows
// at 50% load, so the first rehash happens on the 32nd distinct word
// and the second on the 64th. The abort-path tests straddle those
// boundaries: a conflict recorded before a growth must still fail
// validation after the rehash, and buffered writes must survive it.
var growthStraddle = []int{31, 32, 33, 63, 64, 65}

// TestAbortAcrossTableGrowth forces a read-set conflict at each
// table-growth boundary: the conflicting word is recorded first, the
// read set is then grown past one (or two) rehashes, and validation
// must still see the stale value and abort.
func TestAbortAcrossTableGrowth(t *testing.T) {
	for _, n := range growthStraddle {
		for _, victim := range []int{0, n / 2, n - 1} {
			mem := vm.NewMemory()
			for i := 0; i < n; i++ {
				mem.Write64(uint64(i)*8, uint64(i)+1)
			}
			tx := Begin(mem, Checkpoint{})
			for i := 0; i < n; i++ {
				if got := tx.Read64(uint64(i) * 8); got != uint64(i)+1 {
					t.Fatalf("n=%d: read %d at word %d", n, got, i)
				}
			}
			if tx.ReadSetSize() != n {
				t.Fatalf("n=%d: read set size %d", n, tx.ReadSetSize())
			}
			if !tx.Validate() {
				t.Fatalf("n=%d: unconflicted transaction failed validation", n)
			}
			// Another thread clobbers one recorded word.
			mem.Write64(uint64(victim)*8, 0xdead)
			if tx.Validate() {
				t.Errorf("n=%d victim=%d: conflict lost across table growth", n, victim)
			}
		}
	}
}

// TestWriteSetSurvivesTableGrowth buffers enough distinct stores to
// cross the growth boundaries and checks that commit replays every one
// with its latest value — no entry lost or duplicated by the rehash.
func TestWriteSetSurvivesTableGrowth(t *testing.T) {
	for _, n := range growthStraddle {
		mem := vm.NewMemory()
		tx := Begin(mem, Checkpoint{})
		for i := 0; i < n; i++ {
			tx.Write64(uint64(i)*8, uint64(i)+100)
		}
		// Overwrite the earliest word after the growths: latest value
		// must win without a duplicate order entry.
		tx.Write64(0, 4242)
		if tx.WriteSetSize() != n {
			t.Fatalf("n=%d: write set size %d", n, tx.WriteSetSize())
		}
		if !tx.Validate() {
			t.Fatalf("n=%d: write-only transaction failed validation", n)
		}
		tx.Commit()
		if got := mem.Read64(0); got != 4242 {
			t.Errorf("n=%d: overwrite lost, word 0 = %d", n, got)
		}
		for i := 1; i < n; i++ {
			if got := mem.Read64(uint64(i) * 8); got != uint64(i)+100 {
				t.Errorf("n=%d: commit lost word %d (= %d)", n, i, got)
			}
		}
	}
}

// TestResetNoStaleEntries is the abort/reuse contract: after Reset the
// transaction must carry nothing over — no stale read entries that
// could fail validation against the new memory, no stale buffered
// writes that could leak into the next commit or satisfy the next
// read, and fresh counters. The transaction is first filled past both
// growth boundaries so the kept (grown) backing arrays are the ones
// being checked.
func TestResetNoStaleEntries(t *testing.T) {
	const n = 65 // past both growth boundaries
	memA := vm.NewMemory()
	for i := 0; i < n; i++ {
		memA.Write64(uint64(i)*8, uint64(i)+1)
	}
	tx := Begin(memA, Checkpoint{PC: 0x100})
	for i := 0; i < n; i++ {
		_ = tx.Read64(uint64(i) * 8)
		tx.Write64(0x10000+uint64(i)*8, 0xbad0+uint64(i))
	}

	// Abort: roll back and re-arm over a different memory.
	memB := vm.NewMemory()
	memB.Write64(0, 7)
	tx.Reset(memB, Checkpoint{PC: 0x200})

	if tx.ReadSetSize() != 0 || tx.WriteSetSize() != 0 {
		t.Fatalf("sets not emptied: r=%d w=%d", tx.ReadSetSize(), tx.WriteSetSize())
	}
	if tx.NumReads != 0 || tx.NumWrites != 0 {
		t.Fatalf("counters not reset: r=%d w=%d", tx.NumReads, tx.NumWrites)
	}
	if tx.Checkpoint().PC != 0x200 {
		t.Fatalf("checkpoint not replaced: %+v", tx.Checkpoint())
	}

	// A stale write-buffer entry would satisfy this read instead of
	// the new shared memory.
	if got := tx.Read64(0x10000); got != 0 {
		t.Errorf("stale buffered write visible after reset: %#x", got)
	}
	// A stale read entry (word 0 = 1 from memA) would abort against
	// memB where the word is 7; the fresh read above re-recorded it.
	if !tx.Validate() {
		t.Error("stale read set failed validation after reset")
	}
	// Old buffered writes must not commit.
	tx.Write64(8, 11)
	tx.Commit()
	if got := memB.Read64(8); got != 11 {
		t.Fatalf("post-reset write lost: %d", got)
	}
	for i := 0; i < n; i++ {
		if got := memB.Read64(0x10000 + uint64(i)*8); got != 0 {
			t.Fatalf("stale write %d leaked into commit: %#x", i, got)
		}
	}
	// And the original memory was never touched by the aborted half.
	for i := 0; i < n; i++ {
		if got := memA.Read64(0x10000 + uint64(i)*8); got != 0 {
			t.Fatalf("aborted transaction mutated shared memory at word %d", i)
		}
	}
}

// TestResetReuseAcrossManyTransactions cycles one Tx through repeated
// conflict/abort/reset rounds at growth-boundary sizes, mimicking the
// DBM's steady-state reuse, and checks each round behaves like a fresh
// transaction.
func TestResetReuseAcrossManyTransactions(t *testing.T) {
	mem := vm.NewMemory()
	tx := Begin(mem, Checkpoint{})
	for round, n := range growthStraddle {
		base := uint64(round) << 20
		for i := 0; i < n; i++ {
			mem.Write64(base+uint64(i)*8, uint64(i)+1)
		}
		for i := 0; i < n; i++ {
			_ = tx.Read64(base + uint64(i)*8)
		}
		mem.Write64(base, 0xdead)
		if tx.Validate() {
			t.Fatalf("round %d (n=%d): conflict missed", round, n)
		}
		mem.Write64(base, 1) // restore; value-based check is clean again
		if !tx.Validate() {
			t.Fatalf("round %d (n=%d): silent-store tolerance lost", round, n)
		}
		tx.Reset(mem, Checkpoint{})
		if tx.ReadSetSize() != 0 || tx.WriteSetSize() != 0 {
			t.Fatalf("round %d: reset left entries", round)
		}
	}
}
