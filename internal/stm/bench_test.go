package stm_test

import (
	"testing"

	"janus/internal/enginebench"
	"janus/internal/stm"
	"janus/internal/vm"
)

// BenchmarkSTM delegates to the shared engine spec (also run by
// janus-bench -engine-json), so the snapshot and go-test agree.
func BenchmarkSTM(b *testing.B) { enginebench.ByName("STM").Fn(b) }

// BenchmarkSTMReadHeavy measures the buffered-read fast path (hits the
// write buffer, then the read set).
func BenchmarkSTMReadHeavy(b *testing.B) {
	mem := vm.NewMemory()
	tx := stm.Begin(mem, stm.Checkpoint{})
	for j := uint64(0); j < 16; j++ {
		tx.Write64(0x2000+j*8, j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += tx.Read64(0x2000 + uint64(i%16)*8)
	}
	_ = sink
}
