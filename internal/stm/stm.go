// Package stm is Janus' just-in-time word-based software transactional
// memory with lazy value-based conflict checking (modelled on JudoSTM,
// as the paper describes). There are no static STM API routines: the
// DBM's TX_START/TX_FINISH handlers create transactions around
// dynamically discovered code and reroute that code's memory accesses
// through the transaction's buffers.
//
// A transaction buffers every store and records the value of every
// load. Validation compares the recorded read values against shared
// memory; commit replays the buffered writes. Threads commit in age
// order (oldest first), and an aborted transaction rolls back to its
// register checkpoint and re-executes — non-speculatively once the
// thread is the oldest, which always succeeds.
package stm

import (
	"janus/internal/guest"
	"janus/internal/vm"
)

// Checkpoint is the register state captured at TX_START for rollback.
type Checkpoint struct {
	GPR [guest.NumGPR + 1]uint64
	ZF  bool
	LF  bool
	PC  uint64
}

// Tx is one running transaction.
type Tx struct {
	// shared is the memory the transaction validates against and
	// commits into.
	shared vm.Bus
	// reads records the first value seen for each word read.
	reads map[uint64]uint64
	// writes buffers stores (latest value per word).
	writes map[uint64]uint64
	// order preserves write ordering for deterministic commits.
	order []uint64
	// cp is the rollback checkpoint.
	cp Checkpoint

	// Reads/Writes/Insts count accesses for the speculation-cost model
	// and the abort heuristic.
	NumReads  int64
	NumWrites int64
}

// Begin starts a transaction over shared memory with the given
// checkpoint.
func Begin(shared vm.Bus, cp Checkpoint) *Tx {
	return &Tx{
		shared: shared,
		reads:  map[uint64]uint64{},
		writes: map[uint64]uint64{},
		cp:     cp,
	}
}

// Checkpoint returns the rollback state.
func (t *Tx) Checkpoint() Checkpoint { return t.cp }

// Read64 implements vm.Bus: reads hit the write buffer first, then
// shared memory, recording the observed value for validation.
func (t *Tx) Read64(addr uint64) uint64 {
	t.NumReads++
	if v, ok := t.writes[addr]; ok {
		return v
	}
	v := t.shared.Read64(addr)
	if _, ok := t.reads[addr]; !ok {
		t.reads[addr] = v
	}
	return v
}

// Write64 implements vm.Bus: stores are buffered.
func (t *Tx) Write64(addr uint64, v uint64) {
	t.NumWrites++
	if _, ok := t.writes[addr]; !ok {
		t.order = append(t.order, addr)
	}
	t.writes[addr] = v
}

// Validate performs lazy value-based conflict checking: every recorded
// read must still hold the value observed during the transaction.
func (t *Tx) Validate() bool {
	for addr, v := range t.reads {
		if t.shared.Read64(addr) != v {
			return false
		}
	}
	return true
}

// Commit writes the buffered stores to shared memory in program order.
// The caller must have validated and must be the oldest thread.
func (t *Tx) Commit() {
	for _, addr := range t.order {
		t.shared.Write64(addr, t.writes[addr])
	}
}

// WriteSetSize returns the number of distinct buffered words.
func (t *Tx) WriteSetSize() int { return len(t.writes) }

// ReadSetSize returns the number of distinct validated words.
func (t *Tx) ReadSetSize() int { return len(t.reads) }

var _ vm.Bus = (*Tx)(nil)
