// Package stm is Janus' just-in-time word-based software transactional
// memory with lazy value-based conflict checking (modelled on JudoSTM,
// as the paper describes). There are no static STM API routines: the
// DBM's TX_START/TX_FINISH handlers create transactions around
// dynamically discovered code and reroute that code's memory accesses
// through the transaction's buffers.
//
// A transaction buffers every store and records the value of every
// load. Validation compares the recorded read values against shared
// memory; commit replays the buffered writes. Threads commit in age
// order (oldest first), and an aborted transaction rolls back to its
// register checkpoint and re-executes — non-speculatively once the
// thread is the oldest, which always succeeds.
//
// The age-ordered commit schedule is what makes speculation
// deterministic, so loops containing transactions always run under the
// DBM's single-goroutine round-robin engine; a Tx is never shared
// between goroutines.
package stm

import (
	"janus/internal/guest"
	"janus/internal/vm"
	"janus/internal/wordmap"
)

// Checkpoint is the register state captured at TX_START for rollback.
type Checkpoint struct {
	GPR [guest.NumGPR + 1]uint64
	ZF  bool
	LF  bool
	PC  uint64
}

// Tx is one running transaction.
type Tx struct {
	// shared is the memory the transaction validates against and
	// commits into.
	shared vm.Bus
	// reads records the first value seen for each word read.
	reads wordmap.Table[uint64]
	// writes buffers stores (latest value per word).
	writes wordmap.Table[uint64]
	// order preserves write ordering for deterministic commits.
	order []uint64
	// cp is the rollback checkpoint.
	cp Checkpoint

	// Reads/Writes/Insts count accesses for the speculation-cost model
	// and the abort heuristic.
	NumReads  int64
	NumWrites int64
}

// Begin starts a transaction over shared memory with the given
// checkpoint.
func Begin(shared vm.Bus, cp Checkpoint) *Tx {
	t := &Tx{shared: shared, cp: cp}
	t.reads.Reset()
	t.writes.Reset()
	return t
}

// Reset re-arms a finished transaction for reuse, keeping the read/
// write set backing arrays so steady-state speculation stops
// allocating.
func (t *Tx) Reset(shared vm.Bus, cp Checkpoint) {
	t.shared = shared
	t.cp = cp
	t.reads.Reset()
	t.writes.Reset()
	t.order = t.order[:0]
	t.NumReads = 0
	t.NumWrites = 0
}

// Checkpoint returns the rollback state.
func (t *Tx) Checkpoint() Checkpoint { return t.cp }

// Read64 implements vm.Bus: reads hit the write buffer first, then
// shared memory, recording the observed value for validation.
func (t *Tx) Read64(addr uint64) uint64 {
	t.NumReads++
	if v, ok := t.writes.Get(addr); ok {
		return v
	}
	v := t.shared.Read64(addr)
	t.reads.PutIfAbsent(addr, v)
	return v
}

// Write64 implements vm.Bus: stores are buffered.
func (t *Tx) Write64(addr uint64, v uint64) {
	t.NumWrites++
	if t.writes.Put(addr, v) {
		t.order = append(t.order, addr)
	}
}

// Validate performs lazy value-based conflict checking: every recorded
// read must still hold the value observed during the transaction.
func (t *Tx) Validate() bool {
	ok := true
	t.reads.Range(func(addr, v uint64) bool {
		if t.shared.Read64(addr) != v {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Commit writes the buffered stores to shared memory in program order.
// The caller must have validated and must be the oldest thread.
func (t *Tx) Commit() {
	for _, addr := range t.order {
		v, _ := t.writes.Get(addr)
		t.shared.Write64(addr, v)
	}
}

// WriteSetSize returns the number of distinct buffered words.
func (t *Tx) WriteSetSize() int { return t.writes.Len() }

// ReadSetSize returns the number of distinct validated words.
func (t *Tx) ReadSetSize() int { return t.reads.Len() }

var _ vm.Bus = (*Tx)(nil)
