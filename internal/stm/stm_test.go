package stm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"janus/internal/vm"
)

func newTx(mem *vm.Memory) *Tx {
	return Begin(mem, Checkpoint{PC: 0x1000})
}

func TestReadYourOwnWrites(t *testing.T) {
	mem := vm.NewMemory()
	mem.Write64(0x100, 7)
	tx := newTx(mem)
	if v := tx.Read64(0x100); v != 7 {
		t.Fatalf("read %d", v)
	}
	tx.Write64(0x100, 42)
	if v := tx.Read64(0x100); v != 42 {
		t.Fatalf("buffered read %d", v)
	}
	// Shared memory untouched until commit.
	if v := mem.Read64(0x100); v != 7 {
		t.Fatalf("shared changed early: %d", v)
	}
}

func TestValidateAndCommit(t *testing.T) {
	mem := vm.NewMemory()
	mem.Write64(0x200, 1)
	tx := newTx(mem)
	_ = tx.Read64(0x200)
	tx.Write64(0x300, 99)
	if !tx.Validate() {
		t.Fatal("unconflicted tx failed validation")
	}
	tx.Commit()
	if mem.Read64(0x300) != 99 {
		t.Fatal("commit lost write")
	}
}

func TestConflictDetected(t *testing.T) {
	mem := vm.NewMemory()
	mem.Write64(0x200, 1)
	tx := newTx(mem)
	_ = tx.Read64(0x200)
	// Another thread changes the value under us.
	mem.Write64(0x200, 2)
	if tx.Validate() {
		t.Fatal("conflict not detected")
	}
}

func TestValueBasedValidationToleratesSilentStores(t *testing.T) {
	// Lazy value-based checking (JudoSTM): a write that restores the
	// same value does not abort the transaction.
	mem := vm.NewMemory()
	mem.Write64(0x200, 5)
	tx := newTx(mem)
	_ = tx.Read64(0x200)
	mem.Write64(0x200, 9)
	mem.Write64(0x200, 5) // restored
	if !tx.Validate() {
		t.Fatal("value-based validation should tolerate silent stores")
	}
}

func TestCommitOrderPreserved(t *testing.T) {
	mem := vm.NewMemory()
	tx := newTx(mem)
	tx.Write64(0x100, 1)
	tx.Write64(0x108, 2)
	tx.Write64(0x100, 3) // overwrite: latest value wins, order stable
	tx.Commit()
	if mem.Read64(0x100) != 3 || mem.Read64(0x108) != 2 {
		t.Fatal("commit order/values wrong")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := Checkpoint{PC: 0xabc, ZF: true}
	cp.GPR[3] = 77
	tx := Begin(vm.NewMemory(), cp)
	got := tx.Checkpoint()
	if got.PC != 0xabc || !got.ZF || got.GPR[3] != 77 {
		t.Fatalf("checkpoint mangled: %+v", got)
	}
}

func TestSetSizes(t *testing.T) {
	mem := vm.NewMemory()
	tx := newTx(mem)
	_ = tx.Read64(0x10)
	_ = tx.Read64(0x10) // same word counted once in the read set
	tx.Write64(0x20, 1)
	tx.Write64(0x28, 2)
	if tx.ReadSetSize() != 1 || tx.WriteSetSize() != 2 {
		t.Fatalf("sets: r=%d w=%d", tx.ReadSetSize(), tx.WriteSetSize())
	}
	if tx.NumReads != 2 || tx.NumWrites != 2 {
		t.Fatalf("counters: r=%d w=%d", tx.NumReads, tx.NumWrites)
	}
}

func TestTxIsolationProperty(t *testing.T) {
	// Property: for random operation sequences without external
	// interference, commit makes shared memory equal to what direct
	// execution would have produced.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shared := vm.NewMemory()
		direct := vm.NewMemory()
		for i := 0; i < 16; i++ {
			addr := uint64(rng.Intn(8)) * 8
			v := rng.Uint64()
			shared.Write64(addr, v)
			direct.Write64(addr, v)
		}
		tx := newTx(shared)
		for i := 0; i < 32; i++ {
			addr := uint64(rng.Intn(8)) * 8
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				tx.Write64(addr, v)
				direct.Write64(addr, v)
			} else {
				if tx.Read64(addr) != direct.Read64(addr) {
					return false
				}
			}
		}
		if !tx.Validate() {
			return false
		}
		tx.Commit()
		for a := uint64(0); a < 64; a += 8 {
			if shared.Read64(a) != direct.Read64(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
