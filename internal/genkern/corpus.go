package genkern

import (
	"fmt"
	"strings"

	"janus/internal/obj"
	"janus/internal/workloads"
)

// Entry is one screened kernel considered for corpus graduation.
type Entry struct {
	Seed   uint64
	Name   string
	Report *Report
	// Parallelisable marks kernels whose loops were actually selected
	// (they join the figure-7 row set when registered).
	Parallelisable bool

	kern *Kernel
}

// Screen generates seeds 1..n, runs the full differential oracle on
// each (any lattice violation is a hard error carrying a repro
// command), and returns the kernels worth graduating: shapes where the
// pipeline had to work for its verdict — observed dependences,
// unclosable checks, missed parallelisations, runtime check failures,
// sequential fallbacks.
func Screen(n, threads int) ([]Entry, error) {
	var out []Entry
	for seed := uint64(1); seed <= uint64(n); seed++ {
		k, err := Generate(seed)
		if err != nil {
			return nil, err
		}
		rep, err := RunDiff(k, Options{Threads: threads})
		if err != nil {
			return nil, err
		}
		if len(rep.Interesting) == 0 {
			continue
		}
		out = append(out, Entry{
			Seed:           seed,
			Name:           k.Name,
			Report:         rep,
			Parallelisable: rep.Selected > 0,
			kern:           k,
		})
	}
	return out, nil
}

// Register graduates the entry into the benchmark suite: subsequent
// workloads.Names()/Build() calls include it, so every figure covers
// the generated shape too.
func (e Entry) Register() error {
	k := e.kern
	if k == nil {
		return fmt.Errorf("genkern: entry %q was not produced by Screen", e.Name)
	}
	return workloads.RegisterGenerated(e.Name, e.Parallelisable, func(in workloads.Input) (*obj.Executable, []*obj.Library, error) {
		if in == workloads.Train {
			return k.Train, k.Libs, nil
		}
		return k.Ref, k.Libs, nil
	})
}

// Graduate screens seeds 1..n and registers every interesting kernel,
// returning the graduated entries.
func Graduate(n, threads int) ([]Entry, error) {
	entries, err := Screen(n, threads)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if err := e.Register(); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// RenderCorpus formats the graduation summary janus-bench prints
// before the figures when -gen-corpus is set.
func RenderCorpus(entries []Entry, screened int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Generated corpus: %d seeds screened, %d kernels graduated\n", screened, len(entries))
	fmt.Fprintf(&b, "  %-12s %5s %8s %8s  %s\n", "name", "loops", "selected", "par", "why")
	for _, e := range entries {
		par := "no"
		if e.Parallelisable {
			par = "yes"
		}
		fmt.Fprintf(&b, "  %-12s %5d %8d %8s  %s\n",
			e.Name, len(e.Report.Loops), e.Report.Selected, par, strings.Join(e.Report.Interesting, ","))
	}
	return b.String()
}
