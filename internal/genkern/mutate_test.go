package genkern

import "testing"

// TestMutationOperatorsDeterministic pins that every operator (and the
// composite Mutate/Crossover/Fresh draws) replays identically from a
// fixed mutator seed.
func TestMutationOperatorsDeterministic(t *testing.T) {
	parents := validShapes()
	run := func() []string {
		var out []string
		m := NewMutator(7)
		for op := MutOp(0); op < numMutOps; op++ {
			for _, sh := range parents {
				out = append(out, ShapeHex(m.Apply(op, sh)))
			}
		}
		for _, sh := range parents {
			out = append(out, ShapeHex(m.Mutate(sh)))
		}
		for i := 1; i < len(parents); i++ {
			out = append(out, ShapeHex(m.Crossover(parents[i-1], parents[i])))
		}
		for i := 0; i < 8; i++ {
			out = append(out, ShapeHex(m.Fresh()))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay produced %d shapes vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d not deterministic: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestMutationOperatorsStayValid pins that every operator always lands
// on a Validate-clean shape, across many draws and all operators.
func TestMutationOperatorsStayValid(t *testing.T) {
	m := NewMutator(11)
	shapes := append([]Shape{}, validShapes()...)
	for seed := uint64(1); seed <= 32; seed++ {
		shapes = append(shapes, DeriveShape(seed))
	}
	for round := 0; round < 40; round++ {
		for i, sh := range shapes {
			for op := MutOp(0); op < numMutOps; op++ {
				child := m.Apply(op, sh)
				if err := child.Validate(); err != nil {
					t.Fatalf("round %d shape %d op %v: child invalid: %v\nparent: %+v\nchild: %+v", round, i, op, err, sh, child)
				}
				if len(child.Segs) > MaxShapeSegs {
					t.Fatalf("op %v grew shape past MaxShapeSegs: %d", op, len(child.Segs))
				}
			}
			// Evolve the population so later rounds mutate mutants.
			shapes[i] = m.Mutate(sh)
			if err := shapes[i].Validate(); err != nil {
				t.Fatalf("round %d shape %d: Mutate output invalid: %v", round, i, err)
			}
		}
	}
}

// TestMutationOperatorsDoNotAliasParent pins that mutating a shape
// never writes through the parent's segment slice (corpus entries must
// stay immutable).
func TestMutationOperatorsDoNotAliasParent(t *testing.T) {
	m := NewMutator(3)
	parent := Shape{Segs: []Seg{
		{Kind: KindCarried, N: 96, Dist: 8, Arrays: 2},
		{Kind: KindDoallConst, N: 128, Dist: 1, Arrays: 2},
	}}
	want := ShapeHex(parent)
	for i := 0; i < 200; i++ {
		m.Mutate(parent)
		for op := MutOp(0); op < numMutOps; op++ {
			m.Apply(op, parent)
		}
	}
	if got := ShapeHex(parent); got != want {
		t.Fatalf("mutation mutated its parent: %s -> %s", want, got)
	}
}

// TestCrossoverDrawsFromParents pins that every segment of a crossover
// child equals some segment of one of its two parents.
func TestCrossoverDrawsFromParents(t *testing.T) {
	m := NewMutator(19)
	fromParents := func(child Shape, a, b Shape) bool {
		for _, cs := range child.Segs {
			found := false
			for _, ps := range append(append([]Seg{}, a.Segs...), b.Segs...) {
				if cs == ps {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	shapes := validShapes()
	for i := 0; i < len(shapes); i++ {
		for j := 0; j < len(shapes); j++ {
			for round := 0; round < 10; round++ {
				child := m.Crossover(shapes[i], shapes[j])
				if err := child.Validate(); err != nil {
					t.Fatalf("crossover(%d,%d): invalid child: %v", i, j, err)
				}
				lo, hi := len(shapes[i].Segs), len(shapes[j].Segs)
				if lo > hi {
					lo, hi = hi, lo
				}
				if n := len(child.Segs); n < lo || n > hi {
					t.Fatalf("crossover(%d,%d): child length %d outside parent range [%d,%d]", i, j, n, lo, hi)
				}
				if !fromParents(child, shapes[i], shapes[j]) {
					t.Fatalf("crossover(%d,%d): child carries a segment from neither parent:\nchild: %+v", i, j, child)
				}
			}
		}
	}
}
