package genkern

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Resumable corpus-guided fuzzing campaigns.
//
// A campaign owns a directory:
//
//	<dir>/corpus/<genome-hex>.entry   retained shapes + their cells
//	<dir>/state                       iteration counter + campaign seed
//	<dir>/regressions/<id>.shape      graduated divergence repros
//
// Every file is published artcache-style — streamed into a temporary
// file in the same directory and renamed over the final path — so a
// reader (or a resumed campaign after kill -9) only ever observes a
// complete file or none at all; there are no torn entries to repair.
//
// The campaign is deterministic given (corpus dir, seed): iteration i
// derives its own rng from (seed, i), the corpus is ordered by the
// iteration that admitted each entry, and retention depends only on
// the coverage union of the entries loaded plus the runs replayed. A
// campaign killed at any point and restarted continues exactly where
// the persisted corpus and state left it.

// CampaignConfig configures RunCampaign.
type CampaignConfig struct {
	// Dir roots the campaign state (created if missing).
	Dir string
	// Seed names the campaign's deterministic decision stream. A dir
	// remembers its seed; resuming with a different one is an error.
	Seed uint64
	// Duration bounds wall-clock time (0 = no time bound).
	Duration time.Duration
	// MaxIters bounds iterations (0 = no iteration bound). At least one
	// of Duration/MaxIters must be set.
	MaxIters int
	// Threads is the guest thread count for oracle runs (default 8).
	Threads int
	// Plant arms Options.PlantDOALL on every oracle run: the campaign
	// then hunts for shapes on which the planted analyser
	// mis-classification arms and is caught (the oracle self-test).
	Plant bool
	// StopOnDivergence ends the campaign at the first divergence
	// (after minimising and graduating it).
	StopOnDivergence bool
	// MinimiseBudget bounds oracle evaluations per minimisation
	// (default 200).
	MinimiseBudget int
	// RegressionsDir overrides where graduated divergence fixtures are
	// written (default <Dir>/regressions). Point it at
	// internal/genkern/testdata/regressions to land fixtures directly
	// in the tier-1 replay set.
	RegressionsDir string
	// Log receives one-line progress events (nil = discard).
	Log io.Writer
}

// Divergence is one campaign-found oracle failure, after minimisation.
type Divergence struct {
	// Shape is the minimised failing shape; Seed its input-data seed.
	Shape Shape
	Seed  uint64
	// Err is the oracle failure the minimised shape reproduces.
	Err error
	// Fixture is the graduated regression file path.
	Fixture string
}

// CampaignStats summarises one RunCampaign invocation.
type CampaignStats struct {
	// Iters is this run's iteration count; StartIter the global
	// iteration the run resumed from (0 on a fresh dir).
	Iters, StartIter int
	// Corpus is the retained-entry count at exit; Cells the distinct
	// covered cells; NewCells the cells first covered by this run.
	Corpus, Cells, NewCells int
	// Divergences lists this run's minimised, graduated failures.
	Divergences []Divergence
	// Elapsed is this run's wall-clock time.
	Elapsed time.Duration
	// Resumed reports whether the dir already held campaign state.
	Resumed bool
}

// String renders the one-line machine-parsable summary janus-bench
// prints (and the CI smoke job greps).
func (s *CampaignStats) String() string {
	return fmt.Sprintf("campaign: iters=%d start-iter=%d corpus=%d cells=%d new-cells=%d divergences=%d elapsed=%.1fs resumed=%v",
		s.Iters, s.StartIter, s.Corpus, s.Cells, s.NewCells, len(s.Divergences), s.Elapsed.Seconds(), s.Resumed)
}

// corpusEntry is one retained shape.
type corpusEntry struct {
	shape Shape
	seed  uint64
	iter  int
	cells []Cell
}

const (
	entryHeader = "janus-campaign-entry v1"
	stateHeader = "janus-campaign-state v1"
)

// atomicWrite publishes data at path via temp-file + rename in the
// destination directory (the artcache publication pattern).
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func encodeEntry(e corpusEntry) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", entryHeader)
	fmt.Fprintf(&b, "shape %s\n", ShapeHex(e.shape))
	fmt.Fprintf(&b, "seed %d\n", e.seed)
	fmt.Fprintf(&b, "iter %d\n", e.iter)
	for _, c := range e.cells {
		r := 0
		if c.Recovered {
			r = 1
		}
		fmt.Fprintf(&b, "cell %d %d %d %d %d %d\n", c.Kind, c.DistBucket, c.Alias, c.Verdict, c.Engine, r)
	}
	return []byte(b.String())
}

// decodeEntry parses an entry file; any malformed content is an error
// (the caller treats it as a foreign file and skips it — atomic
// publication means a campaign never writes one).
func decodeEntry(data []byte) (corpusEntry, error) {
	var e corpusEntry
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	if !sc.Scan() || sc.Text() != entryHeader {
		return e, fmt.Errorf("genkern: not a campaign entry")
	}
	haveShape := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "shape "):
			sh, err := ParseShapeHex(strings.TrimPrefix(line, "shape "))
			if err != nil {
				return e, err
			}
			e.shape, haveShape = sh, true
		case strings.HasPrefix(line, "seed "):
			if _, err := fmt.Sscanf(line, "seed %d", &e.seed); err != nil {
				return e, err
			}
		case strings.HasPrefix(line, "iter "):
			if _, err := fmt.Sscanf(line, "iter %d", &e.iter); err != nil {
				return e, err
			}
		case strings.HasPrefix(line, "cell "):
			var k, d, a, v, eng, r int
			if _, err := fmt.Sscanf(line, "cell %d %d %d %d %d %d", &k, &d, &a, &v, &eng, &r); err != nil {
				return e, err
			}
			e.cells = append(e.cells, Cell{
				Kind: SegKind(k), DistBucket: uint8(d), Alias: uint8(a),
				Verdict: uint8(v), Engine: uint8(eng), Recovered: r != 0,
			})
		default:
			return e, fmt.Errorf("genkern: bad entry line %q", line)
		}
	}
	if !haveShape {
		return e, fmt.Errorf("genkern: entry missing shape")
	}
	return e, nil
}

// campaignState is the persisted (seed, next iteration) pair.
type campaignState struct {
	seed uint64
	iter int
}

func loadState(path string) (campaignState, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return campaignState{}, false, nil
		}
		return campaignState{}, false, err
	}
	var st campaignState
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 || lines[0] != stateHeader {
		return campaignState{}, false, fmt.Errorf("genkern: malformed campaign state %s", path)
	}
	if _, err := fmt.Sscanf(lines[1], "seed %d", &st.seed); err != nil {
		return campaignState{}, false, fmt.Errorf("genkern: malformed campaign state %s: %v", path, err)
	}
	if _, err := fmt.Sscanf(lines[2], "iter %d", &st.iter); err != nil {
		return campaignState{}, false, fmt.Errorf("genkern: malformed campaign state %s: %v", path, err)
	}
	return st, true, nil
}

func saveState(path string, st campaignState) error {
	return atomicWrite(path, []byte(fmt.Sprintf("%s\nseed %d\niter %d\n", stateHeader, st.seed, st.iter)))
}

// loadCorpus reads every published entry, skipping temp files and
// anything that fails to parse (foreign files), and orders the corpus
// by admission iteration so parent selection replays deterministically.
func loadCorpus(dir string) ([]corpusEntry, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []corpusEntry
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".entry") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			continue
		}
		e, err := decodeEntry(data)
		if err != nil {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].iter != out[j].iter {
			return out[i].iter < out[j].iter
		}
		return ShapeHex(out[i].shape) < ShapeHex(out[j].shape)
	})
	return out, nil
}

// iterRng derives iteration i's private decision stream from the
// campaign seed; splitmix streams never overlap for distinct i.
func iterRng(seed uint64, iter int) *rng {
	return newRng(seed ^ (uint64(iter)+1)*0x9e3779b97f4a7c15 ^ 0xca3a16ca3a16)
}

// graduate writes the minimised divergence as a regression fixture.
func graduate(dir string, min MinimiseResult) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# janus genkern graduated regression\n")
	fmt.Fprintf(&b, "# failure: %s\n", firstLine(min.Err.Error()))
	fmt.Fprintf(&b, "# %s\n", min.Repro())
	fmt.Fprintf(&b, "seed %d\n", min.Seed)
	fmt.Fprintf(&b, "shape %s\n", ShapeHex(min.Shape))
	path := filepath.Join(dir, shortShapeID(min.Shape)+".shape")
	if err := atomicWrite(path, []byte(b.String())); err != nil {
		return "", err
	}
	return path, nil
}

// ParseRegression parses a graduated *.shape regression fixture:
// '#'-prefixed comment lines, then "seed <n>" and "shape <hex>" lines.
func ParseRegression(data []byte) (Shape, uint64, error) {
	var (
		shape     Shape
		seed      uint64
		haveShape bool
	)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "seed "):
			if _, err := fmt.Sscanf(line, "seed %d", &seed); err != nil {
				return Shape{}, 0, fmt.Errorf("genkern: regression fixture: %v", err)
			}
		case strings.HasPrefix(line, "shape "):
			sh, err := ParseShapeHex(strings.TrimPrefix(line, "shape "))
			if err != nil {
				return Shape{}, 0, err
			}
			shape, haveShape = sh, true
		default:
			return Shape{}, 0, fmt.Errorf("genkern: regression fixture: bad line %q", line)
		}
	}
	if !haveShape {
		return Shape{}, 0, fmt.Errorf("genkern: regression fixture carries no shape line")
	}
	return shape, seed, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// RunCampaign runs (or resumes) the campaign described by cfg and
// returns its stats. Oracle divergences are minimised, graduated as
// regression fixtures and reported in the stats; they do not abort the
// campaign unless StopOnDivergence is set.
func RunCampaign(cfg CampaignConfig) (*CampaignStats, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("genkern: campaign needs a directory")
	}
	if cfg.Duration <= 0 && cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("genkern: campaign needs a time or iteration bound")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	if cfg.MinimiseBudget <= 0 {
		cfg.MinimiseBudget = 200
	}
	if cfg.RegressionsDir == "" {
		cfg.RegressionsDir = filepath.Join(cfg.Dir, "regressions")
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "campaign: "+format+"\n", args...)
		}
	}

	corpusDir := filepath.Join(cfg.Dir, "corpus")
	statePath := filepath.Join(cfg.Dir, "state")
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		return nil, fmt.Errorf("genkern: campaign: %w", err)
	}
	st, resumed, err := loadState(statePath)
	if err != nil {
		return nil, err
	}
	if resumed && st.seed != cfg.Seed {
		return nil, fmt.Errorf("genkern: campaign dir %s was started with seed %d, cannot resume with seed %d", cfg.Dir, st.seed, cfg.Seed)
	}
	st.seed = cfg.Seed
	corpus, err := loadCorpus(corpusDir)
	if err != nil {
		return nil, err
	}
	cov := NewCoverage()
	seen := map[string]bool{}
	for _, e := range corpus {
		cov.Add(e.cells)
		seen[ShapeHex(e.shape)] = true
	}
	stats := &CampaignStats{StartIter: st.iter, Resumed: resumed}
	if resumed {
		logf("resumed at iter %d: corpus %d entries, %d cells covered", st.iter, len(corpus), cov.Size())
	}

	start := time.Now()
	opts := Options{Threads: cfg.Threads, PlantDOALL: cfg.Plant}
	for {
		if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		if cfg.MaxIters > 0 && stats.Iters >= cfg.MaxIters {
			break
		}
		iter := st.iter
		r := iterRng(cfg.Seed, iter)
		mut := &Mutator{r: r}

		// Breeding: mostly mutate a corpus parent, sometimes cross two,
		// sometimes inject a fresh shape to keep diversity up.
		var shape Shape
		switch {
		case len(corpus) == 0 || r.intn(4) == 0:
			shape = mut.Fresh()
		case len(corpus) >= 2 && r.intn(4) == 0:
			a := corpus[r.intn(len(corpus))]
			b := corpus[r.intn(len(corpus))]
			shape = mut.Mutate(mut.Crossover(a.shape, b.shape))
		default:
			shape = mut.Mutate(corpus[r.intn(len(corpus))].shape)
		}
		// Masked to 63 bits so the -genkern.seed replay flag (an int64)
		// can always name it.
		inputSeed := (cfg.Seed ^ (uint64(iter)+1)*0x2545f4914f6cdd1d) &^ (1 << 63)

		rep, derr := DiffShape(shape, inputSeed, opts)
		switch {
		case derr == nil:
			cells := CellsOf(shape, rep)
			if fresh := cov.Add(cells); fresh > 0 {
				hexStr := ShapeHex(shape)
				if !seen[hexStr] {
					e := corpusEntry{shape: shape, seed: inputSeed, iter: iter, cells: cells}
					if err := atomicWrite(filepath.Join(corpusDir, hexStr+".entry"), encodeEntry(e)); err != nil {
						return stats, fmt.Errorf("genkern: campaign: %w", err)
					}
					corpus = append(corpus, e)
					seen[hexStr] = true
				}
				stats.NewCells += fresh
				logf("iter %d: +%d cells (total %d), corpus %d", iter, fresh, cov.Size(), len(corpus))
			}
		case errors.Is(derr, ErrPlantInert):
			// The planted bug could not arm on this shape; nothing to
			// learn, nothing to retain.
		default:
			logf("iter %d: DIVERGENCE: %s", iter, firstLine(derr.Error()))
			min := Minimise(shape, inputSeed, opts, cfg.MinimiseBudget)
			if min.Err == nil {
				// Defensive: the budget was too small to even confirm
				// the baseline failure; graduate the unminimised shape.
				min.Shape, min.Err = NormaliseShape(shape), derr
			}
			fixture, gerr := graduate(cfg.RegressionsDir, min)
			if gerr != nil {
				return stats, fmt.Errorf("genkern: campaign: graduating divergence: %w", gerr)
			}
			logf("iter %d: minimised to %d segment(s) in %d evals; graduated %s", iter, len(min.Shape.Segs), min.Evals, fixture)
			logf("iter %d: %s", iter, min.Repro())
			stats.Divergences = append(stats.Divergences, Divergence{
				Shape: min.Shape, Seed: min.Seed, Err: min.Err, Fixture: fixture,
			})
		}

		st.iter++
		stats.Iters++
		if err := saveState(statePath, st); err != nil {
			return stats, fmt.Errorf("genkern: campaign: %w", err)
		}
		if cfg.StopOnDivergence && len(stats.Divergences) > 0 {
			break
		}
	}
	stats.Corpus = len(corpus)
	stats.Cells = cov.Size()
	stats.Elapsed = time.Since(start)
	return stats, nil
}
