package genkern

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCampaignFindsAndMinimisesPlantedBug is the campaign's self-test,
// built on the PR 5 Options.PlantDOALL hook: every oracle run carries a
// planted analyser mis-classification (a statically-proven carried loop
// promoted to static-DOALL), and the campaign must discover a shape on
// which the plant arms and is caught, then minimise the repro down to a
// single carried segment — all within a bounded oracle-evaluation
// budget. If this ever fails, the campaign loop (or the minimiser, or
// the oracle) has lost its teeth.
func TestCampaignFindsAndMinimisesPlantedBug(t *testing.T) {
	dir := t.TempDir()
	const budget = 150
	stats, err := RunCampaign(CampaignConfig{
		Dir:              dir,
		Seed:             99,
		MaxIters:         300,
		Plant:            true,
		StopOnDivergence: true,
		MinimiseBudget:   budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Divergences) == 0 {
		t.Fatalf("campaign never found the planted soundness bug in %d iterations", stats.Iters)
	}
	d := stats.Divergences[0]
	if d.Err == nil || !strings.Contains(d.Err.Error(), "PLANTED BUG CAUGHT") {
		t.Fatalf("divergence is not the planted bug: %v", d.Err)
	}

	// The minimiser must have shrunk the repro to a single carried
	// segment: the smallest shape on which the plant can arm.
	if len(d.Shape.Segs) != 1 {
		t.Fatalf("minimised shape still has %d segments, want 1: %+v", len(d.Shape.Segs), d.Shape)
	}
	if d.Shape.Segs[0].Kind != KindCarried {
		t.Fatalf("minimised segment is %v, want %v", d.Shape.Segs[0].Kind, KindCarried)
	}
	if err := d.Shape.Validate(); err != nil {
		t.Fatalf("minimised shape invalid: %v", err)
	}

	// Replaying the minimised shape with the plant armed reproduces the
	// failure; with the plant off (the shipped pipeline) it is clean —
	// exactly the contract the graduated fixture encodes.
	if _, err := DiffShape(d.Shape, d.Seed, Options{PlantDOALL: true}); err == nil {
		t.Fatal("minimised shape does not reproduce the planted failure")
	} else if !strings.Contains(err.Error(), "PLANTED BUG CAUGHT") {
		t.Fatalf("minimised shape fails for the wrong reason: %v", err)
	}
	if _, err := DiffShape(d.Shape, d.Seed, Options{}); err != nil {
		t.Fatalf("minimised shape fails even without the plant: %v", err)
	}

	// The graduated fixture exists, parses, and replays the same shape.
	data, err := os.ReadFile(d.Fixture)
	if err != nil {
		t.Fatalf("graduated fixture: %v", err)
	}
	if !strings.Contains(string(data), "-genkern.shape="+ShapeHex(d.Shape)) {
		t.Errorf("fixture does not carry the -genkern.shape repro:\n%s", data)
	}
	sh, seed, err := ParseRegression(data)
	if err != nil {
		t.Fatal(err)
	}
	if !shapeEqual(sh, d.Shape) || seed != d.Seed {
		t.Fatalf("fixture replays (%+v, %d), campaign found (%+v, %d)", sh, seed, d.Shape, d.Seed)
	}
	if filepath.Dir(d.Fixture) != filepath.Join(dir, "regressions") {
		t.Errorf("fixture graduated outside the campaign's regressions dir: %s", d.Fixture)
	}
}

// TestMinimiseRespectsBudget pins the bounded-evaluation contract: a
// one-evaluation budget still returns a (possibly unshrunk) failing
// shape and never exceeds its allowance.
func TestMinimiseRespectsBudget(t *testing.T) {
	shape := Shape{Segs: []Seg{
		{Kind: KindDoallConst, N: 224, Dist: 3, Arrays: 2},
		{Kind: KindCarried, N: 224, Dist: 8, Arrays: 2},
		{Kind: KindSyscall, N: 8, Dist: 1, Arrays: 2},
	}}
	res := Minimise(shape, 1, Options{PlantDOALL: true}, 1)
	if res.Evals > 1 {
		t.Fatalf("minimiser spent %d evaluations on a budget of 1", res.Evals)
	}
	if res.Err == nil {
		t.Fatal("baseline failure not confirmed within the budget")
	}
	if !shapeEqual(res.Shape, NormaliseShape(shape)) {
		t.Fatalf("budget-1 minimisation changed the shape: %+v", res.Shape)
	}
	if !strings.Contains(res.Repro(), "-genkern.shape="+ShapeHex(res.Shape)) {
		t.Fatalf("repro %q does not name the shape", res.Repro())
	}
}

// TestMinimiseShrinksTrips pins the scalar-shrink pass: a planted
// failure on a large carried loop minimises to the trip floor and
// distance 1.
func TestMinimiseShrinksTrips(t *testing.T) {
	shape := Shape{Segs: []Seg{{Kind: KindCarried, N: 320, Dist: 16, Arrays: 4}}}
	res := Minimise(shape, 7, Options{PlantDOALL: true}, 120)
	if res.Err == nil {
		t.Fatal("planted failure on a single carried segment was not reproduced")
	}
	s := res.Shape.Segs[0]
	if s.N != minHotTrip {
		t.Errorf("trip count minimised to %d, want the selector floor %d", s.N, minHotTrip)
	}
	if s.Dist != 1 {
		t.Errorf("distance minimised to %d, want 1", s.Dist)
	}
	if s.Arrays != MinArrays {
		t.Errorf("arrays minimised to %d, want %d", s.Arrays, MinArrays)
	}
	if res.Evals > 120 {
		t.Errorf("minimiser spent %d evals, budget 120", res.Evals)
	}
}
