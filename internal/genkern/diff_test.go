package genkern

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// corpusSeeds is the tier-1 seeded corpus size. Acceptance: >= 200
// kernels pass the full oracle lattice deterministically.
const corpusSeeds = 200

// -genkern.seed replays a single seed (printed by every failure's
// repro command) instead of the whole corpus.
var seedFlag = flag.Int64("genkern.seed", -1, "run the differential oracle for one generator seed only")

// TestSeededCorpus runs the full differential oracle — analyzer
// verdict vs. profiler observation vs. three-engine execution — over
// the fixed seeded corpus. Every failure message ends in a one-line
// repro command naming the seed.
func TestSeededCorpus(t *testing.T) {
	if *seedFlag >= 0 {
		seed := uint64(*seedFlag)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := DiffSeed(seed, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, lv := range rep.Loops {
				t.Logf("loop %d %-13s class=%v profiled=%v observed=%v selected=%v cov=%.3f",
					lv.ID, lv.Truth.Kind, lv.Class, lv.DepProfiled, lv.ObservedDep, lv.Selected, lv.Coverage)
			}
			t.Logf("selected=%d missed=%d interesting=%v", rep.Selected, rep.MissedPar, rep.Interesting)
		})
		return
	}
	for seed := uint64(1); seed <= uint64(corpusSeeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if _, err := DiffSeed(seed, Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSeededCorpusCoversShapes asserts the fixed corpus actually
// sweeps the dependence-shape space: every segment kind occurs, and
// the pipeline exercises both speculation-confirming and
// speculation-refuting outcomes.
func TestSeededCorpusCoversShapes(t *testing.T) {
	kinds := map[SegKind]int{}
	var selected, observedDeps, checked int
	for seed := uint64(1); seed <= uint64(corpusSeeds); seed++ {
		sh := DeriveShape(seed)
		for _, s := range sh.Segs {
			kinds[s.Kind]++
		}
	}
	for k := SegKind(0); int(k) < numSegKinds; k++ {
		if kinds[k] == 0 {
			t.Errorf("segment kind %v never generated in %d seeds", k, corpusSeeds)
		}
	}
	// A small sampled pass over real runs: the corpus must include
	// selected-parallel kernels, profiler-observed dependences, and
	// check-guarded loops.
	for seed := uint64(1); seed <= 24; seed++ {
		rep, err := DiffSeed(seed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		selected += rep.Selected
		for _, lv := range rep.Loops {
			if lv.DepProfiled && lv.ObservedDep {
				observedDeps++
			}
			if lv.Selected && lv.Truth.Ambiguous {
				checked++
			}
		}
	}
	if selected == 0 {
		t.Error("no generated loop was ever selected for parallelisation")
	}
	if observedDeps == 0 {
		t.Error("the dependence profiler never observed a planted dependence")
	}
	if checked == 0 {
		t.Error("no statically-ambiguous loop was ever selected (checks/speculation path unexercised)")
	}
}

// TestPlantedSoundnessBug forces the analyser to mis-classify a
// generated carried loop as static-DOALL and asserts the differential
// harness catches the divergence with a printable repro seed. This is
// the self-test of the oracle: if it ever passes silently, the harness
// has a blind spot.
func TestPlantedSoundnessBug(t *testing.T) {
	planted := 0
	for seed := uint64(1); seed <= 64 && planted < 3; seed++ {
		k, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		hasCarried := false
		for _, tr := range k.Truth {
			if tr.Kind == KindCarried {
				hasCarried = true
			}
		}
		if !hasCarried {
			continue
		}
		rep, err := RunDiff(k, Options{PlantDOALL: true})
		if err == nil {
			t.Fatalf("seed %d: planted mis-classification escaped the differential oracle", seed)
		}
		msg := err.Error()
		if !strings.Contains(msg, "PLANTED BUG CAUGHT") {
			t.Fatalf("seed %d: planted bug failed for the wrong reason: %v", seed, err)
		}
		if !strings.Contains(msg, fmt.Sprintf("-genkern.seed=%d", seed)) {
			t.Fatalf("seed %d: failure does not carry a repro command: %v", seed, err)
		}
		if rep == nil || rep.Planted == nil || !rep.Planted.Selected {
			t.Fatalf("seed %d: planted loop not recorded as selected", seed)
		}
		planted++
	}
	if planted == 0 {
		t.Fatal("no seed in 1..64 generated a statically-proven carried loop to plant on")
	}
}

// TestDiffDeterministicAcrossGOMAXPROCS pins the determinism contract
// for generated kernels: the oracle's engine timelines and data hashes
// are identical at GOMAXPROCS 1 and N.
func TestDiffDeterministicAcrossGOMAXPROCS(t *testing.T) {
	seeds := []uint64{3, 7, 11}
	type obs struct {
		cycles   []int64
		dataHash []uint64
	}
	measure := func() []obs {
		var out []obs
		for _, seed := range seeds {
			rep, err := DiffSeed(seed, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var o obs
			for _, e := range rep.Engines {
				o.cycles = append(o.cycles, e.Cycles)
				o.dataHash = append(o.dataHash, e.DataHash)
			}
			out = append(out, o)
		}
		return out
	}
	base := measure()
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	single := measure()
	for i := range base {
		for j := range base[i].cycles {
			if base[i].cycles[j] != single[i].cycles[j] {
				t.Errorf("seed %d engine %d: %d cycles at GOMAXPROCS=%d, %d at 1",
					seeds[i], j, base[i].cycles[j], prev, single[i].cycles[j])
			}
			if base[i].dataHash[j] != single[i].dataHash[j] {
				t.Errorf("seed %d engine %d: data hash differs across GOMAXPROCS", seeds[i], j)
			}
		}
	}
}

// TestRecoveryPathOnGeneratedKernels runs a few kernels with the PR 4
// recovery path armed (scan-defeat injection): outputs must still be
// byte-identical to native, and any host-parallel region must have
// recovered through rollback + round-robin re-execution.
func TestRecoveryPathOnGeneratedKernels(t *testing.T) {
	recovered := false
	for _, seed := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		rep, err := DiffSeed(seed, Options{Recovery: true})
		if err != nil {
			t.Fatal(err)
		}
		last := rep.Engines[len(rep.Engines)-1]
		if last.Name != "work-stealing+inject" {
			t.Fatalf("seed %d: injected engine run missing", seed)
		}
		if last.Stats.ParRecoveries > 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Error("scan-defeat injection never exercised the recovery path on any sampled kernel")
	}
}

// FuzzGenKernel feeds arbitrary seeds (the generator's whole input
// space) through the full differential oracle. Any crash or lattice
// violation is a real bug in the generator or the pipeline.
func FuzzGenKernel(f *testing.F) {
	for seed := uint64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if _, err := DiffSeed(seed, Options{Threads: 4}); err != nil {
			t.Fatal(err)
		}
	})
}
