package genkern

import (
	"encoding/hex"
	"fmt"
)

// Shape-vector genome encoding.
//
// A Shape — not the 8-byte seed that derives one — is the unit the
// corpus-guided fuzzer mutates. The encoding below is the genome: a
// versioned, fixed-width byte vector in which every field of every
// segment occupies a known offset, so byte-level mutation (the native
// go fuzzer's, or mutate.go's structured operators) perturbs structure
// rather than teleporting to an unrelated kernel the way mutating a
// hash-expanded seed does.
//
// DecodeShape is total: *every* byte string, of any length, normalises
// into a Validate-clean Shape by modular clamping of each field into
// its legal range. Clamping is the identity on in-range values, so
// EncodeShape/DecodeShape round-trip exactly on valid shapes.
//
// Layout (little-endian):
//
//	byte 0      encoding version (ShapeEncodingVersion)
//	byte 1      segment count, clamped into 1..MaxShapeSegs
//	then per segment, 8 bytes:
//	  +0  kind          clamped into the drawable SegKind range
//	  +1  flags         bit0 Collide, bit1 OuterHot
//	  +2  N     uint16  trip count, clamped per kind
//	  +4  Inner uint16  nested inner trip, clamped per kind (0 otherwise)
//	  +6  dist          clamped into 1..MaxDist
//	  +7  arrays        clamped into MinArrays..MaxArrays

// ShapeEncodingVersion tags the genome layout. Bump it whenever the
// record layout or any clamp range changes; decoders normalise foreign
// versions into the current layout rather than failing, so an old
// corpus stays replayable (its shapes just re-canonicalise).
const ShapeEncodingVersion = 1

// MaxShapeSegs bounds the genome's segment count. DeriveShape emits at
// most 4 segments; the mutation engine may splice up to this many.
const MaxShapeSegs = 6

// Per-field legal ranges. Hot trip counts stay above the selector's
// profitability floor (minHotTrip) and below a bound that keeps a
// single oracle run cheap; the narrow dimension of a nest, syscall
// trips and the geometric-induction range mirror DeriveShape's draws.
const (
	MaxTrip          = 320
	MinNarrowTrip    = 2
	MaxNarrowTrip    = 16
	MinSyscallTrip   = 4
	MaxSyscallTrip   = 16
	MinIrregularTrip = 256
	MaxIrregularTrip = 4096
	MaxDist          = 16
	MinArrays        = 2
	MaxArrays        = 4
)

const segRecordSize = 8

// clampInto maps v into [lo, hi] by modular wrap. It is the identity
// for v already in range — the property the round-trip test pins.
func clampInto(v, lo, hi int64) int64 {
	span := hi - lo + 1
	r := (v - lo) % span
	if r < 0 {
		r += span
	}
	return lo + r
}

// Validate reports whether the shape is a legal genome: segment count,
// kind, and every per-kind field range as DecodeShape would clamp them.
// Generate accepts exactly the shapes Validate accepts.
func (sh Shape) Validate() error {
	if len(sh.Segs) < 1 || len(sh.Segs) > MaxShapeSegs {
		return fmt.Errorf("genkern: shape has %d segments, want 1..%d", len(sh.Segs), MaxShapeSegs)
	}
	for i, s := range sh.Segs {
		if int(s.Kind) >= numSegKinds {
			return fmt.Errorf("genkern: segment %d: kind %d out of range (max %d)", i, s.Kind, numSegKinds-1)
		}
		if s.Dist < 1 || s.Dist > MaxDist {
			return fmt.Errorf("genkern: segment %d (%v): distance %d outside 1..%d", i, s.Kind, s.Dist, MaxDist)
		}
		if s.Arrays < MinArrays || s.Arrays > MaxArrays {
			return fmt.Errorf("genkern: segment %d (%v): %d arrays outside %d..%d", i, s.Kind, s.Arrays, MinArrays, MaxArrays)
		}
		hot := func(n int64, what string) error {
			if n < minHotTrip || n > MaxTrip {
				return fmt.Errorf("genkern: segment %d (%v): %s trip %d outside %d..%d", i, s.Kind, what, n, minHotTrip, MaxTrip)
			}
			return nil
		}
		switch s.Kind {
		case KindNested:
			hotN, narrowN := s.N, s.Inner
			hotWhat, narrowWhat := "outer", "inner"
			if !s.OuterHot {
				hotN, narrowN = s.Inner, s.N
				hotWhat, narrowWhat = "inner", "outer"
			}
			if err := hot(hotN, hotWhat); err != nil {
				return err
			}
			if narrowN < MinNarrowTrip || narrowN > MaxNarrowTrip {
				return fmt.Errorf("genkern: segment %d (%v): %s trip %d outside %d..%d", i, s.Kind, narrowWhat, narrowN, MinNarrowTrip, MaxNarrowTrip)
			}
		case KindIrregular:
			if s.N < MinIrregularTrip || s.N > MaxIrregularTrip {
				return fmt.Errorf("genkern: segment %d (%v): trip %d outside %d..%d", i, s.Kind, s.N, MinIrregularTrip, MaxIrregularTrip)
			}
			if s.Inner != 0 {
				return fmt.Errorf("genkern: segment %d (%v): inner trip %d on a non-nested kind", i, s.Kind, s.Inner)
			}
		case KindSyscall:
			if s.N < MinSyscallTrip || s.N > MaxSyscallTrip {
				return fmt.Errorf("genkern: segment %d (%v): trip %d outside %d..%d", i, s.Kind, s.N, MinSyscallTrip, MaxSyscallTrip)
			}
			if s.Inner != 0 {
				return fmt.Errorf("genkern: segment %d (%v): inner trip %d on a non-nested kind", i, s.Kind, s.Inner)
			}
		default:
			if err := hot(s.N, "loop"); err != nil {
				return err
			}
			if s.Inner != 0 {
				return fmt.Errorf("genkern: segment %d (%v): inner trip %d on a non-nested kind", i, s.Kind, s.Inner)
			}
		}
	}
	return nil
}

// EncodeShape serialises the shape into its canonical genome bytes.
// Fields are truncated to their record widths; encode∘decode is the
// identity exactly on Validate-clean shapes.
func EncodeShape(sh Shape) []byte {
	out := make([]byte, 2+len(sh.Segs)*segRecordSize)
	out[0] = ShapeEncodingVersion
	out[1] = byte(len(sh.Segs))
	for i, s := range sh.Segs {
		rec := out[2+i*segRecordSize:]
		rec[0] = byte(s.Kind)
		var flags byte
		if s.Collide {
			flags |= 1
		}
		if s.OuterHot {
			flags |= 2
		}
		rec[1] = flags
		rec[2] = byte(s.N)
		rec[3] = byte(s.N >> 8)
		rec[4] = byte(s.Inner)
		rec[5] = byte(s.Inner >> 8)
		rec[6] = byte(s.Dist)
		rec[7] = byte(s.Arrays)
	}
	return out
}

// DecodeShape normalises arbitrary bytes into a valid Shape. It never
// fails and never panics: missing bytes read as zero, every field is
// clamped into its legal range, and trailing bytes beyond the declared
// segment count are ignored. The result always passes Validate.
func DecodeShape(data []byte) Shape {
	at := func(i int) byte {
		if i >= 0 && i < len(data) {
			return data[i]
		}
		return 0
	}
	n := 1
	if nb := at(1); nb >= 1 {
		n = int(nb-1)%MaxShapeSegs + 1
	}
	sh := Shape{Segs: make([]Seg, n)}
	for i := range sh.Segs {
		off := 2 + i*segRecordSize
		var s Seg
		s.Kind = SegKind(clampInto(int64(at(off)), 0, int64(numSegKinds-1)))
		flags := at(off + 1)
		s.Collide = flags&1 != 0
		s.OuterHot = flags&2 != 0
		rawN := int64(at(off+2)) | int64(at(off+3))<<8
		rawInner := int64(at(off+4)) | int64(at(off+5))<<8
		s.Dist = clampInto(int64(at(off+6)), 1, MaxDist)
		s.Arrays = int(clampInto(int64(at(off+7)), MinArrays, MaxArrays))
		switch s.Kind {
		case KindNested:
			if s.OuterHot {
				s.N = clampInto(rawN, minHotTrip, MaxTrip)
				s.Inner = clampInto(rawInner, MinNarrowTrip, MaxNarrowTrip)
			} else {
				s.N = clampInto(rawN, MinNarrowTrip, MaxNarrowTrip)
				s.Inner = clampInto(rawInner, minHotTrip, MaxTrip)
			}
		case KindIrregular:
			s.N = clampInto(rawN, MinIrregularTrip, MaxIrregularTrip)
		case KindSyscall:
			s.N = clampInto(rawN, MinSyscallTrip, MaxSyscallTrip)
		default:
			s.N = clampInto(rawN, minHotTrip, MaxTrip)
		}
		sh.Segs[i] = s
	}
	return sh
}

// NormaliseShape clamps every field of sh into its legal range via the
// genome round-trip; the mutation operators use it so any perturbation
// lands back on a Validate-clean shape.
func NormaliseShape(sh Shape) Shape { return DecodeShape(EncodeShape(sh)) }

// ShapeHex renders the genome as the hex string repro commands and
// regression fixtures carry.
func ShapeHex(sh Shape) string { return hex.EncodeToString(EncodeShape(sh)) }

// ParseShapeHex decodes a -genkern.shape hex string. The only possible
// error is malformed hex; the decoded bytes always normalise.
func ParseShapeHex(s string) (Shape, error) {
	data, err := hex.DecodeString(s)
	if err != nil {
		return Shape{}, fmt.Errorf("genkern: shape hex: %w", err)
	}
	return DecodeShape(data), nil
}

// shapeEqual reports structural equality of two shapes.
func shapeEqual(a, b Shape) bool {
	if len(a.Segs) != len(b.Segs) {
		return false
	}
	for i := range a.Segs {
		if a.Segs[i] != b.Segs[i] {
			return false
		}
	}
	return true
}
