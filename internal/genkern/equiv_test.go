package genkern

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The corpus-hash fixture pins the exact executables the tier-1 corpus
// seeds produce. It was generated from the pre-GenerateShape Generate
// implementation, so it proves the Generate -> GenerateShape(DeriveShape)
// refactor is byte-for-byte behaviour preserving: every ref and train
// fingerprint must match what the old code built.
//
// Regenerate after an intentional generator change (which also requires
// a workloads.BuildSchema bump) with:
//
//	go test ./internal/genkern -run TestGenerateShapeEquivalence -genkern.update-hashes
var updateHashes = flag.Bool("genkern.update-hashes", false, "rewrite testdata/corpus-hashes.golden from a fresh generation pass")

const corpusHashPath = "testdata/corpus-hashes.golden"

func TestGenerateShapeEquivalence(t *testing.T) {
	if *updateHashes {
		var b strings.Builder
		for seed := uint64(1); seed <= uint64(corpusSeeds); seed++ {
			k, err := Generate(seed)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "s%d %s %s\n", seed, k.Ref.Fingerprint(), k.Train.Fingerprint())
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.FromSlash(corpusHashPath), []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", corpusHashPath)
		return
	}

	f, err := os.Open(filepath.FromSlash(corpusHashPath))
	if err != nil {
		t.Fatalf("missing corpus-hash fixture (generate with -genkern.update-hashes): %v", err)
	}
	defer f.Close()
	want := map[uint64][2]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var seed uint64
		var ref, train string
		if _, err := fmt.Sscanf(sc.Text(), "s%d %s %s", &seed, &ref, &train); err != nil {
			t.Fatalf("bad fixture line %q: %v", sc.Text(), err)
		}
		want[seed] = [2]string{ref, train}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != corpusSeeds {
		t.Fatalf("fixture covers %d seeds, corpus has %d", len(want), corpusSeeds)
	}

	for seed := uint64(1); seed <= uint64(corpusSeeds); seed++ {
		k, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		w := want[seed]
		if got := k.Ref.Fingerprint(); got != w[0] {
			t.Fatalf("seed %d: ref executable fingerprint %s, fixture %s (generator output changed)", seed, got, w[0])
		}
		if got := k.Train.Fingerprint(); got != w[1] {
			t.Fatalf("seed %d: train executable fingerprint %s, fixture %s (generator output changed)", seed, got, w[1])
		}
	}
}
