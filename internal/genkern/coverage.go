package genkern

import "fmt"

// Shape-space coverage. A campaign retains a mutated shape only if its
// oracle run landed on at least one behaviour cell no earlier corpus
// member reached, so the corpus stays a minimal frontier of the
// (structure × pipeline-verdict × execution-path) space instead of an
// ever-growing pile of near-duplicates.

// Cell is one point of the coverage space: what the loop was (kind,
// distance bucket, alias layout), what the analyser concluded about it
// (verdict), which engine tier actually executed it, and whether the
// speculation recovery path fired during the run.
type Cell struct {
	Kind       SegKind
	DistBucket uint8
	Alias      uint8
	Verdict    uint8
	Engine     uint8
	Recovered  bool
}

// Distance buckets: 0 = kind has no dependence distance, then 1, 2..4,
// 5..8, 9..MaxDist.
func distBucket(k SegKind, d int64) uint8 {
	switch k {
	case KindCarried, KindMustAlias, KindMayAlias:
	default:
		return 0
	}
	switch {
	case d <= 1:
		return 1
	case d <= 4:
		return 2
	case d <= 8:
		return 3
	default:
		return 4
	}
}

// Alias-layout codes.
const (
	aliasNone uint8 = iota
	aliasMust
	aliasMay
	aliasCollide
	aliasIndexed
	aliasPtrTable
)

func aliasLayout(s Seg) uint8 {
	switch s.Kind {
	case KindMustAlias:
		return aliasMust
	case KindMayAlias:
		return aliasMay
	case KindIndexChase:
		if s.Collide {
			return aliasCollide
		}
		return aliasIndexed
	case KindDoallRuntime:
		return aliasPtrTable
	}
	return aliasNone
}

// Engine-taken codes (kernel granularity: the work-stealing run's
// region counters say which tier the parallel regions reached).
const (
	engineNone uint8 = iota
	engineRoundRobin
	engineHostParallel
	engineStealing
)

func (c Cell) String() string {
	r := 0
	if c.Recovered {
		r = 1
	}
	return fmt.Sprintf("%s/d%d/a%d/v%d/e%d/r%d", c.Kind, c.DistBucket, c.Alias, c.Verdict, c.Engine, r)
}

// CellsOf projects one oracle report onto coverage cells, one per
// analysed loop. shape must be the shape the report's kernel was built
// from (Truth.Seg indexes into it).
func CellsOf(shape Shape, rep *Report) []Cell {
	var engine uint8
	var recovered bool
	for _, run := range rep.Engines {
		if run.Stats.ParRecoveries > 0 {
			recovered = true
		}
		e := engineNone
		if run.Stats.StealRegions > 0 {
			e = engineStealing
		} else if run.Stats.HostParRegions > 0 {
			e = engineHostParallel
		} else if run.Stats.ParRegions > 0 {
			e = engineRoundRobin
		}
		if e > engine {
			engine = e
		}
	}
	out := make([]Cell, 0, len(rep.Loops))
	for _, lv := range rep.Loops {
		c := Cell{
			Kind:      lv.Truth.Kind,
			Verdict:   uint8(lv.Class),
			Recovered: recovered,
		}
		if lv.Truth.Seg >= 0 && lv.Truth.Seg < len(shape.Segs) {
			s := shape.Segs[lv.Truth.Seg]
			c.DistBucket = distBucket(lv.Truth.Kind, s.Dist)
			c.Alias = aliasLayout(s)
		}
		if lv.Selected {
			c.Engine = engine
		}
		out = append(out, c)
	}
	return out
}

// Coverage is the campaign's accumulated cell set.
type Coverage struct {
	cells map[Cell]int
}

// NewCoverage returns an empty map.
func NewCoverage() *Coverage { return &Coverage{cells: map[Cell]int{}} }

// Add folds the cells in and reports how many were previously unseen.
func (c *Coverage) Add(cells []Cell) (fresh int) {
	for _, cell := range cells {
		if c.cells[cell] == 0 {
			fresh++
		}
		c.cells[cell]++
	}
	return fresh
}

// Size is the number of distinct cells covered.
func (c *Coverage) Size() int { return len(c.cells) }

// Has reports whether the cell has been covered.
func (c *Coverage) Has(cell Cell) bool { return c.cells[cell] > 0 }
