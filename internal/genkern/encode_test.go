package genkern

import (
	"bytes"
	"testing"
)

// validShapes is the table of hand-picked Validate-clean shapes the
// round-trip tests pin, covering every kind and both nest orientations.
func validShapes() []Shape {
	return []Shape{
		{Segs: []Seg{{Kind: KindDoallConst, N: 96, Dist: 1, Arrays: 2}}},
		{Segs: []Seg{{Kind: KindDoallConst, N: MaxTrip, Dist: MaxDist, Arrays: MaxArrays, Collide: true, OuterHot: true}}},
		{Segs: []Seg{{Kind: KindDoallRuntime, N: 128, Dist: 3, Arrays: 4}}},
		{Segs: []Seg{{Kind: KindCarried, N: 224, Dist: 8, Arrays: 2}}},
		{Segs: []Seg{{Kind: KindMustAlias, N: 160, Dist: 5, Arrays: 3}}},
		{Segs: []Seg{{Kind: KindMayAlias, N: 96, Dist: 2, Arrays: 2, Collide: true}}},
		{Segs: []Seg{{Kind: KindIntReduction, N: 128, Dist: 1, Arrays: 2}}},
		{Segs: []Seg{{Kind: KindFPReduction, N: 96, Dist: 1, Arrays: 2}}},
		{Segs: []Seg{{Kind: KindNested, N: 96, Inner: 12, Dist: 1, Arrays: 2, OuterHot: true}}},
		{Segs: []Seg{{Kind: KindNested, N: 4, Inner: 224, Dist: 2, Arrays: 3}}},
		{Segs: []Seg{{Kind: KindIrregular, N: 256, Dist: 1, Arrays: 2}}},
		{Segs: []Seg{{Kind: KindIrregular, N: 4096, Dist: 16, Arrays: 4}}},
		{Segs: []Seg{{Kind: KindSyscall, N: 4, Dist: 1, Arrays: 2}}},
		{Segs: []Seg{{Kind: KindLibcall, N: 160, Dist: 3, Arrays: 2}}},
		{Segs: []Seg{{Kind: KindIndexChase, N: 96, Dist: 1, Arrays: 2, Collide: true}}},
		{Segs: []Seg{
			{Kind: KindCarried, N: 96, Dist: 1, Arrays: 2},
			{Kind: KindSyscall, N: 8, Dist: 4, Arrays: 3, OuterHot: true},
			{Kind: KindNested, N: 16, Inner: 96, Dist: 16, Arrays: 4},
			{Kind: KindDoallConst, N: 320, Dist: 2, Arrays: 2},
			{Kind: KindIndexChase, N: 200, Dist: 9, Arrays: 3},
			{Kind: KindIrregular, N: 1000, Dist: 11, Arrays: 2},
		}},
	}
}

func TestShapeRoundTrip(t *testing.T) {
	for i, sh := range validShapes() {
		if err := sh.Validate(); err != nil {
			t.Fatalf("shape %d: table entry is not valid: %v", i, err)
		}
		enc := EncodeShape(sh)
		dec := DecodeShape(enc)
		if !shapeEqual(sh, dec) {
			t.Errorf("shape %d: encode∘decode is not the identity:\n in: %+v\nout: %+v", i, sh, dec)
		}
		// The round trip must also be byte-stable (canonical encoding).
		if !bytes.Equal(enc, EncodeShape(dec)) {
			t.Errorf("shape %d: re-encoding the decoded shape changed bytes", i)
		}
	}
}

func TestDeriveShapeIsValid(t *testing.T) {
	for seed := uint64(0); seed <= uint64(corpusSeeds); seed++ {
		sh := DeriveShape(seed)
		if err := sh.Validate(); err != nil {
			t.Fatalf("DeriveShape(%d) is not Validate-clean: %v", seed, err)
		}
		if !shapeEqual(sh, DecodeShape(EncodeShape(sh))) {
			t.Fatalf("DeriveShape(%d) does not round-trip through the genome encoding", seed)
		}
	}
}

// TestDecodeArbitraryBytes pins DecodeShape's totality: arbitrary byte
// strings (including empty, short, oversized and adversarial ones)
// decode without panicking into shapes that pass Validate and round-trip
// canonically.
func TestDecodeArbitraryBytes(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0},
		{0xff},
		{0, 0},
		{1, 0},
		{1, 255},
		{1, 7, 0xff},
		bytes.Repeat([]byte{0xff}, 3),
		bytes.Repeat([]byte{0xff}, 64),
		bytes.Repeat([]byte{0x00}, 64),
		bytes.Repeat([]byte{0xa5}, 200),
		{1, 2, byte(KindSyscall), 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	// A deterministic pseudo-random sweep widens the table.
	r := newRng(42)
	for i := 0; i < 500; i++ {
		n := r.intn(120)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(r.next())
		}
		inputs = append(inputs, buf)
	}
	for i, in := range inputs {
		sh := DecodeShape(in)
		if err := sh.Validate(); err != nil {
			t.Fatalf("input %d (%x): decoded shape fails Validate: %v", i, in, err)
		}
		if !shapeEqual(sh, DecodeShape(EncodeShape(sh))) {
			t.Fatalf("input %d (%x): normalised shape does not round-trip", i, in)
		}
	}
}

func TestParseShapeHex(t *testing.T) {
	sh := validShapes()[3]
	got, err := ParseShapeHex(ShapeHex(sh))
	if err != nil {
		t.Fatal(err)
	}
	if !shapeEqual(sh, got) {
		t.Fatalf("hex round trip lost the shape: %+v vs %+v", sh, got)
	}
	if _, err := ParseShapeHex("not-hex"); err == nil {
		t.Fatal("malformed hex did not error")
	}
}

// FuzzShapeVector is the structured-genome fuzz target: the native
// fuzzer mutates genome bytes directly (structure, not hashes). Every
// input must normalise into a valid shape, and the shape must survive
// the full differential oracle.
func FuzzShapeVector(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(EncodeShape(DeriveShape(seed)))
	}
	for _, sh := range validShapes() {
		f.Add(EncodeShape(sh))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sh := DecodeShape(data)
		if err := sh.Validate(); err != nil {
			t.Fatalf("decoded shape fails Validate: %v", err)
		}
		if !shapeEqual(sh, DecodeShape(EncodeShape(sh))) {
			t.Fatal("decoded shape does not re-encode canonically")
		}
		if _, err := DiffShape(sh, 1, Options{Threads: 4}); err != nil {
			t.Fatal(err)
		}
	})
}
