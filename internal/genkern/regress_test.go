package genkern

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -genkern.shape replays one shape-vector genome (printed by campaign
// and minimiser repro commands) through the full differential oracle;
// -genkern.seed names its input data (default 1).
var shapeFlag = flag.String("genkern.shape", "", "replay one genome-hex shape through the differential oracle")

// TestShapeRepro is the replay entry point campaign repro commands
// name. Without -genkern.shape it is a no-op.
func TestShapeRepro(t *testing.T) {
	if *shapeFlag == "" {
		t.Skip("no -genkern.shape given")
	}
	sh, err := ParseShapeHex(*shapeFlag)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(1)
	if *seedFlag >= 0 {
		seed = uint64(*seedFlag)
	}
	rep, err := DiffShape(sh, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range rep.Loops {
		t.Logf("loop %d %-13s class=%v profiled=%v observed=%v selected=%v cov=%.3f",
			lv.ID, lv.Truth.Kind, lv.Class, lv.DepProfiled, lv.ObservedDep, lv.Selected, lv.Coverage)
	}
	t.Logf("selected=%d missed=%d interesting=%v", rep.Selected, rep.MissedPar, rep.Interesting)
}

// TestGraduatedRegressions replays every graduated campaign fixture
// under testdata/regressions through the full differential oracle.
// Each fixture is a shape on which a campaign once demonstrated a
// divergence; replaying it green under tier-1 pins that the bug class
// it found stays fixed (for planted-oracle finds: that the unplanted
// pipeline handles the shape soundly).
func TestGraduatedRegressions(t *testing.T) {
	matches, err := filepath.Glob(filepath.FromSlash("testdata/regressions/*.shape"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no graduated regression fixtures found (testdata/regressions/*.shape)")
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			shape, seed, err := ParseRegression(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := shape.Validate(); err != nil {
				t.Fatalf("fixture shape invalid: %v", err)
			}
			rep, err := DiffShape(shape, seed, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Loops) == 0 {
				t.Fatal("fixture kernel produced no analysed loops")
			}
		})
	}
}
