package genkern

import "errors"

// Shape minimiser: given a shape whose oracle run fails, shrink it —
// drop segments, then shrink trips, distances, widths — while
// re-checking after every candidate that the failure is preserved. The
// result is the smallest shape the budget reached, plus the repro
// command to replay it.

// MinimiseResult is the outcome of one minimisation.
type MinimiseResult struct {
	// Shape is the smallest failing shape found.
	Shape Shape
	// Seed is the input-data seed the failure reproduces under.
	Seed uint64
	// Evals counts oracle runs spent (bounded by the budget).
	Evals int
	// Err is the failure the minimised shape still produces.
	Err error
}

// Repro is the one-line command that replays the minimised failure.
func (m MinimiseResult) Repro() string { return shapeRepro(m.Shape, m.Seed) }

// stillFails re-runs the oracle and reports whether the shape still
// fails for a campaign-relevant reason (an inert plant is not a
// failure).
func stillFails(sh Shape, seed uint64, o Options) (bool, error) {
	_, err := DiffShape(sh, seed, o)
	if err == nil || errors.Is(err, ErrPlantInert) {
		return false, nil
	}
	return true, err
}

// Minimise shrinks a failing shape while preserving its failure,
// spending at most budget oracle evaluations. The input shape is
// assumed to fail under (seed, o); if it does not, it is returned
// unchanged with Err == nil.
func Minimise(shape Shape, seed uint64, o Options, budget int) MinimiseResult {
	res := MinimiseResult{Shape: NormaliseShape(shape), Seed: seed}
	check := func(cand Shape) bool {
		if res.Evals >= budget {
			return false
		}
		res.Evals++
		ok, err := stillFails(cand, seed, o)
		if ok {
			res.Shape, res.Err = cand, err
		}
		return ok
	}
	// Establish the baseline failure (also fills res.Err).
	if !check(res.Shape) {
		return res
	}

	for changed := true; changed && res.Evals < budget; {
		changed = false

		// Pass 1: drop whole segments, greedily from the front.
		for i := 0; len(res.Shape.Segs) > 1 && i < len(res.Shape.Segs) && res.Evals < budget; {
			segs := copySegs(res.Shape)
			segs = append(segs[:i], segs[i+1:]...)
			if check(NormaliseShape(Shape{Segs: segs})) {
				changed = true
				// Same index now names the next segment.
				continue
			}
			i++
		}

		// Pass 2: shrink scalar fields toward their minima, halving so
		// the pass converges in O(log) evaluations per field.
		for i := 0; i < len(res.Shape.Segs) && res.Evals < budget; i++ {
			shrink := func(get func(*Seg) *int64, min int64) {
				for res.Evals < budget {
					segs := copySegs(res.Shape)
					p := get(&segs[i])
					next := *p / 2
					if next < min {
						next = min
					}
					if next == *p {
						return
					}
					*p = next
					if !check(NormaliseShape(Shape{Segs: segs})) {
						return
					}
					changed = true
				}
			}
			k := res.Shape.Segs[i].Kind
			switch k {
			case KindIrregular:
				shrink(func(s *Seg) *int64 { return &s.N }, MinIrregularTrip)
			case KindSyscall:
				shrink(func(s *Seg) *int64 { return &s.N }, MinSyscallTrip)
			case KindNested:
				if res.Shape.Segs[i].OuterHot {
					shrink(func(s *Seg) *int64 { return &s.N }, minHotTrip)
					shrink(func(s *Seg) *int64 { return &s.Inner }, MinNarrowTrip)
				} else {
					shrink(func(s *Seg) *int64 { return &s.Inner }, minHotTrip)
					shrink(func(s *Seg) *int64 { return &s.N }, MinNarrowTrip)
				}
			default:
				shrink(func(s *Seg) *int64 { return &s.N }, minHotTrip)
			}
			shrink(func(s *Seg) *int64 { return &s.Dist }, 1)
			if res.Shape.Segs[i].Arrays > MinArrays && res.Evals < budget {
				segs := copySegs(res.Shape)
				segs[i].Arrays = MinArrays
				if check(NormaliseShape(Shape{Segs: segs})) {
					changed = true
				}
			}
		}
	}
	return res
}
