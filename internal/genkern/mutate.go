package genkern

// Seeded, deterministic mutation engine over shape-vector genomes.
//
// Every operator maps a Validate-clean shape to a Validate-clean shape
// (perturbed fields are re-canonicalised through the genome clamp), and
// a Mutator's whole output stream is a pure function of its seed, so a
// campaign replays identically from (corpus, seed).

// MutOp names one mutation operator.
type MutOp uint8

const (
	// OpKindSwap rewrites one segment's kind, re-clamping its fields
	// into the new kind's legal ranges.
	OpKindSwap MutOp = iota
	// OpDistShift nudges one segment's dependence distance.
	OpDistShift
	// OpTripPerturb nudges one segment's trip count (the hot dimension
	// for nests).
	OpTripPerturb
	// OpSegSplice inserts a freshly drawn segment at a random position.
	OpSegSplice
	// OpSegDup duplicates a random segment in place.
	OpSegDup
	// OpSegDrop removes a random segment.
	OpSegDrop
	// OpFlagFlip toggles a segment's Collide or OuterHot bit (the
	// alias/nest-orientation layout switches).
	OpFlagFlip

	numMutOps
)

func (op MutOp) String() string {
	switch op {
	case OpKindSwap:
		return "kind-swap"
	case OpDistShift:
		return "dist-shift"
	case OpTripPerturb:
		return "trip-perturb"
	case OpSegSplice:
		return "seg-splice"
	case OpSegDup:
		return "seg-dup"
	case OpSegDrop:
		return "seg-drop"
	case OpFlagFlip:
		return "flag-flip"
	}
	return "mutop(?)"
}

// Mutator is a deterministic source of shape mutations.
type Mutator struct{ r *rng }

// NewMutator returns a mutator whose entire output stream is a pure
// function of seed.
func NewMutator(seed uint64) *Mutator {
	return &Mutator{r: newRng(seed ^ 0x5ba9e5eed0c0ffee)}
}

// copySegs deep-copies the segment slice so operators never alias a
// corpus-resident parent.
func copySegs(sh Shape) []Seg {
	return append([]Seg(nil), sh.Segs...)
}

// Fresh draws a brand-new shape with DeriveShape's distribution, fed
// from the mutator's stream (used to keep a campaign's corpus from
// inbreeding).
func (m *Mutator) Fresh() Shape {
	n := 1 + m.r.intn(4)
	sh := Shape{Segs: make([]Seg, n)}
	for i := range sh.Segs {
		sh.Segs[i] = m.randSeg()
	}
	return NormaliseShape(sh)
}

// randSeg mirrors DeriveShape's per-segment draw.
func (m *Mutator) randSeg() Seg {
	s := Seg{Kind: SegKind(m.r.intn(numSegKinds))}
	s.N = m.r.pick(minHotTrip, 128, 160, 224)
	s.Dist = m.r.pick(1, 2, 3, 5, 8)
	s.Arrays = MinArrays + m.r.intn(MaxArrays-MinArrays+1)
	s.Collide = m.r.intn(2) == 1
	s.OuterHot = m.r.intn(2) == 1
	switch s.Kind {
	case KindNested:
		if s.OuterHot {
			s.Inner = m.r.pick(4, 8, 12)
		} else {
			s.Inner = s.N
			s.N = m.r.pick(4, 8, 12)
		}
	case KindIrregular:
		s.N = int64(1) << (8 + m.r.intn(5))
	case KindSyscall:
		s.N = 4 + int64(m.r.intn(8))
	}
	return s
}

// Mutate applies 1..3 randomly drawn operators and returns the
// normalised child.
func (m *Mutator) Mutate(sh Shape) Shape {
	rounds := 1 + m.r.intn(3)
	for i := 0; i < rounds; i++ {
		sh = m.Apply(MutOp(m.r.intn(int(numMutOps))), sh)
	}
	return sh
}

// Apply runs one operator. Operators that cannot apply (dropping the
// only segment, splicing past MaxShapeSegs) return the input unchanged
// apart from normalisation.
func (m *Mutator) Apply(op MutOp, sh Shape) Shape {
	segs := copySegs(sh)
	if len(segs) == 0 {
		return NormaliseShape(Shape{Segs: segs})
	}
	i := m.r.intn(len(segs))
	switch op {
	case OpKindSwap:
		// Draw a different kind; the normalise pass wraps the old trip
		// counts into the new kind's ranges.
		delta := 1 + m.r.intn(numSegKinds-1)
		segs[i].Kind = SegKind((int(segs[i].Kind) + delta) % numSegKinds)
	case OpDistShift:
		segs[i].Dist += m.r.pick(-4, -2, -1, 1, 2, 4)
	case OpTripPerturb:
		d := m.r.pick(-64, -32, -8, -1, 1, 8, 32, 64)
		if segs[i].Kind == KindNested && !segs[i].OuterHot {
			segs[i].Inner += d
		} else {
			segs[i].N += d
		}
	case OpSegSplice:
		if len(segs) < MaxShapeSegs {
			pos := m.r.intn(len(segs) + 1)
			segs = append(segs, Seg{})
			copy(segs[pos+1:], segs[pos:])
			segs[pos] = m.randSeg()
		}
	case OpSegDup:
		if len(segs) < MaxShapeSegs {
			segs = append(segs, Seg{})
			copy(segs[i+1:], segs[i:])
		}
	case OpSegDrop:
		if len(segs) > 1 {
			segs = append(segs[:i], segs[i+1:]...)
		}
	case OpFlagFlip:
		if m.r.intn(2) == 0 {
			segs[i].Collide = !segs[i].Collide
		} else {
			segs[i].OuterHot = !segs[i].OuterHot
		}
	}
	return NormaliseShape(Shape{Segs: segs})
}

// Crossover builds a child whose every segment is drawn verbatim from
// one of the two parents (position-wise where both parents have the
// position, from the longer parent past the shorter one's end).
func (m *Mutator) Crossover(a, b Shape) Shape {
	la, lb := len(a.Segs), len(b.Segs)
	lo, hi := la, lb
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 1 {
		lo = 1
	}
	if hi < 1 {
		hi = 1
	}
	n := lo + m.r.intn(hi-lo+1)
	out := make([]Seg, n)
	for i := range out {
		fromA := m.r.intn(2) == 0
		switch {
		case fromA && i < la:
			out[i] = a.Segs[i]
		case !fromA && i < lb:
			out[i] = b.Segs[i]
		case i < la:
			out[i] = a.Segs[i]
		default:
			out[i] = b.Segs[i]
		}
	}
	return NormaliseShape(Shape{Segs: out})
}
