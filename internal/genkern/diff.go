package genkern

import (
	"errors"
	"fmt"

	"janus/internal/analyzer"
	"janus/internal/dbm"
	"janus/internal/faultinject"
	"janus/internal/vm"

	janus "janus"
)

// Options configures one differential run.
type Options struct {
	// Threads is the guest thread count (default 8).
	Threads int
	// PlantDOALL deliberately flips one statically-proven carried loop
	// to static-DOALL after analysis — a planted soundness bug the
	// engine-versus-native oracle must catch. Used by the self-test.
	PlantDOALL bool
	// Recovery additionally runs the work-stealing engine under
	// scan-defeat fault injection, exercising the checkpoint/rollback/
	// re-execute recovery path; the output must still match native.
	Recovery bool
}

// LoopVerdict pairs one loop's ground truth with what the pipeline
// concluded about it.
type LoopVerdict struct {
	ID    int
	Truth LoopTruth
	Class analyzer.Class
	// DepProfiled/ObservedDep mirror the analyzer record after the
	// training profile was applied.
	DepProfiled bool
	ObservedDep bool
	Selected    bool
	Coverage    float64
}

// EngineRun is one engine's execution outcome.
type EngineRun struct {
	Name     string
	Cycles   int64
	DataHash uint64
	Stats    dbm.Stats
}

// Report is the outcome of one kernel's differential run.
type Report struct {
	Seed     uint64
	Name     string
	Loops    []LoopVerdict
	Engines  []EngineRun
	Selected int
	// MissedPar counts loops the generator knows are independent and
	// statically analysable but the analyser classified as carrying a
	// dependence — a missed parallelisation, counted rather than fatal.
	MissedPar int
	// Interesting lists the reasons this kernel is worth graduating
	// into the benchmark corpus (empty for plain agreement).
	Interesting []string
	// Planted is the loop whose class was deliberately flipped by
	// Options.PlantDOALL (nil otherwise).
	Planted *LoopVerdict
}

// repro returns the one-line command that reproduces this kernel's
// differential run; it is appended to every failure.
func repro(seed uint64) string {
	return fmt.Sprintf("repro: go test ./internal/genkern -run TestSeededCorpus -genkern.seed=%d", seed)
}

// Repro names the command that replays this kernel through the oracle:
// the seed form when the shape is seed-derived, the genome-hex form for
// fuzzer-built shapes (with -genkern.seed naming the input data).
func (k *Kernel) Repro() string {
	if k.seedDerived {
		return repro(k.Seed)
	}
	return shapeRepro(k.Shape, k.Seed)
}

func shapeRepro(sh Shape, seed uint64) string {
	return fmt.Sprintf("repro: go test ./internal/genkern -run TestShapeRepro -genkern.shape=%s -genkern.seed=%d", ShapeHex(sh), seed)
}

func (k *Kernel) failf(format string, args ...any) error {
	return fmt.Errorf("genkern: seed %d (%s): %s; %s", k.Seed, k.Name, fmt.Sprintf(format, args...), k.Repro())
}

// ErrPlantInert marks a PlantDOALL run where the planted
// mis-classification could not arm (no statically-proven carried loop,
// or the planted loop was not selected so the bug cannot reach the
// engines). Campaign drivers treat it as a clean outcome: the shape
// simply cannot exhibit the planted bug.
var ErrPlantInert = errors.New("planted mis-classification could not arm")

func (k *Kernel) failInert(format string, args ...any) error {
	return fmt.Errorf("genkern: seed %d (%s): %s: %w; %s", k.Seed, k.Name, fmt.Sprintf(format, args...), ErrPlantInert, k.Repro())
}

// DiffSeed generates the kernel named by seed and runs the full
// differential oracle over it.
func DiffSeed(seed uint64, o Options) (*Report, error) {
	k, err := Generate(seed)
	if err != nil {
		return nil, err
	}
	return RunDiff(k, o)
}

// DiffShape generates the kernel described by shape (with seed naming
// only its input data) and runs the full differential oracle over it.
func DiffShape(shape Shape, seed uint64, o Options) (*Report, error) {
	k, err := GenerateShape(shape, seed)
	if err != nil {
		return nil, err
	}
	return RunDiff(k, o)
}

// RunDiff runs the three-way differential oracle for one kernel:
//
//  1. analyzer.Analyze's static verdict is checked against the
//     generator's ground truth (a carried loop classified static-DOALL
//     is a soundness bug; an independent loop classified static-dep is
//     a counted missed parallelisation),
//  2. the dependence profiler runs on the training build and must
//     observe exactly the dependences the generator planted (a miss or
//     a false positive is fatal),
//  3. the program executes under the round-robin, host-parallel and
//     work-stealing engines; all three must match native output and
//     final data hash byte-for-byte, agree on virtual cycles, and —
//     because selection may only pick truly independent loops — report
//     zero STM aborts and zero speculation recoveries.
//
// Every violation carries a one-line repro command naming the seed.
func RunDiff(k *Kernel, o Options) (*Report, error) {
	if o.Threads <= 0 {
		o.Threads = 8
	}
	rep := &Report{Seed: k.Seed, Name: k.Name}

	// Static verdict on the evaluation build.
	prog, err := analyzer.Analyze(k.Ref)
	if err != nil {
		return nil, k.failf("static analysis: %v", err)
	}
	// Training stage: profile the train build, map results onto the ref
	// analysis (identical layout => identical loop IDs, verified at
	// generation time).
	trainProg, err := analyzer.Analyze(k.Train)
	if err != nil {
		return nil, k.failf("train analysis: %v", err)
	}
	profile, err := janus.RunProfiling(k.Train, trainProg, k.Libs...)
	if err != nil {
		return nil, k.failf("profiling: %v", err)
	}
	prog.ApplyCoverage(profile.Coverage)
	prog.ApplyExclCoverage(profile.ExclCoverage)
	prog.ApplyAvgIters(profile.AvgIters)
	prog.ApplyDependences(profile.Dependences)
	if prog.UnknownProfileIDs != 0 {
		return nil, k.failf("%d profile records named unknown loop IDs (train/ref layout skew)", prog.UnknownProfileIDs)
	}

	// Ground-truth <-> analysis mapping: every analysed loop must be
	// one the generator emitted, and vice versa.
	if len(prog.Loops) != len(k.Truth) {
		return nil, k.failf("analyser found %d loops, generator emitted %d", len(prog.Loops), len(k.Truth))
	}
	var planted *analyzer.LoopInfo
	for _, li := range prog.Loops {
		t := k.TruthByHeader(li.Loop.Header.Addr)
		if t == nil {
			return nil, k.failf("analyser loop %d at %#x matches no generated loop", li.ID, li.Loop.Header.Addr)
		}

		// Lattice invariant 1 (analyzer soundness): a loop with a real
		// carried dependence must never be proven statically parallel.
		if t.Carried && li.Class == analyzer.ClassStaticDOALL {
			return nil, k.failf("SOUNDNESS: %s loop at %#x carries a distance dependence but the analyser classified it %v", t.Kind, t.Header, li.Class)
		}
		// Incompatible shapes (syscalls, non-affine induction) must be
		// rejected outright.
		if t.Incompatible && li.Class != analyzer.ClassIncompatible {
			return nil, k.failf("SOUNDNESS: %s loop at %#x must be incompatible but was classified %v", t.Kind, t.Header, li.Class)
		}
		// Lattice invariant 2 (profiler): profiled loops must observe
		// exactly the dependences the generator planted. The generated
		// inputs are dependence-consistent between train and ref, so a
		// divergence in either direction is a profiler bug.
		if li.DepProfiled {
			if t.Carried && !li.ObservedDep {
				return nil, k.failf("PROFILER MISS: %s loop at %#x has a planted dependence the dependence profiler did not observe", t.Kind, t.Header)
			}
			if !t.Carried && li.ObservedDep {
				return nil, k.failf("PROFILER FALSE POSITIVE: independent %s loop at %#x was profiled as dependent", t.Kind, t.Header)
			}
		}
		// Missed parallelisation: statically analysable, truly
		// independent, yet classified as carrying a dependence.
		if !t.Carried && !t.Ambiguous && !t.Incompatible && li.Class == analyzer.ClassStaticDep {
			rep.MissedPar++
		}
		if o.PlantDOALL && planted == nil && t.Carried && li.Class == analyzer.ClassStaticDep {
			planted = li
		}
	}

	if o.PlantDOALL {
		if planted == nil {
			return nil, k.failInert("plant requested but no statically-proven carried loop exists in this kernel")
		}
		// The planted soundness bug: promote a known-carried loop to
		// static-DOALL, exactly what a broken dependence test would do.
		planted.Class = analyzer.ClassStaticDOALL
	}

	prog.SelectLoops(analyzer.SelectOptions{
		UseProfile:  true,
		MinCoverage: analyzer.DefaultMinCoverage,
		UseChecks:   true,
	})

	for _, li := range prog.Loops {
		t := k.TruthByHeader(li.Loop.Header.Addr)
		// Lattice invariant 3 (selection): only truly independent loops
		// may be parallelised — except the deliberately planted one,
		// whose mis-execution the engine oracle below must catch.
		if li.Selected && t.Carried && li != planted {
			return nil, k.failf("SOUNDNESS: selection parallelised %s loop at %#x despite its carried dependence", t.Kind, t.Header)
		}
		v := LoopVerdict{
			ID: li.ID, Truth: *t, Class: li.Class,
			DepProfiled: li.DepProfiled, ObservedDep: li.ObservedDep,
			Selected: li.Selected, Coverage: li.Coverage,
		}
		if li == planted {
			rep.Planted = &v
		}
		rep.Loops = append(rep.Loops, v)
		if li.Selected {
			rep.Selected++
		}
		if li.DepProfiled && li.ObservedDep {
			rep.note("dep-observed")
		}
		if li.Dep != nil && li.Dep.CheckFailed {
			rep.note("check-unclosable")
		}
	}
	if rep.MissedPar > 0 {
		rep.note("missed-parallelisation")
	}
	if o.PlantDOALL && rep.Planted != nil && !rep.Planted.Selected {
		return nil, k.failInert("planted loop was not selected (coverage %.3f): the plant cannot reach the engines", rep.Planted.Coverage)
	}

	sched, err := prog.GenParallelSchedule()
	if err != nil {
		return nil, k.failf("schedule generation: %v", err)
	}
	native, err := janus.RunNativeBaseline(k.Ref, k.Libs...)
	if err != nil {
		return nil, k.failf("native baseline: %v", err)
	}

	// Engine matrix: the deterministic round-robin engine, the
	// host-parallel engine with static chunking, and the work-stealing
	// engine. All three must agree with native and with each other.
	type engineCfg struct {
		name         string
		hostParallel bool
		stealing     bool
		inject       string
	}
	cfgs := []engineCfg{
		{name: "round-robin"},
		{name: "host-parallel", hostParallel: true},
		{name: "work-stealing", hostParallel: true, stealing: true},
	}
	if o.Recovery {
		cfgs = append(cfgs, engineCfg{name: "work-stealing+inject", hostParallel: true, stealing: true, inject: "scan-defeat"})
	}
	for _, ec := range cfgs {
		dcfg := dbm.DefaultConfig(o.Threads)
		dcfg.HostParallel = ec.hostParallel
		dcfg.WorkStealing = ec.stealing
		if ec.inject != "" {
			plan, perr := faultinject.ParsePlan(ec.inject)
			if perr != nil {
				return nil, k.failf("injection plan: %v", perr)
			}
			dcfg.Inject = plan
		}
		ex, err := dbm.New(k.Ref, sched, dcfg, k.Libs...)
		if err != nil {
			return nil, k.failf("%s: DBM construction: %v", ec.name, err)
		}
		res, err := ex.Run()
		if err != nil {
			return nil, k.failf("%s: DBM run: %v", ec.name, err)
		}
		run := EngineRun{Name: ec.name, Cycles: res.Cycles, DataHash: ex.DataHash(), Stats: res.Stats}
		rep.Engines = append(rep.Engines, run)

		// Lattice invariant 4 (execution): byte-identical behaviour.
		if err := compareToNative(native, res, run.DataHash); err != nil {
			if o.PlantDOALL {
				// The planted bug reached execution and the oracle
				// caught it: report it as the (expected) failure.
				return rep, k.failf("PLANTED BUG CAUGHT on %s: %v", ec.name, err)
			}
			return nil, k.failf("DIVERGENCE on %s: %v", ec.name, err)
		}
		// Lattice invariant 5 (speculation): selection admitted only
		// independent loops, so speculative execution must be
		// conflict-free — no STM aborts, no rollback recoveries.
		if ec.inject == "" {
			if run.Stats.TxAborts != 0 {
				return nil, k.failf("SPECULATION: %s reported %d STM aborts on a dependence-free schedule", ec.name, run.Stats.TxAborts)
			}
			if run.Stats.ParRecoveries != 0 {
				return nil, k.failf("SPECULATION: %s reported %d recoveries without fault injection", ec.name, run.Stats.ParRecoveries)
			}
		} else if run.Stats.ParRecoveries > 0 {
			rep.note("recovery-exercised")
		}
		if run.Stats.ChecksFailed > 0 {
			rep.note("checks-failed")
		}
		if run.Stats.SeqFallbacks > 0 {
			rep.note("seq-fallback")
		}
	}
	if o.PlantDOALL {
		// Every engine executed the planted mis-classification without
		// diverging from native: the oracle has a blind spot.
		return rep, k.failf("PLANTED BUG ESCAPED: all engines matched native despite the forced mis-classification")
	}

	// Cross-engine agreement on the simulated timeline.
	base := rep.Engines[0]
	for _, run := range rep.Engines[1:] {
		if run.Stats.ParRecoveries > 0 {
			// The injected run re-executes regions; its timeline
			// legitimately includes recovery cycles.
			continue
		}
		if run.Cycles != base.Cycles {
			return nil, k.failf("DIVERGENCE: %s simulated %d cycles, %s %d", run.Name, run.Cycles, base.Name, base.Cycles)
		}
		if run.DataHash != base.DataHash {
			return nil, k.failf("DIVERGENCE: %s final data hash %#x, %s %#x", run.Name, run.DataHash, base.Name, base.DataHash)
		}
	}
	return rep, nil
}

func (r *Report) note(reason string) {
	for _, have := range r.Interesting {
		if have == reason {
			return
		}
	}
	r.Interesting = append(r.Interesting, reason)
}

// compareToNative asserts the DBM result is byte-identical to native
// execution: same output stream (the self-checksums) and same final
// data image.
func compareToNative(native *vm.Result, res *dbm.Result, dataHash uint64) error {
	if len(native.Output) != len(res.Output) {
		return fmt.Errorf("%d outputs vs %d native", len(res.Output), len(native.Output))
	}
	for i := range native.Output {
		if native.Output[i] != res.Output[i] {
			return fmt.Errorf("output word %d is %#x, native %#x (self-checksum mismatch)", i, res.Output[i], native.Output[i])
		}
	}
	if dataHash != native.DataHash {
		return fmt.Errorf("final data image differs from native")
	}
	return nil
}
