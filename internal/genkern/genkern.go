// Package genkern is a seeded, deterministic random kernel generator
// and differential-testing harness for the Janus pipeline. It emits
// guest executables through the same obj/asm builders the workload
// suite uses, sweeping the dependence-shape space the static analyser
// and the dependence profiler have to classify: constant- and
// runtime-bound DOALL loops, loop-carried dependences at varying
// distances, must-alias and may-alias pointer patterns, integer and FP
// reductions, nested loops, irregular induction, and syscall/libcall
// bodies. Every generated program ends in a self-checksumming epilogue
// that writes one checksum per mutated array to the output stream, so
// each program is its own output oracle.
//
// The generator records ground truth per emitted loop (keyed by the
// loop's header address, which the analyser rediscovers independently),
// and diff.go cross-checks that truth against the analyser's verdict,
// the profiler's observed dependences, and actual execution under all
// three region engines. Any disagreement is either a missed
// parallelisation (counted) or a soundness bug (fatal, with a one-line
// repro command naming the seed).
package genkern

import (
	"fmt"

	"janus/internal/asm"
	"janus/internal/guest"
	"janus/internal/obj"
	"janus/internal/workloads"
)

// rng is a splitmix64 stream: tiny, deterministic, and identical on
// every platform, so a seed names one kernel forever.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(choices ...int64) int64 { return choices[r.intn(len(choices))] }

// SegKind names one generated loop shape.
type SegKind uint8

const (
	// KindDoallConst: dst[i] = src[i]*3+7 over constant bases (type A).
	KindDoallConst SegKind = iota
	// KindDoallRuntime: bases loaded from a pointer table; independent,
	// but only a runtime bounds check can prove it (type C, checked).
	KindDoallRuntime
	// KindCarried: a[i+d] += a[i], a true flow dependence at constant
	// distance d over a constant base (type B).
	KindCarried
	// KindMustAlias: two pointer-table bases that actually alias at
	// byte distance 8*d — a carried dependence static analysis cannot
	// see; only the dependence profiler can (type C demoted to D).
	KindMustAlias
	// KindMayAlias: the same two-pointer shape but genuinely disjoint
	// buffers: independent, check-guarded (type C confirmed).
	KindMayAlias
	// KindIntReduction: integer sum into a register, written via
	// syscall after the loop (type A with a recognised reduction).
	KindIntReduction
	// KindFPReduction: float accumulation (type A; stealing-ineligible).
	KindFPReduction
	// KindNested: row-disjoint two-level nest b[r*C+c] += a[c].
	KindNested
	// KindIrregular: geometric induction i *= 2 (incompatible).
	KindIrregular
	// KindSyscall: IO each iteration (incompatible).
	KindSyscall
	// KindLibcall: DOALL body calling pow through the PLT (type C via
	// speculation).
	KindLibcall
	// KindIndexChase: data-dependent addressing through an index array;
	// statically unanalysable, so the truth depends on whether the
	// generated indices collide (type C or D, speculation-only).
	KindIndexChase
	// KindChecksum: the self-checksum epilogue loops (type A).
	KindChecksum

	numSegKinds = int(KindChecksum) // checksum is never drawn randomly
)

func (k SegKind) String() string {
	switch k {
	case KindDoallConst:
		return "doall-const"
	case KindDoallRuntime:
		return "doall-runtime"
	case KindCarried:
		return "carried"
	case KindMustAlias:
		return "must-alias"
	case KindMayAlias:
		return "may-alias"
	case KindIntReduction:
		return "int-reduction"
	case KindFPReduction:
		return "fp-reduction"
	case KindNested:
		return "nested"
	case KindIrregular:
		return "irregular"
	case KindSyscall:
		return "syscall"
	case KindLibcall:
		return "libcall"
	case KindIndexChase:
		return "index-chase"
	case KindChecksum:
		return "checksum"
	}
	return fmt.Sprintf("segkind(%d)", uint8(k))
}

// Seg is one generated loop segment's shape parameters. Train builds
// use N as-is; ref builds scale N by refScale, keeping the code layout
// (and therefore loop header addresses and IDs) identical.
type Seg struct {
	Kind SegKind
	// N is the train trip count (>= the selection profitability floor).
	N int64
	// Dist is the dependence distance for carried/must-alias shapes.
	Dist int64
	// Arrays is the pointer-table width for runtime-bound shapes.
	Arrays int
	// Inner is the inner trip count for nested shapes.
	Inner int64
	// Collide makes the index-chase indices alias across iterations.
	Collide bool
	// OuterHot puts the profitable trip count on the outer loop of a
	// nest (otherwise the inner loop is the hot one).
	OuterHot bool
}

// Shape is a full kernel blueprint, derived deterministically from the
// seed.
type Shape struct {
	Segs []Seg
}

// LoopTruth is the generator's ground truth for one emitted loop,
// keyed by the loop header address the analyser independently
// rediscovers.
type LoopTruth struct {
	Seg    int
	Kind   SegKind
	Header uint64
	// Carried: a genuine cross-iteration memory dependence exists and
	// manifests on every input the generator builds (train and ref
	// share the dependence structure by construction).
	Carried bool
	// Ambiguous: static analysis cannot fully resolve the addresses
	// (runtime pointer-table bases, data-dependent indices, libcalls),
	// so the loop's fate is decided by profiling/checks/speculation.
	Ambiguous bool
	// Incompatible: the analyser must reject the loop outright
	// (syscalls in the body, non-affine induction).
	Incompatible bool
}

// Kernel is one generated program: matched ref/train builds with
// identical code layout, plus the ground-truth table.
type Kernel struct {
	Seed  uint64
	Name  string
	Shape Shape
	// Ref is the evaluation build, Train the (smaller) profiling build.
	Ref, Train *obj.Executable
	Libs       []*obj.Library
	Truth      []LoopTruth

	byHeader map[uint64]*LoopTruth
	// seedDerived marks kernels whose shape is exactly DeriveShape(Seed),
	// so failure repros can name the seed instead of the genome hex.
	seedDerived bool
}

// TruthByHeader returns the ground truth for the loop whose header
// block starts at addr, or nil.
func (k *Kernel) TruthByHeader(addr uint64) *LoopTruth { return k.byHeader[addr] }

// refScale is the ref-input trip multiplier over train.
const refScale = 2

// minHotTrip keeps hot loops above the selector's profiled
// mean-iteration floor (analyzer.DefaultMinAvgIter) on train inputs.
const minHotTrip = 96

// DeriveShape expands a seed into a kernel blueprint: 1..4 segments
// with independently drawn shape parameters.
func DeriveShape(seed uint64) Shape {
	r := newRng(seed)
	n := 1 + r.intn(4)
	sh := Shape{Segs: make([]Seg, n)}
	for i := range sh.Segs {
		s := Seg{Kind: SegKind(r.intn(numSegKinds))}
		s.N = r.pick(minHotTrip, 128, 160, 224)
		s.Dist = r.pick(1, 2, 3, 5, 8)
		s.Arrays = 2 + r.intn(3)
		s.Collide = r.intn(2) == 1
		s.OuterHot = r.intn(2) == 1
		switch s.Kind {
		case KindNested:
			// One profitable level: either a hot outer loop over short
			// rows, or a short outer loop over hot rows.
			if s.OuterHot {
				s.Inner = r.pick(4, 8, 12)
			} else {
				s.Inner = s.N
				s.N = r.pick(4, 8, 12)
			}
		case KindIrregular:
			s.N = int64(1) << (8 + r.intn(5))
		case KindSyscall:
			s.N = 4 + int64(r.intn(8))
		}
		sh.Segs[i] = s
	}
	return sh
}

// Generate builds the kernel named by seed: ref and train executables
// with identical layout, the ground-truth table, and any libraries the
// program links against. It is exactly
// GenerateShape(DeriveShape(seed), seed) — the seed expands to a shape
// and then only names the input data.
func Generate(seed uint64) (*Kernel, error) {
	return GenerateShape(DeriveShape(seed), seed)
}

// GenerateShape builds the kernel described by shape. The structure
// (segment kinds, trip counts, distances, alias layouts) comes entirely
// from the shape vector; seed names only the generated input data, so
// the fuzzer can hold inputs fixed while mutating structure or vice
// versa. The shape must pass Validate (DecodeShape output always does).
func GenerateShape(shape Shape, seed uint64) (*Kernel, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	seedDerived := shapeEqual(shape, DeriveShape(seed))
	name := fmt.Sprintf("gen/s%d", seed)
	if !seedDerived {
		name = fmt.Sprintf("gen/x%s-s%d", shortShapeID(shape), seed)
	}
	ref, refTruth, libs, err := emit(name, shape, refScale, seed)
	if err != nil {
		return nil, fmt.Errorf("genkern: %s: ref build: %w", name, err)
	}
	train, trainTruth, _, err := emit(name, shape, 1, seed)
	if err != nil {
		return nil, fmt.Errorf("genkern: %s: train build: %w", name, err)
	}
	// The whole differential design rests on train and ref sharing one
	// code layout (loop IDs map across builds); verify it.
	if len(refTruth) != len(trainTruth) {
		return nil, fmt.Errorf("genkern: %s: layout skew: %d ref loops vs %d train", name, len(refTruth), len(trainTruth))
	}
	for i := range refTruth {
		if refTruth[i].Header != trainTruth[i].Header {
			return nil, fmt.Errorf("genkern: %s: loop %d header %#x (ref) vs %#x (train)", name, i, refTruth[i].Header, trainTruth[i].Header)
		}
	}
	k := &Kernel{
		Seed: seed, Name: name, Shape: shape,
		Ref: ref, Train: train, Libs: libs, Truth: refTruth,
		byHeader:    make(map[uint64]*LoopTruth, len(refTruth)),
		seedDerived: seedDerived,
	}
	for i := range k.Truth {
		k.byHeader[k.Truth[i].Header] = &k.Truth[i]
	}
	return k, nil
}

// shortShapeID is a short stable digest of the genome used in kernel
// names (full reproducibility comes from the hex genome in repros).
func shortShapeID(shape Shape) string {
	h := uint64(1469598103934665603)
	for _, b := range EncodeShape(shape) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return fmt.Sprintf("%08x", uint32(h^h>>32))
}

// emitter threads builder state through segment emitters.
type emitter struct {
	b     *asm.Builder
	f     *asm.FuncBuilder
	r     *rng
	seq   int
	seg   int
	truth []LoopTruth
	// sums lists the mutated arrays the epilogue must checksum.
	sums []chkSum
	lib  bool
}

type chkSum struct {
	sym string
	n   int64
}

func emit(name string, shape Shape, scale int64, seed uint64) (*obj.Executable, []LoopTruth, []*obj.Library, error) {
	b := asm.NewBuilder(fmt.Sprintf("%s-x%d", name, scale))
	e := &emitter{b: b, f: b.Func("main"), r: newRng(seed ^ 0xda7a5eed)}
	for i, s := range shape.Segs {
		e.seg = i
		switch s.Kind {
		case KindDoallConst:
			e.doallConst(s.N * scale)
		case KindDoallRuntime:
			e.doallRuntime(s.N*scale, s.Arrays)
		case KindCarried:
			e.carried(s.N*scale, s.Dist)
		case KindMustAlias:
			e.aliasPair(s.N*scale, s.Dist, true)
		case KindMayAlias:
			e.aliasPair(s.N*scale, s.Dist, false)
		case KindIntReduction:
			e.intReduction(s.N * scale)
		case KindFPReduction:
			e.fpReduction(s.N * scale)
		case KindNested:
			e.nested(s.N*scale, s.Inner)
		case KindIrregular:
			e.irregular(s.N * scale)
		case KindSyscall:
			e.syscallLoop(s.N)
		case KindLibcall:
			e.libcall(s.N * scale)
		case KindIndexChase:
			e.indexChase(s.N*scale, s.Collide)
		default:
			return nil, nil, nil, fmt.Errorf("unknown segment kind %v", s.Kind)
		}
	}
	e.epilogue()
	exe, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	exe = exe.Strip()
	var libs []*obj.Library
	if e.lib {
		libs = append(libs, workloads.MathLib())
	}
	return exe, e.truth, libs, nil
}

func (e *emitter) sym(prefix string) string {
	e.seq++
	return fmt.Sprintf("g%s_%d", prefix, e.seq)
}

// headerAddr is the address the next emitted instruction will occupy.
// main is the first function laid out, so item index maps directly to
// codeBase + index*InstSize; called right after Bind(loop) it yields
// the loop header address cfg.Build will rediscover.
func (e *emitter) headerAddr() uint64 {
	return obj.DefaultCodeBase + uint64(e.f.Len())*guest.InstSize
}

func (e *emitter) record(kind SegKind, carried, ambiguous, incompatible bool) {
	e.truth = append(e.truth, LoopTruth{
		Seg: e.seg, Kind: kind, Header: e.headerAddr(),
		Carried: carried, Ambiguous: ambiguous, Incompatible: incompatible,
	})
}

// counting emits the canonical for (iv = 0; iv < n; iv++) skeleton and
// records ground truth for the loop at its header.
func (e *emitter) counting(iv guest.Reg, n int64, kind SegKind, carried, ambiguous, incompatible bool, body func()) {
	f := e.f
	loop, done := f.NewLabel(), f.NewLabel()
	f.Movi(iv, 0)
	f.Bind(loop)
	e.record(kind, carried, ambiguous, incompatible)
	f.Cmpi(iv, n)
	f.J(guest.JGE, done)
	body()
	f.OpI(guest.ADDI, iv, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
}

// dataI64 seeds an integer array with rng-derived values so results
// feed the checksum and memory-hash oracles non-trivially.
func (e *emitter) dataI64(name string, n int64) {
	m := int64(e.r.next()%251 + 3)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)*m%1021 + 1
	}
	e.b.DataI64(name, vals)
}

func (e *emitter) dataF64(name string, n int64) {
	m := float64(e.r.next()%97+1) * 0.0625
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%911)*m + 0.5
	}
	e.b.DataF64(name, vals)
}

// doallConst: dst[i] = src[i]*3 + 7 over constant bases. Type A.
func (e *emitter) doallConst(n int64) {
	src, dst := e.sym("src"), e.sym("dst")
	e.dataI64(src, n)
	e.b.Data(dst, int(n*8))
	f := e.f
	f.MoviData(guest.R8, src, 0)
	f.MoviData(guest.R9, dst, 0)
	e.counting(guest.R1, n, KindDoallConst, false, false, false, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.OpI(guest.IMULI, guest.R3, 3)
		f.OpI(guest.ADDI, guest.R3, 7)
		f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
	})
	e.sums = append(e.sums, chkSum{dst, n})
}

// doallRuntime: nArrays bases loaded from a pointer table; the last is
// the destination. Independent, but provable only at runtime (type C
// with bounds checks).
func (e *emitter) doallRuntime(n int64, nArrays int) {
	if nArrays < 2 {
		nArrays = 2
	}
	bufs, ptrs := e.sym("bufs"), e.sym("ptrs")
	e.b.Data(bufs, int(n*8)*nArrays)
	e.b.Data(ptrs, 8*nArrays)
	f := e.f
	for i := 0; i < nArrays; i++ {
		f.MoviData(guest.R2, bufs, int64(i)*n*8)
		f.StData(ptrs, int64(i)*8, guest.R2)
	}
	regs := []guest.Reg{guest.R8, guest.R9, guest.R10, guest.R11}
	if nArrays > len(regs) {
		nArrays = len(regs)
	}
	for i := 0; i < nArrays; i++ {
		f.LdData(regs[i], ptrs, int64(i)*8)
	}
	e.counting(guest.R1, n, KindDoallRuntime, false, true, false, func() {
		f.Movi(guest.R3, 1)
		for i := 0; i < nArrays-1; i++ {
			f.Ld(guest.R4, guest.Mem{Base: regs[i], Index: guest.R1, Scale: 8})
			f.Op(guest.ADD, guest.R3, guest.R4)
		}
		f.St(guest.Mem{Base: regs[nArrays-1], Index: guest.R1, Scale: 8}, guest.R3)
	})
	e.sums = append(e.sums, chkSum{bufs, n * int64(nArrays)})
}

// carried: a[i+d] = a[i+d] + a[i], a true flow dependence at constant
// distance d the analyser must prove. Type B.
func (e *emitter) carried(n, d int64) {
	a := e.sym("car")
	e.dataI64(a, n+d)
	f := e.f
	f.MoviData(guest.R8, a, 0)
	e.counting(guest.R1, n, KindCarried, true, false, false, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Ld(guest.R4, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8 * d})
		f.Op(guest.ADD, guest.R4, guest.R3)
		f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8, Disp: 8 * d}, guest.R4)
	})
	e.sums = append(e.sums, chkSum{a, n + d})
}

// aliasPair: read through one pointer-table base, write through
// another. With must=true the second pointer is the first plus 8*d
// bytes — a hidden carried dependence only profiling can observe; with
// must=false the buffers are disjoint and the loop is independent.
// Both are statically ambiguous (type C; must-alias demotes to D).
func (e *emitter) aliasPair(n, d int64, must bool) {
	ptrs := e.sym("aptr")
	bufA := e.sym("abuf")
	e.dataI64(bufA, n+d)
	var bufB string
	if !must {
		bufB = e.sym("bbuf")
		e.b.Data(bufB, int(n*8))
	}
	e.b.Data(ptrs, 16)
	f := e.f
	f.MoviData(guest.R2, bufA, 0)
	f.StData(ptrs, 0, guest.R2)
	if must {
		f.MoviData(guest.R2, bufA, 8*d)
	} else {
		f.MoviData(guest.R2, bufB, 0)
	}
	f.StData(ptrs, 8, guest.R2)
	f.LdData(guest.R8, ptrs, 0)
	f.LdData(guest.R9, ptrs, 8)
	e.counting(guest.R1, n, KindMustAlias, must, true, false, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.OpI(guest.IMULI, guest.R3, 5)
		f.OpI(guest.ADDI, guest.R3, 1)
		f.St(guest.Mem{Base: guest.R9, Index: guest.R1, Scale: 8}, guest.R3)
	})
	if must {
		e.truth[len(e.truth)-1].Kind = KindMustAlias
		e.sums = append(e.sums, chkSum{bufA, n + d})
	} else {
		e.truth[len(e.truth)-1].Kind = KindMayAlias
		e.sums = append(e.sums, chkSum{bufB, n})
	}
}

// intReduction: sum a[i] into a register, write the total out. Type A
// with a recognised integer reduction (work-stealing eligible).
func (e *emitter) intReduction(n int64) {
	a := e.sym("ired")
	e.dataI64(a, n)
	f := e.f
	f.MoviData(guest.R8, a, 0)
	f.Movi(guest.R2, 0)
	e.counting(guest.R1, n, KindIntReduction, false, false, false, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Op(guest.ADD, guest.R2, guest.R3)
	})
	f.Movi(guest.R0, guest.SysWrite)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
}

// fpReduction: float accumulation (type A; excluded from stealing).
func (e *emitter) fpReduction(n int64) {
	a := e.sym("fred")
	e.dataF64(a, n)
	f := e.f
	f.MoviData(guest.R8, a, 0)
	f.Movi(guest.R2, 0)
	e.counting(guest.R1, n, KindFPReduction, false, false, false, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Op(guest.FADD, guest.R2, guest.R3)
	})
	f.Movi(guest.R0, guest.SysWriteF)
	f.Mov(guest.R1, guest.R2)
	f.Syscall()
}

// nested: b[r*inner+c] += a[c]. Rows are disjoint, so both levels are
// truly independent; the flat-index address defeats exact static
// grouping at the outer level (ambiguous there).
func (e *emitter) nested(outer, inner int64) {
	a, bb := e.sym("na"), e.sym("nb")
	e.dataI64(a, inner)
	e.b.Data(bb, int(outer*inner*8))
	f := e.f
	f.MoviData(guest.R8, a, 0)
	f.MoviData(guest.R9, bb, 0)
	e.counting(guest.R6, outer, KindNested, false, true, false, func() {
		f.Mov(guest.R7, guest.R6)
		f.OpI(guest.IMULI, guest.R7, inner)
		f.Lea(guest.R5, guest.Mem{Base: guest.R9, Index: guest.R7, Scale: 8})
		e.counting(guest.R1, inner, KindNested, false, true, false, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.Ld(guest.R4, guest.Mem{Base: guest.R5, Index: guest.R1, Scale: 8})
			f.Op(guest.ADD, guest.R4, guest.R3)
			f.St(guest.Mem{Base: guest.R5, Index: guest.R1, Scale: 8}, guest.R4)
		})
	})
	e.sums = append(e.sums, chkSum{bb, outer * inner})
}

// irregular: geometric induction i *= 2 — no affine closed form, so
// the analyser must reject it (incompatible).
func (e *emitter) irregular(n int64) {
	a := e.sym("irr")
	e.b.Data(a, int((n+1)*8))
	f := e.f
	loop, done := f.NewLabel(), f.NewLabel()
	f.MoviData(guest.R8, a, 0)
	f.Movi(guest.R1, 1)
	f.Bind(loop)
	e.record(KindIrregular, false, false, true)
	f.Cmpi(guest.R1, n)
	f.J(guest.JGE, done)
	f.St(guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8}, guest.R1)
	f.OpI(guest.SHLI, guest.R1, 1)
	f.J(guest.JMP, loop)
	f.Bind(done)
	e.sums = append(e.sums, chkSum{a, n + 1})
}

// syscallLoop: IO each iteration — incompatible, and an ordering
// oracle: parallelising it would scramble the output stream.
func (e *emitter) syscallLoop(n int64) {
	f := e.f
	e.counting(guest.R6, n, KindSyscall, false, false, true, func() {
		f.Movi(guest.R0, guest.SysWrite)
		f.Mov(guest.R1, guest.R6)
		f.Syscall()
	})
}

// libcall: DOALL body calling pow through the PLT; speculation guards
// each call (type C).
func (e *emitter) libcall(n int64) {
	e.lib = true
	e.b.Import("pow")
	src, dst := e.sym("lsrc"), e.sym("ldst")
	e.dataF64(src, n)
	e.b.Data(dst, int(n*8))
	f := e.f
	f.MoviData(guest.R8, src, 0)
	f.MoviData(guest.R9, dst, 0)
	e.counting(guest.R6, n, KindLibcall, false, true, false, func() {
		f.Ld(guest.R1, guest.Mem{Base: guest.R8, Index: guest.R6, Scale: 8})
		f.MoviF(guest.R2, 1.5)
		f.Call("pow")
		f.St(guest.Mem{Base: guest.R9, Index: guest.R6, Scale: 8}, guest.R0)
	})
	e.sums = append(e.sums, chkSum{dst, n})
}

// indexChase: data[idx[i]] += 3 — data-dependent addressing the
// analyser cannot canonicalise. With collide, odd iterations alias the
// previous iteration's slot (a real dependence only profiling sees);
// without, idx is the identity and the loop is independent.
func (e *emitter) indexChase(n int64, collide bool) {
	idx, data := e.sym("idx"), e.sym("chase")
	vals := make([]int64, n)
	for i := range vals {
		if collide && i%2 == 1 {
			vals[i] = int64(i - 1)
		} else {
			vals[i] = int64(i)
		}
	}
	e.b.DataI64(idx, vals)
	e.b.Data(data, int(n*8))
	f := e.f
	f.MoviData(guest.R8, idx, 0)
	f.MoviData(guest.R9, data, 0)
	e.counting(guest.R1, n, KindIndexChase, collide, true, false, func() {
		f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
		f.Lea(guest.R4, guest.Mem{Base: guest.R9, Index: guest.R3, Scale: 8})
		f.Ld(guest.R5, guest.Mem{Base: guest.R4, Index: guest.RegNone, Scale: 1})
		f.OpI(guest.ADDI, guest.R5, 3)
		f.St(guest.Mem{Base: guest.R4, Index: guest.RegNone, Scale: 1}, guest.R5)
	})
	e.sums = append(e.sums, chkSum{data, n})
}

// epilogue emits one checksum loop per mutated array (raw 64-bit adds,
// deterministic for float payloads too) followed by exit. Every
// checksum is written to the output stream, making the program its own
// oracle under output comparison.
func (e *emitter) epilogue() {
	f := e.f
	for _, c := range e.sums {
		f.MoviData(guest.R8, c.sym, 0)
		f.Movi(guest.R2, 0)
		e.counting(guest.R1, c.n, KindChecksum, false, false, false, func() {
			f.Ld(guest.R3, guest.Mem{Base: guest.R8, Index: guest.R1, Scale: 8})
			f.Op(guest.ADD, guest.R2, guest.R3)
		})
		f.Movi(guest.R0, guest.SysWrite)
		f.Mov(guest.R1, guest.R2)
		f.Syscall()
	}
	f.Movi(guest.R0, guest.SysExit)
	f.Movi(guest.R1, 0)
	f.Syscall()
}
