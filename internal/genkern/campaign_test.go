package genkern

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// campaignFiles snapshots a campaign corpus directory: sorted file
// names mapped to contents.
func campaignFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return out
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

func sameFiles(t *testing.T, label string, a, b map[string]string) {
	t.Helper()
	var an, bn []string
	for n := range a {
		an = append(an, n)
	}
	for n := range b {
		bn = append(bn, n)
	}
	sort.Strings(an)
	sort.Strings(bn)
	if strings.Join(an, ",") != strings.Join(bn, ",") {
		t.Fatalf("%s: file sets differ:\n a: %v\n b: %v", label, an, bn)
	}
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("%s: file %s differs:\n a: %q\n b: %q", label, n, a[n], b[n])
		}
	}
}

// TestCampaignDeterministicAndResumable pins the two campaign
// contracts at once: a single 18-iteration run and a 9+9 split run
// (stop, then resume from the persisted corpus and state) produce
// byte-identical corpus directories and the same coverage.
func TestCampaignDeterministicAndResumable(t *testing.T) {
	const seed = 5
	oneShot := t.TempDir()
	split := t.TempDir()

	full, err := RunCampaign(CampaignConfig{Dir: oneShot, Seed: seed, MaxIters: 18})
	if err != nil {
		t.Fatal(err)
	}
	if full.Resumed || full.StartIter != 0 {
		t.Fatalf("fresh campaign reported resumed=%v start-iter=%d", full.Resumed, full.StartIter)
	}
	if full.Iters != 18 {
		t.Fatalf("campaign ran %d iters, want 18", full.Iters)
	}
	if full.Corpus == 0 || full.Cells == 0 || full.NewCells == 0 {
		t.Fatalf("18 fresh iterations retained nothing: %s", full)
	}

	first, err := RunCampaign(CampaignConfig{Dir: split, Seed: seed, MaxIters: 9})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCampaign(CampaignConfig{Dir: split, Seed: seed, MaxIters: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Resumed || second.StartIter != 9 {
		t.Fatalf("second half did not resume: resumed=%v start-iter=%d", second.Resumed, second.StartIter)
	}
	if first.Iters+second.Iters != full.Iters {
		t.Fatalf("split run iterations %d+%d != %d", first.Iters, second.Iters, full.Iters)
	}
	if second.Corpus != full.Corpus || second.Cells != full.Cells {
		t.Fatalf("split run ended at corpus=%d cells=%d, one-shot at corpus=%d cells=%d",
			second.Corpus, second.Cells, full.Corpus, full.Cells)
	}
	if first.NewCells+second.NewCells != full.NewCells {
		t.Fatalf("split new-cells %d+%d != %d", first.NewCells, second.NewCells, full.NewCells)
	}
	sameFiles(t, "corpus", campaignFiles(t, filepath.Join(oneShot, "corpus")), campaignFiles(t, filepath.Join(split, "corpus")))

	// The stats line is machine-parsable in the documented format.
	line := second.String()
	for _, field := range []string{"campaign: iters=", "start-iter=", "corpus=", "cells=", "new-cells=", "divergences=", "elapsed=", "resumed=true"} {
		if !strings.Contains(line, field) {
			t.Errorf("stats line %q missing %q", line, field)
		}
	}

	// A dir remembers its seed: resuming under a different one must be
	// refused rather than silently forking the decision stream.
	if _, err := RunCampaign(CampaignConfig{Dir: split, Seed: seed + 1, MaxIters: 1}); err == nil {
		t.Fatal("resuming with a different campaign seed did not error")
	}
}

// TestCampaignSurvivesTornAndForeignFiles pins crash-consistency at the
// file level: unfinished temp files (a kill -9 mid-publication), foreign
// junk and truncated entries in the corpus directory are skipped — the
// campaign resumes cleanly and never trips over them.
func TestCampaignSurvivesTornAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	const seed = 5
	if _, err := RunCampaign(CampaignConfig{Dir: dir, Seed: seed, MaxIters: 6}); err != nil {
		t.Fatal(err)
	}
	corpusDir := filepath.Join(dir, "corpus")
	junk := map[string]string{
		".tmp-12345":      "half-written publication",
		"foreign.entry":   "not a campaign entry at all",
		"truncated.entry": entryHeader + "\nshape zz",
		"notes.txt":       "a human left this here",
	}
	for name, body := range junk {
		if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	before := campaignFiles(t, corpusDir)
	st, err := RunCampaign(CampaignConfig{Dir: dir, Seed: seed, MaxIters: 6})
	if err != nil {
		t.Fatalf("campaign tripped over torn/foreign files: %v", err)
	}
	if !st.Resumed || st.StartIter != 6 {
		t.Fatalf("resume lost the persisted state: resumed=%v start-iter=%d", st.Resumed, st.StartIter)
	}
	// The junk is untouched (the campaign owns only what it published)
	// and every real entry it published before is still byte-identical.
	after := campaignFiles(t, corpusDir)
	for name, body := range before {
		got, ok := after[name]
		if !ok {
			t.Errorf("resume deleted %s", name)
		} else if got != body {
			t.Errorf("resume rewrote %s", name)
		}
	}

	// truncated.entry decodes as garbage and must not have polluted the
	// corpus: a third run still agrees with a clean split replay.
	clean := t.TempDir()
	if _, err := RunCampaign(CampaignConfig{Dir: clean, Seed: seed, MaxIters: 12}); err != nil {
		t.Fatal(err)
	}
	cleanFiles := campaignFiles(t, filepath.Join(clean, "corpus"))
	for name, body := range cleanFiles {
		if after[name] != body {
			t.Errorf("entry %s diverged from the clean replay", name)
		}
	}
}

// TestCampaignEntriesRoundTrip pins the corpus entry codec.
func TestCampaignEntriesRoundTrip(t *testing.T) {
	e := corpusEntry{
		shape: validShapes()[15],
		seed:  12345,
		iter:  42,
		cells: []Cell{
			{Kind: KindCarried, DistBucket: 2, Alias: aliasNone, Verdict: 2, Engine: engineStealing},
			{Kind: KindIndexChase, DistBucket: 0, Alias: aliasCollide, Verdict: 3, Engine: engineNone, Recovered: true},
		},
	}
	got, err := decodeEntry(encodeEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if !shapeEqual(got.shape, e.shape) || got.seed != e.seed || got.iter != e.iter || len(got.cells) != len(e.cells) {
		t.Fatalf("entry round trip lost fields: %+v vs %+v", got, e)
	}
	for i := range e.cells {
		if got.cells[i] != e.cells[i] {
			t.Fatalf("cell %d round trip: %+v vs %+v", i, got.cells[i], e.cells[i])
		}
	}
	if _, err := decodeEntry([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded as an entry")
	}
}

// TestCampaignRejectsUnboundedConfig pins the guard rails.
func TestCampaignRejectsUnboundedConfig(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("campaign without a time or iteration bound did not error")
	}
	if _, err := RunCampaign(CampaignConfig{MaxIters: 1}); err == nil {
		t.Fatal("campaign without a directory did not error")
	}
}
