package genkern

import (
	"os"
	"strings"
	"testing"

	"janus/internal/workloads"
)

// baselineNames snapshots the workload registry at process start —
// before any test can graduate generated kernels — so these guards are
// immune to -shuffle ordering.
var baselineNames = workloads.Names()

// TestDefaultSuiteUnchangedByGenerator is the golden-fixture guard:
// the generator's presence (this package being linked and its tests
// running) must not change the default benchmark suite, and the
// golden janus-bench output must contain no generated rows. Generated
// kernels appear only behind janus-bench -gen-corpus / an explicit
// Register call.
func TestDefaultSuiteUnchangedByGenerator(t *testing.T) {
	if len(baselineNames) != 25 {
		t.Fatalf("default registry has %d benchmarks, want 25: %v", len(baselineNames), baselineNames)
	}
	for _, name := range baselineNames {
		if strings.HasPrefix(name, "gen/") {
			t.Fatalf("generated benchmark %q present in the default registry", name)
		}
	}
	gold, err := os.ReadFile("../harness/testdata/janus-bench.golden")
	if err != nil {
		t.Fatalf("golden fixture: %v", err)
	}
	if strings.Contains(string(gold), "gen/") {
		t.Fatal("golden janus-bench fixture contains generated-corpus rows")
	}
}

// TestCampaignLeavesRegistryUntouched extends the registry guard to
// the campaign path: campaigning retains shapes in its corpus directory
// and graduates fixtures as files — it must never register kernels into
// the workload suite, so the default janus-bench output stays pinned to
// the golden fixture with campaigning off (or on).
func TestCampaignLeavesRegistryUntouched(t *testing.T) {
	before := workloads.Names()
	if _, err := RunCampaign(CampaignConfig{Dir: t.TempDir(), Seed: 3, MaxIters: 8}); err != nil {
		t.Fatal(err)
	}
	after := workloads.Names()
	if len(before) != len(after) {
		t.Fatalf("campaign changed the workload registry: %d -> %d entries", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("campaign changed the workload registry: %q -> %q", before[i], after[i])
		}
	}
}

// TestScreenAndGraduate exercises the -gen-corpus path end to end:
// screening finds interesting kernels, graduation registers them into
// the workload suite, and the registered builds hand back the
// generated executables.
func TestScreenAndGraduate(t *testing.T) {
	const n = 24
	entries, err := Graduate(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no kernel in %d seeds was interesting enough to graduate", n)
	}
	genNames := workloads.GeneratedNames()
	for _, e := range entries {
		found := false
		for _, name := range genNames {
			if name == e.Name {
				found = true
			}
		}
		if !found {
			t.Errorf("graduated %s missing from workloads.GeneratedNames()", e.Name)
		}
		bm, ok := workloads.ByName(e.Name)
		if !ok {
			t.Fatalf("graduated %s not resolvable via ByName", e.Name)
		}
		if bm.Parallelisable != e.Parallelisable {
			t.Errorf("%s: parallelisable flag %v, want %v", e.Name, bm.Parallelisable, e.Parallelisable)
		}
		exe, _, err := workloads.Build(e.Name, workloads.Ref, workloads.O2)
		if err != nil {
			t.Fatalf("build %s: %v", e.Name, err)
		}
		if exe != e.kern.Ref {
			t.Errorf("%s: Build(Ref) did not return the generated ref executable", e.Name)
		}
		trainExe, _, err := workloads.Build(e.Name, workloads.Train, workloads.O2)
		if err != nil {
			t.Fatalf("build %s train: %v", e.Name, err)
		}
		if trainExe != e.kern.Train {
			t.Errorf("%s: Build(Train) did not return the generated train executable", e.Name)
		}
	}
	// Names() lists the static registry first, then graduations.
	all := workloads.Names()
	if len(all) < len(baselineNames)+len(entries) {
		t.Errorf("Names() has %d entries, want at least %d", len(all), len(baselineNames)+len(entries))
	}
	// The render summary names every graduated kernel and the screen
	// count.
	out := RenderCorpus(entries, n)
	if !strings.Contains(out, "24 seeds screened") {
		t.Errorf("corpus summary missing screen count:\n%s", out)
	}
	for _, e := range entries {
		if !strings.Contains(out, e.Name) {
			t.Errorf("corpus summary missing %s:\n%s", e.Name, out)
		}
	}
	// Re-registration must be rejected, not silently duplicated.
	if err := entries[0].Register(); err == nil {
		t.Error("duplicate graduation of the same kernel did not error")
	}
	// The parallelisable set must include graduated parallel kernels.
	if func() bool {
		for _, e := range entries {
			if e.Parallelisable {
				return true
			}
		}
		return false
	}() {
		par := workloads.ParallelisableNames()
		found := false
		for _, name := range par {
			if strings.HasPrefix(name, "gen/") {
				found = true
			}
		}
		if !found {
			t.Error("no graduated kernel in ParallelisableNames() despite parallelisable entries")
		}
	}
}
