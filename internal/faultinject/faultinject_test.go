package faultinject

import (
	"sync"
	"testing"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec string
		want Plan
		err  bool
	}{
		{spec: "scan-defeat", want: Plan{Point: ScanDefeat, Every: 1}},
		{spec: "worker-panic", want: Plan{Point: WorkerPanic, Every: 1}},
		{spec: "stall@3", want: Plan{Point: Stall, Every: 3}},
		{spec: "budget@2#7", want: Plan{Point: BudgetExhaust, Every: 2, Seed: 7}},
		{spec: "budget#9", want: Plan{Point: BudgetExhaust, Every: 1, Seed: 9}},
		{spec: "handler-panic", want: Plan{Point: HandlerPanic, Every: 1}},
		{spec: "queue-stall@2", want: Plan{Point: QueueStall, Every: 2}},
		{spec: "slow-worker@3#1", want: Plan{Point: SlowWorker, Every: 3, Seed: 1}},
		{spec: "nonsense", err: true},
		{spec: "stall@0", err: true},
		{spec: "stall@x", err: true},
		{spec: "stall#x", err: true},
		{spec: "", err: true},
	}
	for _, c := range cases {
		got, err := ParsePlan(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParsePlan(%q): want error, got %+v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.spec, err)
			continue
		}
		if *got != c.want {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.spec, *got, c.want)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	for _, spec := range []string{"scan-defeat", "worker-panic@4", "stall@2#5", "budget#3", "handler-panic@2", "queue-stall#4", "slow-worker"} {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	in.Arm() // must not panic
	if in.Fire(ScanDefeat) {
		t.Fatal("nil injector fired")
	}
	if NewInjector(nil) != nil {
		t.Fatal("NewInjector(nil) != nil")
	}
}

func TestFireOncePerArmedRegion(t *testing.T) {
	in := NewInjector(&Plan{Point: WorkerPanic, Every: 1})
	in.Arm()
	if in.Fire(ScanDefeat) {
		t.Fatal("fired for the wrong point")
	}
	if !in.Fire(WorkerPanic) {
		t.Fatal("armed region did not fire")
	}
	if in.Fire(WorkerPanic) {
		t.Fatal("fired twice in one region")
	}
	in.Arm()
	if !in.Fire(WorkerPanic) {
		t.Fatal("re-armed region did not fire")
	}
}

func TestEveryStrideIsDeterministic(t *testing.T) {
	count := func(seed uint64) (fired []int) {
		in := NewInjector(&Plan{Point: Stall, Every: 3, Seed: seed})
		for i := 0; i < 9; i++ {
			in.Arm()
			if in.Fire(Stall) {
				fired = append(fired, i)
			}
		}
		return
	}
	a, b := count(42), count(42)
	if len(a) != 3 {
		t.Fatalf("every=3 over 9 regions fired %d times, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	// An unarmed region must not fire even if the previous one never
	// claimed its arm.
	in := NewInjector(&Plan{Point: Stall, Every: 2})
	in.Arm()
	armedFirst := in.Fire(Stall) // consume or not depending on offset
	in.Arm()
	armedSecond := in.Fire(Stall)
	if armedFirst == armedSecond {
		t.Fatalf("every=2: exactly one of two consecutive regions must fire (got %v, %v)", armedFirst, armedSecond)
	}
}

func TestFireConcurrent(t *testing.T) {
	in := NewInjector(&Plan{Point: BudgetExhaust, Every: 1})
	in.Arm()
	var wg sync.WaitGroup
	var fired atomic32
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if in.Fire(BudgetExhaust) {
				fired.add(1)
			}
		}()
	}
	wg.Wait()
	if got := fired.load(); got != 1 {
		t.Fatalf("%d workers fired, want exactly 1", got)
	}
}

type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
