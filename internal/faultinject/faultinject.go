// Package faultinject provides seeded, deterministic fault injection
// for the speculative region engines. A Plan names one injection point
// and how often it fires; an Injector carries the per-run state that
// decides — deterministically, from the region counter and seed —
// which speculative regions are armed. The package is compiled in
// always: with no plan configured every hook is a nil-receiver method
// call that returns immediately, so the production fast path pays
// nothing.
//
// Spec grammar (the janus-bench -inject flag):
//
//	point[@every][#seed]
//
// where point is one of the region points scan-defeat, worker-panic,
// stall, budget, or the janusd service points handler-panic,
// queue-stall, slow-worker; @every arms one region (or service
// request) in every `every` (default 1: every one); #seed offsets
// which one in each stride fires (default 0).
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Point names one injection site inside the speculative engines.
type Point int

const (
	// ScanDefeat forces a mid-region eligibility violation: the region
	// behaves as if a translated block escaped the statically scanned
	// loop body.
	ScanDefeat Point = iota + 1
	// WorkerPanic forces a panic inside one region worker goroutine,
	// exercising panic containment.
	WorkerPanic
	// Stall forces one worker to report no forward progress, as a stuck
	// or livelocked region would.
	Stall
	// BudgetExhaust forces the region's shared step budget to zero, so
	// every worker trips the budget backstop.
	BudgetExhaust

	// The remaining points are service-level: they fire inside janusd's
	// request lifecycle rather than inside the speculative engines, so
	// the daemon's robustness machinery (panic containment, deadlines,
	// load shedding, drain) is testable deterministically. Region
	// engines never fire them and janusd never fires the region points,
	// so one Plan grammar serves both layers without ambiguity.

	// HandlerPanic forces a panic inside an armed job's handler,
	// exercising the daemon's per-job panic containment.
	HandlerPanic
	// QueueStall delays an armed job while it is still queued, as a
	// wedged dispatch path would, exercising queue-deadline and
	// load-shedding behaviour.
	QueueStall
	// SlowWorker delays an armed job mid-execution, exercising
	// per-request deadlines and drain timeouts.
	SlowWorker
)

var pointNames = map[Point]string{
	ScanDefeat:    "scan-defeat",
	WorkerPanic:   "worker-panic",
	Stall:         "stall",
	BudgetExhaust: "budget",
	HandlerPanic:  "handler-panic",
	QueueStall:    "queue-stall",
	SlowWorker:    "slow-worker",
}

func (p Point) String() string {
	if s, ok := pointNames[p]; ok {
		return s
	}
	return fmt.Sprintf("faultinject.Point(%d)", int(p))
}

// Plan is an immutable injection recipe, shared by every Injector of a
// run.
type Plan struct {
	Point Point
	// Every arms one region in every Every speculative regions
	// (minimum and default 1).
	Every uint64
	// Seed offsets which region within each stride is armed.
	Seed uint64
}

// ParsePlan parses the spec grammar point[@every][#seed].
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{Every: 1}
	rest := spec
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		seed, err := strconv.ParseUint(rest[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad seed in %q: %v", spec, err)
		}
		p.Seed = seed
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		every, err := strconv.ParseUint(rest[i+1:], 10, 64)
		if err != nil || every == 0 {
			return nil, fmt.Errorf("faultinject: bad stride in %q", spec)
		}
		p.Every = every
		rest = rest[:i]
	}
	for pt, name := range pointNames {
		if rest == name {
			p.Point = pt
			return p, nil
		}
	}
	return nil, fmt.Errorf("faultinject: unknown injection point %q (want scan-defeat, worker-panic, stall, budget, handler-panic, queue-stall, or slow-worker)", rest)
}

// String renders the plan back in spec grammar.
func (p *Plan) String() string {
	s := p.Point.String()
	if p.Every > 1 {
		s += "@" + strconv.FormatUint(p.Every, 10)
	}
	if p.Seed != 0 {
		s += "#" + strconv.FormatUint(p.Seed, 10)
	}
	return s
}

// Injector decides which speculative regions a plan fires in. One
// Injector belongs to one Executor; Arm is called on the orchestrating
// goroutine before each speculative region, Fire from any region
// worker. A nil *Injector is valid and never fires.
type Injector struct {
	plan *Plan
	// regions counts Arm calls; orchestrating goroutine only.
	regions uint64
	// offset selects which region within each Every-stride is armed,
	// derived from the seed so different seeds hit different regions.
	offset uint64
	// armed is 1 while the current region should fire; Fire claims it
	// with a CAS so exactly one worker fires per armed region.
	armed atomic.Uint32
}

// NewInjector returns an injector for plan, or nil if plan is nil.
func NewInjector(plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	every := plan.Every
	if every == 0 {
		every = 1
	}
	return &Injector{plan: plan, offset: splitmix64(plan.Seed) % every}
}

// Arm marks the start of a speculative region and decides
// deterministically whether the plan fires in it. Call only from the
// orchestrating goroutine, never concurrently with Fire.
func (in *Injector) Arm() {
	if in == nil {
		return
	}
	n := in.regions
	in.regions++
	every := in.plan.Every
	if every == 0 {
		every = 1
	}
	if n%every == in.offset {
		in.armed.Store(1)
	} else {
		in.armed.Store(0)
	}
}

// Fire reports whether injection point p fires here: true exactly once
// per armed region, for the plan's own point only. Safe from any
// goroutine.
func (in *Injector) Fire(p Point) bool {
	if in == nil || in.plan.Point != p {
		return false
	}
	return in.armed.CompareAndSwap(1, 0)
}

// splitmix64 is the SplitMix64 finalizer, here to decorrelate seed
// from stride offset.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
