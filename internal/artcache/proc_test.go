package artcache

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"testing"
)

// procHammer is the shared workload of the two-process test: both
// processes churn the same keyspace with Put/Get, with a bound small
// enough that eviction runs concurrently in both. The invariant under
// attack: a hit always carries exactly the payload its key demands,
// whichever process published or evicted it.
func procHammer(c *Cache, rounds int) error {
	const keys = 10
	for r := 0; r < rounds; r++ {
		for i := 0; i < keys; i++ {
			k := testKey(i)
			want := payloadFor(k)
			if (r+i)%2 == 0 {
				if err := c.Put(k, want); err != nil {
					return err
				}
			}
			if got, ok := c.Get(k); ok && !bytes.Equal(got, want) {
				return fmt.Errorf("round %d key %d: corrupt read (%d bytes)", r, i, len(got))
			}
		}
	}
	if st := c.Stats(); st.BadEntries != 0 {
		return fmt.Errorf("%d bad entries under two-process sharing", st.BadEntries)
	}
	return nil
}

const procDirEnv = "ARTCACHE_TEST_PROC_DIR"

// TestProcessSharingHelper is the child side of
// TestTwoProcessesShareOneDir; it only runs when re-executed with the
// environment variable set.
func TestProcessSharingHelper(t *testing.T) {
	dir := os.Getenv(procDirEnv)
	if dir == "" {
		t.Skip("helper process entry point")
	}
	c, err := Open(dir, Options{MaxBytes: 6 * int64(headerSize+len(payloadFor(testKey(0))))})
	if err != nil {
		t.Fatal(err)
	}
	if err := procHammer(c, 200); err != nil {
		t.Fatal(err)
	}
}

// TestTwoProcessesShareOneDir re-executes the test binary as a second
// process against the same cache directory while this process runs the
// identical workload: the N-replicas-one-cache-directory deployment in
// miniature. Atomic rename publication is what makes this safe; any
// torn or foreign read fails either side.
func TestTwoProcessesShareOneDir(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestProcessSharingHelper$", "-test.v")
	cmd.Env = append(os.Environ(), procDirEnv+"="+dir)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, Options{MaxBytes: 6 * int64(headerSize+len(payloadFor(testKey(0))))})
	if err != nil {
		t.Fatal(err)
	}
	hammerErr := procHammer(c, 200)
	waitErr := cmd.Wait()
	if hammerErr != nil {
		t.Errorf("parent: %v", hammerErr)
	}
	if waitErr != nil {
		t.Errorf("child process failed: %v\n%s", waitErr, out.String())
	}
}
