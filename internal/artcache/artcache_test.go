package artcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, o Options) *Cache {
	t.Helper()
	c, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testKey(i int) Key {
	return Key{Kind: "test-v1", Binary: fmt.Sprintf("bin%d", i), Input: "train", Config: "threads=8"}
}

// payloadFor derives a deterministic payload from a key, so any read
// can be verified against what its writer must have stored.
func payloadFor(k Key) []byte {
	return bytes.Repeat([]byte(k.Binary+"|"+k.Input+"|"+k.Config+"\n"), 8)
}

func TestPutGetRoundTrip(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(k, payloadFor(k)); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, payloadFor(k)) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BadEntries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDistinctKeyFieldsDistinctEntries(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	base := Key{Kind: "k-v1", Binary: "b", Input: "i", Config: "c"}
	variants := []Key{
		base,
		{Kind: "k-v2", Binary: "b", Input: "i", Config: "c"},
		{Kind: "k-v1", Binary: "B", Input: "i", Config: "c"},
		{Kind: "k-v1", Binary: "b", Input: "I", Config: "c"},
		{Kind: "k-v1", Binary: "b", Input: "i", Config: "C"},
		// Field-boundary slide: the length prefixes must keep these apart.
		{Kind: "k-v1", Binary: "bi", Input: "", Config: "c"},
	}
	for i, k := range variants {
		if err := c.Put(k, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range variants {
		got, ok := c.Get(k)
		if !ok || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("variant %d: got %q, %v", i, got, ok)
		}
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	k := testKey(1)
	c1 := mustOpen(t, dir, Options{})
	if err := c1.Put(k, payloadFor(k)); err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, dir, Options{})
	got, ok := c2.Get(k)
	if !ok || !bytes.Equal(got, payloadFor(k)) {
		t.Fatal("entry did not survive reopen")
	}
}

func TestOverwriteSameKey(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	k := testKey(1)
	if err := c.Put(k, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || string(got) != "two" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	c.mu.Lock()
	size := c.size
	c.mu.Unlock()
	if want := int64(headerSize + 3); size != want {
		t.Fatalf("size accounting after overwrite = %d, want %d", size, want)
	}
}

// entryFile locates the single .art file of a one-entry cache.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == ".art" {
			found = p
		}
		return err
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file under %s (err=%v)", dir, err)
	}
	return found
}

// TestCorruptEntryIsMissAndHeals is the adversarial contract: a
// bit-flipped payload is detected, treated as a miss, and transparently
// recomputed and rewritten by GetOrCompute.
func TestCorruptEntryIsMissAndHeals(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"bit-flip-payload", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"bit-flip-header", func(b []byte) []byte { b[9] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-below-header", func(b []byte) []byte { return b[:10] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"garbage", func(b []byte) []byte { return []byte("not an artifact at all") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c := mustOpen(t, dir, Options{})
			k := testKey(7)
			want := payloadFor(k)
			if err := c.Put(k, want); err != nil {
				t.Fatal(err)
			}
			p := entryFile(t, dir)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get(k); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			if st := c.Stats(); st.BadEntries != 1 {
				t.Fatalf("BadEntries = %d, want 1", st.BadEntries)
			}
			// The recompute path heals the entry in place.
			recomputed := 0
			got, err := c.GetOrCompute(k, func() ([]byte, error) {
				recomputed++
				return want, nil
			})
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("GetOrCompute = %q, %v", got, err)
			}
			if recomputed != 1 {
				t.Fatalf("recomputed %d times, want 1", recomputed)
			}
			if got, ok := c.Get(k); !ok || !bytes.Equal(got, want) {
				t.Fatal("rewrite after corruption did not stick")
			}
		})
	}
}

// TestWrongKeyFileIsRejected plants a valid entry image under the
// wrong key's path (e.g. a collision-free file move) and checks the
// key digest in the header rejects it.
func TestWrongKeyFileIsRejected(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	ka, kb := testKey(1), testKey(2)
	if err := c.Put(ka, []byte("a-payload")); err != nil {
		t.Fatal(err)
	}
	// Move a's entry file to b's path.
	if err := os.MkdirAll(filepath.Dir(c.path(kb)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.path(ka), c.path(kb)); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(kb); ok {
		t.Fatalf("foreign entry served for key b: %q", got)
	}
}

// TestSchemaBumpInvalidatesEverything pins the versioned-invalidation
// contract: reopening the same directory under a bumped schema tag
// orphans every old entry at once.
func TestSchemaBumpInvalidatesEverything(t *testing.T) {
	dir := t.TempDir()
	v1 := mustOpen(t, dir, Options{Schema: "janus-artcache/v1"})
	const n = 16
	for i := 0; i < n; i++ {
		if err := v1.Put(testKey(i), payloadFor(testKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	v2 := mustOpen(t, dir, Options{Schema: "janus-artcache/v2"})
	for i := 0; i < n; i++ {
		if _, ok := v2.Get(testKey(i)); ok {
			t.Fatalf("entry %d survived the schema bump", i)
		}
	}
	// The old entries are still reachable under the old tag (they age
	// out via the LRU bound, not the bump itself)...
	v1b := mustOpen(t, dir, Options{Schema: "janus-artcache/v1"})
	if _, ok := v1b.Get(testKey(0)); !ok {
		t.Fatal("schema bump destroyed old-tag entries outright")
	}
	// ...and the orphans still count against the new cache's size
	// bound, so they are evictable.
	small, err := Open(dir, Options{Schema: "janus-artcache/v2", MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Put(testKey(0), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if st := small.Stats(); st.Evictions == 0 {
		t.Fatal("orphaned old-schema entries were not evicted under the size bound")
	}
}

// TestConcurrentGoroutinesShareDir hammers one directory from many
// goroutines through two independently opened Cache values (as two
// janusd replicas would), verifying under -race that every hit returns
// exactly the bytes its key demands.
func TestConcurrentGoroutinesShareDir(t *testing.T) {
	dir := t.TempDir()
	c1 := mustOpen(t, dir, Options{})
	c2 := mustOpen(t, dir, Options{})
	const workers = 8
	const rounds = 60
	const keys = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		c := c1
		if w%2 == 1 {
			c = c2
		}
		wg.Add(1)
		go func(w int, c *Cache) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := testKey((w + r) % keys)
				want := payloadFor(k)
				if (w+r)%3 == 0 {
					if err := c.Put(k, want); err != nil {
						errs <- err
						return
					}
				}
				if got, ok := c.Get(k); ok && !bytes.Equal(got, want) {
					errs <- fmt.Errorf("worker %d round %d: wrong payload for %v", w, r, k)
					return
				}
			}
		}(w, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOpenSharedDedups(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("OpenShared returned two instances for one directory")
	}
	if err := a.Put(testKey(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(testKey(1)); !ok {
		t.Fatal("shared instance does not see the write")
	}
}

func TestGetOrComputePropagatesComputeError(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	wantErr := fmt.Errorf("boom")
	if _, err := c.GetOrCompute(testKey(1), func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("failed compute left an entry behind")
	}
}
