package artcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock gives eviction tests a strictly increasing mtime source so
// LRU order never depends on filesystem timestamp granularity.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) next() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(time.Second)
	return f.t
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

// entrySize is the on-disk footprint of a payload of n bytes.
func entrySize(n int) int64 { return int64(headerSize + n) }

const evictPayload = 512

func evictKey(i int) Key { return Key{Kind: "evict-v1", Binary: fmt.Sprintf("b%03d", i)} }

func putN(t *testing.T, c *Cache, i int) {
	t.Helper()
	if err := c.Put(evictKey(i), bytes.Repeat([]byte{byte(i)}, evictPayload)); err != nil {
		t.Fatal(err)
	}
}

func has(c *Cache, i int) bool {
	_, ok := c.Get(evictKey(i))
	return ok
}

// TestLRUOrder pins the eviction order: least-recently-used first,
// where Get counts as use.
func TestLRUOrder(t *testing.T) {
	clk := newFakeClock()
	c := mustOpen(t, t.TempDir(), Options{MaxBytes: 3 * entrySize(evictPayload)})
	c.now = clk.next
	putN(t, c, 0)
	putN(t, c, 1)
	putN(t, c, 2) // resident: 0, 1, 2 (exactly at the bound)
	if !has(c, 0) {
		t.Fatal("entry 0 evicted below the bound")
	}
	// Touch 0 (the Get above refreshed it), then 1, leaving 2 oldest.
	if !has(c, 1) {
		t.Fatal("entry 1 missing")
	}
	putN(t, c, 3) // over the bound: must evict 2, the LRU entry
	if has(c, 2) {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, i := range []int{0, 1, 3} {
		if !has(c, i) {
			t.Fatalf("recently used entry %d was evicted", i)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

// TestSizeBoundHonoredAcrossRestarts fills a store, reopens it (size
// recomputed by scanning the directory), and checks one more Put still
// enforces the bound over the pre-restart entries.
func TestSizeBoundHonoredAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	maxBytes := 4 * entrySize(evictPayload)
	clk := newFakeClock()
	c1 := mustOpen(t, dir, Options{MaxBytes: maxBytes})
	c1.now = clk.next
	for i := 0; i < 4; i++ {
		putN(t, c1, i)
	}

	c2 := mustOpen(t, dir, Options{MaxBytes: maxBytes})
	c2.now = clk.next
	c2.mu.Lock()
	recomputed := c2.size
	c2.mu.Unlock()
	if recomputed != maxBytes {
		t.Fatalf("reopen recomputed size %d, want %d", recomputed, maxBytes)
	}
	putN(t, c2, 4) // must evict entry 0, written before the restart
	if has(c2, 0) {
		t.Fatal("pre-restart LRU entry survived a post-restart Put")
	}
	c2.mu.Lock()
	size := c2.size
	c2.mu.Unlock()
	if size > maxBytes {
		t.Fatalf("resident size %d exceeds bound %d after restart", size, maxBytes)
	}
	for i := 1; i <= 4; i++ {
		if !has(c2, i) {
			t.Fatalf("entry %d lost", i)
		}
	}
}

// TestEvictionNeverCorruptsConcurrentReads runs a reader hammering one
// key while a writer floods the store past its bound, forcing the
// reader's entry to be evicted and re-published repeatedly. Every read
// must be either a miss or the exact payload — never partial or
// foreign bytes. Run under -race in CI.
func TestEvictionNeverCorruptsConcurrentReads(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{MaxBytes: 2 * entrySize(evictPayload)})
	k := Key{Kind: "evict-v1", Binary: "hot"}
	want := bytes.Repeat([]byte{0xAB}, evictPayload)
	if err := c.Put(k, want); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var readerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			got, ok := c.Get(k)
			if ok && !bytes.Equal(got, want) {
				readerErr = fmt.Errorf("read returned %d corrupt bytes", len(got))
				return
			}
			if !ok {
				// Evicted under us: republish, as a real caller's
				// recompute path would.
				if err := c.Put(k, want); err != nil {
					readerErr = err
					return
				}
			}
		}
	}()
	for i := 0; i < 300; i++ {
		putN(t, c, i)
	}
	close(done)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if st := c.Stats(); st.BadEntries != 0 {
		t.Fatalf("eviction pressure produced %d bad entries", st.BadEntries)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("flood did not trigger eviction (bound too large for the test?)")
	}
}
