// Package artcache is a durable, content-addressed artifact store
// shared by every deterministic stage of the pipeline. Each artifact
// is keyed by (schema version, artifact kind, binary content hash,
// input, configuration); because every cached stage is a pure function
// of that tuple, an entry can be verified against its key and a valid
// hit is always byte-equivalent to recomputation.
//
// Durability and sharing contract:
//
//   - Entries are published atomically: a writer streams into a
//     temporary file in the cache directory and renames it over the
//     final path, so a reader (same process, another goroutine, or
//     another process sharing the directory) only ever observes a
//     complete entry or none at all.
//   - Reads are verified: the entry header records the full key digest
//     and a SHA-256 of the payload. A truncated, bit-flipped or
//     foreign file is treated as a miss (and removed best-effort); the
//     caller recomputes and rewrites. Corruption can cost time, never
//     correctness.
//   - The store is size-bounded with LRU eviction: Get refreshes an
//     entry's mtime, and when the resident bytes exceed MaxBytes the
//     oldest entries are deleted until the bound holds again. Eviction
//     unlinks files; a concurrent reader that already opened the entry
//     keeps its consistent view (POSIX), and one that lost the race
//     simply misses.
//   - Versioned invalidation follows the BENCH_engine.json schema-tag
//     convention: the schema string is folded into every key digest,
//     so bumping it orphans every old entry at once (the orphans age
//     out through the LRU bound).
package artcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSchema tags the current on-disk key schema. Bump it whenever
// the meaning or serialisation of any cached artifact kind changes:
// every entry written under the old tag becomes unreachable (a miss)
// and is eventually evicted by the size bound.
const DefaultSchema = "janus-artcache/v1"

// DefaultMaxBytes bounds the store when Options.MaxBytes is zero.
const DefaultMaxBytes = 256 << 20

// Key identifies one artifact. All fields participate in the content
// digest; Kind additionally names the subdirectory the entry lives in,
// so it must be a short filepath-safe slug (letters, digits, '-', '.').
type Key struct {
	// Kind is the artifact type plus its serialisation version, e.g.
	// "native-v1".
	Kind string
	// Binary is the content fingerprint of the guest binary (and
	// library set) the artifact derives from.
	Binary string
	// Input discriminates artifacts of one binary (e.g. input set).
	Input string
	// Config captures every configuration knob the artifact depends on
	// (thread count, cost model, engine selection, ...).
	Config string
}

// Options configures Open.
type Options struct {
	// MaxBytes bounds the resident size of the store (0 = DefaultMaxBytes).
	MaxBytes int64
	// Schema overrides DefaultSchema (tests and forced invalidation).
	Schema string
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	// Hits counts verified reads served from disk.
	Hits int64
	// Misses counts absent entries (including evicted and
	// schema-orphaned ones).
	Misses int64
	// Evictions counts entries removed by the size bound.
	Evictions int64
	// BadEntries counts entries rejected by verification (truncated,
	// bit-flipped, foreign, or undecodable); each was treated as a
	// miss and is also counted there.
	BadEntries int64
}

// String renders the snapshot the way janus-bench prints it on stderr.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d evictions, %d bad entries",
		s.Hits, s.Misses, s.Evictions, s.BadEntries)
}

// Cache is an open artifact store rooted at one directory. It is safe
// for concurrent use by multiple goroutines, and multiple processes
// may share one directory (each opens its own Cache).
type Cache struct {
	dir      string
	maxBytes int64
	schema   string

	// now is the eviction clock (a test hook; time.Now otherwise).
	now func() time.Time

	// mu serialises size accounting and eviction within this process.
	mu   sync.Mutex
	size int64

	hits, misses, evictions, bad atomic.Int64
}

// Open creates (if needed) and opens the store rooted at dir. The
// resident size is recomputed from the directory, so the LRU bound
// holds across process restarts and is shared with concurrent writers.
func Open(dir string, o Options) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("artcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artcache: %w", err)
	}
	c := &Cache{
		dir:      dir,
		maxBytes: o.MaxBytes,
		schema:   o.Schema,
		now:      time.Now,
	}
	if c.maxBytes <= 0 {
		c.maxBytes = DefaultMaxBytes
	}
	if c.schema == "" {
		c.schema = DefaultSchema
	}
	c.mu.Lock()
	c.size = c.scanSize()
	c.mu.Unlock()
	return c, nil
}

// shared deduplicates OpenShared instances per absolute directory, so
// every layer of one process (harness options, memos, build cache,
// CLI stats reporting) observes a single set of counters.
var shared struct {
	mu sync.Mutex
	m  map[string]*Cache
}

// OpenShared returns the process-wide Cache for dir, opening it with
// default Options on first use.
func OpenShared(dir string) (*Cache, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("artcache: %w", err)
	}
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if c, ok := shared.m[abs]; ok {
		return c, nil
	}
	c, err := Open(abs, Options{})
	if err != nil {
		return nil, err
	}
	if shared.m == nil {
		shared.m = map[string]*Cache{}
	}
	shared.m[abs] = c
	return c, nil
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		BadEntries: c.bad.Load(),
	}
}

// Dir returns the root directory of the store.
func (c *Cache) Dir() string { return c.dir }

// ---------------------------------------------------------------------
// Entry format.
//
//	magic      [8]byte  "JANUSART"
//	keyID      [32]byte sha256 over length-prefixed (schema, kind,
//	                    binary, input, config)
//	payloadLen uint64   little-endian
//	payloadSHA [32]byte sha256 of payload
//	payload    [payloadLen]byte
// ---------------------------------------------------------------------

var magic = [8]byte{'J', 'A', 'N', 'U', 'S', 'A', 'R', 'T'}

const headerSize = 8 + 32 + 8 + 32

// keyID digests a key under the cache's schema tag. Fields are
// length-prefixed so no two distinct keys can collide by sliding bytes
// between fields.
func (c *Cache) keyID(k Key) [32]byte {
	h := sha256.New()
	for _, s := range []string{c.schema, k.Kind, k.Binary, k.Input, k.Config} {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	var id [32]byte
	h.Sum(id[:0])
	return id
}

// path locates the entry file for a key: one subdirectory per kind,
// file named by the key digest.
func (c *Cache) path(k Key) string {
	id := c.keyID(k)
	return filepath.Join(c.dir, kindDir(k.Kind), hex.EncodeToString(id[:])+".art")
}

// kindDir maps a kind to its subdirectory, folding any filepath-unsafe
// rune so a hostile kind string cannot escape the cache root.
func kindDir(kind string) string {
	if kind == "" {
		return "misc"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, kind)
}

// encode serialises payload into a complete entry image for k.
func (c *Cache) encode(k Key, payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out[0:8], magic[:])
	id := c.keyID(k)
	copy(out[8:40], id[:])
	binary.LittleEndian.PutUint64(out[40:48], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[48:80], sum[:])
	copy(out[80:], payload)
	return out
}

// decode verifies an entry image against k and returns the payload.
func (c *Cache) decode(k Key, data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("artcache: entry truncated: %d bytes", len(data))
	}
	if [8]byte(data[0:8]) != magic {
		return nil, fmt.Errorf("artcache: bad magic")
	}
	if [32]byte(data[8:40]) != c.keyID(k) {
		return nil, fmt.Errorf("artcache: entry key mismatch")
	}
	n := binary.LittleEndian.Uint64(data[40:48])
	if n != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("artcache: payload length %d, file carries %d", n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if sha256.Sum256(payload) != [32]byte(data[48:80]) {
		return nil, fmt.Errorf("artcache: payload digest mismatch")
	}
	return payload, nil
}

// Get returns the verified payload for k, or ok=false on a miss. A
// present-but-invalid entry (truncated, corrupted, written under
// another schema layout, or not an entry file at all) counts as a
// miss: it is removed best-effort so the caller's recompute-and-Put
// heals the store.
func (c *Cache) Get(k Key) ([]byte, bool) {
	p := c.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	payload, err := c.decode(k, data)
	if err != nil {
		c.bad.Add(1)
		c.misses.Add(1)
		c.removeEntry(p, int64(len(data)))
		return nil, false
	}
	c.hits.Add(1)
	// LRU touch. Best-effort: a raced eviction or another process's
	// concurrent rewrite only perturbs recency, never contents.
	now := c.now()
	_ = os.Chtimes(p, now, now)
	return payload, true
}

// Put atomically publishes payload under k and enforces the size
// bound. Concurrent writers for the same key (goroutines or
// processes) each publish a complete entry; whichever rename lands
// last wins, and both images verify identically because cached stages
// are deterministic.
func (c *Cache) Put(k Key, payload []byte) error {
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("artcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artcache: %w", err)
	}
	img := c.encode(k, payload)
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artcache: %w", err)
	}
	now := c.now()
	_ = os.Chtimes(tmp.Name(), now, now)
	var prev int64
	if st, err := os.Stat(p); err == nil {
		prev = st.Size()
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artcache: %w", err)
	}
	c.mu.Lock()
	c.size += int64(len(img)) - prev
	if c.size > c.maxBytes {
		c.evictLocked()
	}
	c.mu.Unlock()
	return nil
}

// GetOrCompute returns the cached payload for k, or computes, caches
// and returns it. Compute errors propagate; Put failures (a full or
// read-only disk) are swallowed — the cache layer must never turn a
// computable artifact into an error.
func (c *Cache) GetOrCompute(k Key, compute func() ([]byte, error)) ([]byte, error) {
	if payload, ok := c.Get(k); ok {
		return payload, nil
	}
	payload, err := compute()
	if err != nil {
		return nil, err
	}
	_ = c.Put(k, payload)
	return payload, nil
}

// removeEntry unlinks an entry file and adjusts the size accounting.
func (c *Cache) removeEntry(path string, size int64) {
	if os.Remove(path) == nil {
		c.mu.Lock()
		c.size -= size
		if c.size < 0 {
			c.size = 0
		}
		c.mu.Unlock()
	}
}

// entryInfo is one on-disk entry during an eviction scan.
type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// scanEntries walks the store and returns every entry file. Temp files
// mid-publication are skipped (they are renamed or removed by their
// writer).
func (c *Cache) scanEntries() []entryInfo {
	var out []entryInfo
	kinds, err := os.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		sub := filepath.Join(c.dir, kd.Name())
		files, err := os.ReadDir(sub)
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".art") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			out = append(out, entryInfo{
				path:  filepath.Join(sub, f.Name()),
				size:  info.Size(),
				mtime: info.ModTime(),
			})
		}
	}
	return out
}

// scanSize totals the resident entry bytes.
func (c *Cache) scanSize() int64 {
	var total int64
	for _, e := range c.scanEntries() {
		total += e.size
	}
	return total
}

// evictLocked removes least-recently-used entries until the resident
// size fits MaxBytes again. It rescans the directory first so
// concurrent processes sharing the store are accounted for; eviction
// order is mtime (Get refreshes it), ties broken by path so the order
// is deterministic. Callers hold c.mu.
func (c *Cache) evictLocked() {
	entries := c.scanEntries()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		// Unlink only: a reader that already opened this file keeps a
		// consistent snapshot; a later reader misses and recomputes.
		if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
			continue
		}
		total -= e.size
		c.evictions.Add(1)
	}
	c.size = total
}
