package artcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzEntryFile feeds arbitrary bytes to the on-disk entry parser: the
// reader must never panic, never serve unverified bytes as a hit, and
// the store must stay fully usable afterwards (the adversarial file is
// healed by the next Put).
func FuzzEntryFile(f *testing.F) {
	seedCache, err := Open(f.TempDir(), Options{})
	if err != nil {
		f.Fatal(err)
	}
	k := Key{Kind: "fuzz-v1", Binary: "bin", Input: "in", Config: "cfg"}
	valid := seedCache.encode(k, []byte("payload"))
	f.Add([]byte{})
	f.Add([]byte("JANUSART"))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(bytes.Repeat([]byte{0xFF}, headerSize+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		c, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := c.path(k)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, ok := c.Get(k)
		if ok {
			// The only way arbitrary bytes may be served is if they are
			// a byte-exact valid entry for this key.
			if !bytes.Equal(c.encode(k, got), data) {
				t.Fatalf("unverified hit: %d payload bytes from %d-byte file", len(got), len(data))
			}
		}
		// The store heals: a Put over the adversarial file restores
		// normal service.
		if err := c.Put(k, []byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get(k); !ok || string(got) != "fresh" {
			t.Fatalf("store unusable after adversarial entry: %q, %v", got, ok)
		}
	})
}
