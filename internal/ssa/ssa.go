// Package ssa builds static single assignment form over the recovered
// CFG. Registers and the flags register are abstracted into versioned
// values, exactly as the paper's analyser "abstracts all register, stack
// and absolute memory locations into versioned variables in SSA form".
// Phi nodes are placed with dominance frontiers and renamed over the
// dominator tree. The symbolic-expression layer (internal/sym) consumes
// the def-use chains produced here.
package ssa

import (
	"fmt"

	"janus/internal/cfg"
	"janus/internal/guest"
)

// loc indexes an SSA-tracked storage location: GPRs 0..16 (16 = TLS)
// then flags.
type loc int

const (
	locFlags loc = guest.NumGPR + 1
	numLocs      = int(locFlags) + 1
)

func regLoc(r guest.Reg) loc { return loc(r) }

// ValueKind discriminates how a Value is defined.
type ValueKind uint8

const (
	// Param is a location's value on function entry.
	Param ValueKind = iota
	// InstDef is a definition by an ordinary instruction.
	InstDef
	// PhiDef is a phi node at a join point.
	PhiDef
)

// Value is one SSA value.
type Value struct {
	ID   int
	Kind ValueKind
	// Reg is the architectural location this value versions
	// (guest.RegNone+flags handled via IsFlags).
	Reg     guest.Reg
	IsFlags bool
	// Block and InstIdx give the defining instruction for InstDef, or
	// the owning block for PhiDef.
	Block   *cfg.Block
	InstIdx int
	// Inst is a copy of the defining instruction (InstDef only).
	Inst guest.Inst
	// Args are phi arguments, parallel to Block.Preds (PhiDef only).
	Args []*Value
}

func (v *Value) String() string {
	where := "param"
	switch v.Kind {
	case InstDef:
		where = fmt.Sprintf("%#x", v.Block.InstAddr(v.InstIdx))
	case PhiDef:
		where = fmt.Sprintf("phi@%#x", v.Block.Addr)
	}
	if v.IsFlags {
		return fmt.Sprintf("flags_%d(%s)", v.ID, where)
	}
	return fmt.Sprintf("%s_%d(%s)", v.Reg, v.ID, where)
}

// InstRef names an instruction by block and index.
type InstRef struct {
	Block *cfg.Block
	Idx   int
}

// Addr returns the instruction's code address.
func (r InstRef) Addr() uint64 { return r.Block.InstAddr(r.Idx) }

// Inst returns the referenced instruction.
func (r InstRef) Inst() guest.Inst { return r.Block.Insts[r.Idx] }

// SSA is the result of construction for one function.
type SSA struct {
	Fn *cfg.Func
	// RegUse gives, for each instruction, the SSA value reaching each
	// register it reads.
	RegUse map[InstRef]map[guest.Reg]*Value
	// DefsAt gives the values defined by each instruction.
	DefsAt map[InstRef][]*Value
	// Phis lists the phi values at each block.
	Phis map[*cfg.Block][]*Value
	// Params are the entry values of each register.
	Params map[guest.Reg]*Value
	// EntryState gives the value of every register at entry to each
	// block (after the block's phis). The symbolic layer uses it to find
	// the values reaching a loop header.
	EntryState map[*cfg.Block]map[guest.Reg]*Value
	// LiveOut is the set of registers live out of each block.
	LiveOut map[*cfg.Block]map[guest.Reg]bool

	nextID int
}

// Build constructs SSA form for fn.
func Build(fn *cfg.Func) *SSA {
	s := &SSA{
		Fn:         fn,
		RegUse:     make(map[InstRef]map[guest.Reg]*Value),
		DefsAt:     make(map[InstRef][]*Value),
		Phis:       make(map[*cfg.Block][]*Value),
		Params:     make(map[guest.Reg]*Value),
		EntryState: make(map[*cfg.Block]map[guest.Reg]*Value),
		LiveOut:    liveness(fn),
	}

	// 1. Collect blocks defining each location.
	defBlocks := make([][]*cfg.Block, numLocs)
	for _, b := range fn.Blocks {
		seen := make(map[loc]bool)
		for _, in := range b.Insts {
			for _, d := range in.Defs() {
				if l, ok := locOf(d); ok && !seen[l] {
					seen[l] = true
					defBlocks[l] = append(defBlocks[l], b)
				}
			}
		}
	}

	// 2. Phi placement via dominance frontiers (minimal SSA).
	df := fn.DominanceFrontier()
	phiLocs := make(map[*cfg.Block]map[loc]*Value)
	for _, b := range fn.Blocks {
		phiLocs[b] = make(map[loc]*Value)
	}
	for l := 0; l < numLocs; l++ {
		work := append([]*cfg.Block(nil), defBlocks[l]...)
		inWork := make(map[*cfg.Block]bool)
		for _, b := range work {
			inWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, f := range df[b] {
				if _, done := phiLocs[f][loc(l)]; done {
					continue
				}
				phi := s.newValue(PhiDef, loc(l))
				phi.Block = f
				phi.Args = make([]*Value, len(f.Preds))
				phiLocs[f][loc(l)] = phi
				s.Phis[f] = append(s.Phis[f], phi)
				if !inWork[f] {
					inWork[f] = true
					work = append(work, f)
				}
			}
		}
	}

	// 3. Renaming over the dominator tree.
	children := make(map[*cfg.Block][]*cfg.Block)
	for _, b := range fn.Blocks {
		if id := fn.Idom(b); id != nil {
			children[id] = append(children[id], b)
		}
	}
	cur := make([]*Value, numLocs)
	// Entry values.
	for r := guest.Reg(0); r <= guest.RegTLS; r++ {
		v := s.newValue(Param, regLoc(r))
		s.Params[r] = v
		cur[regLoc(r)] = v
	}
	cur[locFlags] = s.newValue(Param, locFlags)

	var rename func(b *cfg.Block, cur []*Value)
	rename = func(b *cfg.Block, cur []*Value) {
		local := append([]*Value(nil), cur...)
		for l, phi := range phiLocs[b] {
			local[l] = phi
		}
		entry := make(map[guest.Reg]*Value, guest.NumGPR)
		for r := guest.Reg(0); r < guest.NumGPR; r++ {
			entry[r] = local[regLoc(r)]
		}
		s.EntryState[b] = entry
		for i, in := range b.Insts {
			ref := InstRef{Block: b, Idx: i}
			for _, u := range in.Uses() {
				if u.Kind == guest.LocReg {
					if s.RegUse[ref] == nil {
						s.RegUse[ref] = make(map[guest.Reg]*Value)
					}
					s.RegUse[ref][u.Reg] = local[regLoc(u.Reg)]
				}
			}
			for _, d := range in.Defs() {
				l, ok := locOf(d)
				if !ok {
					continue
				}
				v := s.newValue(InstDef, l)
				v.Block = b
				v.InstIdx = i
				v.Inst = in
				local[l] = v
				s.DefsAt[ref] = append(s.DefsAt[ref], v)
			}
		}
		for _, succ := range b.Succs {
			pi := predIndex(succ, b)
			for l, phi := range phiLocs[succ] {
				phi.Args[pi] = local[l]
			}
		}
		for _, c := range children[b] {
			rename(c, local)
		}
	}
	if fn.Entry != nil {
		rename(fn.Entry, cur)
	}
	return s
}

func (s *SSA) newValue(k ValueKind, l loc) *Value {
	s.nextID++
	v := &Value{ID: s.nextID, Kind: k}
	if l == locFlags {
		v.IsFlags = true
		v.Reg = guest.RegNone
	} else {
		v.Reg = guest.Reg(l)
	}
	return v
}

func locOf(l guest.Loc) (loc, bool) {
	switch l.Kind {
	case guest.LocReg:
		if l.Reg <= guest.RegTLS {
			return regLoc(l.Reg), true
		}
	case guest.LocFlags:
		return locFlags, true
	}
	return 0, false
}

func predIndex(b, pred *cfg.Block) int {
	for i, p := range b.Preds {
		if p == pred {
			return i
		}
	}
	return -1
}

// UseOf returns the SSA value reaching register r at instruction ref.
func (s *SSA) UseOf(ref InstRef, r guest.Reg) *Value {
	if m := s.RegUse[ref]; m != nil {
		return m[r]
	}
	return nil
}

// DefOfReg returns the value instruction ref defines for register r,
// or nil.
func (s *SSA) DefOfReg(ref InstRef, r guest.Reg) *Value {
	for _, v := range s.DefsAt[ref] {
		if !v.IsFlags && v.Reg == r {
			return v
		}
	}
	return nil
}

// PhiFor returns the phi value for register r at block b, or nil.
func (s *SSA) PhiFor(b *cfg.Block, r guest.Reg) *Value {
	for _, phi := range s.Phis[b] {
		if !phi.IsFlags && phi.Reg == r {
			return phi
		}
	}
	return nil
}

// liveness computes per-block live-out register sets with the standard
// backwards iterative dataflow.
func liveness(fn *cfg.Func) map[*cfg.Block]map[guest.Reg]bool {
	gen := make(map[*cfg.Block]map[guest.Reg]bool)
	kill := make(map[*cfg.Block]map[guest.Reg]bool)
	for _, b := range fn.Blocks {
		g, k := map[guest.Reg]bool{}, map[guest.Reg]bool{}
		for _, in := range b.Insts {
			for _, u := range in.Uses() {
				if u.Kind == guest.LocReg && !k[u.Reg] {
					g[u.Reg] = true
				}
			}
			for _, d := range in.Defs() {
				if d.Kind == guest.LocReg {
					k[d.Reg] = true
				}
			}
		}
		gen[b], kill[b] = g, k
	}
	liveIn := make(map[*cfg.Block]map[guest.Reg]bool)
	liveOut := make(map[*cfg.Block]map[guest.Reg]bool)
	for _, b := range fn.Blocks {
		liveIn[b] = map[guest.Reg]bool{}
		liveOut[b] = map[guest.Reg]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := len(fn.Blocks) - 1; i >= 0; i-- {
			b := fn.Blocks[i]
			out := map[guest.Reg]bool{}
			for _, succ := range b.Succs {
				for r := range liveIn[succ] {
					out[r] = true
				}
			}
			in := map[guest.Reg]bool{}
			for r := range gen[b] {
				in[r] = true
			}
			for r := range out {
				if !kill[b][r] {
					in[r] = true
				}
			}
			if len(out) != len(liveOut[b]) || len(in) != len(liveIn[b]) {
				changed = true
			}
			liveOut[b], liveIn[b] = out, in
		}
	}
	return liveOut
}

// LiveOutOf reports whether register r is live out of block b.
func (s *SSA) LiveOutOf(b *cfg.Block, r guest.Reg) bool {
	return s.LiveOut[b][r]
}
