package ssa

import (
	"testing"

	"janus/internal/asm"
	"janus/internal/cfg"
	"janus/internal/guest"
)

// buildSSA assembles a main function and returns its SSA form.
func buildSSA(t *testing.T, emit func(f *asm.FuncBuilder)) (*cfg.Func, *SSA) {
	t.Helper()
	b := asm.NewBuilder("t")
	b.Data("d", 4096)
	f := b.Func("main")
	emit(f)
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	fn := p.FuncByAddr[exe.Entry]
	return fn, Build(fn)
}

func TestStraightLineDefUse(t *testing.T) {
	fn, s := buildSSA(t, func(f *asm.FuncBuilder) {
		f.Movi(guest.R1, 5)       // def v1
		f.Mov(guest.R2, guest.R1) // use v1, def v2
		f.Op(guest.ADD, guest.R2, guest.R1)
		f.Halt()
	})
	entry := fn.Entry
	// The MOV at index 1 must use the MOVI's def.
	movRef := InstRef{Block: entry, Idx: 1}
	v := s.UseOf(movRef, guest.R1)
	if v == nil || v.Kind != InstDef || v.Inst.Op != guest.MOVI {
		t.Fatalf("use of r1 at mov: %v", v)
	}
	// The ADD uses both r2 (from MOV) and r1 (from MOVI).
	addRef := InstRef{Block: entry, Idx: 2}
	if u := s.UseOf(addRef, guest.R2); u == nil || u.Inst.Op != guest.MOV {
		t.Fatalf("use of r2 at add: %v", u)
	}
	if d := s.DefOfReg(addRef, guest.R2); d == nil {
		t.Fatal("add defines r2")
	}
}

func TestParamsReachUses(t *testing.T) {
	fn, s := buildSSA(t, func(f *asm.FuncBuilder) {
		f.Mov(guest.R2, guest.R7) // r7 never defined: entry value
		f.Halt()
	})
	ref := InstRef{Block: fn.Entry, Idx: 0}
	v := s.UseOf(ref, guest.R7)
	if v == nil || v.Kind != Param {
		t.Fatalf("param not reaching: %v", v)
	}
	if v != s.Params[guest.R7] {
		t.Fatal("param identity broken")
	}
}

func TestPhiAtLoopHeader(t *testing.T) {
	fn, s := buildSSA(t, func(f *asm.FuncBuilder) {
		loop, done := f.NewLabel(), f.NewLabel()
		f.Movi(guest.R1, 0)
		f.Bind(loop)
		f.Cmpi(guest.R1, 10)
		f.J(guest.JGE, done)
		f.OpI(guest.ADDI, guest.R1, 1)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Halt()
	})
	if len(fn.Loops) != 1 {
		t.Fatal("loop not found")
	}
	header := fn.Loops[0].Header
	phi := s.PhiFor(header, guest.R1)
	if phi == nil {
		t.Fatal("no phi for induction register")
	}
	if len(phi.Args) != len(header.Preds) {
		t.Fatalf("phi arity %d vs %d preds", len(phi.Args), len(header.Preds))
	}
	// One arg is the MOVI (entry), the other the ADDI (latch).
	var sawInit, sawLatch bool
	for _, a := range phi.Args {
		if a == nil {
			t.Fatal("nil phi arg")
		}
		if a.Kind == InstDef && a.Inst.Op == guest.MOVI {
			sawInit = true
		}
		if a.Kind == InstDef && a.Inst.Op == guest.ADDI {
			sawLatch = true
		}
	}
	if !sawInit || !sawLatch {
		t.Fatalf("phi args wrong: init=%v latch=%v", sawInit, sawLatch)
	}
}

func TestDiamondJoinPhi(t *testing.T) {
	fn, s := buildSSA(t, func(f *asm.FuncBuilder) {
		elseL, join := f.NewLabel(), f.NewLabel()
		f.Cmpi(guest.R1, 0)
		f.J(guest.JE, elseL)
		f.Movi(guest.R2, 1)
		f.J(guest.JMP, join)
		f.Bind(elseL)
		f.Movi(guest.R2, 2)
		f.Bind(join)
		f.Mov(guest.R3, guest.R2)
		f.Halt()
	})
	// Find the join block (two preds) and its phi for r2.
	var join *cfg.Block
	for _, b := range fn.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join block")
	}
	phi := s.PhiFor(join, guest.R2)
	if phi == nil {
		t.Fatal("no phi at join")
	}
	// The MOV in the join must use the phi.
	ref := InstRef{Block: join, Idx: 0}
	if u := s.UseOf(ref, guest.R2); u != phi {
		t.Fatalf("join use is %v, want phi", u)
	}
}

func TestEntryStateSnapshots(t *testing.T) {
	fn, s := buildSSA(t, func(f *asm.FuncBuilder) {
		loop, done := f.NewLabel(), f.NewLabel()
		f.Movi(guest.R1, 0)
		f.Movi(guest.R9, 42)
		f.Bind(loop)
		f.Cmpi(guest.R1, 10)
		f.J(guest.JGE, done)
		f.OpI(guest.ADDI, guest.R1, 1)
		f.J(guest.JMP, loop)
		f.Bind(done)
		f.Halt()
	})
	header := fn.Loops[0].Header
	entry := s.EntryState[header]
	// r9 is invariant: its header entry value is the MOVI def.
	if v := entry[guest.R9]; v == nil || v.Kind != InstDef || v.Inst.Imm != 42 {
		t.Fatalf("entry r9 = %v", v)
	}
	// r1 has a phi: the entry value must be the phi itself.
	if v := entry[guest.R1]; v == nil || v.Kind != PhiDef {
		t.Fatalf("entry r1 = %v", v)
	}
}

func TestLivenessAcrossBlocks(t *testing.T) {
	fn, s := buildSSA(t, func(f *asm.FuncBuilder) {
		skip := f.NewLabel()
		f.Movi(guest.R4, 9) // live across the branch
		f.Cmpi(guest.R1, 0)
		f.J(guest.JE, skip)
		f.Nop()
		f.Bind(skip)
		f.Mov(guest.R5, guest.R4) // r4 used here
		f.Halt()
	})
	entry := fn.Entry
	if !s.LiveOutOf(entry, guest.R4) {
		t.Fatal("r4 must be live out of entry")
	}
	if s.LiveOutOf(entry, guest.R11) {
		t.Fatal("r11 never used: must be dead")
	}
}

func TestCallClobbersBreakChains(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main")
	f.Movi(guest.R0, 7)
	f.Call("callee")
	f.Mov(guest.R6, guest.R0) // r0 here is the call's def, not the MOVI
	f.Halt()
	cal := b.Func("callee")
	cal.Movi(guest.R0, 1)
	cal.Ret()
	exe, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	fn := p.FuncByAddr[exe.Entry]
	s := Build(fn)
	var afterCall *cfg.Block
	for _, b := range fn.Blocks {
		if len(b.Insts) > 0 && b.Insts[0].Op == guest.MOV && b.Insts[0].Rd == guest.R6 {
			afterCall = b
		}
	}
	if afterCall == nil {
		t.Skip("block layout differs")
	}
	ref := InstRef{Block: afterCall, Idx: 0}
	v := s.UseOf(ref, guest.R0)
	if v == nil || v.Kind != InstDef || !v.Inst.Op.IsCall() {
		t.Fatalf("use of r0 after call should be the call clobber, got %v", v)
	}
}

func TestValueStrings(t *testing.T) {
	_, s := buildSSA(t, func(f *asm.FuncBuilder) {
		f.Movi(guest.R1, 1)
		f.Halt()
	})
	for _, v := range s.Params {
		if v.String() == "" {
			t.Fatal("empty value string")
		}
	}
}
