package profiler

import (
	"testing"
	"testing/quick"
)

func TestCoverageNesting(t *testing.T) {
	c := NewCoverage()
	// Outer loop (id 1) runs 2 iterations, inner (id 2) 3 per outer.
	for o := 0; o < 2; o++ {
		c.EnterIter(1)
		c.Step(5) // outer body work
		for i := 0; i < 3; i++ {
			c.EnterIter(2)
			c.Step(10) // inner body work
		}
		c.Finish(2)
	}
	c.Finish(1)
	if c.Total() != 2*5+2*3*10 {
		t.Fatalf("total %d", c.Total())
	}
	fr := c.Fractions()
	// Outer covers everything; inner covers 60/70.
	if fr[1] < 0.99 {
		t.Errorf("outer fraction %v", fr[1])
	}
	if fr[2] < 0.85 || fr[2] > 0.87 {
		t.Errorf("inner fraction %v", fr[2])
	}
	// Exclusive: outer only its own 10 instructions.
	ex := c.ExclusiveFractions()
	if ex[1] > 0.15 {
		t.Errorf("outer exclusive fraction %v", ex[1])
	}
	if got := ex[1] + ex[2]; got < 0.99 || got > 1.01 {
		t.Errorf("exclusive fractions sum %v", got)
	}
}

func TestCoverageInvocationsAndIterations(t *testing.T) {
	c := NewCoverage()
	for inv := 0; inv < 4; inv++ {
		for it := 0; it < 7; it++ {
			c.EnterIter(3)
			c.Step(1)
		}
		c.Finish(3)
	}
	if c.Invocations(3) != 4 {
		t.Fatalf("invocations %d", c.Invocations(3))
	}
	if c.Iterations(3) != 28 {
		t.Fatalf("iterations %d", c.Iterations(3))
	}
	if c.AvgIterations(3) != 7 {
		t.Fatalf("avg %v", c.AvgIterations(3))
	}
	if c.AvgIters()[3] != 7 {
		t.Fatalf("AvgIters map %v", c.AvgIters())
	}
}

func TestCoverageMultiLevelExit(t *testing.T) {
	// Exiting an outer loop pops abandoned inner loops too.
	c := NewCoverage()
	c.EnterIter(1)
	c.EnterIter(2)
	c.EnterIter(3)
	c.Finish(1) // jumps all the way out
	if c.IsActive(1) || c.IsActive(2) || c.IsActive(3) {
		t.Fatal("multi-level exit left loops active")
	}
}

func TestDependenceDetection(t *testing.T) {
	d := NewDependence()
	d.EnterIter(0, true)
	d.Record(0, 0x1000, 8, true) // write in iter 0
	d.EnterIter(0, false)
	d.Record(0, 0x1000, 8, false) // read same addr in iter 1
	if !d.Observed()[0] {
		t.Fatal("cross-iteration RAW missed")
	}
	if d.Conflicts(0) == 0 {
		t.Fatal("conflict count zero")
	}
}

func TestDependenceSameIterationIsFine(t *testing.T) {
	d := NewDependence()
	d.EnterIter(1, true)
	d.Record(1, 0x2000, 8, true)
	d.Record(1, 0x2000, 8, false) // same iteration: no dependence
	if d.Observed()[1] {
		t.Fatal("same-iteration access misreported")
	}
}

func TestDependenceReadsOnlyNeverConflict(t *testing.T) {
	d := NewDependence()
	d.EnterIter(2, true)
	d.Record(2, 0x3000, 8, false)
	d.EnterIter(2, false)
	d.Record(2, 0x3000, 8, false)
	if d.Observed()[2] {
		t.Fatal("read-read flagged as dependence")
	}
}

func TestDependenceFreshInvocationResets(t *testing.T) {
	d := NewDependence()
	d.EnterIter(3, true)
	d.Record(3, 0x4000, 8, true)
	// New invocation: the old write must not conflict with it.
	d.EnterIter(3, true)
	d.Record(3, 0x4000, 8, false)
	if d.Observed()[3] {
		t.Fatal("state leaked across invocations")
	}
}

func TestDependenceWideAccess(t *testing.T) {
	// A 32-byte vector write overlapping a later 8-byte read.
	d := NewDependence()
	d.EnterIter(4, true)
	d.Record(4, 0x5000, 32, true)
	d.EnterIter(4, false)
	d.Record(4, 0x5018, 8, false) // last word of the vector
	if !d.Observed()[4] {
		t.Fatal("wide-access overlap missed")
	}
}

func TestDependenceDisjointStridesClean(t *testing.T) {
	f := func(seed uint8) bool {
		d := NewDependence()
		// DOALL pattern: iteration i touches word i only.
		first := true
		for i := uint64(0); i < 16; i++ {
			d.EnterIter(9, first)
			first = false
			d.Record(9, 0x8000+8*i, 8, true)
			d.Record(9, 0x8000+8*i, 8, false)
		}
		return !d.Observed()[9]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestExcallProfile(t *testing.T) {
	e := NewExcall()
	if e.Active() {
		t.Fatal("fresh profile active")
	}
	e.Start(0x400940)
	if !e.Active() {
		t.Fatal("not active after Start")
	}
	for i := 0; i < 49; i++ {
		e.StepInst()
	}
	for i := 0; i < 11; i++ {
		e.RecordMem(false)
	}
	e.Finish()
	st := e.Stats(0x400940)
	if st == nil || st.Calls != 1 || st.Insts != 49 || st.Reads != 11 || st.Writes != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Second call accumulates.
	e.Start(0x400940)
	e.StepInst()
	e.Finish()
	if st.Calls != 2 || st.Insts != 50 {
		t.Fatalf("accumulation wrong: %+v", st)
	}
	if e.Stats(0xdead) != nil {
		t.Fatal("phantom site")
	}
}
