// Package profiler implements Janus' statically-driven profiling: loop
// coverage profiling (dynamic instructions per loop as a proxy for time)
// and cross-iteration memory-dependence profiling. The DBM invokes the
// recording methods from its PROF_* rule handlers; only instrumented
// loops and instrumented instructions ever reach this package, which is
// what makes the paper's profiling cheap.
//
// Loop IDs are small dense integers assigned by the analyzer, so all
// per-loop state lives in index-grown slices rather than maps: the
// per-instruction recording paths (Step, Record, StepInst) do no map
// operations.
//
// Profilers are not goroutine-safe and never need to be: profiling
// schedules contain no LOOP_INIT rules, so profiled runs execute on a
// single goroutine (the DBM's host-parallel engine is additionally
// disabled whenever profiling is on).
package profiler

import "janus/internal/wordmap"

// grown returns s extended (zero-filled) so that index id is valid.
func grown[T any](s []T, id int) []T {
	if id < len(s) {
		return s
	}
	n := make([]T, id+1, max(2*(id+1), 16))
	copy(n, s)
	return n
}

// Coverage accumulates dynamic instruction counts per loop.
type Coverage struct {
	total int64
	// perLoop[loopID] counts instructions executed while the loop was
	// active (nested loops attribute to every active level).
	perLoop []int64
	// perLoopExcl attributes each instruction only to the innermost
	// active loop, so per-category fractions sum to at most one.
	perLoopExcl []int64
	// invocations[loopID] counts loop entries; iterations counts header
	// executions.
	invocations []int64
	iterations  []int64
	// active is the current loop nest (innermost last).
	active []int
	inNest []bool
}

// NewCoverage returns an empty coverage profile.
func NewCoverage() *Coverage {
	return &Coverage{}
}

// EnterIter handles a PROF_LOOP_ITER at a loop header: either a new
// invocation (loop not active) or another iteration.
func (c *Coverage) EnterIter(loopID int) {
	c.inNest = grown(c.inNest, loopID)
	c.invocations = grown(c.invocations, loopID)
	c.iterations = grown(c.iterations, loopID)
	c.perLoop = grown(c.perLoop, loopID)
	c.perLoopExcl = grown(c.perLoopExcl, loopID)
	if !c.inNest[loopID] {
		c.active = append(c.active, loopID)
		c.inNest[loopID] = true
		c.invocations[loopID]++
	}
	c.iterations[loopID]++
}

// Finish handles PROF_LOOP_FINISH at a loop exit target: pops the loop
// (and any nested loops abandoned by a multi-level exit).
func (c *Coverage) Finish(loopID int) {
	for len(c.active) > 0 {
		top := c.active[len(c.active)-1]
		c.active = c.active[:len(c.active)-1]
		c.inNest[top] = false
		if top == loopID {
			return
		}
	}
}

// IsActive reports whether the loop is currently on the active nest.
func (c *Coverage) IsActive(loopID int) bool {
	return loopID < len(c.inNest) && c.inNest[loopID]
}

// Step attributes n executed instructions to every active loop
// (inclusive) and to the innermost active loop (exclusive). EnterIter
// grew the slices for every active loop, so no bounds growth happens
// here.
func (c *Coverage) Step(n int64) {
	c.total += n
	for _, id := range c.active {
		c.perLoop[id] += n
	}
	if len(c.active) > 0 {
		c.perLoopExcl[c.active[len(c.active)-1]] += n
	}
}

// ExclusiveFractions returns innermost-attributed per-loop coverage;
// summing over disjoint loop sets never exceeds one.
func (c *Coverage) ExclusiveFractions() map[int]float64 {
	out := make(map[int]float64)
	if c.total == 0 {
		return out
	}
	for id, n := range c.perLoopExcl {
		if n > 0 {
			out[id] = float64(n) / float64(c.total)
		}
	}
	return out
}

// AvgIters returns mean iterations per invocation for every profiled
// loop.
func (c *Coverage) AvgIters() map[int]float64 {
	out := make(map[int]float64)
	for id, inv := range c.invocations {
		if inv > 0 {
			out[id] = float64(c.iterations[id]) / float64(inv)
		}
	}
	return out
}

// Fractions returns per-loop coverage as a fraction of all executed
// instructions.
func (c *Coverage) Fractions() map[int]float64 {
	out := make(map[int]float64)
	if c.total == 0 {
		return out
	}
	for id, n := range c.perLoop {
		if n > 0 {
			out[id] = float64(n) / float64(c.total)
		}
	}
	return out
}

// Invocations returns the number of times the loop was entered.
func (c *Coverage) Invocations(loopID int) int64 {
	if loopID >= len(c.invocations) {
		return 0
	}
	return c.invocations[loopID]
}

// Iterations returns the total header executions of the loop.
func (c *Coverage) Iterations(loopID int) int64 {
	if loopID >= len(c.iterations) {
		return 0
	}
	return c.iterations[loopID]
}

// AvgIterations returns mean iterations per invocation.
func (c *Coverage) AvgIterations(loopID int) float64 {
	inv := c.Invocations(loopID)
	if inv == 0 {
		return 0
	}
	return float64(c.Iterations(loopID)) / float64(inv)
}

// Total returns the total profiled instruction count.
func (c *Coverage) Total() int64 { return c.total }

// depRecord is the last access to one word within an invocation.
type depRecord struct {
	iter  int64
	write bool
}

// Dependence detects cross-iteration memory dependences for the
// instrumented accesses of each profiled loop.
type Dependence struct {
	// last[loopID] records, per word address, the last iteration that
	// touched it and whether it was a write.
	last []*wordmap.Table[depRecord]
	// iter[loopID] is the current iteration ordinal of the invocation.
	iter []int64
	// observed[loopID] is set once a cross-iteration dependence occurs.
	observed []bool
	// conflicts counts dependence events per loop.
	conflicts []int64
}

// NewDependence returns an empty dependence profile.
func NewDependence() *Dependence {
	return &Dependence{}
}

// EnterIter advances the loop to its next iteration (and resets
// tracking state on a fresh invocation, identified by first=true).
func (d *Dependence) EnterIter(loopID int, first bool) {
	d.last = grown(d.last, loopID)
	d.iter = grown(d.iter, loopID)
	d.observed = grown(d.observed, loopID)
	d.conflicts = grown(d.conflicts, loopID)
	if first {
		if d.last[loopID] == nil {
			d.last[loopID] = &wordmap.Table[depRecord]{}
		}
		d.last[loopID].Reset()
		d.iter[loopID] = 0
		return
	}
	d.iter[loopID]++
}

// Record notes an instrumented access of width bytes. A dependence is
// observed when an address is touched in different iterations and at
// least one access is a write (word-granularity, like the paper's
// word-based tracking).
func (d *Dependence) Record(loopID int, addr uint64, width int64, write bool) {
	d.last = grown(d.last, loopID)
	d.iter = grown(d.iter, loopID)
	d.observed = grown(d.observed, loopID)
	d.conflicts = grown(d.conflicts, loopID)
	t := d.last[loopID]
	if t == nil {
		t = &wordmap.Table[depRecord]{}
		d.last[loopID] = t
	}
	cur := d.iter[loopID]
	for off := int64(0); off < width; off += 8 {
		w := (addr + uint64(off)) &^ 7 // word granularity
		rec, ok := t.Get(w)
		if ok && rec.iter != cur && (rec.write || write) {
			d.observed[loopID] = true
			d.conflicts[loopID]++
		}
		if !ok || rec.iter != cur || write || rec.write {
			t.Put(w, depRecord{iter: cur, write: write || (ok && rec.write && rec.iter == cur)})
		}
	}
}

// Observed returns the loops with at least one profiled cross-iteration
// dependence.
func (d *Dependence) Observed() map[int]bool {
	out := make(map[int]bool)
	for id, o := range d.observed {
		if o {
			out[id] = true
		}
	}
	return out
}

// Conflicts returns the dependence event count for a loop.
func (d *Dependence) Conflicts(loopID int) int64 {
	if loopID >= len(d.conflicts) {
		return 0
	}
	return d.conflicts[loopID]
}

// ExcallStats aggregates PROF_EXCALL profiling: instruction and memory
// access counts inside external calls (paper §III-B reports these for
// bwaves' pow call).
type ExcallStats struct {
	Calls  int64
	Insts  int64
	Reads  int64
	Writes int64
}

// Excall accumulates per-call-site external call statistics.
type Excall struct {
	stats map[uint64]*ExcallStats
	// activeSite is the call site currently being profiled (0 if none);
	// active caches its stats so the per-instruction path skips the map.
	activeSite uint64
	active     *ExcallStats
}

// NewExcall returns an empty external-call profile.
func NewExcall() *Excall { return &Excall{stats: map[uint64]*ExcallStats{}} }

// Start begins profiling the external call at site.
func (e *Excall) Start(site uint64) {
	e.activeSite = site
	s := e.stats[site]
	if s == nil {
		s = &ExcallStats{}
		e.stats[site] = s
	}
	s.Calls++
	e.active = s
}

// Finish ends profiling of the active call.
func (e *Excall) Finish() { e.activeSite = 0; e.active = nil }

// Active reports whether an external call is being profiled.
func (e *Excall) Active() bool { return e.activeSite != 0 }

// StepInst attributes an executed instruction to the active call.
func (e *Excall) StepInst() {
	if e.active != nil {
		e.active.Insts++
	}
}

// RecordMem attributes a memory access to the active call.
func (e *Excall) RecordMem(write bool) {
	if e.active == nil {
		return
	}
	if write {
		e.active.Writes++
	} else {
		e.active.Reads++
	}
}

// Stats returns the profile for a call site (nil if never executed).
func (e *Excall) Stats(site uint64) *ExcallStats { return e.stats[site] }
