// Package janus is a Go reproduction of "Janus: Statically-Driven and
// Profile-Guided Automatic Dynamic Binary Parallelisation" (Zhou &
// Jones, CGO 2019): a static binary analyser that encodes loop
// parallelisation as rewrite schedules, and a dynamic binary modifier
// that applies them just-in-time, with runtime bounds checks and
// software-transactional speculation guarding the cases static analysis
// cannot prove.
//
// The package exposes the whole figure-1(a) flow:
//
//	exe := workloads.MustBuild(...)            // or any guest binary
//	rep, err := janus.Parallelise(exe, janus.Config{Threads: 8}, libs...)
//	fmt.Println(rep.Speedup())
//
// Parallelise runs the optional training stage (coverage profiling,
// then dependence profiling), selects loops, generates the
// parallelisation rewrite schedule, executes the binary under the DBM,
// and validates the result against native execution.
package janus

import (
	"fmt"

	"janus/internal/analyzer"
	"janus/internal/artcache"
	"janus/internal/dbm"
	"janus/internal/faultinject"
	"janus/internal/obj"
	"janus/internal/rules"
	"janus/internal/vm"
)

// Config selects a parallelisation configuration (the four bars of the
// paper's figure 7 correspond to: nothing enabled with Parallel=false;
// static only; static+profile; static+profile+checks).
type Config struct {
	// Threads is the number of parallel threads (default 8).
	Threads int
	// UseProfile enables the training stage: coverage profiling filters
	// unprofitable loops, dependence profiling classifies ambiguous
	// ones.
	UseProfile bool
	// UseChecks admits dynamic-DOALL loops guarded by runtime checks
	// and speculation.
	UseChecks bool
	// MinCoverage is the coverage threshold for UseProfile (default 1%).
	MinCoverage float64
	// Cost overrides the DBM cost model (zero value = default).
	Cost *dbm.CostModel
	// TrainExe, when non-nil, is a build of the same program with
	// training inputs used for the profiling stage (the paper profiles
	// with train inputs and evaluates with ref inputs).
	TrainExe *obj.Executable
	// SingleGoroutine forces the deterministic round-robin engine for
	// every parallel region instead of running eligible regions on host
	// goroutines. The two engines produce bit-identical simulated
	// results (virtual cycles, figures, memory hashes); this knob only
	// trades host wall-clock, for debugging and engine A/B runs.
	SingleGoroutine bool
	// StaticPartition forces the static equal-chunk partitioner inside
	// host-parallel regions instead of the work-stealing partitioner.
	// Simulated results are bit-identical either way (the stealing
	// engine folds every stolen piece back into its owning guest
	// thread); stealing only balances host wall-clock across workers.
	StaticPartition bool
	// Verify compares the DBM run's outputs and memory against native
	// execution and fails on mismatch (default true via Parallelise).
	Verify bool
	// Inject arms deterministic fault injection inside the DBM's
	// speculative region engines (see internal/faultinject). Injected
	// faults are recovered by re-executing the region round-robin, so
	// results — and Verify — are unaffected; Stats.ParRecoveries
	// records that the recovery path ran. Nil disables injection at
	// zero cost.
	Inject *faultinject.Plan
	// OnStats, when non-nil, receives the final DBM stats of the
	// parallelised run (before verification). It lets callers observe
	// recovery counters (ParRecoveries, DemotedLoops) without plumbing
	// them through every figure's return value.
	OnStats func(dbm.Stats)
	// Cache, when non-nil, is the durable artifact tier: native
	// baselines, training profiles and DBM results are looked up on
	// disk by content fingerprint before being recomputed, and
	// published after. Results are byte-identical with or without it
	// (fault-injected runs bypass it, see cache.go). Nil disables the
	// tier; the in-memory memos still apply.
	Cache *artcache.Cache
}

// Report is the outcome of a full Janus run.
type Report struct {
	Program  *analyzer.Program
	Schedule *rules.Schedule
	Native   *vm.Result
	DBM      *dbm.Result
	Stats    dbm.Stats
	// Selected is the number of loops parallelised.
	Selected int
}

// Speedup returns native-cycles / DBM-cycles (the paper's headline
// metric, normalised to native single-threaded execution).
func (r *Report) Speedup() float64 {
	if r.DBM == nil || r.DBM.Cycles == 0 {
		return 0
	}
	return float64(r.Native.Cycles) / float64(r.DBM.Cycles)
}

// Parallelise runs the complete Janus flow on exe.
func Parallelise(exe *obj.Executable, cfg Config, libs ...*obj.Library) (*Report, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	if cfg.MinCoverage == 0 {
		cfg.MinCoverage = analyzer.DefaultMinCoverage
	}

	prog, err := analyzer.Analyze(exe)
	if err != nil {
		return nil, fmt.Errorf("janus: static analysis: %w", err)
	}

	// Training stage (optional, figure 1(a) left).
	if cfg.UseProfile || cfg.UseChecks {
		trainExe := cfg.TrainExe
		trainProg := prog
		if trainExe == nil {
			trainExe = exe
		} else {
			// Memoised: the train binary is re-analysed identically for
			// every configuration that profiles it, and the profiling
			// path never mutates the Program.
			trainProg, err = runAnalyzeMemo(trainExe)
			if err != nil {
				return nil, fmt.Errorf("janus: train analysis: %w", err)
			}
		}
		pr, err := runProfilingMemo(cfg.Cache, trainExe, trainProg, libs...)
		if err != nil {
			return nil, fmt.Errorf("janus: profiling: %w", err)
		}
		// Loop IDs are assigned deterministically from the same binary
		// layout, so train results map directly onto ref analysis.
		prog.ApplyCoverage(pr.Coverage)
		prog.ApplyExclCoverage(pr.ExclCoverage)
		prog.ApplyAvgIters(pr.AvgIters)
		prog.ApplyDependences(pr.Dependences)
	}

	prog.SelectLoops(analyzer.SelectOptions{
		UseProfile:  cfg.UseProfile,
		MinCoverage: cfg.MinCoverage,
		UseChecks:   cfg.UseChecks,
	})
	sched, err := prog.GenParallelSchedule()
	if err != nil {
		return nil, fmt.Errorf("janus: schedule generation: %w", err)
	}

	native, err := runNativeMemo(cfg.Cache, exe, libs...)
	if err != nil {
		return nil, fmt.Errorf("janus: native run: %w", err)
	}

	dcfg := dbm.DefaultConfig(cfg.Threads)
	dcfg.HostParallel = !cfg.SingleGoroutine
	dcfg.WorkStealing = !cfg.StaticPartition
	dcfg.Inject = cfg.Inject
	if cfg.Cost != nil {
		dcfg.Cost = *cfg.Cost
	}
	res, err := runDBMCached(cfg.Cache, exe, sched, dcfg, libs...)
	if err != nil {
		return nil, fmt.Errorf("janus: DBM run: %w", err)
	}
	if cfg.OnStats != nil {
		cfg.OnStats(res.Stats)
	}

	if cfg.Verify {
		if err := verify(native, res); err != nil {
			return nil, err
		}
	}

	selected := 0
	for _, li := range prog.Loops {
		if li.Selected {
			selected++
		}
	}
	return &Report{
		Program:  prog,
		Schedule: sched,
		Native:   native,
		DBM:      res,
		Stats:    res.Stats,
		Selected: selected,
	}, nil
}

// verify compares the DBM result against native execution. It reads
// res.DataHash rather than asking a live Executor: the two are the
// same hash (Run records ex.DataHash() into the Result), and a
// cache-replayed result has no Executor behind it.
func verify(native *vm.Result, res *dbm.Result) error {
	if len(native.Output) != len(res.Output) {
		return fmt.Errorf("janus: verification failed: %d outputs vs %d native", len(res.Output), len(native.Output))
	}
	for i := range native.Output {
		if native.Output[i] != res.Output[i] {
			return fmt.Errorf("janus: verification failed: output %d is %#x, native %#x", i, res.Output[i], native.Output[i])
		}
	}
	if res.DataHash != native.DataHash {
		return fmt.Errorf("janus: verification failed: final memory image differs from native")
	}
	return nil
}

// ProfileResult carries the outcomes of the training stage.
type ProfileResult struct {
	// Coverage is the per-loop fraction of dynamic instructions
	// (inclusive: nested loops attribute to every enclosing level).
	Coverage map[int]float64
	// ExclCoverage attributes each instruction to its innermost loop.
	ExclCoverage map[int]float64
	// AvgIters is mean iterations per invocation.
	AvgIters map[int]float64
	// Dependences records, for each ambiguous loop that executed,
	// whether a cross-iteration dependence was observed.
	Dependences map[int]bool
	// Executor exposes the raw profiles (Excall statistics etc.).
	Executor *dbm.Executor
}

// RunProfiling executes the statically-driven profiling stage (figure
// 1(a)'s training stage) over exe.
func RunProfiling(exe *obj.Executable, prog *analyzer.Program, libs ...*obj.Library) (*ProfileResult, error) {
	sched := prog.GenProfileSchedule()
	cfg := dbm.Config{Threads: 1, Profile: true, Cost: dbm.DefaultCost(), MaxSteps: vm.DefaultMaxSteps}
	ex, err := dbm.New(exe, sched, cfg, libs...)
	if err != nil {
		return nil, err
	}
	if _, err := ex.Run(); err != nil {
		return nil, err
	}
	deps := ex.Dep.Observed()
	// Every ambiguous loop that executed without an observed dependence
	// is confirmed independent.
	confirmed := map[int]bool{}
	for _, li := range prog.Loops {
		if li.Class == analyzer.ClassDynDOALL || li.Class == analyzer.ClassDynDep {
			if ex.Cov.Invocations(li.ID) > 0 {
				confirmed[li.ID] = deps[li.ID]
			}
		}
	}
	return &ProfileResult{
		Coverage:     ex.Cov.Fractions(),
		ExclCoverage: ex.Cov.ExclusiveFractions(),
		AvgIters:     ex.Cov.AvgIters(),
		Dependences:  confirmed,
		Executor:     ex,
	}, nil
}

// RunNativeBaseline executes exe without any modification. The result
// is memoised per executable: native execution is deterministic, so
// repeated baseline runs of the same binary return the cached result.
func RunNativeBaseline(exe *obj.Executable, libs ...*obj.Library) (*vm.Result, error) {
	return runNativeMemo(nil, exe, libs...)
}

// RunBareDBM executes exe under the DBM with no rewrite schedule (the
// "DynamoRIO only" baseline of figure 7).
func RunBareDBM(exe *obj.Executable, libs ...*obj.Library) (*dbm.Result, error) {
	return RunBareDBMCached(nil, exe, libs...)
}
